// Multi-tenant walkthrough: two tenants ("gold" and "silver") share one
// 1/2/1/2 testbed whose app-tier thread pools are deliberately starved, so
// the pools — not the hardware — decide who meets its SLA. The example runs
// the same arrival sequence under each partition strategy, honestly and
// with gold misreporting its demand, and prints the per-tenant SLA split,
// Jain's fairness index and the liar's gain — the strategy-proofness story
// of DESIGN.md §14.
//
// Usage: multi_tenant [misreport_factor, default 8]

#include <cstdlib>
#include <iostream>

#include "exp/config.h"
#include "exp/experiment.h"
#include "exp/sweep.h"
#include "metrics/table.h"
#include "soft/partition.h"

using namespace softres;

int main(int argc, char** argv) {
  const double misreport = argc > 1 ? std::atof(argv[1]) : 8.0;

  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  // Inflate per-request demands 10x so a 4-thread Tomcat pool saturates at
  // a small (fast-to-simulate) user count.
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;

  exp::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 40.0;
  opts.client.ramp_down_s = 2.0;
  opts.client.think_time_mean_s = 1.0;

  exp::TenantScenario scenario;
  workload::TenantSpec gold;
  gold.name = "gold";
  gold.users = 120;
  workload::TenantSpec silver;
  silver.name = "silver";
  silver.users = 120;
  scenario.tenants = {gold, silver};
  scenario.greedy_tenant = 0;
  scenario.misreport_factor = misreport;

  const std::vector<soft::ShareStrategy> strategies = {
      soft::ShareStrategy::kStaticSplit,
      soft::ShareStrategy::kWorkConserving,
      soft::ShareStrategy::kKarmaCredits,
  };

  std::cout << "2 tenants x 120 users on 1/2/1/2 at 200-4-8, gold "
               "misreporting " << misreport << "x when greedy\n\n";
  const exp::Experiment e(cfg, opts);
  const exp::TenantSweepReport report = exp::tenant_sweep(
      e, exp::SoftConfig{200, 4, 8}, scenario, strategies);

  metrics::Table t({"strategy", "run", "gold good/bad", "silver good/bad",
                    "Jain"});
  for (const exp::TenantStrategyOutcome& o : report.outcomes) {
    const char* name = soft::share_strategy_name(o.strategy);
    auto row = [&](const char* run, const exp::RunResult& r, double jain) {
      const exp::TenantStat* g = r.find_tenant("gold");
      const exp::TenantStat* s = r.find_tenant("silver");
      t.add_row({name, run,
                 metrics::Table::fmt(g ? g->goodput : 0.0, 1) + " / " +
                     metrics::Table::fmt(g ? g->badput : 0.0, 1),
                 metrics::Table::fmt(s ? s->goodput : 0.0, 1) + " / " +
                     metrics::Table::fmt(s ? s->badput : 0.0, 1),
                 metrics::Table::fmt(jain, 3)});
    };
    row("honest", o.honest, o.honest_jain);
    row("greedy", o.greedy, o.greedy_jain);
  }
  t.print(std::cout);

  std::cout << "\nliar gain per strategy:";
  for (const exp::TenantStrategyOutcome& o : report.outcomes) {
    std::cout << "  " << soft::share_strategy_name(o.strategy) << " "
              << metrics::Table::fmt(o.greedy_gain_pct(), 1) << "%";
  }
  std::cout << "\n\n";

  const exp::TenantStrategyOutcome* wc =
      report.find(soft::ShareStrategy::kWorkConserving);
  if (wc != nullptr) {
    std::cout << "work-conserving greedy verdict: "
              << wc->greedy.diagnosis.summary() << "\n\n";
  }
  std::cout << "Static split isolates but strands idle units; "
               "work-conserving shares are efficient but pay whoever "
               "inflates reported demand; Karma credits stay "
               "work-conserving while pricing bursts in credits earned at "
               "entitlement — lying buys nothing.\n";
  return 0;
}
