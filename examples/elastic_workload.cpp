// Elastic workload: replay a bursty load profile (steady -> peak -> trough)
// against a statically allocated testbed and against the same testbed with
// the AdaptiveTuner adjusting pool sizes online. Internet-scale workloads
// have peak loads several times the steady state (paper, Section I); static
// allocations tuned for one point are sub-optimal elsewhere.
//
// Usage: elastic_workload [static soft e.g. 400-200-200]

#include <cstdlib>
#include <iostream>

#include "exp/adaptive.h"
#include "exp/config.h"
#include "exp/testbed.h"
#include "metrics/sla.h"
#include "metrics/table.h"

using namespace softres;

namespace {

std::vector<workload::LoadPhase> bursty_profile() {
  return {
      {0.0, 2500},    // steady state
      {80.0, 7000},   // flash-crowd peak
      {160.0, 4000},  // settle
  };
}

struct Outcome {
  double goodput;
  double badput;
  double mean_rt_ms;
  std::size_t resizes;
};

Outcome run_trial(const exp::SoftConfig& soft, bool adaptive) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = exp::HardwareConfig{1, 4, 1, 4};
  cfg.soft = soft;
  workload::ClientConfig client;
  client.users = 7000;  // slot pool sized for the peak
  client.ramp_up_s = 20.0;
  client.runtime_s = 220.0;
  client.ramp_down_s = 3.0;
  exp::Testbed bed(cfg, client);
  bed.farm().set_load_schedule(bursty_profile());

  exp::AdaptiveTuner tuner(bed);
  if (adaptive) tuner.start();
  bed.run();

  const metrics::SlaSplit split = metrics::SlaModel(1.0).split(
      bed.farm().response_times(), client.runtime_s);
  return Outcome{split.goodput, split.badput,
                 bed.farm().response_times().mean() * 1000.0,
                 tuner.actions().size()};
}

}  // namespace

int main(int argc, char** argv) {
  const exp::SoftConfig soft = argc > 1 ? exp::SoftConfig::parse(argv[1])
                                        : exp::SoftConfig{400, 200, 200};

  std::cout << "Bursty profile on 1/4/1/4: 2500 -> 7000 -> 4000 users\n\n";
  metrics::Table t({"mode", "goodput@1s", "badput@1s", "mean RT ms",
                    "pool resizes"});
  const Outcome fixed = run_trial(soft, /*adaptive=*/false);
  t.add_row({"static " + soft.to_string(),
             metrics::Table::fmt(fixed.goodput, 1),
             metrics::Table::fmt(fixed.badput, 1),
             metrics::Table::fmt(fixed.mean_rt_ms, 1), "0"});
  const Outcome adaptive = run_trial(soft, /*adaptive=*/true);
  t.add_row({"adaptive (same start)",
             metrics::Table::fmt(adaptive.goodput, 1),
             metrics::Table::fmt(adaptive.badput, 1),
             metrics::Table::fmt(adaptive.mean_rt_ms, 1),
             std::to_string(adaptive.resizes)});
  t.print(std::cout);

  std::cout << "\nThe controller shrinks over-allocated pools (cutting the "
               "JVM/GC tax near the peak) and grows starved ones, tracking "
               "the profile without operator input.\n";
  return 0;
}
