// Capacity planning: sweep workload on a hardware configuration, locate the
// knee with intervention analysis, and report what saturates first — the
// workflow an operator runs before committing to an SLA.
//
// Usage: capacity_planning [hw e.g. 1/2/1/2] [soft e.g. 400-15-60]
//                          [max_workload] [sla_threshold_s] [base_seed]
//
// base_seed (also SOFTRES_SEED) feeds RunContext::derive_seed — the only
// sanctioned way to re-seed a run. Per-trial streams are hashed from
// (base_seed, topology, soft config, users), so the same plan is
// bit-reproducible at any SOFTRES_JOBS level.

#include <cstdlib>
#include <iostream>

#include "core/intervention.h"
#include "core/ops_laws.h"
#include "exp/experiment.h"
#include "exp/sweep.h"
#include "metrics/table.h"

using namespace softres;

int main(int argc, char** argv) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = argc > 1 ? exp::HardwareConfig::parse(argv[1])
                    : exp::HardwareConfig{1, 2, 1, 2};
  const exp::SoftConfig soft = argc > 2 ? exp::SoftConfig::parse(argv[2])
                                        : exp::SoftConfig{400, 15, 60};
  const std::size_t max_wl =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 7000;
  const double threshold = argc > 4 ? std::atof(argv[4]) : 1.0;

  exp::ExperimentOptions opts = exp::ExperimentOptions::from_env();
  if (argc > 5) opts.client.seed = std::strtoull(argv[5], nullptr, 10);
  exp::Experiment experiment(cfg, opts);
  const auto workloads = exp::workload_range(1000, max_wl, 500);

  std::cout << "Capacity plan for " << cfg.hw.to_string() << " with "
            << soft.to_string() << " (SLO " << threshold << " s)\n"
            << "base seed " << opts.client.seed << "; trial streams derive "
            << "from it per (topology, allocation, users)\n\n";

  metrics::Table t({"users", "throughput", "goodput", "satisfaction",
                    "mean RT ms", "saturated"});
  // The whole plan sweeps in parallel (SOFTRES_JOBS to override), then the
  // knee analysis below reads the results in workload order.
  std::vector<exp::RunResult> results =
      exp::sweep_workload(experiment, soft, workloads);
  std::vector<double> satisfaction;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const exp::RunResult& r = results[i];
    const auto split = r.sla(threshold);
    satisfaction.push_back(split.satisfaction());
    std::string sat;
    for (const auto& name : r.saturated_hardware()) sat += name + " ";
    for (const auto& name : r.saturated_soft()) sat += name + " ";
    t.add_row({std::to_string(workloads[i]),
               metrics::Table::fmt(r.throughput, 1),
               metrics::Table::fmt(split.goodput, 1),
               metrics::Table::fmt(split.satisfaction(), 3),
               metrics::Table::fmt(r.response_times.mean() * 1000.0, 1),
               sat.empty() ? "-" : sat});
  }
  t.print(std::cout);

  const core::InterventionResult ia =
      core::intervention_analysis(satisfaction);
  const std::size_t knee_idx =
      std::min(ia.last_stable_index, workloads.size() - 1);
  const exp::RunResult& knee = results[knee_idx];
  std::cout << "\nknee (intervention analysis): " << workloads[knee_idx]
            << " users at " << metrics::Table::fmt(knee.throughput, 1)
            << " req/s\n";
  std::cout << "mean think-time-adjusted residence at the knee: "
            << metrics::Table::fmt(
                   1000.0 * core::interactive_rt(workloads[knee_idx],
                                                 knee.throughput, 7.0),
                   1)
            << " ms (interactive response time law)\n";
  return 0;
}
