// Bottleneck hunt: demonstrate the paper's Section III-A point that a
// saturated *soft* resource hides below idle hardware. Runs the same
// workload twice — once with a starved Tomcat thread pool, once healthy —
// and shows what a hardware-only monitor would miss, including the
// utilization-density view (Fig 4 b/c/e/f) and the online diagnoser's
// streaming verdict with its evidence windows.
//
// Set SOFTRES_REPORT_HTML=<path> to also write one flight-recorder HTML
// report per trial (timelines, shaded evidence, latency breakdown).
//
// Usage: bottleneck_hunt [users]

#include <cstdlib>
#include <iostream>

#include "core/bottleneck.h"
#include "exp/experiment.h"
#include "exp/runner_adapter.h"
#include "metrics/table.h"
#include "soft/pool_monitor.h"

using namespace softres;

namespace {

void diagnose(const exp::Experiment& experiment, const exp::SoftConfig& soft,
              std::size_t users, double slo) {
  const exp::RunResult r = experiment.run(soft, users);
  const core::Observation obs =
      exp::RunnerAdapter::to_observation(r, slo);
  // The diagnoser's timeline-backed verdict outranks the end-of-window
  // snapshot classifier when present.
  const core::BottleneckReport report =
      core::detect_bottleneck(obs, r.diagnosis.to_hint());

  std::cout << "\n=== " << soft.to_string() << " at " << users
            << " users ===\n";
  std::cout << "throughput " << metrics::Table::fmt(r.throughput, 1)
            << " req/s, goodput@" << slo << "s "
            << metrics::Table::fmt(r.goodput(slo), 1) << " req/s\n";

  metrics::Table cpus({"hardware", "util %"});
  for (const auto& c : r.cpus) {
    cpus.add_row({c.name, metrics::Table::fmt(c.util_pct, 1)});
  }
  cpus.print(std::cout);

  std::cout << "diagnosis: " << r.diagnosis.summary() << "\n";
  switch (report.kind) {
    case core::BottleneckKind::kNone:
      std::cout << "verdict: no bottleneck — offered load below capacity\n";
      break;
    case core::BottleneckKind::kHardware:
      std::cout << "verdict: hardware bottleneck at " << report.critical
                << "\n";
      break;
    case core::BottleneckKind::kMulti:
      std::cout << "verdict: multi-tier hardware bottleneck (oscillating "
                   "saturation)\n";
      break;
    case core::BottleneckKind::kSoft:
      std::cout << "verdict: HIDDEN soft-resource bottleneck:";
      for (const auto& name : report.soft) std::cout << " " << name;
      std::cout << "\n         all hardware is under-utilized; adding nodes "
                   "would not help (Section III-A)\n";
      break;
  }

  // Utilization density of the suspect pool (the Fig 4 analysis).
  const sim::TimeSeries* series = r.find_series("tomcat0.threads.util");
  if (series != nullptr && !series->values.empty()) {
    const sim::Histogram density = soft::utilization_density(
        *series, series->times.front(), series->times.back() + 1.0, 10);
    std::cout << "tomcat0 thread-pool occupancy density: ";
    for (std::size_t b = 0; b < density.bins(); ++b) {
      std::cout << "[" << static_cast<int>(density.bin_lo(b)) << "-"
                << static_cast<int>(density.bin_hi(b)) << "%)="
                << metrics::Table::fmt(100.0 * density.density(b), 0) << "% ";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t users =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6200;
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = exp::HardwareConfig{1, 2, 1, 2};
  exp::Experiment experiment(cfg, exp::ExperimentOptions::from_env());

  diagnose(experiment, exp::SoftConfig{400, 6, 60}, users, 1.0);
  diagnose(experiment, exp::SoftConfig{400, 15, 60}, users, 1.0);
  return 0;
}
