// Quickstart: simulate one RUBBoS trial on the 1/2/1/2 testbed, print the
// SLA-split performance and where the bottleneck sits.
//
// Usage: quickstart [users] [hw e.g. 1/2/1/2] [soft e.g. 400-150-60]
//
// Observability switches (see DESIGN.md "Observability"):
//   SOFTRES_TRACE_RATE=0.01   trace ~1% of dynamic requests tier-by-tier and
//                             print the per-tier latency breakdown
//   SOFTRES_TRACE_JSON=f.json additionally write the traced requests as
//                             Chrome trace_event JSON (Perfetto-loadable)
//   SOFTRES_PROFILE=1         self-profile the trial (DESIGN.md §11) and
//                             print the top subsystems by exclusive cycles

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "exp/config.h"
#include "exp/experiment.h"
#include "metrics/table.h"
#include "obs/profiler.h"
#include "obs/trace.h"

using namespace softres;

int main(int argc, char** argv) {
  const std::size_t users =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6000;
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = argc > 2 ? exp::HardwareConfig::parse(argv[2])
                    : exp::HardwareConfig{1, 2, 1, 2};
  const exp::SoftConfig soft = argc > 3 ? exp::SoftConfig::parse(argv[3])
                                        : exp::SoftConfig{400, 150, 60};

  exp::Experiment experiment(cfg, exp::ExperimentOptions::from_env());
  std::cout << "Running " << cfg.hw.to_string() << " with soft allocation "
            << soft.to_string() << " at workload " << users << " users...\n";
  const exp::RunResult r = experiment.run(soft, users);

  std::cout << "\nThroughput: " << metrics::Table::fmt(r.throughput, 1)
            << " req/s\n";
  for (double thr : {0.5, 1.0, 2.0}) {
    const auto s = r.sla(thr);
    std::cout << "  goodput @" << thr << "s SLA: "
              << metrics::Table::fmt(s.goodput, 1) << " req/s  (badput "
              << metrics::Table::fmt(s.badput, 1) << ")\n";
  }
  std::cout << "  mean RT: " << metrics::Table::fmt(
                   r.response_times.mean() * 1000.0, 1)
            << " ms   p95: "
            << metrics::Table::fmt(r.response_times.quantile(0.95) * 1000.0, 1)
            << " ms\n\n";

  metrics::Table cpu_table({"node", "cpu%", "gc%"});
  for (const auto& c : r.cpus) {
    cpu_table.add_row({c.name, metrics::Table::fmt(c.util_pct, 1),
                       metrics::Table::fmt(c.gc_util_pct, 1)});
  }
  cpu_table.print(std::cout);

  std::cout << '\n';
  metrics::Table pool_table({"pool", "cap", "util%", "wait_ms", "saturated"});
  for (const auto& p : r.pools) {
    pool_table.add_row({p.name, std::to_string(p.capacity),
                        metrics::Table::fmt(p.util_pct, 1),
                        metrics::Table::fmt(p.mean_wait_ms, 2),
                        p.saturated ? "yes" : "no"});
  }
  pool_table.print(std::cout);

  std::cout << '\n';
  metrics::Table srv_table({"server", "tp", "rt_ms", "avg_jobs"});
  for (const auto& s : r.servers) {
    srv_table.add_row({s.name, metrics::Table::fmt(s.throughput, 1),
                       metrics::Table::fmt(s.mean_rt_s * 1000.0, 2),
                       metrics::Table::fmt(s.avg_jobs, 1)});
  }
  srv_table.print(std::cout);

  std::cout << "\nGC seconds in window: tomcat="
            << metrics::Table::fmt(r.tomcat_gc_seconds, 1)
            << "  cjdbc=" << metrics::Table::fmt(r.cjdbc_gc_seconds, 1)
            << "\n";

  if (r.profile.enabled) {
    std::cout << "\n" << obs::one_line_profile_summary(r.profile) << "\n";
  }

  if (r.traces.size() > 0) {
    std::cout << "\nTraced " << r.traces.size()
              << " requests (SOFTRES_TRACE_RATE="
              << experiment.options().trace_sample_rate() << "):\n";
    r.traces.breakdown().print(std::cout);
    if (const char* path = std::getenv("SOFTRES_TRACE_JSON")) {
      std::ofstream os(path);
      if (os) {
        r.traces.write_chrome_trace(os);
        std::cout << "[trace] wrote " << path
                  << " (load in Perfetto / chrome://tracing)\n";
      } else {
        std::cerr << "[trace] cannot open " << path << "\n";
        return 1;
      }
    }
  }
  return 0;
}
