// Autotune: run the paper's three-procedure soft-resource allocation
// algorithm (Section IV, Algorithm 1) against a simulated hardware
// configuration and print the Table-I style report.
//
// Usage: autotune [hw e.g. 1/2/1/2] [slo_threshold_s]

#include <cstdlib>
#include <iostream>

#include "core/allocation.h"
#include "exp/config.h"
#include "exp/runner_adapter.h"
#include "metrics/table.h"

using namespace softres;

int main(int argc, char** argv) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = argc > 1 ? exp::HardwareConfig::parse(argv[1])
                    : exp::HardwareConfig{1, 2, 1, 2};
  const double slo = argc > 2 ? std::atof(argv[2]) : 1.0;

  exp::Experiment experiment(cfg, exp::ExperimentOptions::from_env());
  exp::RunnerAdapter runner(experiment, slo);

  core::AlgorithmConfig acfg;
  core::AllocationAlgorithm algorithm(runner, acfg);

  std::cout << "Tuning soft resources for hardware " << cfg.hw.to_string()
            << " (SLO threshold " << slo << " s)\n\n";

  const core::AllocationReport report = algorithm.run();

  std::cout << "status: " << core::to_string(report.status) << "\n";
  std::cout << "experiments run: " << report.experiments_run << "\n";
  std::cout << "critical resource: " << report.critical.critical_resource
            << "  (tier " << core::tier_name(report.critical.critical_tier)
            << ", exposed with allocation "
            << report.critical.reserve.to_string() << ")\n";
  std::cout << "saturation workload: " << report.min_jobs.saturation_workload
            << " users  (throughput "
            << metrics::Table::fmt(report.min_jobs.saturation_throughput, 1)
            << " req/s)\n";
  std::cout << "critical server: RTT = "
            << metrics::Table::fmt(report.min_jobs.critical_rtt_s * 1000.0, 2)
            << " ms, TP = "
            << metrics::Table::fmt(report.min_jobs.critical_throughput, 1)
            << " req/s  ->  min concurrent jobs = "
            << report.min_jobs.min_jobs << "\n";
  std::cout << "Req_ratio (queries/request): "
            << metrics::Table::fmt(report.req_ratio, 2) << "\n\n";

  metrics::Table table(
      {"tier", "servers", "RTT_ms", "TP", "avg_jobs", "pool/server",
       "pool_total"});
  for (const auto& row : report.rows) {
    table.add_row({core::tier_name(row.tier), std::to_string(row.servers),
                   metrics::Table::fmt(row.rtt_s * 1000.0, 2),
                   metrics::Table::fmt(row.throughput, 1),
                   metrics::Table::fmt(row.avg_jobs, 1),
                   std::to_string(row.pool_per_server),
                   std::to_string(row.pool_total)});
  }
  table.print(std::cout);

  std::cout << "\nrecommended soft allocation (#Wt-#At-#Ac): "
            << report.recommended.to_string() << "\n";
  return report.status == core::AlgorithmStatus::kOk ? 0 : 1;
}
