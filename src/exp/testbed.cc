#include "exp/testbed.h"

#include <cassert>

#include "obs/probes.h"
#include "support/prof.h"

namespace softres::exp {

Testbed::Testbed(RunContext& ctx, const TestbedConfig& cfg,
                 const workload::ClientConfig& client_cfg)
    : ctx_(&ctx), cfg_(cfg), workload_(cfg.mix, cfg.demands) {
  build(client_cfg);
}

Testbed::Testbed(const TestbedConfig& cfg,
                 const workload::ClientConfig& client_cfg)
    : owned_ctx_(std::make_unique<RunContext>(client_cfg.seed, cfg,
                                              client_cfg.users)),
      ctx_(owned_ctx_.get()), cfg_(cfg), workload_(cfg.mix, cfg.demands) {
  build(client_cfg);
}

void Testbed::build(const workload::ClientConfig& client_cfg) {
  // A fresh context makes this a no-op; re-wiring a second testbed onto a
  // reused context must start from zeroed metric values (histogram sums and
  // counts would otherwise leak across trials).
  ctx_->reset_metrics();
  sim::Simulator& sim = ctx_->simulator();
  sim::Rng& rng = ctx_->rng();
  obs::Registry& registry = ctx_->registry();
  auto add_link = [&](const std::string& name) -> hw::Link& {
    links_.push_back(std::make_unique<hw::Link>(
        sim, name, cfg_.link_latency_s, cfg_.link_bandwidth_Bps));
    return *links_.back();
  };
  hw::Link& client_up = add_link("client->web");
  hw::Link& client_down = add_link("web->client");
  hw::Link& web_app_up = add_link("web->app");
  hw::Link& web_app_down = add_link("app->web");
  hw::Link& app_cm_up = add_link("app->cm");
  hw::Link& app_cm_down = add_link("cm->app");
  hw::Link& cm_db_up = add_link("cm->db");
  hw::Link& cm_db_down = add_link("db->cm");

  // Database tier.
  for (int i = 0; i < cfg_.hw.db; ++i) {
    hw::Node& node = add_node("mysql" + std::to_string(i));
    mysqls_.push_back(std::make_unique<tier::MySqlServer>(
        sim, node.name(), node, rng.split()));
  }

  // Clustering middleware tier; MySQL servers are partitioned round-robin
  // when more than one middleware node is provisioned.
  for (int i = 0; i < cfg_.hw.middleware; ++i) {
    hw::Node& node = add_node("cjdbc" + std::to_string(i));
    cjdbcs_.push_back(std::make_unique<tier::CJdbcServer>(
        sim, node.name(), node, cfg_.cjdbc_jvm, cm_db_up, cm_db_down,
        cfg_.cjdbc_alloc_per_query_mb));
  }
  for (std::size_t i = 0; i < mysqls_.size(); ++i) {
    cjdbcs_[i % cjdbcs_.size()]->add_backend(*mysqls_[i]);
  }

  // Application tier. Each Tomcat talks to one middleware server.
  for (int i = 0; i < cfg_.hw.app; ++i) {
    hw::Node& node = add_node("tomcat" + std::to_string(i));
    tier::CJdbcServer& cm = *cjdbcs_[static_cast<std::size_t>(i) %
                                     cjdbcs_.size()];
    tomcats_.push_back(std::make_unique<tier::TomcatServer>(
        sim, node.name(), node, cfg_.tomcat_jvm, cfg_.soft.tomcat_threads,
        cfg_.soft.db_connections, cm, app_cm_up, app_cm_down,
        cfg_.tomcat_alloc_per_request_mb));
  }
  // One Tomcat DB connection = one C-JDBC thread (and one MySQL thread).
  sync_cjdbc_upstreams();

  // Client farm precedes the web tier so Apache can observe client load.
  farm_ = std::make_unique<workload::ClientFarm>(sim, workload_, client_cfg,
                                                 client_up,
                                                 &ctx_->requests());

  // Web tier.
  for (int i = 0; i < cfg_.hw.web; ++i) {
    hw::Node& node = add_node("apache" + std::to_string(i));
    net::TcpModel tcp(cfg_.tcp, rng.split());
    workload::ClientFarm* farm = farm_.get();
    apaches_.push_back(std::make_unique<tier::ApacheServer>(
        sim, node.name(), node, cfg_.soft.apache_threads, web_app_up,
        web_app_down, client_down, std::move(tcp),
        [farm] { return farm->client_load(); }));
    for (auto& t : tomcats_) apaches_.back()->add_tomcat(*t);
    farm_->add_target(*apaches_.back());
  }

  // Uniform soft-resource surface: every tier registers its live-resizable
  // pools (and tier-local consistency hooks) through the one virtual hook;
  // controllers (AdaptiveTuner, core::Governor) only ever see this set.
  // Registration order — web, app, middleware, db — is deterministic.
  for (auto& a : apaches_) a->register_soft_resources(pool_set_);
  for (auto& t : tomcats_) t->register_soft_resources(pool_set_);
  for (auto& c : cjdbcs_) c->register_soft_resources(pool_set_);
  for (auto& m : mysqls_) m->register_soft_resources(pool_set_);
  // Cross-tier consistency only the testbed can express: each C-JDBC JVM's
  // thread count tracks the summed connection-pool capacities of the Tomcats
  // mapped to it (one Tomcat DB connection = one C-JDBC thread).
  pool_set_.add_post_resize_hook([this] { sync_cjdbc_upstreams(); });

  // Multi-tenant pool sharing (opt-in): arbiters are built only when the
  // trial context carries an enabled SharePolicy AND the client config names
  // tenants. One arbiter per pool, in pool_set_ entry order, each seeded
  // from the same declared shares — credit/quota state is per-resource.
  const soft::SharePolicy& share_policy = ctx_->partition_policy();
  if (share_policy.enabled() && !client_cfg.tenants.empty()) {
    std::vector<soft::TenantShare> shares;
    shares.reserve(client_cfg.tenants.size());
    for (const auto& t : client_cfg.tenants) {
      shares.push_back(
          soft::TenantShare{t.name, t.entitlement, t.reported_demand});
    }
    for (const auto& entry : pool_set_.entries()) {
      arbiters_.push_back(
          std::make_unique<soft::TenantArbiter>(share_policy, shares));
      entry.pool->set_arbiter(arbiters_.back().get());
    }
  }

  // Unified observability: every probe family registers on the one Registry;
  // the SysStat-equivalent sampler polls it at 1 s granularity. Registry
  // aliases keep the historical dotted series names ("tomcat0.threads.util",
  // "apache0.processed", ...) resolvable through Sampler::find_series.
  sampler_ = std::make_unique<sim::Sampler>(sim, 1.0);
  for (auto& node : nodes_) {
    obs::register_cpu_util(registry, *node);
  }
  for (auto& t : tomcats_) {
    obs::register_gc_util(registry, t->name(), t->node().cpu());
    obs::register_pool(registry, t->thread_pool());
    obs::register_pool(registry, t->connection_pool());
    obs::register_server_ops(registry, *t);
  }
  for (auto& c : cjdbcs_) {
    obs::register_gc_util(registry, c->name(), c->node().cpu());
    obs::register_server_ops(registry, *c);
  }
  for (auto& m : mysqls_) {
    obs::register_server_ops(registry, *m);
  }
  for (auto& a : apaches_) {
    obs::register_pool(registry, a->worker_pool());
    obs::register_apache_timeline(registry, *a);
    obs::register_server_ops(registry, *a);
  }
  farm_->bind_registry(registry);
  // Per-(pool, tenant) occupancy share of a partitioned trial: the series
  // the noisy-neighbour detector implicates tenants from.
  for (std::size_t pi = 0; pi < arbiters_.size(); ++pi) {
    const soft::Pool* pool = pool_set_.entries()[pi].pool;
    const soft::TenantArbiter* arb = arbiters_[pi].get();
    for (std::size_t t = 0; t < arb->tenants(); ++t) {
      const std::string& tname = arb->tenant(t).name;
      registry.gauge_fn(
          "pool_tenant_share_pct",
          [pool, t](sim::SimTime) {
            const std::size_t cap = pool->capacity();
            if (cap == 0) return 0.0;
            return 100.0 * static_cast<double>(pool->tenant_in_use(t)) /
                   static_cast<double>(cap);
          },
          {{"pool", pool->name()}, {"tenant", tname}},
          "Share of a pool's capacity held by one tenant, in percent",
          pool->name() + "." + tname + ".share");
    }
  }
  registry.attach(*sampler_);

  // Arbiter credit accounting (Karma epochs) rides the sampler so ticks are
  // part of the deterministic event order. Runs before "obs.diagnosis" —
  // probes evaluate in registration order — and its series is the total
  // outstanding credit balance, a useful fairness trace in itself.
  if (!arbiters_.empty()) {
    sampler_->add_probe("soft.partition", [this](sim::SimTime now) {
      double credits = 0.0;
      for (std::size_t pi = 0; pi < arbiters_.size(); ++pi) {
        soft::TenantArbiter& arb = *arbiters_[pi];
        arb.tick(now, *pool_set_.entries()[pi].pool);
        for (std::size_t t = 0; t < arb.tenants(); ++t) {
          credits += arb.credits(t);
        }
      }
      return credits;
    });
  }

  // Streaming diagnosis: ring-buffer the families the paper's pathologies
  // live in, tick them from the sampler, and run the detectors right after
  // each tick (probes evaluate in registration order). The analysis window
  // is the measurement window, so ramp transients cannot fire a pathology.
  timeline_ = std::make_unique<obs::Timeline>(registry);
  for (const char* family :
       {"cpu_util_pct", "gc_util_pct", "pool_util_pct", "pool_waiting",
        "pool_capacity", "server_throughput", "apache_threads_active",
        "apache_threads_connecting", "tenant_goodput", "tenant_badput",
        "tenant_active_users", "pool_tenant_share_pct"}) {
    timeline_->track_family(family);
  }
  timeline_->attach(*sampler_);
  diagnoser_ = std::make_unique<obs::Diagnoser>(*timeline_);
  diagnoser_->set_analysis_window(farm_->measure_start(),
                                  farm_->measure_end());
  obs::Diagnoser* diag = diagnoser_.get();
  sampler_->add_probe("obs.diagnosis", [diag](sim::SimTime now) {
    diag->observe(now);
    return static_cast<double>(diag->active_detectors());
  });

  // Closed-loop governor (opt-in via the trial context). The probe runs
  // after "obs.diagnosis" — probes evaluate in registration order — so each
  // tick consumes the diagnosis of the same sampling instant. The callback
  // captures only `this` (fits InlineFunction's buffer) and is a pure
  // function of sim state, keeping governed trials bit-identical across
  // sweep workers.
  const core::GovernorConfig& gov_cfg = ctx_->governor_config();
  if (gov_cfg.enabled) {
    governor_ = std::make_unique<core::Governor>(gov_cfg, pool_set_);
    for (const auto& node : nodes_) {
      if (node->name().rfind("apache", 0) == 0) continue;  // web stalls != CPU
      governor_busy_.push_back(GovernorNodeBusy{node.get(), 0.0});
    }
    sampler_->add_probe("core.governor", [this](sim::SimTime now) {
      return governor_tick(now);
    });
  }
}

void Testbed::sync_cjdbc_upstreams() {
  for (std::size_t c = 0; c < cjdbcs_.size(); ++c) {
    std::size_t conns = 0;
    for (std::size_t i = c; i < tomcats_.size(); i += cjdbcs_.size()) {
      conns += tomcats_[i]->connection_pool().capacity();
    }
    cjdbcs_[c]->set_upstream_connections(conns);
  }
}

double Testbed::governor_tick(sim::SimTime now) {
  // Hottest backend CPU over the last tick: the growth-guard input. Same
  // busy-core differentiation the AdaptiveTuner uses for its guard.
  const double dt = now - governor_prev_tick_;
  governor_prev_tick_ = now;
  double max_cpu_pct = 0.0;
  for (auto& nb : governor_busy_) {
    const double busy = nb.node->cpu().busy_core_seconds();
    if (dt > 0.0) {
      const double util =
          100.0 * (busy - nb.prev_busy) /
          (static_cast<double>(nb.node->cpu().cores()) * dt);
      if (util > max_cpu_pct) max_cpu_pct = util;
    }
    nb.prev_busy = busy;
  }

  // Translate the diagnoser's live suggestion into core vocabulary (core
  // cannot depend on obs; cf. DiagnosisHint).
  core::GovernorAdvice advice;
  const obs::SuggestedAction hint = diagnoser_->diagnosis().suggested_action;
  if (hint.kind == obs::SuggestedAction::Kind::kGrowPool) {
    advice.kind = core::GovernorAdvice::Kind::kGrow;
    advice.resource = hint.resource;
  } else if (hint.kind == obs::SuggestedAction::Kind::kShrinkPool) {
    advice.kind = core::GovernorAdvice::Kind::kShrink;
    advice.resource = hint.resource;
  }
  return static_cast<double>(governor_->tick(now, max_cpu_pct, advice));
}

hw::Node& Testbed::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<hw::Node>(ctx_->simulator(), name,
                                              cfg_.node, ctx_->rng().split()));
  return *nodes_.back();
}

void Testbed::on_measure_start() {
  SOFTRES_PROF_PHASE(kMeasure);
  for (auto& a : apaches_) {
    a->reset_window_stats();
    a->worker_pool().reset_stats(simulator().now());
  }
  for (auto& t : tomcats_) {
    t->reset_window_stats();
    t->thread_pool().reset_stats(simulator().now());
    t->connection_pool().reset_stats(simulator().now());
    gc_baseline_[&t->jvm()] = t->jvm().total_gc_seconds();
  }
  for (auto& c : cjdbcs_) {
    c->reset_window_stats();
    gc_baseline_[&c->jvm()] = c->jvm().total_gc_seconds();
  }
  for (auto& m : mysqls_) m->reset_window_stats();
}

void Testbed::on_measure_end() {
  SOFTRES_PROF_PHASE(kRampDown);
  for (auto& t : tomcats_) {
    gc_at_end_[&t->jvm()] = t->jvm().total_gc_seconds();
  }
  for (auto& c : cjdbcs_) {
    gc_at_end_[&c->jvm()] = c->jvm().total_gc_seconds();
  }
}

double Testbed::window_gc_seconds(const jvm::Jvm& j) const {
  const auto it = gc_baseline_.find(&j);
  const double base = it != gc_baseline_.end() ? it->second : 0.0;
  const auto end_it = gc_at_end_.find(&j);
  const double end = end_it != gc_at_end_.end() ? end_it->second
                                                : j.total_gc_seconds();
  return end - base;
}

void Testbed::run() {
  // Phase transitions ride the trial's own schedule: everything before this
  // call is kSetup, the measurement-window events below advance further.
  SOFTRES_PROF_PHASE(kRampUp);
  sampler_->start();
  farm_->start();
  simulator().schedule_at(farm_->measure_start(), [this] { on_measure_start(); });
  simulator().schedule_at(farm_->measure_end(), [this] { on_measure_end(); });
  simulator().run_until(farm_->total_duration());
}

}  // namespace softres::exp
