#pragma once

#include <cstddef>
#include <cstdint>

#include "core/governor.h"
#include "exp/config.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "soft/partition.h"
#include "tier/request.h"

namespace softres::exp {

/// Everything one trial owns: the discrete-event engine, the root RNG stream,
/// the metrics registry and the trace collector. One RunContext per trial is
/// what makes trials embarrassingly parallel — no ambient or shared mutable
/// state survives between, or is visible across, trials.
///
/// The trial seed is derived by hashing (base_seed, topology, soft config,
/// users) with sim::Rng::hash_mix, *never* from run order, so a trial draws
/// the same random stream whether it runs first, last, alone, or on any of N
/// worker threads. Serial and parallel sweeps are therefore bit-identical.
class RunContext {
 public:
  /// Derives the trial seed from the trial's identity. `cfg.hw` and
  /// `cfg.soft` must already hold the trial's values. `governor` configures
  /// the optional closed-loop controller the testbed builds for this trial;
  /// it is deliberately NOT part of the seed — a governed trial replays the
  /// ungoverned trial's random streams, so goodput differences are pure
  /// control-policy effects. `partition` (the pool-sharing policy of a
  /// multi-tenant trial) stays out of the seed for the same reason: the
  /// tenant_sweep strategy comparison must replay identical arrivals.
  RunContext(std::uint64_t base_seed, const TestbedConfig& cfg,
             std::size_t users, core::GovernorConfig governor = {},
             soft::SharePolicy partition = {});

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Order-independent seed: a hash_mix chain over the base seed, the
  /// #W/#A/#C/#D topology, the #Wt-#At-#Ac soft allocation and the user
  /// count. Changing any one component yields an unrelated stream.
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   const HardwareConfig& hw,
                                   const SoftConfig& soft, std::size_t users);

  std::uint64_t base_seed() const { return base_seed_; }
  std::uint64_t trial_seed() const { return trial_seed_; }
  std::size_t users() const { return users_; }

  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// Root RNG of the trial; subsystems derive independent streams via
  /// split(). Seeded from trial_seed().
  sim::Rng& rng() { return rng_; }

  /// Governor settings for this trial ({.enabled = false} by default).
  const core::GovernorConfig& governor_config() const { return governor_; }

  /// Pool-sharing policy for this trial (strategy kNone by default; the
  /// testbed only builds arbiters when it is enabled AND the client config
  /// names tenants).
  const soft::SharePolicy& partition_policy() const { return partition_; }

  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

  /// Zero every metric value, histogram sum/count and bucket in the registry
  /// while keeping registrations, pull sources and dotted aliases. Testbed
  /// wiring calls this at build time: on a fresh context it is a no-op, but
  /// re-wiring a second testbed onto a reused context must not inherit the
  /// previous trial's histogram accumulations.
  void reset_metrics() { registry_.reset_values(); }

  obs::TraceCollector& traces() { return traces_; }
  const obs::TraceCollector& traces() const { return traces_; }

  /// Per-trial Request pool; the client farm allocates every request from
  /// here. Owned by the trial context for the same reason as the simulator:
  /// no allocator state shared across trials.
  tier::RequestArena& requests() { return arena_; }

 private:
  std::uint64_t base_seed_ = 0;
  std::uint64_t trial_seed_ = 0;
  std::size_t users_ = 0;
  core::GovernorConfig governor_;
  soft::SharePolicy partition_;
  // Declared before sim_ (so destroyed after it): pending events hold
  // RequestPtr captures whose destructors hand requests back to the arena.
  tier::RequestArena arena_;
  sim::Simulator sim_;
  sim::Rng rng_;
  obs::Registry registry_;
  obs::TraceCollector traces_;
};

}  // namespace softres::exp
