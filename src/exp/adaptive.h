#pragma once

#include <string>
#include <vector>

#include "exp/testbed.h"
#include "sim/sim_time.h"
#include "sim/stats.h"

namespace softres::exp {

/// Controller tunables for runtime soft-resource adaptation.
struct AdaptiveConfig {
  /// Pool demand is sampled at this cadence.
  sim::SimTime sample_interval_s = 1.0;
  /// Pool capacities are re-evaluated at this cadence.
  sim::SimTime control_interval_s = 15.0;
  /// Capacity = ceil(margin * observed concurrency demand). The margin plays
  /// the role of the paper's buffering headroom (Section III-C): enough slack
  /// to absorb bursts, not so much that idle units tax the JVM.
  double margin = 1.3;
  /// Extra headroom for the front (web) tier, whose workers stall on FIN
  /// waits rather than CPU.
  double web_margin = 1.6;
  std::size_t min_pool = 4;
  std::size_t max_pool = 512;
  /// Ignore capacity changes smaller than this fraction (hysteresis).
  double deadband = 0.15;
  /// Block pool *growth* while back-end hardware is saturated for at least
  /// this fraction of the interval: once a CPU is pegged, extra concurrency
  /// only inflates response times (the paper's over-allocation trap).
  double saturation_guard_fraction = 0.5;
};

/// Online soft-resource controller — the adaptive counterpart to Algorithm 1
/// that the paper positions against adaptive hardware provisioning [4][5].
///
/// Every control interval it estimates each pool's concurrency demand as the
/// time-average of (in use + waiting) — Little's L of the pool's customers,
/// measured rather than modelled — and resizes the pool to margin * L.
/// Under-allocation shows up as waiters and grows the pool (fixing the
/// Section III-A starvation); over-allocation shows up as idle units and
/// shrinks it (fixing the Section III-B JVM tax). JVM live-thread counts are
/// kept in sync so the GC model sees the new allocation.
class AdaptiveTuner {
 public:
  AdaptiveTuner(Testbed& bed, AdaptiveConfig config = {});

  /// Begin sampling and controlling; call before Testbed::run(). The tuner
  /// registers its own observability ("tuner_resizes_total" plus a
  /// per-tracked-pool target gauge) on the testbed's registry.
  void start();

  struct Action {
    sim::SimTime time = 0.0;
    std::string pool;
    std::size_t from = 0;
    std::size_t to = 0;
  };
  const std::vector<Action>& actions() const { return actions_; }

  /// Optional hint channel: when set (typically to &bed.diagnoser()), each
  /// control interval consults the diagnoser's suggested action. A kGrowPool
  /// hint naming a tracked pool overrides the saturation guard for that pool
  /// (the diagnoser already established the hardware is idle); a kShrinkPool
  /// hint drops the pool's headroom to 1.0 for the interval, so idle units
  /// taxing the JVM are released faster. `diagnoser` must outlive the tuner.
  void set_hint_source(const obs::Diagnoser* diagnoser) {
    hint_source_ = diagnoser;
  }

  /// Hints that actually changed a control decision (observability for
  /// tests and demos).
  std::size_t hints_applied() const { return hints_applied_; }

  const AdaptiveConfig& config() const { return config_; }

 private:
  struct Tracked {
    soft::Pool* pool = nullptr;
    double headroom = 1.0;  // margin multiplier for this pool
    sim::Welford demand;    // samples of in_use + waiting
    double last_target = 0.0;  // exported via tuner_target{pool=...}
  };

  void sample();
  void control();
  void resize(Tracked& tracked, bool allow_growth, double headroom_override);
  void sync_jvm_threads();
  bool backend_saturated_since_last_sample();

  Testbed& bed_;
  AdaptiveConfig config_;
  const obs::Diagnoser* hint_source_ = nullptr;
  std::size_t hints_applied_ = 0;
  std::vector<Tracked> tracked_;
  obs::Counter resizes_;
  std::vector<Action> actions_;
  std::size_t samples_in_interval_ = 0;
  std::size_t saturated_samples_ = 0;
  struct NodeBusy {
    const hw::Node* node = nullptr;
    double prev_busy = 0.0;
  };
  std::vector<NodeBusy> node_busy_;
  sim::SimTime prev_sample_time_ = 0.0;
};

}  // namespace softres::exp
