#include "exp/run_context.h"

namespace softres::exp {

std::uint64_t RunContext::derive_seed(std::uint64_t base_seed,
                                      const HardwareConfig& hw,
                                      const SoftConfig& soft,
                                      std::size_t users) {
  // Chain the stateless SplitMix64 finalizer over every identity component.
  // hash_mix(seed, value) is order-sensitive in its accumulator, so the
  // chain is injective enough for experiment-scale key spaces while staying
  // independent of any RNG stream's draw order.
  std::uint64_t h = sim::Rng::hash_mix(base_seed, 0x536F6674526573ull);  // tag
  h = sim::Rng::hash_mix(h, static_cast<std::uint64_t>(hw.web));
  h = sim::Rng::hash_mix(h, static_cast<std::uint64_t>(hw.app));
  h = sim::Rng::hash_mix(h, static_cast<std::uint64_t>(hw.middleware));
  h = sim::Rng::hash_mix(h, static_cast<std::uint64_t>(hw.db));
  h = sim::Rng::hash_mix(h, soft.apache_threads);
  h = sim::Rng::hash_mix(h, soft.tomcat_threads);
  h = sim::Rng::hash_mix(h, soft.db_connections);
  h = sim::Rng::hash_mix(h, users);
  return h;
}

RunContext::RunContext(std::uint64_t base_seed, const TestbedConfig& cfg,
                       std::size_t users, core::GovernorConfig governor,
                       soft::SharePolicy partition)
    : base_seed_(base_seed),
      trial_seed_(derive_seed(base_seed, cfg.hw, cfg.soft, users)),
      users_(users),
      governor_(governor),
      partition_(partition),
      rng_(trial_seed_) {}

}  // namespace softres::exp
