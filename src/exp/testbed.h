#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/governor.h"
#include "exp/config.h"
#include "exp/run_context.h"
#include "hw/link.h"
#include "hw/node.h"
#include "obs/diagnoser.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "sim/sampler.h"
#include "sim/simulator.h"
#include "soft/partition.h"
#include "soft/pool_set.h"
#include "tier/apache.h"
#include "tier/cjdbc.h"
#include "tier/mysql.h"
#include "tier/tomcat.h"
#include "workload/client_farm.h"
#include "workload/rubbos.h"

namespace softres::exp {

/// One fully wired instance of the simulated Emulab deployment: dedicated
/// node per server, tier links, SysStat-style sampler, RUBBoS client farm.
/// Construct, `run()`, then read the metrics. A Testbed is single-use — a new
/// experiment trial builds a fresh one, exactly like redeploying the rig.
class Testbed {
 public:
  /// Wire the rig onto an externally owned trial context: the testbed draws
  /// all randomness from ctx.rng(), schedules on ctx.simulator() and
  /// registers every probe on ctx.registry(). `ctx` must outlive the
  /// testbed. This is the constructor Experiment::run uses — one RunContext
  /// per trial is what makes trials safe to run on concurrent threads.
  Testbed(RunContext& ctx, const TestbedConfig& cfg,
          const workload::ClientConfig& client_cfg);

  /// Convenience for standalone use (examples, microbenchmarks): builds and
  /// owns a RunContext whose trial seed is derived from
  /// (client_cfg.seed, cfg.hw, cfg.soft, client_cfg.users).
  Testbed(const TestbedConfig& cfg, const workload::ClientConfig& client_cfg);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Execute the whole trial (ramp-up, runtime, ramp-down).
  void run();

  /// The trial context this testbed is wired onto.
  RunContext& context() { return *ctx_; }
  const RunContext& context() const { return *ctx_; }

  sim::Simulator& simulator() { return ctx_->simulator(); }
  sim::Sampler& sampler() { return *sampler_; }
  const sim::Sampler& sampler() const { return *sampler_; }
  /// Unified metrics registry: every probe of every tier, the client farm and
  /// any runtime tuner registers here; the sampler polls it at 1 Hz.
  obs::Registry& registry() { return ctx_->registry(); }
  const obs::Registry& registry() const { return ctx_->registry(); }
  /// Windowed time-series store over the key registry families, ticked by
  /// the sampler; the diagnoser's detectors run right after each tick.
  obs::Timeline& timeline() { return *timeline_; }
  const obs::Timeline& timeline() const { return *timeline_; }
  /// Online pathology diagnoser; diagnosis() is the trial's verdict.
  obs::Diagnoser& diagnoser() { return *diagnoser_; }
  const obs::Diagnoser& diagnoser() const { return *diagnoser_; }
  workload::ClientFarm& farm() { return *farm_; }
  const workload::ClientFarm& farm() const { return *farm_; }
  /// Every live-resizable pool in the rig, registered by the tiers through
  /// the uniform Server::register_soft_resources hook at build time, with
  /// the cross-tier consistency hooks (JVM thread sync, C-JDBC upstream
  /// connection counts) attached. Controllers operate on this.
  soft::ResizablePoolSet& pool_set() { return pool_set_; }
  const soft::ResizablePoolSet& pool_set() const { return pool_set_; }
  /// The closed-loop governor, when the trial context enables one.
  const core::Governor* governor() const { return governor_.get(); }
  /// Tenant arbiters attached to the pools of a multi-tenant trial, in
  /// pool_set() entry order (empty otherwise). Each pool owns its own
  /// arbiter because credit/quota state is per-resource, not global.
  const std::vector<std::unique_ptr<soft::TenantArbiter>>& arbiters() const {
    return arbiters_;
  }
  const workload::RubbosWorkload& workload() const { return workload_; }
  const TestbedConfig& config() const { return cfg_; }

  const std::vector<std::unique_ptr<tier::ApacheServer>>& apaches() const {
    return apaches_;
  }
  const std::vector<std::unique_ptr<tier::TomcatServer>>& tomcats() const {
    return tomcats_;
  }
  const std::vector<std::unique_ptr<tier::CJdbcServer>>& cjdbcs() const {
    return cjdbcs_;
  }
  const std::vector<std::unique_ptr<tier::MySqlServer>>& mysqls() const {
    return mysqls_;
  }
  std::vector<std::unique_ptr<tier::ApacheServer>>& apaches() {
    return apaches_;
  }
  std::vector<std::unique_ptr<tier::TomcatServer>>& tomcats() {
    return tomcats_;
  }
  std::vector<std::unique_ptr<tier::CJdbcServer>>& cjdbcs() {
    return cjdbcs_;
  }
  std::vector<std::unique_ptr<tier::MySqlServer>>& mysqls() {
    return mysqls_;
  }

  const std::vector<std::unique_ptr<hw::Node>>& nodes() const {
    return nodes_;
  }

  /// GC seconds spent by a JVM inside the measurement window (valid after
  /// run()).
  double window_gc_seconds(const jvm::Jvm& j) const;

  sim::SimTime measure_start() const { return farm_->measure_start(); }
  sim::SimTime measure_end() const { return farm_->measure_end(); }

 private:
  void build(const workload::ClientConfig& client_cfg);
  hw::Node& add_node(const std::string& name);
  void on_measure_start();
  void on_measure_end();
  void sync_cjdbc_upstreams();
  double governor_tick(sim::SimTime now);

  std::unique_ptr<RunContext> owned_ctx_;  // only for the standalone ctor
  RunContext* ctx_ = nullptr;
  TestbedConfig cfg_;
  workload::RubbosWorkload workload_;

  std::vector<std::unique_ptr<hw::Node>> nodes_;
  std::vector<std::unique_ptr<hw::Link>> links_;
  std::vector<std::unique_ptr<tier::MySqlServer>> mysqls_;
  std::vector<std::unique_ptr<tier::CJdbcServer>> cjdbcs_;
  std::vector<std::unique_ptr<tier::TomcatServer>> tomcats_;
  std::vector<std::unique_ptr<tier::ApacheServer>> apaches_;
  std::unique_ptr<workload::ClientFarm> farm_;
  std::unique_ptr<sim::Sampler> sampler_;
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<obs::Diagnoser> diagnoser_;

  soft::ResizablePoolSet pool_set_;
  // One arbiter per pool_set_ entry when the trial is multi-tenant; the
  // raw pool pointers inside the entries stay the owners of the pools.
  std::vector<std::unique_ptr<soft::TenantArbiter>> arbiters_;
  std::unique_ptr<core::Governor> governor_;
  // Backend (non-web) CPU busy baselines for the governor's growth guard.
  struct GovernorNodeBusy {
    const hw::Node* node = nullptr;
    double prev_busy = 0.0;
  };
  std::vector<GovernorNodeBusy> governor_busy_;
  sim::SimTime governor_prev_tick_ = 0.0;

  std::map<const jvm::Jvm*, double> gc_baseline_;
  std::map<const jvm::Jvm*, double> gc_at_end_;
};

}  // namespace softres::exp
