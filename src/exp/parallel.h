#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace softres::exp {

/// Fixed-size worker pool for embarrassingly parallel trial execution.
///
/// Sweeps are tens of independent trials; this pool fans them out across the
/// machine. Results come back in input order and the first (input-ordered)
/// exception is rethrown from run_all once every job has finished, so a
/// failing trial can never leave detached work referencing caller state.
///
/// Size resolution: an explicit `jobs` wins; otherwise SOFTRES_JOBS from the
/// environment; otherwise std::thread::hardware_concurrency(). With one job
/// the pool spawns no threads at all and runs everything inline on the
/// caller — the serial degradation used by the determinism regression tests.
///
/// Correct results do not depend on the pool size in any way: trial RNG
/// streams are derived from trial identity (exp::RunContext), never from
/// scheduling order.
class ParallelExecutor {
 public:
  /// jobs == 0 resolves via SOFTRES_JOBS / hardware_concurrency().
  explicit ParallelExecutor(std::size_t jobs = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// SOFTRES_JOBS if set to a positive integer, else
  /// hardware_concurrency() (>= 1).
  static std::size_t default_jobs();

  /// Run one job asynchronously (inline when jobs() == 1, which makes the
  /// returned future already ready).
  template <typename Fn, typename T = std::invoke_result_t<Fn&>>
  std::future<T> submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<T()>>(std::move(fn));
    std::future<T> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Run every job, block until all have finished, and return their results
  /// in input order. If any job threw, rethrows the first exception in input
  /// order — but only after every job has completed, so no job can outlive
  /// the call.
  template <typename Fn, typename T = std::invoke_result_t<Fn&>>
  std::vector<T> run_all(std::vector<Fn> tasks) {
    std::vector<std::future<T>> futures;
    futures.reserve(tasks.size());
    for (auto& t : tasks) futures.push_back(submit(std::move(t)));
    for (auto& f : futures) f.wait();
    std::vector<T> out;
    out.reserve(futures.size());
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

  /// Index-space variant: fn(0..n-1), results in index order.
  template <typename Fn, typename T = std::invoke_result_t<Fn&, std::size_t>>
  std::vector<T> run_indexed(std::size_t n, Fn fn) {
    std::vector<std::function<T()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([fn, i] { return fn(i); });
    }
    return run_all(std::move(tasks));
  }

 private:
  void post(std::function<void()> job);
  void worker_loop();

  std::size_t jobs_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace softres::exp
