#include "exp/sweep.h"

#include <algorithm>

namespace softres::exp {

std::vector<std::size_t> workload_range(std::size_t lo, std::size_t hi,
                                        std::size_t step) {
  std::vector<std::size_t> out;
  for (std::size_t u = lo; u <= hi; u += step) out.push_back(u);
  return out;
}

std::vector<RunResult> sweep_workload(const Experiment& exp,
                                      const SoftConfig& soft,
                                      const std::vector<std::size_t>& users) {
  std::vector<RunResult> out;
  out.reserve(users.size());
  for (std::size_t u : users) out.push_back(exp.run(soft, u));
  return out;
}

double max_throughput(const std::vector<RunResult>& results) {
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.throughput);
  return best;
}

double max_goodput(const std::vector<RunResult>& results, double threshold_s) {
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.goodput(threshold_s));
  return best;
}

}  // namespace softres::exp
