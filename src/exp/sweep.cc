#include "exp/sweep.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "exp/parallel.h"
#include "metrics/sla.h"

namespace softres::exp {

std::vector<std::size_t> workload_range(std::size_t lo, std::size_t hi,
                                        std::size_t step) {
  std::vector<std::size_t> out;
  for (std::size_t u = lo; u <= hi; u += step) out.push_back(u);
  return out;
}

std::vector<RunResult> sweep_workload(const Experiment& exp,
                                      const SoftConfig& soft,
                                      const std::vector<std::size_t>& users,
                                      std::size_t jobs) {
  // A fresh executor per sweep keeps the function free of global state (and
  // lets SOFTRES_JOBS changes take effect per call); thread start-up is
  // noise next to even the cheapest trial.
  ParallelExecutor pool(jobs);
  return pool.run_indexed(users.size(), [&](std::size_t i) {
    return exp.run(soft, users[i]);
  });
}

std::vector<std::vector<RunResult>> sweep_grid(
    const Experiment& exp, const std::vector<SoftConfig>& softs,
    const std::vector<std::size_t>& users, std::size_t jobs) {
  const std::size_t cols = users.size();
  ParallelExecutor pool(jobs);
  std::vector<RunResult> flat =
      pool.run_indexed(softs.size() * cols, [&](std::size_t i) {
        return exp.run(softs[i / cols], users[i % cols]);
      });
  std::vector<std::vector<RunResult>> out;
  out.reserve(softs.size());
  for (std::size_t s = 0; s < softs.size(); ++s) {
    out.emplace_back(std::make_move_iterator(flat.begin() + s * cols),
                     std::make_move_iterator(flat.begin() + (s + 1) * cols));
  }
  return out;
}

double max_throughput(const std::vector<RunResult>& results) {
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.throughput);
  return best;
}

double max_goodput(const std::vector<RunResult>& results, double threshold_s) {
  double best = 0.0;
  for (const auto& r : results) best = std::max(best, r.goodput(threshold_s));
  return best;
}

GovernedComparison governed_sweep(const Experiment& exp,
                                  const std::vector<SoftConfig>& softs,
                                  std::size_t users, const SoftConfig& start,
                                  const core::GovernorConfig& governor,
                                  std::size_t jobs) {
  GovernedComparison out;
  out.sla_threshold_s = exp.options().sla_threshold_s;

  // Static side: the same scenario under every candidate fixed allocation,
  // with the governor forced off so the grid answers Algorithm 1's question.
  ExperimentOptions static_opts = exp.options();
  static_opts.governor.enabled = false;
  const Experiment static_exp(exp.base_config(), static_opts);
  std::vector<std::vector<RunResult>> grid =
      sweep_grid(static_exp, softs, {users}, jobs);
  bool first = true;
  for (std::size_t s = 0; s < grid.size(); ++s) {
    RunResult& r = grid[s][0];
    const double g = r.goodput(out.sla_threshold_s);
    if (first || g > out.best_static_goodput) {
      out.best_static_goodput = g;
      out.best_static_soft = softs[s];
      out.best_static = std::move(r);
      first = false;
    }
  }

  // Governed side: one trial from `start`, resizing live.
  ExperimentOptions gov_opts = exp.options();
  gov_opts.governor = governor;
  gov_opts.governor.enabled = true;
  const Experiment gov_exp(exp.base_config(), gov_opts);
  out.governed = gov_exp.run(start, users);
  out.governed_goodput = out.governed.goodput(out.sla_threshold_s);
  return out;
}

const TenantStrategyOutcome* TenantSweepReport::find(
    soft::ShareStrategy s) const {
  for (const TenantStrategyOutcome& o : outcomes) {
    if (o.strategy == s) return &o;
  }
  return nullptr;
}

TenantSweepReport tenant_sweep(const Experiment& exp, const SoftConfig& soft,
                               const TenantScenario& scenario,
                               const std::vector<soft::ShareStrategy>& strategies,
                               std::size_t jobs) {
  // Every variant runs the same tenant population, so the same total user
  // count — and therefore the same trial seed and identical arrivals. Only
  // the share policy and the reported demand differ, neither of which is
  // part of the seed derivation.
  std::size_t total_users = 0;
  for (const workload::TenantSpec& t : scenario.tenants) {
    total_users += t.users;
  }

  auto run_variant = [&](soft::ShareStrategy s, bool greedy) {
    ExperimentOptions opts = exp.options();
    opts.client.tenants = scenario.tenants;
    if (greedy) {
      opts.client.tenants[scenario.greedy_tenant].reported_demand *=
          scenario.misreport_factor;
    }
    opts.partition = scenario.base_policy;
    opts.partition.strategy = s;
    const Experiment variant(exp.base_config(), opts);
    return variant.run(soft, total_users);
  };

  // One flat batch: honest and greedy runs of every strategy fan out
  // together (index 2s = honest, 2s+1 = greedy).
  ParallelExecutor pool(jobs);
  std::vector<RunResult> flat =
      pool.run_indexed(2 * strategies.size(), [&](std::size_t i) {
        return run_variant(strategies[i / 2], (i % 2) == 1);
      });

  TenantSweepReport report;
  const std::string& greedy_name =
      scenario.tenants[scenario.greedy_tenant].name;
  auto tenant_goodputs = [](const RunResult& r) {
    std::vector<double> g;
    g.reserve(r.tenants.size());
    for (const TenantStat& t : r.tenants) g.push_back(t.goodput);
    return g;
  };
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    TenantStrategyOutcome o;
    o.strategy = strategies[s];
    o.honest = std::move(flat[2 * s]);
    o.greedy = std::move(flat[2 * s + 1]);
    o.honest_jain = metrics::jain_fairness(tenant_goodputs(o.honest));
    o.greedy_jain = metrics::jain_fairness(tenant_goodputs(o.greedy));
    if (const TenantStat* t = o.honest.find_tenant(greedy_name)) {
      o.honest_goodput = t->goodput;
    }
    if (const TenantStat* t = o.greedy.find_tenant(greedy_name)) {
      o.greedy_goodput = t->goodput;
    }
    report.outcomes.push_back(std::move(o));
  }
  return report;
}

std::vector<PathologyOnset> pathology_onsets(
    const std::vector<RunResult>& results) {
  std::vector<PathologyOnset> out;
  // Scan in ascending-workload order so the first sighting is the onset.
  std::vector<const RunResult*> ordered;
  ordered.reserve(results.size());
  for (const auto& r : results) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunResult* a, const RunResult* b) {
                     return a->users < b->users;
                   });
  for (const RunResult* r : ordered) {
    const obs::Pathology p = r->diagnosis.pathology;
    if (p == obs::Pathology::kNone) continue;
    PathologyOnset* entry = nullptr;
    for (PathologyOnset& o : out) {
      if (o.pathology == p) entry = &o;
    }
    if (entry == nullptr) {
      out.push_back(PathologyOnset{p, r->users, 0, 0.0});
      entry = &out.back();
    }
    ++entry->trials;
    entry->peak_confidence =
        std::max(entry->peak_confidence, r->diagnosis.confidence);
  }
  return out;
}

}  // namespace softres::exp
