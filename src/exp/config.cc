#include "exp/config.h"

#include <charconv>
#include <stdexcept>
#include <vector>

namespace softres::exp {
namespace {

std::vector<long> parse_numbers(const std::string& text, char sep,
                                std::size_t expected, const char* what) {
  std::vector<long> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(sep, pos);
    const std::string_view token(text.data() + pos,
                                 (next == std::string::npos ? text.size()
                                                            : next) -
                                     pos);
    long value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() || value < 0) {
      throw std::invalid_argument(std::string("malformed ") + what + ": '" +
                                  text + "'");
    }
    out.push_back(value);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (out.size() != expected) {
    throw std::invalid_argument(std::string("expected ") +
                                std::to_string(expected) + " fields in " +
                                what + ": '" + text + "'");
  }
  return out;
}

}  // namespace

HardwareConfig HardwareConfig::parse(const std::string& text) {
  const auto v = parse_numbers(text, '/', 4, "hardware config");
  HardwareConfig hw;
  hw.web = static_cast<int>(v[0]);
  hw.app = static_cast<int>(v[1]);
  hw.middleware = static_cast<int>(v[2]);
  hw.db = static_cast<int>(v[3]);
  if (hw.web < 1 || hw.app < 1 || hw.middleware < 1 || hw.db < 1) {
    throw std::invalid_argument("hardware config needs >=1 node per tier: '" +
                                text + "'");
  }
  return hw;
}

std::string HardwareConfig::to_string() const {
  return std::to_string(web) + "/" + std::to_string(app) + "/" +
         std::to_string(middleware) + "/" + std::to_string(db);
}

SoftConfig SoftConfig::parse(const std::string& text) {
  const auto v = parse_numbers(text, '-', 3, "soft config");
  SoftConfig s;
  s.apache_threads = static_cast<std::size_t>(v[0]);
  s.tomcat_threads = static_cast<std::size_t>(v[1]);
  s.db_connections = static_cast<std::size_t>(v[2]);
  if (s.apache_threads == 0 || s.tomcat_threads == 0 ||
      s.db_connections == 0) {
    throw std::invalid_argument("soft config needs >=1 unit per pool: '" +
                                text + "'");
  }
  return s;
}

std::string SoftConfig::to_string() const {
  return std::to_string(apache_threads) + "-" +
         std::to_string(tomcat_threads) + "-" +
         std::to_string(db_connections);
}

TestbedConfig TestbedConfig::defaults() {
  TestbedConfig cfg;
  cfg.node.cores = 1;  // one 3 GHz Xeon per PC3000 node
  cfg.node.memory_mb = 2048.0;
  // Tomcat JVMs see far less allocation pressure than the C-JDBC JVM, which
  // funnels every query of every application server.
  cfg.tomcat_jvm.young_gen_mb = 64.0;
  cfg.cjdbc_jvm.young_gen_mb = 48.0;
  // Calibrated so 800 middleware threads (4 x 200 connections) cost ~10 % of
  // the C-JDBC CPU in GC at full load, against ~1 % for 4 x 10 connections,
  // matching the paper's Fig 5(c) ratio.
  cfg.cjdbc_jvm.pause_per_thread_s = 1.2e-5;
  return cfg;
}

}  // namespace softres::exp
