#include "exp/runner_adapter.h"

namespace softres::exp {
namespace {

core::Tier tier_of_server(const std::string& name) {
  if (name.rfind("apache", 0) == 0) return core::Tier::kWeb;
  if (name.rfind("tomcat", 0) == 0) return core::Tier::kApp;
  if (name.rfind("cjdbc", 0) == 0) return core::Tier::kMiddleware;
  return core::Tier::kDb;
}

}  // namespace

RunnerAdapter::RunnerAdapter(Experiment experiment, double slo_threshold_s)
    : experiment_(std::move(experiment)), slo_threshold_s_(slo_threshold_s) {}

SoftConfig RunnerAdapter::to_soft_config(const core::Allocation& alloc) {
  SoftConfig soft;
  soft.apache_threads = alloc.web_threads;
  soft.tomcat_threads = alloc.app_threads;
  soft.db_connections = alloc.app_connections;
  return soft;
}

core::Observation RunnerAdapter::to_observation(const RunResult& result,
                                                double slo_threshold_s) {
  core::Observation obs;
  obs.workload = result.users;
  obs.throughput = result.throughput;
  obs.goodput = result.goodput(slo_threshold_s);
  obs.slo_satisfaction =
      result.throughput > 0.0 ? obs.goodput / result.throughput : 1.0;
  obs.req_ratio = result.req_ratio;
  for (const auto& c : result.cpus) {
    obs.hardware.push_back({c.name, c.util_pct, c.saturated});
  }
  for (const auto& p : result.pools) {
    obs.soft.push_back({p.name, p.capacity, p.util_pct, p.saturated});
  }
  for (const auto& s : result.servers) {
    core::ServerObservation srv;
    srv.tier = tier_of_server(s.name);
    srv.name = s.name;
    srv.throughput = s.throughput;
    srv.mean_rt_s = s.mean_rt_s;
    srv.avg_jobs = s.avg_jobs;
    obs.servers.push_back(std::move(srv));
  }
  return obs;
}

core::Observation RunnerAdapter::run(const core::Allocation& alloc,
                                     std::size_t workload) {
  ++runs_;
  const RunResult result = experiment_.run(to_soft_config(alloc), workload);
  return to_observation(result, slo_threshold_s_);
}

}  // namespace softres::exp
