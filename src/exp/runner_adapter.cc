#include "exp/runner_adapter.h"

namespace softres::exp {
namespace {

core::Tier tier_of_server(const std::string& name) {
  if (name.rfind("apache", 0) == 0) return core::Tier::kWeb;
  if (name.rfind("tomcat", 0) == 0) return core::Tier::kApp;
  if (name.rfind("cjdbc", 0) == 0) return core::Tier::kMiddleware;
  return core::Tier::kDb;
}

}  // namespace

RunnerAdapter::RunnerAdapter(Experiment experiment, double slo_threshold_s,
                             std::size_t jobs)
    : experiment_(std::move(experiment)),
      slo_threshold_s_(slo_threshold_s),
      jobs_(jobs != 0 ? jobs : ParallelExecutor::default_jobs()) {}

SoftConfig RunnerAdapter::to_soft_config(const core::Allocation& alloc) {
  SoftConfig soft;
  soft.apache_threads = alloc.web_threads;
  soft.tomcat_threads = alloc.app_threads;
  soft.db_connections = alloc.app_connections;
  return soft;
}

core::Observation RunnerAdapter::to_observation(const RunResult& result,
                                                double slo_threshold_s) {
  core::Observation obs;
  obs.workload = result.users;
  obs.throughput = result.throughput;
  obs.goodput = result.goodput(slo_threshold_s);
  obs.slo_satisfaction =
      result.throughput > 0.0 ? obs.goodput / result.throughput : 1.0;
  obs.req_ratio = result.req_ratio;
  for (const auto& c : result.cpus) {
    obs.hardware.push_back({c.name, c.util_pct, c.saturated});
  }
  for (const auto& p : result.pools) {
    obs.soft.push_back({p.name, p.capacity, p.util_pct, p.saturated});
  }
  for (const auto& s : result.servers) {
    core::ServerObservation srv;
    srv.tier = tier_of_server(s.name);
    srv.name = s.name;
    srv.throughput = s.throughput;
    srv.mean_rt_s = s.mean_rt_s;
    srv.avg_jobs = s.avg_jobs;
    obs.servers.push_back(std::move(srv));
  }
  return obs;
}

core::Observation RunnerAdapter::run(const core::Allocation& alloc,
                                     std::size_t workload) {
  ++runs_;
  const RunResult result = experiment_.run(to_soft_config(alloc), workload);
  return to_observation(result, slo_threshold_s_);
}

std::vector<core::Observation> RunnerAdapter::run_batch(
    const core::Allocation& alloc, const std::vector<std::size_t>& workloads) {
  runs_ += workloads.size();
  const SoftConfig soft = to_soft_config(alloc);
  ParallelExecutor pool(jobs_);
  return pool.run_indexed(workloads.size(), [&](std::size_t i) {
    return to_observation(experiment_.run(soft, workloads[i]),
                          slo_threshold_s_);
  });
}

std::size_t RunnerAdapter::preferred_batch() const { return jobs_; }

}  // namespace softres::exp
