#pragma once

#include "core/runner.h"
#include "exp/experiment.h"

namespace softres::exp {

/// Bridges the substrate-agnostic allocation algorithm (core) onto the
/// simulated testbed: every core::ExperimentRunner::run becomes one full
/// simulated trial.
class RunnerAdapter final : public core::ExperimentRunner {
 public:
  /// `slo_threshold_s` defines the satisfaction metric the intervention
  /// analysis watches (the paper uses 1-2 s).
  RunnerAdapter(Experiment experiment, double slo_threshold_s);

  core::Observation run(const core::Allocation& alloc,
                        std::size_t workload) override;

  /// Translate between the two config vocabularies.
  static SoftConfig to_soft_config(const core::Allocation& alloc);
  static core::Observation to_observation(const RunResult& result,
                                          double slo_threshold_s);

  std::size_t runs() const { return runs_; }

 private:
  Experiment experiment_;
  double slo_threshold_s_;
  std::size_t runs_ = 0;
};

}  // namespace softres::exp
