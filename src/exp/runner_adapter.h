#pragma once

#include "core/runner.h"
#include "exp/experiment.h"
#include "exp/parallel.h"

namespace softres::exp {

/// Bridges the substrate-agnostic allocation algorithm (core) onto the
/// simulated testbed: every core::ExperimentRunner::run becomes one full
/// simulated trial.
class RunnerAdapter final : public core::ExperimentRunner {
 public:
  /// `slo_threshold_s` defines the satisfaction metric the intervention
  /// analysis watches (the paper uses 1-2 s). `jobs` sizes the trial
  /// executor batches run on (0 = SOFTRES_JOBS / hardware_concurrency,
  /// 1 = serial).
  RunnerAdapter(Experiment experiment, double slo_threshold_s,
                std::size_t jobs = 0);

  core::Observation run(const core::Allocation& alloc,
                        std::size_t workload) override;

  /// Independent simulated trials fan out across the executor; results are
  /// identical to the serial loop because trial seeds derive from trial
  /// identity (see Experiment::run), which is exactly the contract
  /// core::ExperimentRunner::run_batch demands.
  std::vector<core::Observation> run_batch(
      const core::Allocation& alloc,
      const std::vector<std::size_t>& workloads) override;

  /// Ramp look-ahead worth one executor round.
  std::size_t preferred_batch() const override;

  /// Translate between the two config vocabularies.
  static SoftConfig to_soft_config(const core::Allocation& alloc);
  static core::Observation to_observation(const RunResult& result,
                                          double slo_threshold_s);

  /// Simulated trials actually executed, speculative look-ahead included
  /// (AllocationAlgorithm::experiments_run counts consumed observations).
  std::size_t runs() const { return runs_; }

 private:
  Experiment experiment_;
  double slo_threshold_s_;
  std::size_t jobs_;
  std::size_t runs_ = 0;
};

}  // namespace softres::exp
