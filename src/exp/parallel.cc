#include "exp/parallel.h"

#include <cstdlib>

namespace softres::exp {

std::size_t ParallelExecutor::default_jobs() {
  if (const char* env = std::getenv("SOFTRES_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc >= 1 ? hc : 1;
}

ParallelExecutor::ParallelExecutor(std::size_t jobs)
    : jobs_(jobs != 0 ? jobs : default_jobs()) {
  if (jobs_ < 2) return;  // serial mode: no threads, post() runs inline
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::post(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // jobs() == 1: run on the caller, in submission order
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ParallelExecutor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions are captured in the future
  }
}

}  // namespace softres::exp
