#include "exp/adaptive.h"

#include <algorithm>
#include <cmath>

namespace softres::exp {

AdaptiveTuner::AdaptiveTuner(Testbed& bed, AdaptiveConfig config)
    : bed_(bed), config_(config) {
  // The testbed's uniform pool registry replaces the old per-tier accessor
  // walk; role decides headroom (web workers stall on FIN waits, not CPU).
  for (const auto& e : bed_.pool_set().entries()) {
    const double headroom = e.role == soft::PoolRole::kWebWorkers
                                ? config_.web_margin
                                : config_.margin;
    tracked_.push_back(Tracked{e.pool, headroom, {}});
  }
  for (const auto& node : bed_.nodes()) {
    if (node->name().rfind("apache", 0) == 0) continue;  // web stalls != CPU
    node_busy_.push_back(NodeBusy{node.get(), 0.0});
  }
}

void AdaptiveTuner::start() {
  obs::Registry& registry = bed_.registry();
  resizes_ = registry.counter("tuner_resizes_total", {},
                              "Pool capacity changes applied by the tuner");
  for (auto& t : tracked_) {
    Tracked* tp = &t;
    registry.gauge_fn(
        "tuner_target",
        [tp](sim::SimTime) { return tp->last_target; },
        {{"pool", t.pool->name()}},
        "Most recent capacity target computed for this pool",
        t.pool->name() + ".tuner_target");
  }
  bed_.simulator().schedule(config_.sample_interval_s, [this] { sample(); });
  bed_.simulator().schedule(config_.control_interval_s, [this] { control(); });
}

bool AdaptiveTuner::backend_saturated_since_last_sample() {
  const sim::SimTime now = bed_.simulator().now();
  const double dt = now - prev_sample_time_;
  prev_sample_time_ = now;
  bool saturated = false;
  for (auto& nb : node_busy_) {
    const double busy = nb.node->cpu().busy_core_seconds();
    if (dt > 0.0) {
      const double util = (busy - nb.prev_busy) /
                          (static_cast<double>(nb.node->cpu().cores()) * dt);
      if (util >= 0.95) saturated = true;
    }
    nb.prev_busy = busy;
  }
  return saturated;
}

void AdaptiveTuner::sample() {
  for (auto& t : tracked_) {
    t.demand.add(static_cast<double>(t.pool->in_use() + t.pool->waiting()));
  }
  ++samples_in_interval_;
  if (backend_saturated_since_last_sample()) ++saturated_samples_;
  bed_.simulator().schedule(config_.sample_interval_s, [this] { sample(); });
}

void AdaptiveTuner::control() {
  const bool allow_growth =
      samples_in_interval_ == 0 ||
      static_cast<double>(saturated_samples_) <
          config_.saturation_guard_fraction *
              static_cast<double>(samples_in_interval_);
  // Consult the diagnoser's hint once per interval: its verdict rests on the
  // whole timeline, not just this interval's samples.
  obs::SuggestedAction hint;
  std::vector<std::string> implicated;
  if (hint_source_ != nullptr) {
    const obs::Diagnosis diag = hint_source_->diagnosis();
    hint = diag.suggested_action;
    implicated = diag.implicated_resources;
  }
  for (auto& t : tracked_) {
    bool grow = allow_growth;
    double headroom = t.headroom;
    const bool named =
        std::find(implicated.begin(), implicated.end(), t.pool->name()) !=
            implicated.end() ||
        hint.resource == t.pool->name();
    if (named && hint.kind == obs::SuggestedAction::Kind::kGrowPool) {
      // The diagnoser established the hardware idles below this pool
      // (Section III-A), so the saturation guard does not apply to it.
      if (!grow) ++hints_applied_;
      grow = true;
    } else if (named && hint.kind == obs::SuggestedAction::Kind::kShrinkPool) {
      // Over-allocation verdict: stop paying the idle-unit JVM tax.
      ++hints_applied_;
      headroom = 1.0;
    }
    resize(t, grow, headroom);
    t.demand.reset();
  }
  samples_in_interval_ = 0;
  saturated_samples_ = 0;
  sync_jvm_threads();
  bed_.simulator().schedule(config_.control_interval_s, [this] { control(); });
}

void AdaptiveTuner::resize(Tracked& tracked, bool allow_growth,
                           double headroom_override) {
  if (tracked.demand.count() == 0) return;
  const double target_raw = headroom_override * tracked.demand.mean();
  auto target = std::clamp(
      static_cast<std::size_t>(std::ceil(target_raw)), config_.min_pool,
      config_.max_pool);
  tracked.last_target = static_cast<double>(target);
  const auto current = tracked.pool->capacity();
  if (!allow_growth && target > current) return;
  const double change =
      std::abs(static_cast<double>(target) - static_cast<double>(current)) /
      static_cast<double>(std::max<std::size_t>(current, 1));
  if (change < config_.deadband) return;
  actions_.push_back(Action{bed_.simulator().now(), tracked.pool->name(),
                            current, target});
  resizes_.inc();
  tracked.pool->set_capacity(target);
}

void AdaptiveTuner::sync_jvm_threads() {
  // Idle soft resources cost heap and GC work whether used or not; the GC
  // model must see the adapted allocation, not the initial one. The tiers
  // registered the actual sync logic (JVM live threads, C-JDBC upstream
  // connection counts) as post-resize hooks alongside their pools.
  bed_.pool_set().run_hooks();
}

}  // namespace softres::exp
