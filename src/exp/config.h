#pragma once

#include <cstddef>
#include <string>

#include "hw/node.h"
#include "jvm/jvm.h"
#include "net/tcp.h"
#include "workload/rubbos.h"

namespace softres::exp {

/// Hardware provisioning in the paper's #W/#A/#C/#D notation: web servers,
/// application servers, clustering-middleware servers, database servers.
struct HardwareConfig {
  int web = 1;
  int app = 2;
  int middleware = 1;
  int db = 2;

  /// Parse "1/2/1/2"; throws std::invalid_argument on malformed input.
  static HardwareConfig parse(const std::string& text);
  std::string to_string() const;

  bool operator==(const HardwareConfig&) const = default;
};

/// Soft resource allocation in the paper's #Wt-#At-#Ac notation: Apache
/// thread pool size, per-Tomcat thread pool size, per-Tomcat DB connection
/// pool size. (The paper's figure labels compress trailing zeros; we always
/// spell the full values, e.g. the practitioners' choice "4-15-6" is
/// 400-150-60 here.)
struct SoftConfig {
  std::size_t apache_threads = 400;
  std::size_t tomcat_threads = 150;
  std::size_t db_connections = 60;

  /// Parse "400-150-60"; throws std::invalid_argument on malformed input.
  static SoftConfig parse(const std::string& text);
  std::string to_string() const;

  bool operator==(const SoftConfig&) const = default;
};

/// Everything needed to instantiate the simulated testbed apart from the
/// workload intensity: hardware plan, node spec, per-process JVM configs,
/// client TCP behaviour and RUBBoS demand calibration.
struct TestbedConfig {
  HardwareConfig hw;
  SoftConfig soft;

  hw::NodeSpec node;  // every tier runs the same PC3000-class node
  jvm::JvmConfig tomcat_jvm;
  jvm::JvmConfig cjdbc_jvm;
  net::TcpConfig tcp;
  workload::Mix mix = workload::Mix::kBrowseOnly;
  workload::DemandProfile demands;

  /// Heap churn: MB allocated per servlet request (Tomcat) / per SQL query
  /// (C-JDBC). Together with JvmConfig::young_gen_mb this sets GC frequency.
  double tomcat_alloc_per_request_mb = 0.06;
  double cjdbc_alloc_per_query_mb = 0.04;

  double link_latency_s = 0.0001;
  double link_bandwidth_Bps = 125.0e6;  // 1 Gbps

  /// Returns the paper's default testbed (1 core per node, calibrated JVMs).
  static TestbedConfig defaults();
};

}  // namespace softres::exp
