#pragma once

#include <cstddef>
#include <vector>

#include "exp/experiment.h"

namespace softres::exp {

/// Inclusive arithmetic range of workloads (user counts).
std::vector<std::size_t> workload_range(std::size_t lo, std::size_t hi,
                                        std::size_t step);

/// Run one soft allocation across a workload range.
std::vector<RunResult> sweep_workload(const Experiment& exp,
                                      const SoftConfig& soft,
                                      const std::vector<std::size_t>& users);

/// Highest throughput across a sweep (the y-value of Fig 10).
double max_throughput(const std::vector<RunResult>& results);

/// Highest goodput at a threshold across a sweep.
double max_goodput(const std::vector<RunResult>& results, double threshold_s);

}  // namespace softres::exp
