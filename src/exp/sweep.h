#pragma once

#include <cstddef>
#include <vector>

#include "exp/experiment.h"

namespace softres::exp {

/// Inclusive arithmetic range of workloads (user counts).
std::vector<std::size_t> workload_range(std::size_t lo, std::size_t hi,
                                        std::size_t step);

/// Run one soft allocation across a workload range.
///
/// Trials fan out over a ParallelExecutor sized by `jobs` (0 = SOFTRES_JOBS
/// env / hardware_concurrency; 1 = strictly serial on the caller). Results
/// keep the input order and are bit-identical for every pool size: each
/// trial's RNG streams are derived from (base seed, topology, soft, users),
/// never from execution order.
std::vector<RunResult> sweep_workload(const Experiment& exp,
                                      const SoftConfig& soft,
                                      const std::vector<std::size_t>& users,
                                      std::size_t jobs = 0);

/// Run a grid of soft allocations across a workload range: result[s][u] is
/// softs[s] at users[u]. The whole grid is one flat batch on the executor,
/// so parallelism spans both axes (a 4-config x 6-workload grid keeps 24
/// cores busy, not 6).
std::vector<std::vector<RunResult>> sweep_grid(
    const Experiment& exp, const std::vector<SoftConfig>& softs,
    const std::vector<std::size_t>& users, std::size_t jobs = 0);

/// Highest throughput across a sweep (the y-value of Fig 10).
double max_throughput(const std::vector<RunResult>& results);

/// Highest goodput at a threshold across a sweep.
double max_goodput(const std::vector<RunResult>& results, double threshold_s);

/// Where along a workload sweep a pathology first appears — the "onset
/// workload" of Figs 4/5/7 (e.g. the 6-thread allocation starves from 5800
/// users on). One entry per pathology observed across the sweep.
struct PathologyOnset {
  obs::Pathology pathology = obs::Pathology::kNone;
  std::size_t onset_users = 0;  // lowest user count whose verdict matched
  std::size_t trials = 0;       // trials of the sweep with this verdict
  double peak_confidence = 0.0;
};

/// Aggregate the diagnoser verdicts of one workload sweep (one row of a
/// sweep_grid result). Entries appear in onset order; healthy (kNone)
/// verdicts are not listed.
std::vector<PathologyOnset> pathology_onsets(
    const std::vector<RunResult>& results);

/// Score the closed-loop governor against the best *static* allocation on
/// one scenario: the paper's Algorithm 1 question ("which fixed S is best?")
/// versus the governed answer ("resize S live"). See governed_sweep.
struct GovernedComparison {
  /// Best static trial by goodput (moved out of the grid).
  RunResult best_static;
  SoftConfig best_static_soft;
  double best_static_goodput = 0.0;
  /// The governed trial, started from `start` (its RunResult carries the
  /// governor action log).
  RunResult governed;
  double governed_goodput = 0.0;
  double sla_threshold_s = 2.0;
  /// governed_goodput - best_static_goodput (positive = governor wins).
  double advantage() const { return governed_goodput - best_static_goodput; }
};

/// Run the static grid (governor disabled) at `users`, pick the allocation
/// with the highest goodput at `exp`'s SLA threshold, then run one governed
/// trial starting from `start` with `governor` (enabled is forced on). All
/// static trials fan out over the executor; the comparison is deterministic
/// for any `jobs`.
GovernedComparison governed_sweep(const Experiment& exp,
                                  const std::vector<SoftConfig>& softs,
                                  std::size_t users, const SoftConfig& start,
                                  const core::GovernorConfig& governor,
                                  std::size_t jobs = 0);

/// One multi-tenant scenario for the fairness sweep: the tenant population
/// plus the demand-misreporting experiment's knobs. The greedy variant of a
/// strategy re-runs the identical trial with one tenant's reported demand
/// inflated by `misreport_factor` — arrivals are bit-identical (the share
/// policy is not part of the trial seed), so any goodput the greedy tenant
/// gains is purely what the strategy's weighting hands to a liar.
struct TenantScenario {
  std::vector<workload::TenantSpec> tenants;
  std::size_t greedy_tenant = 0;   // index into `tenants`
  double misreport_factor = 4.0;   // reported_demand multiplier when greedy
  soft::SharePolicy base_policy;   // epoch/cap knobs; strategy set per run
};

/// Honest-vs-greedy outcome of one sharing strategy.
struct TenantStrategyOutcome {
  soft::ShareStrategy strategy = soft::ShareStrategy::kNone;
  RunResult honest;
  RunResult greedy;
  /// Jain's fairness index over per-tenant goodput, honest / greedy runs.
  double honest_jain = 1.0;
  double greedy_jain = 1.0;
  /// The misreporting tenant's goodput in each run.
  double honest_goodput = 0.0;
  double greedy_goodput = 0.0;
  /// Goodput gain the misreporting tenant extracts, in percent of its honest
  /// goodput (0 when it had none). The strategy-proofness score: kKarma
  /// ignores reported demand entirely, so its gain is exactly zero.
  double greedy_gain_pct() const {
    return honest_goodput > 0.0
               ? 100.0 * (greedy_goodput - honest_goodput) / honest_goodput
               : 0.0;
  }
};

/// The fairness/Pareto report of `tenant_sweep`: one outcome per strategy,
/// in input order. The per-strategy (sum goodput, Jain index) pairs are the
/// goodput-fairness frontier; greedy_gain_pct is the misreporting column.
struct TenantSweepReport {
  std::vector<TenantStrategyOutcome> outcomes;
  const TenantStrategyOutcome* find(soft::ShareStrategy s) const;
};

/// Run `scenario` under every strategy, honest and greedy, as one flat batch
/// on the executor (2 x strategies trials). Deterministic for any `jobs`:
/// every variant replays identical arrivals, so the columns compare pure
/// policy effects.
TenantSweepReport tenant_sweep(const Experiment& exp, const SoftConfig& soft,
                               const TenantScenario& scenario,
                               const std::vector<soft::ShareStrategy>& strategies,
                               std::size_t jobs = 0);

}  // namespace softres::exp
