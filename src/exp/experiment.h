#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/testbed.h"
#include "metrics/sla.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "sim/sampler.h"
#include "sim/stats.h"
#include "workload/client_farm.h"

namespace softres::exp {

/// Trial durations and SLA policy. `from_env()` honours SOFTRES_FULL=1 by
/// switching to the paper's 8 min ramp-up / 12 min runtime schedule, and
/// SOFTRES_SEED=<n> as the base seed of the RunContext::derive_seed chain
/// (the one sanctioned way to re-seed benches and examples).
struct ExperimentOptions {
  workload::ClientConfig client;   // users is overridden per run
  double sla_threshold_s = 2.0;    // reporting default, as in the paper
  bool keep_series = true;         // retain all sampler series in the result

  /// Closed-loop soft-resource governor (disabled by default). When
  /// governor.enabled is set, every trial runs a core::Governor at sampler
  /// cadence that live-resizes the testbed's pools; RunResult::
  /// governor_actions carries the applied resizes.
  core::GovernorConfig governor;

  /// Pool-sharing policy of a multi-tenant trial (strategy kNone by
  /// default). Tenants themselves ride in client.tenants; arbiters are only
  /// built when both are set. Like the governor, the policy is not part of
  /// the trial-seed derivation, so strategies compare on identical arrivals.
  soft::SharePolicy partition;

  /// Opt-in self-profiling (DESIGN.md §11): each trial installs a
  /// prof::Ledger and RunResult::profile carries the snapshot. from_env()
  /// reads it from SOFTRES_PROFILE=1.
  bool profile = false;

  /// Single switch for tier-by-tier request tracing, plumbed into
  /// ClientConfig::trace_sample_rate (0 = off, the default; 1 = every dynamic
  /// request). from_env() reads it from SOFTRES_TRACE_RATE.
  double trace_sample_rate() const { return client.trace_sample_rate; }
  void set_trace_sample_rate(double rate) {
    client.trace_sample_rate = rate;
  }

  /// When non-empty, every trial writes a flight-recorder HTML report; the
  /// trial's soft allocation and workload are folded into the file name
  /// ("out.html" -> "out_s400-6-60_u6200.html"). from_env() reads it from
  /// SOFTRES_REPORT_HTML.
  std::string report_html;

  static ExperimentOptions from_env();
};

struct CpuStat {
  std::string name;
  double util_pct = 0.0;     // mean over the measurement window
  double gc_util_pct = 0.0;  // of which GC freezes
  bool saturated = false;    // util >= kCpuSaturationPct
};

struct PoolStat {
  std::string name;
  std::size_t capacity = 0;
  double util_pct = 0.0;     // mean occupancy over the window
  double mean_wait_ms = 0.0; // queueing delay to obtain a unit
  bool saturated = false;    // density-based rule (soft::is_saturated)
};

struct ServerOps {
  std::string name;
  double throughput = 0.0;  // completions/s in the window
  double mean_rt_s = 0.0;   // per-request residence time
  double avg_jobs = 0.0;    // time-averaged jobs inside (Little's L)
};

/// Per-tenant SLA accounting of a multi-tenant trial (RunResult::tenants;
/// empty for single-tenant runs). goodput/badput split the tenant's window
/// throughput at its own TenantSpec::sla_threshold_s.
struct TenantStat {
  std::string name;
  std::size_t users = 0;
  double sla_threshold_s = 2.0;
  double throughput = 0.0;  // interactions/s in the window
  double goodput = 0.0;     // of which met the tenant SLA
  double badput = 0.0;      // of which violated it
  double mean_rt_s = 0.0;
};

/// Everything one trial produces: the client-side SLA data plus the full
/// monitoring picture the allocation algorithm consumes.
struct RunResult {
  HardwareConfig hw;
  SoftConfig soft;
  std::size_t users = 0;
  double window_s = 0.0;
  /// Seed the trial's RNG streams were derived from: a pure function of
  /// (base seed, topology, soft config, users) — see RunContext::derive_seed.
  std::uint64_t trial_seed = 0;

  sim::SampleSet response_times;  // dynamic requests completed in-window
  double throughput = 0.0;        // interactions/s

  std::vector<CpuStat> cpus;
  std::vector<PoolStat> pools;
  std::vector<ServerOps> servers;
  double cjdbc_gc_seconds = 0.0;   // summed over middleware JVMs
  double tomcat_gc_seconds = 0.0;  // summed over app-server JVMs
  double req_ratio = 0.0;          // workload's queries per interaction

  std::vector<sim::TimeSeries> series;  // all sampler series (optional)

  /// End-of-trial registry snapshot (every probe, counter and histogram);
  /// export with obs::write_prometheus / obs::write_csv.
  obs::Snapshot metrics;
  /// Assembled span trees of the traced requests (empty unless
  /// trace_sample_rate > 0); traces.breakdown() is the Fig 9 analysis.
  obs::TraceCollector traces;
  /// The online diagnoser's verdict over the measurement window, with its
  /// evidence windows; diagnosis.to_hint() feeds core::detect_bottleneck.
  /// diagnosis.tail carries the request-level corroboration when traced.
  obs::Diagnosis diagnosis;
  /// Percentile-cohort blame summary of the traced requests (empty unless
  /// trace_sample_rate > 0). A pure function of the trial's traces, so part
  /// of the bit-identical-across-jobs determinism contract.
  obs::TailAttribution tail;
  /// Self-profiler snapshot (enabled=false unless ExperimentOptions::profile
  /// was set). The count axis is deterministic; the cycle axis is not.
  obs::ProfileSnapshot profile;
  /// Resizes applied by the closed-loop governor, in event order (empty for
  /// ungoverned trials). Part of the determinism contract: bit-identical
  /// across jobs=1 / jobs=N sweeps.
  std::vector<core::GovernorAction> governor_actions;
  /// Per-tenant SLA accounting, in tenant-declaration order (empty for
  /// single-tenant trials). Same determinism contract as everything above.
  std::vector<TenantStat> tenants;

  double goodput(double threshold_s) const;
  metrics::SlaSplit sla(double threshold_s) const;
  std::vector<std::string> saturated_hardware() const;
  std::vector<std::string> saturated_soft() const;
  const sim::TimeSeries* find_series(const std::string& name) const;
  const CpuStat* find_cpu(const std::string& name) const;
  const ServerOps* find_server(const std::string& name) const;
  const PoolStat* find_pool(const std::string& name) const;
  const TenantStat* find_tenant(const std::string& name) const;
};

inline constexpr double kCpuSaturationPct = 95.0;

/// Runs trials of one hardware configuration: builds a fresh Testbed per
/// (soft allocation, workload) point and condenses its monitoring output.
/// This is the RunExperiment(H, S, workload) primitive of Algorithm 1.
///
/// Thread-safety contract: `run` is const and re-entrant. Each call builds a
/// private RunContext (simulator, RNG, registry, trace collector) and a
/// fresh Testbed on top of it, touching no mutable Experiment state and no
/// globals, so any number of `run` calls may execute concurrently on one
/// Experiment — this is what ParallelExecutor-based sweeps rely on. Results
/// are independent of interleaving because each trial's RNG streams are
/// seeded from the trial's identity, never from run order.
class Experiment {
 public:
  Experiment(TestbedConfig base, ExperimentOptions opts);

  RunResult run(const SoftConfig& soft, std::size_t users) const;

  /// The seed `run(soft, users)` will derive its trial streams from.
  std::uint64_t trial_seed(const SoftConfig& soft, std::size_t users) const;

  const TestbedConfig& base_config() const { return base_; }
  const ExperimentOptions& options() const { return opts_; }

 private:
  TestbedConfig base_;
  ExperimentOptions opts_;
};

}  // namespace softres::exp
