#include "exp/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "exp/run_context.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "soft/pool_monitor.h"

namespace softres::exp {

ExperimentOptions ExperimentOptions::from_env() {
  ExperimentOptions opts;
  const char* full = std::getenv("SOFTRES_FULL");
  if (full != nullptr && full[0] == '1') {
    opts.client.ramp_up_s = 480.0;   // 8 minutes
    opts.client.runtime_s = 720.0;   // 12 minutes
    opts.client.ramp_down_s = 30.0;
  }
  if (const char* rate = std::getenv("SOFTRES_TRACE_RATE")) {
    opts.client.trace_sample_rate = std::atof(rate);
  }
  // Base seed of the seed-derivation chain: every trial stream hashes off
  // this via RunContext::derive_seed, so one env switch re-seeds every bench
  // and example without touching the per-trial identity hashing.
  if (const char* seed = std::getenv("SOFTRES_SEED")) {
    opts.client.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* report = std::getenv("SOFTRES_REPORT_HTML")) {
    opts.report_html = report;
  }
  if (const char* profile = std::getenv("SOFTRES_PROFILE")) {
    opts.profile = profile[0] == '1';
  }
  return opts;
}

double RunResult::goodput(double threshold_s) const {
  return sla(threshold_s).goodput;
}

metrics::SlaSplit RunResult::sla(double threshold_s) const {
  return metrics::SlaModel(threshold_s).split(response_times, window_s);
}

std::vector<std::string> RunResult::saturated_hardware() const {
  std::vector<std::string> out;
  for (const auto& c : cpus) {
    if (c.saturated) out.push_back(c.name);
  }
  return out;
}

std::vector<std::string> RunResult::saturated_soft() const {
  std::vector<std::string> out;
  for (const auto& p : pools) {
    if (p.saturated) out.push_back(p.name);
  }
  return out;
}

const sim::TimeSeries* RunResult::find_series(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CpuStat* RunResult::find_cpu(const std::string& name) const {
  for (const auto& c : cpus) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const ServerOps* RunResult::find_server(const std::string& name) const {
  for (const auto& s : servers) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const PoolStat* RunResult::find_pool(const std::string& name) const {
  for (const auto& p : pools) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const TenantStat* RunResult::find_tenant(const std::string& name) const {
  for (const auto& t : tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Experiment::Experiment(TestbedConfig base, ExperimentOptions opts)
    : base_(std::move(base)), opts_(std::move(opts)) {}

namespace {

CpuStat condense_cpu(const Testbed& bed, const std::string& node_name) {
  const sim::SimTime lo = bed.measure_start();
  const sim::SimTime hi = bed.measure_end();
  CpuStat stat;
  stat.name = node_name + ".cpu";
  const sim::TimeSeries* util = bed.sampler().find(stat.name);
  if (util != nullptr) stat.util_pct = util->mean_between(lo, hi);
  const sim::TimeSeries* gc = bed.sampler().find(node_name + ".gc");
  if (gc != nullptr) stat.gc_util_pct = gc->mean_between(lo, hi);
  stat.saturated = stat.util_pct >= kCpuSaturationPct;
  return stat;
}

PoolStat condense_pool(const Testbed& bed, const soft::Pool& pool,
                       const std::string& series_name) {
  const sim::SimTime lo = bed.measure_start();
  const sim::SimTime hi = bed.measure_end();
  PoolStat stat;
  stat.name = pool.name();
  stat.capacity = pool.capacity();
  stat.mean_wait_ms = 1000.0 * pool.mean_wait_time();
  const sim::TimeSeries* util = bed.sampler().find(series_name);
  if (util != nullptr) {
    stat.util_pct = util->mean_between(lo, hi);
    stat.saturated = soft::is_saturated(*util, lo, hi);
  }
  return stat;
}

ServerOps condense_server(const tier::Server& server) {
  ServerOps ops;
  ops.name = server.name();
  ops.throughput = server.window_throughput();
  ops.mean_rt_s = server.window_mean_rt();
  ops.avg_jobs = server.window_avg_jobs();
  return ops;
}

/// "out.html" + (400/6/60, 6200) -> "out_s400-6-60_u6200.html": one report
/// file per trial even when a sweep shares one SOFTRES_REPORT_HTML value.
std::string report_path(const std::string& base, const SoftConfig& soft,
                        std::size_t users) {
  std::string suffix = "_s" + std::to_string(soft.apache_threads) + "-" +
                       std::to_string(soft.tomcat_threads) + "-" +
                       std::to_string(soft.db_connections) + "_u" +
                       std::to_string(users);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + suffix + ".html";
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

}  // namespace

std::uint64_t Experiment::trial_seed(const SoftConfig& soft,
                                     std::size_t users) const {
  TestbedConfig cfg = base_;
  cfg.soft = soft;
  return RunContext::derive_seed(opts_.client.seed, cfg.hw, cfg.soft, users);
}

RunResult Experiment::run(const SoftConfig& soft, std::size_t users) const {
  TestbedConfig cfg = base_;
  cfg.soft = soft;
  workload::ClientConfig client = opts_.client;
  client.users = users;

  // Install the profiler ledger before the context is built so topology and
  // registry construction land in the kSetup phase; the testbed advances the
  // phase at its own (simulated-time) transitions. The ledger is installed
  // on *this* thread only, which is the thread that runs the whole trial —
  // parallel sweep workers each profile their own trials independently, so
  // the count axis stays bit-identical to a serial sweep.
  obs::Profiler profiler;
  std::optional<prof::InstallGuard> profile_guard;
  if (opts_.profile) profile_guard.emplace(&profiler.ledger());
  // Always reset the thread's phase marker: the bench allocation ledger
  // attributes by it whether or not a profiler ledger is installed.
  SOFTRES_PROF_PHASE(kSetup);

  // One trial = one context. The trial seed is a pure function of the
  // trial's identity, so sweeps can run these in any order — or in
  // parallel — and reproduce the serial results bit for bit. The client
  // farm's user streams and trace sampling hash off the same trial seed.
  RunContext ctx(opts_.client.seed, cfg, users, opts_.governor,
                 opts_.partition);
  client.seed = ctx.trial_seed();
  Testbed bed(ctx, cfg, client);
  bed.run();

  RunResult r;
  r.hw = cfg.hw;
  r.soft = soft;
  r.users = users;
  r.window_s = client.runtime_s;
  r.trial_seed = ctx.trial_seed();
  r.response_times = bed.farm().response_times();
  r.throughput = bed.farm().window_throughput();
  r.req_ratio = bed.workload().req_ratio();

  for (const auto& node : bed.nodes()) {
    r.cpus.push_back(condense_cpu(bed, node->name()));
  }
  for (const auto& a : bed.apaches()) {
    PoolStat workers =
        condense_pool(bed, a->worker_pool(), a->name() + ".workers.util");
    r.pools.push_back(workers);
    // For the web tier the operational "RTT" is the worker busy time
    // (response path + FIN wait) and the concurrency is worker occupancy:
    // that is what the thread pool has to cover.
    ServerOps ops = condense_server(*a);
    ops.mean_rt_s = a->window_mean_busy_s();
    ops.avg_jobs = workers.util_pct / 100.0 *
                   static_cast<double>(a->worker_pool().capacity());
    r.servers.push_back(ops);
  }
  for (const auto& t : bed.tomcats()) {
    r.pools.push_back(
        condense_pool(bed, t->thread_pool(), t->name() + ".threads.util"));
    r.pools.push_back(
        condense_pool(bed, t->connection_pool(), t->name() + ".dbconns.util"));
    r.servers.push_back(condense_server(*t));
    r.tomcat_gc_seconds += bed.window_gc_seconds(t->jvm());
  }
  for (const auto& c : bed.cjdbcs()) {
    r.servers.push_back(condense_server(*c));
    r.cjdbc_gc_seconds += bed.window_gc_seconds(c->jvm());
  }
  for (const auto& m : bed.mysqls()) {
    r.servers.push_back(condense_server(*m));
  }
  if (opts_.keep_series) {
    for (std::size_t i = 0; i < bed.sampler().probes(); ++i) {
      r.series.push_back(bed.sampler().series(i));
    }
  }
  const workload::ClientFarm& farm = bed.farm();
  for (std::size_t t = 0; t < farm.num_tenants(); ++t) {
    TenantStat ts;
    ts.name = farm.tenant(t).name;
    ts.users = farm.tenant(t).users;
    ts.sla_threshold_s = farm.tenant(t).sla_threshold_s;
    ts.throughput = farm.tenant_throughput(t);
    ts.goodput = farm.tenant_goodput(t, ts.sla_threshold_s);
    ts.badput = ts.throughput - ts.goodput;
    ts.mean_rt_s = farm.tenant_response_times(t).mean();
    r.tenants.push_back(std::move(ts));
  }
  r.metrics = ctx.registry().snapshot(ctx.simulator().now());
  ctx.traces().collect(bed.farm().traced_requests());
  r.diagnosis = bed.diagnoser().diagnosis();
  // Tail attribution and its diagnosis corroboration: pure functions of the
  // traces (themselves a function of the trial seed), so bit-identical
  // whether the sweep ran serial or across SOFTRES_JOBS workers.
  obs::TailConfig tail_cfg;
  tail_cfg.slo_threshold_s = opts_.sla_threshold_s;
  r.tail = obs::TailAttributor(tail_cfg).attribute(ctx.traces().traces());
  obs::corroborate(r.diagnosis, r.tail);
  if (opts_.profile) r.profile = profiler.snapshot();
  if (bed.governor() != nullptr) r.governor_actions = bed.governor()->actions();

  if (!opts_.report_html.empty()) {
    obs::ReportMeta meta;
    meta.title = "Trial " + cfg.hw.to_string() + " / " + soft.to_string() +
                 " @ " + std::to_string(users) + " users";
    meta.topology = cfg.hw.to_string();
    meta.allocation = soft.to_string();
    meta.workload = std::to_string(users) + " users";
    meta.measure_start = bed.measure_start();
    meta.measure_end = bed.measure_end();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f req/s", r.throughput);
    meta.extra.emplace_back("throughput", buf);
    std::snprintf(buf, sizeof(buf), "%.1f req/s",
                  r.goodput(opts_.sla_threshold_s));
    meta.extra.emplace_back(
        "goodput@" + std::to_string(opts_.sla_threshold_s) + "s", buf);
    std::snprintf(buf, sizeof(buf), "%.0f ms",
                  1000.0 * r.response_times.mean());
    meta.extra.emplace_back("mean response time", buf);
    meta.extra.emplace_back("trial seed", std::to_string(r.trial_seed));
    for (const core::GovernorAction& act : r.governor_actions) {
      meta.resizes.push_back(
          obs::ReportMeta::ResizeMark{act.at, act.pool, act.from, act.to});
    }
    const obs::LatencyBreakdown breakdown = ctx.traces().breakdown();
    obs::write_flight_recorder_html(
        report_path(opts_.report_html, soft, users), meta, bed.timeline(),
        r.diagnosis, breakdown.rows.empty() ? nullptr : &breakdown,
        r.profile.enabled ? &r.profile : nullptr,
        r.tail.empty() ? nullptr : &r.tail,
        r.tail.empty() ? nullptr : &ctx.traces());
  }

  r.traces = std::move(ctx.traces());
  return r;
}

}  // namespace softres::exp
