#pragma once

#include <functional>

#include "sim/rng.h"

namespace softres::net {

/// Parameters of the client-side TCP teardown model.
///
/// With keepalive off, an Apache worker performs a lingering close after each
/// response: it stays bound to the connection until the client's FIN arrives.
/// The paper found (Section III-C) that under high workload this FIN wait
/// explodes — loaded client machines acknowledge lazily — and becomes the
/// dominant component of worker busy time, starving the back-end unless the
/// front-tier thread pool is large enough to buffer the stalls.
struct TcpConfig {
  /// Median FIN delay when clients are unloaded.
  double fin_base_s = 0.003;
  /// Log-space sigma of the FIN delay distribution.
  double fin_sigma = 0.5;
  /// Client load fraction (offered users / client capacity) where delays
  /// start to grow.
  double load_knee = 0.88;
  /// Added median delay per unit of normalised overload.
  double fin_load_coeff_s = 0.030;
  /// Normalisation width of the overload term.
  double load_scale = 0.10;
  /// Superlinearity of the overload term.
  double fin_load_exponent = 1.5;
  /// Set false to ablate the effect (bench_ablation_finwait).
  bool enable_load_dependence = true;
};

/// Client TCP stack model: samples per-connection FIN-reply delays as a
/// function of current client-side load.
class TcpModel {
 public:
  TcpModel(TcpConfig config, sim::Rng rng)
      : config_(config), rng_(rng) {}

  /// Median FIN delay at the given client load (users / client capacity).
  double median_fin_delay(double client_load) const;

  /// Draw one FIN delay.
  double sample_fin_delay(double client_load);

  const TcpConfig& config() const { return config_; }

 private:
  TcpConfig config_;
  sim::Rng rng_;
};

}  // namespace softres::net
