#include "net/tcp.h"

#include <algorithm>
#include <cmath>

namespace softres::net {

double TcpModel::median_fin_delay(double client_load) const {
  double median = config_.fin_base_s;
  if (config_.enable_load_dependence) {
    const double overload =
        std::max(0.0, client_load - config_.load_knee) / config_.load_scale;
    if (overload > 0.0) {
      median += config_.fin_load_coeff_s *
                std::pow(overload, config_.fin_load_exponent);
    }
  }
  return median;
}

double TcpModel::sample_fin_delay(double client_load) {
  return rng_.lognormal_median(median_fin_delay(client_load),
                               config_.fin_sigma);
}

}  // namespace softres::net
