#pragma once

// Self-profiler core (DESIGN.md §11): the always-compilable, opt-in
// instrumentation layer the simulator hot paths include. This header is
// deliberately dependency-free (no sim/, no obs/) so every library under
// src/ can use the macros without a layering cycle; the owning facade —
// obs::Profiler — lives in src/obs/profiler.h and handles installation,
// calibration and rendering.
//
// Two axes, one ledger:
//  * the COUNT axis (`Ledger::counts`): per-phase, per-subsystem event
//    counters. Increment-only integers driven purely by the simulated event
//    sequence, so they are part of the determinism contract — bit-identical
//    between jobs=1 and jobs=4 sweeps (tests/determinism_test.cc).
//  * the TIMING axis (`Ledger::cycles`, the path table): exclusive cycle
//    counts per subsystem and per scope-stack path, read from the CPU cycle
//    counter. Wall-clock-adjacent by nature and therefore explicitly OUTSIDE
//    the determinism contract: never compared across runs, never fed into a
//    RunResult observable, only rendered.
//
// Contract carve-out: src/support is Domain::kExempt for softres-lint and
// the poison pragmas do not cover cycle counters, so the one rdtsc in this
// file is legal here — and ONLY here. Lint rule SR009 bans cycle-counter
// intrinsics everywhere else in sim-reachable code precisely so this stays
// the single timing TU (src/obs may also read clocks; see tools/lint).
//
// Cost when a trial is not being profiled: every macro is one thread_local
// pointer load and a predictable branch. tests/profiler_test.cc holds the
// zero-perturbation line (identical event sequence and results with the
// profiler installed), and defining SOFTRES_PROF_DISABLED compiles every
// macro to nothing for a hard zero-overhead build.

#include <cstddef>
#include <cstdint>

namespace softres::prof {

/// The attributed subsystems. Order is the rendering order; names live in
/// subsystem_name(). Keep in sync with obs/profiler.cc and DESIGN.md §11.
enum class Subsystem : std::uint8_t {
  kEventQueuePush = 0,  // EventQueue::push
  kEventQueuePop,       // EventQueue::pop
  kEventQueueCancel,    // EventQueue::update / erase (eager re-key + cancel)
  kDispatch,            // Simulator::dispatch (InlineCallback invocation)
  kDistSample,          // distribution sampling (fast_exponential et al.)
  kPoolService,         // soft::Pool acquire/release/grant
  kCpuService,          // hw::Cpu submit path
  kJvmService,          // jvm::Jvm allocation accounting + collections
  kLinkService,         // hw::Link send
  kArenaAlloc,          // tier::RequestArena acquire (slab growth vs reuse)
  kTimeline,            // obs::Timeline tick + tracing overhead
  kApacheService,       // web-tier request residence (count axis)
  kTomcatService,       // app-tier request residence (count axis)
  kCJdbcService,        // middleware request residence (count axis)
  kMySqlService,        // database request residence (count axis)
  kCount,
};
inline constexpr std::size_t kSubsystems =
    static_cast<std::size_t>(Subsystem::kCount);

/// Trial phases for the count axis. Transitions are driven by the testbed's
/// own schedule (build, farm ramp, measurement window), so the phase a count
/// lands in is as deterministic as the count itself.
enum class Phase : std::uint8_t {
  kSetup = 0,  // topology build, registry construction
  kRampUp,
  kMeasure,
  kRampDown,
  kCount,
};
inline constexpr std::size_t kPhases = static_cast<std::size_t>(Phase::kCount);

/// Read the CPU cycle counter. Confined to this header by lint rule SR009.
inline std::uint64_t cycle_counter() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;  // count axis still works; the timing axis reads as zero
#endif
}

/// Everything one profiled trial accumulates. Plain aggregate so the facade
/// can snapshot it with member reads; no allocation after construction.
struct Ledger {
  /// Scope nesting kept per path; deeper nests fold into their depth-8
  /// ancestor path (flame graphs stay readable, accounting stays exact).
  static constexpr std::size_t kPathDepth = 8;
  /// Synchronous grant cascades (pool release -> grant -> tier callback ->
  /// pool release -> ...) bound the live stack well under this.
  static constexpr std::size_t kMaxDepth = 64;
  /// Open-addressed path table; distinct paths number in the tens.
  static constexpr std::size_t kPathSlots = 512;

  // ---- count axis (deterministic) ----
  std::uint64_t counts[kPhases][kSubsystems] = {};

  // ---- timing axis (machine-local, never compared) ----
  std::uint64_t cycles[kSubsystems] = {};         // exclusive cycles
  std::uint64_t scope_entries[kSubsystems] = {};  // timed scope entries
  struct PathCell {
    std::uint64_t key = 0;  // kPathDepth x (subsystem+1) bytes, root lowest
    std::uint64_t cycles = 0;  // exclusive
    std::uint64_t count = 0;
  };
  PathCell paths[kPathSlots] = {};
  std::uint64_t path_overflow_cycles = 0;  // table full (never in practice)

  struct Frame {
    std::uint64_t start = 0;
    std::uint64_t child_cycles = 0;
    std::uint64_t path_key = 0;
    Subsystem sub = Subsystem::kCount;
  };
  Frame stack[kMaxDepth];
  std::size_t depth = 0;

  Phase phase = Phase::kSetup;

  void add_path(std::uint64_t key, std::uint64_t exclusive) {
    std::size_t slot =
        static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ull >> 55) %
        kPathSlots;
    for (std::size_t probe = 0; probe < kPathSlots; ++probe) {
      PathCell& cell = paths[slot];
      if (cell.key == key || cell.key == 0) {
        cell.key = key;
        cell.cycles += exclusive;
        ++cell.count;
        return;
      }
      slot = (slot + 1) % kPathSlots;
    }
    path_overflow_cycles += exclusive;
  }
};

/// The installed ledger of the current thread; null when the trial is not
/// being profiled. One trial runs wholly on one thread (exp::RunContext), so
/// thread_local is exactly the per-trial scope the determinism contract
/// needs: concurrent sweep workers never share a ledger.
inline thread_local Ledger* t_ledger = nullptr;

/// The current trial phase of this thread, tracked even when no ledger is
/// installed: the bench counting allocator (bench/bench_util.h) reads it to
/// split setup-phase allocations from steady-state ones without requiring
/// profiling to be on. Updated only at the four phase transitions per trial,
/// so the always-on cost is nil.
inline thread_local Phase t_phase = Phase::kSetup;

/// RAII installation used by obs::Profiler (and tests). Restores the
/// previous ledger so nested installs compose.
class InstallGuard {
 public:
  explicit InstallGuard(Ledger* ledger) : prev_(t_ledger) {
    t_ledger = ledger;
  }
  ~InstallGuard() { t_ledger = prev_; }
  InstallGuard(const InstallGuard&) = delete;
  InstallGuard& operator=(const InstallGuard&) = delete;

 private:
  Ledger* prev_;
};

inline void set_phase(Phase p) {
  t_phase = p;
  if (Ledger* l = t_ledger) l->phase = p;
}

inline void count(Subsystem sub) {
  Ledger* l = t_ledger;
  if (l == nullptr || sub == Subsystem::kCount) return;  // kCount = untagged
  ++l->counts[static_cast<std::size_t>(l->phase)]
             [static_cast<std::size_t>(sub)];
}

/// Scoped exclusive-cycle timer + count. The constructor bumps the count
/// axis and opens a timing frame; the destructor closes it, crediting this
/// subsystem with (elapsed - child cycles) so nested scopes never double
/// count. When no ledger is installed the whole object is a null check.
class ScopeTimer {
 public:
  // The unprofiled path must stay tiny AND stay out of the inliner's way:
  // the hot sites (EventQueue::push/pop, fast_exponential, Cpu::submit)
  // were deliberately made inline-everywhere in the PR-4 optimization, and
  // inlining the full enter/leave bodies there bloats them past inline
  // limits — a measured >20% whole-sim regression with profiling OFF. So
  // the ctor/dtor inline only a thread_local load and a branch, and the
  // profiled path lives in noinline cold members.
  explicit ScopeTimer(Subsystem sub) : ledger_(t_ledger) {
    if (ledger_ != nullptr) enter(sub);
  }

  ~ScopeTimer() {
    if (ledger_ != nullptr) leave();
  }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  [[gnu::noinline]] void enter(Subsystem sub) {
    Ledger* l = ledger_;
    ++l->counts[static_cast<std::size_t>(l->phase)]
               [static_cast<std::size_t>(sub)];
    if (l->depth >= Ledger::kMaxDepth) {
      ledger_ = nullptr;  // count recorded; too deep to time
      return;
    }
    Ledger::Frame& f = l->stack[l->depth];
    f.sub = sub;
    f.child_cycles = 0;
    const std::uint64_t parent_key =
        l->depth == 0 ? 0 : l->stack[l->depth - 1].path_key;
    const std::size_t level =
        l->depth < Ledger::kPathDepth ? l->depth : Ledger::kPathDepth - 1;
    // Depth > kPathDepth folds into the level-8 ancestor: same key suffix.
    f.path_key =
        l->depth < Ledger::kPathDepth
            ? parent_key |
                  (static_cast<std::uint64_t>(static_cast<std::uint8_t>(sub) +
                                              1)
                   << (8 * level))
            : parent_key;
    ++l->scope_entries[static_cast<std::size_t>(sub)];
    ++l->depth;
    f.start = cycle_counter();
  }

  [[gnu::noinline]] void leave() {
    Ledger* l = ledger_;
    const std::uint64_t now = cycle_counter();
    --l->depth;
    const Ledger::Frame& f = l->stack[l->depth];
    const std::uint64_t elapsed = now - f.start;
    const std::uint64_t exclusive =
        elapsed > f.child_cycles ? elapsed - f.child_cycles : 0;
    l->cycles[static_cast<std::size_t>(f.sub)] += exclusive;
    l->add_path(f.path_key, exclusive);
    if (l->depth > 0) l->stack[l->depth - 1].child_cycles += elapsed;
  }

  Ledger* ledger_;
};

const char* subsystem_name(Subsystem sub);
const char* phase_name(Phase p);

}  // namespace softres::prof

// Scope macros for the hot paths. SOFTRES_PROF_DISABLED compiles them to
// nothing (the hard kill switch the zero-overhead criterion names); the
// default build pays one thread_local null check per site.
#if defined(SOFTRES_PROF_DISABLED)
#define SOFTRES_PROF_SCOPE(sub)
#define SOFTRES_PROF_COUNT(sub)
#define SOFTRES_PROF_PHASE(p)
#else
#define SOFTRES_PROF_CONCAT2(a, b) a##b
#define SOFTRES_PROF_CONCAT(a, b) SOFTRES_PROF_CONCAT2(a, b)
#define SOFTRES_PROF_SCOPE(sub)                              \
  ::softres::prof::ScopeTimer SOFTRES_PROF_CONCAT(           \
      softres_prof_scope_, __LINE__)(::softres::prof::Subsystem::sub)
#define SOFTRES_PROF_COUNT(sub) \
  ::softres::prof::count(::softres::prof::Subsystem::sub)
#define SOFTRES_PROF_PHASE(p) \
  ::softres::prof::set_phase(::softres::prof::Phase::p)
#endif
