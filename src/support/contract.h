#pragma once

// Determinism-contract enforcement, compile-time layer.
//
// Force-included (CMake `-include`) into every sim-domain library target —
// see softres_apply_contract() in src/CMakeLists.txt. Two mechanisms:
//
//  1. `#pragma GCC poison` makes any later mention of a banned identifier a
//     hard compile error. Poison cannot be scoped or revoked, so the system
//     headers that legitimately define these identifiers are included FIRST
//     below; their include guards make later inclusions no-ops, and only
//     *new* uses in softres code trip the poison.
//  2. `[[deprecated]]` re-declarations attach a warning to C library calls
//     that cannot be poisoned without breaking libc headers (time, clock).
//
// What is banned, and why (see also `softres-lint --list-rules`):
//  - std:: random machinery (rand, random_device, mt19937, ...): every
//    stochastic draw must come from a sim::Rng stream derived via
//    exp::RunContext::derive_seed, or jobs=N sweeps stop being bit-identical
//    to jobs=1.
//  - wall clocks (system_clock, steady_clock, gettimeofday, ...): trial
//    results must be a pure function of the trial's identity, never of when
//    or where it ran. src/obs is exempt (compiled with
//    SOFTRES_CONTRACT_ALLOW_CLOCKS) so exporters may timestamp output.
//
// The poison layer has no escape hatch by design. If a use is legitimate,
// it belongs in a non-sim-domain target (tools/, tests/, src/obs for
// clocks); the textual checker's SOFTRES_LINT_ALLOW(SRnnn: reason) escape
// hatch covers the rare annotated exception in scanned code.
//
// NOTE for future maintainers: if a newly added system header fails with
// "attempt to use poisoned ..." it was included after this header first
// mentioned the identifier. Add that system header to the pre-include block
// below — do not remove the poison.

// Pre-include every system header the sim domain uses (directly or
// transitively) that may mention a poisoned identifier. Order-insensitive;
// kept alphabetical.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <charconv>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <fstream>
#include <functional>
#include <future>
#include <iomanip>
#include <iosfwd>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <ostream>
#include <queue>
#include <random>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

/// Textual-checker escape hatch; expands to nothing so annotated lines stay
/// valid code whether or not this header is force-included.
#define SOFTRES_LINT_ALLOW(...)

// ---- Banned entropy sources (lint rule SR001) -----------------------------
#pragma GCC poison rand srand rand_r drand48 lrand48 mrand48 srand48
#pragma GCC poison random_device mt19937 mt19937_64 minstd_rand minstd_rand0
#pragma GCC poison default_random_engine ranlux24 ranlux48 knuth_b

// ---- Banned wall clocks (lint rule SR002) ---------------------------------
// src/obs is compiled with SOFTRES_CONTRACT_ALLOW_CLOCKS: exporters may
// stamp real timestamps on files they write, nothing else may.
#if !defined(SOFTRES_CONTRACT_ALLOW_CLOCKS)
#pragma GCC poison system_clock steady_clock high_resolution_clock
#pragma GCC poison gettimeofday clock_gettime timespec_get
#pragma GCC poison localtime localtime_r gmtime gmtime_r strftime ctime

// time() and clock() cannot be poisoned (libc headers re-mention them), so
// attach [[deprecated]] to their declarations instead; with -Werror (CI's
// SOFTRES_WERROR=ON) a call is a hard error, locally it is a loud warning.
extern "C" {
[[deprecated(
    "softres determinism contract: wall-clock time is banned in sim-domain "
    "code; use sim::SimTime")]] std::time_t
time(std::time_t*) noexcept;
[[deprecated(
    "softres determinism contract: process CPU time is banned in sim-domain "
    "code; use sim::SimTime")]] std::clock_t
clock() noexcept;
}
#endif  // SOFTRES_CONTRACT_ALLOW_CLOCKS
