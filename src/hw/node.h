#pragma once

#include <memory>
#include <string>

#include "hw/cpu.h"
#include "hw/disk.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace softres::hw {

/// Hardware description of one physical node (the paper's Emulab PC3000:
/// 3 GHz 64-bit Xeon, 2 GB RAM, 10k-rpm disks, 1 Gbps NIC).
struct NodeSpec {
  unsigned cores = 1;
  double memory_mb = 2048.0;
  sim::DistributionPtr disk_service;  // defaults to ~4 ms lognormal if null
  /// Run-queue context-switch penalty coefficient (see hw::Cpu::submit).
  double context_switch_coeff = 0.004;
};

/// A dedicated physical machine hosting exactly one server process, matching
/// the paper's one-server-per-node deployment.
class Node {
 public:
  Node(sim::Simulator& sim, std::string name, const NodeSpec& spec,
       sim::Rng rng);

  const std::string& name() const { return name_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  Disk& disk() { return *disk_; }
  const Disk& disk() const { return *disk_; }
  double memory_mb() const { return memory_mb_; }

 private:
  std::string name_;
  double memory_mb_;
  Cpu cpu_;
  std::unique_ptr<Disk> disk_;
};

}  // namespace softres::hw
