#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "support/prof.h"

namespace softres::hw {

/// Multi-core CPU under egalitarian processor sharing.
///
/// With n active jobs on c cores each job progresses at rate min(1, c/n);
/// this is the standard model for a timeslicing OS scheduler at 1 s
/// observation granularity and is what makes CPU saturation emerge naturally
/// when tiers push more concurrent work than the node can absorb.
///
/// The CPU also supports *freezing* (`freeze(d)`): application jobs stop
/// progressing for `d` seconds while the CPU is accounted fully busy. The JVM
/// model uses this to realise synchronous stop-the-world garbage collection,
/// which is the mechanism behind the paper's over-allocation collapse
/// (Section III-B).
class Cpu {
 public:
  using Callback = sim::InlineCallback;

  Cpu(sim::Simulator& sim, std::string name, unsigned cores,
      double context_switch_coeff = 0.0);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Run a job needing `demand` core-seconds; `done` fires at completion.
  /// The effective demand grows with the current run-queue length
  /// (demand * (1 + cs_coeff * sqrt(n))): context switching, cache pollution
  /// and scheduler overhead make a crowded CPU less efficient per job, which
  /// is one of the two penalties of soft-resource over-allocation
  /// (Section III-B; the other is GC).
  void submit(double demand, Callback done);

  /// Stop-the-world for `duration` seconds (extends any current freeze).
  void freeze(double duration);

  const std::string& name() const { return name_; }
  unsigned cores() const { return cores_; }
  std::size_t jobs_in_service() const { return jobs_.size(); }
  bool frozen() const {
    return sim_.now() < freeze_until_ - sim::kTimeEpsilon;
  }

  /// Cumulative busy core-seconds (application work + freeze time). A 1 Hz
  /// monitor differentiates this to produce SysStat-style utilization.
  double busy_core_seconds() const;
  /// Cumulative core-seconds consumed by freezes (the "GC CPU" share).
  double freeze_core_seconds() const;
  /// Cumulative application work completed, in core-seconds.
  double work_done() const;
  std::uint64_t jobs_completed() const { return completed_; }

  /// Instantaneous utilization in [0,1]: min(n,c)/c, or 1 while frozen.
  double instantaneous_utilization() const;

 private:
  // The run queue is a sim::EventQueue reused as a min-heap over
  // (finish_attained, seq): Entry::time holds the attained-service level at
  // which the job ends, and Entry::key packs (seq << kSlotBits) | slot so
  // FIFO tie-break rides in the key's high bits. Completion callbacks live
  // in a slot slab off to the side — under processor sharing every arrival
  // re-sifts the heap, and a 16-byte entry moves ~4x cheaper than a Job
  // struct carrying its 40-byte callback inline.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  void advance_to_now();
  double current_rate() const;  // per-job progress rate
  void reschedule_completion();
  void complete_ready_jobs();
  void on_completion_timer();
  void on_unfreeze();

  sim::Simulator& sim_;
  std::string name_;
  unsigned cores_;
  double inv_cores_;  // 1/cores, folds the per-event divide into a multiply
  double cs_coeff_;

  double attained_ = 0.0;  // cumulative per-job attained service
  sim::SimTime last_update_ = 0.0;
  double busy_core_seconds_ = 0.0;
  double freeze_core_seconds_ = 0.0;
  double work_done_ = 0.0;
  sim::SimTime freeze_until_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;

  sim::EventQueue jobs_;
  std::vector<Callback> job_slots_;
  std::vector<std::uint32_t> job_free_;
  sim::EventHandle completion_event_;
  // Wall time the pending completion event fires at; +inf when none is
  // pending. The timer is self-correcting (see reschedule_completion), so
  // this is a lower bound on the true completion time, never an upper one.
  sim::SimTime completion_due_ = std::numeric_limits<double>::infinity();
  sim::EventHandle unfreeze_event_;
};

// submit() and the helpers it brackets run once or twice per simulated CPU
// job — a couple of million times per trial, always from another
// translation unit (the tier state machines) — so their bodies live here
// for cross-TU inlining. The cold control paths (freeze, completion sweep,
// accessors) stay in cpu.cc.

inline void Cpu::advance_to_now() {
  const sim::SimTime now = sim_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) return;
  // Freeze transitions only happen at events that call advance_to_now first,
  // so the frozen/running state is constant over (last_update_, now).
  const bool was_frozen = last_update_ < freeze_until_ - sim::kTimeEpsilon;
  if (was_frozen) {
    busy_core_seconds_ += static_cast<double>(cores_) * dt;
    freeze_core_seconds_ += static_cast<double>(cores_) * dt;
  } else if (!jobs_.empty()) {
    const double n = static_cast<double>(jobs_.size());
    const double served_cores = std::min(n, static_cast<double>(cores_));
    busy_core_seconds_ += served_cores * dt;
    work_done_ += served_cores * dt;
    attained_ += std::min(1.0, static_cast<double>(cores_) / n) * dt;
  }
  last_update_ = now;
}

inline void Cpu::reschedule_completion() {
  if (jobs_.empty() || frozen()) return;
  // due = now + remaining / min(1, c/n), with the divisions folded away:
  // undersubscribed (n <= c) the next job completes in `remaining` wall
  // seconds, oversubscribed it is slowed by n/c — one multiply against the
  // precomputed 1/c instead of two divides. This runs twice per CPU job
  // (every submit and every completion sweep re-aims the timer), which made
  // the divides one of the larger single costs in the event loop.
  const double remaining = std::max(0.0, jobs_.top().time - attained_);
  const double n = static_cast<double>(jobs_.size());
  const double slowdown =
      n > static_cast<double>(cores_) ? n * inv_cores_ : 1.0;
  const sim::SimTime due = sim_.now() + remaining * slowdown;
  if (due == completion_due_) return;
  // Under processor sharing every arrival and departure moves the next
  // completion instant, which used to mean a cancel + schedule pair (and a
  // dead heap entry) per submit — the majority of all event-queue traffic.
  // reschedule() re-keys the one pending timer in place instead: the stored
  // callback and handle survive, and the heap sift is a level or two since
  // the due time only drifts.
  if (sim_.reschedule_at(completion_event_, due)) {
    completion_due_ = due;
    return;
  }
  completion_event_ = sim_.schedule_at(due, [this] { on_completion_timer(); });
  completion_due_ = due;
}

inline void Cpu::submit(double demand, Callback done) {
  SOFTRES_PROF_SCOPE(kCpuService);
  assert(done);
  if (demand <= 0.0) {
    sim_.schedule(0.0, std::move(done));
    return;
  }
  advance_to_now();
  if (cs_coeff_ > 0.0) {
    const double n = static_cast<double>(jobs_.size() + 1);
    demand *= 1.0 + cs_coeff_ * std::sqrt(n);
  }
  std::uint32_t slot;
  if (!job_free_.empty()) {
    slot = job_free_.back();
    job_free_.pop_back();
    job_slots_[slot] = std::move(done);
  } else {
    slot = static_cast<std::uint32_t>(job_slots_.size());
    assert(slot < (1u << kSlotBits));
    job_slots_.push_back(std::move(done));
  }
  jobs_.push({attained_ + demand, (next_seq_++ << kSlotBits) | slot});
  reschedule_completion();
}

}  // namespace softres::hw
