#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/sim_time.h"
#include "sim/simulator.h"

namespace softres::hw {

/// Multi-core CPU under egalitarian processor sharing.
///
/// With n active jobs on c cores each job progresses at rate min(1, c/n);
/// this is the standard model for a timeslicing OS scheduler at 1 s
/// observation granularity and is what makes CPU saturation emerge naturally
/// when tiers push more concurrent work than the node can absorb.
///
/// The CPU also supports *freezing* (`freeze(d)`): application jobs stop
/// progressing for `d` seconds while the CPU is accounted fully busy. The JVM
/// model uses this to realise synchronous stop-the-world garbage collection,
/// which is the mechanism behind the paper's over-allocation collapse
/// (Section III-B).
class Cpu {
 public:
  using Callback = std::function<void()>;

  Cpu(sim::Simulator& sim, std::string name, unsigned cores,
      double context_switch_coeff = 0.0);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Run a job needing `demand` core-seconds; `done` fires at completion.
  /// The effective demand grows with the current run-queue length
  /// (demand * (1 + cs_coeff * sqrt(n))): context switching, cache pollution
  /// and scheduler overhead make a crowded CPU less efficient per job, which
  /// is one of the two penalties of soft-resource over-allocation
  /// (Section III-B; the other is GC).
  void submit(double demand, Callback done);

  /// Stop-the-world for `duration` seconds (extends any current freeze).
  void freeze(double duration);

  const std::string& name() const { return name_; }
  unsigned cores() const { return cores_; }
  std::size_t jobs_in_service() const { return jobs_.size(); }
  bool frozen() const;

  /// Cumulative busy core-seconds (application work + freeze time). A 1 Hz
  /// monitor differentiates this to produce SysStat-style utilization.
  double busy_core_seconds() const;
  /// Cumulative core-seconds consumed by freezes (the "GC CPU" share).
  double freeze_core_seconds() const;
  /// Cumulative application work completed, in core-seconds.
  double work_done() const;
  std::uint64_t jobs_completed() const { return completed_; }

  /// Instantaneous utilization in [0,1]: min(n,c)/c, or 1 while frozen.
  double instantaneous_utilization() const;

 private:
  struct Job {
    double finish_attained;  // attained-service level at which the job ends
    std::uint64_t seq;       // FIFO tie-break
    Callback done;
  };
  struct Cmp {
    bool operator()(const Job& a, const Job& b) const {
      if (a.finish_attained != b.finish_attained)
        return a.finish_attained > b.finish_attained;
      return a.seq > b.seq;
    }
  };

  void advance_to_now();
  double current_rate() const;  // per-job progress rate
  void reschedule_completion();
  void complete_ready_jobs();
  void on_unfreeze();

  sim::Simulator& sim_;
  std::string name_;
  unsigned cores_;
  double cs_coeff_;

  double attained_ = 0.0;  // cumulative per-job attained service
  sim::SimTime last_update_ = 0.0;
  double busy_core_seconds_ = 0.0;
  double freeze_core_seconds_ = 0.0;
  double work_done_ = 0.0;
  sim::SimTime freeze_until_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;

  std::priority_queue<Job, std::vector<Job>, Cmp> jobs_;
  sim::EventHandle completion_event_;
  sim::EventHandle unfreeze_event_;
};

}  // namespace softres::hw
