#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/distributions.h"
#include "sim/inline_callback.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace softres::hw {

/// Single-spindle FCFS disk. Each operation's service time is drawn from a
/// configurable distribution (default: lognormal around a few milliseconds,
/// the 10k-rpm drives of the paper's PC3000 nodes).
class Disk {
 public:
  using Callback = sim::InlineCallback;

  Disk(sim::Simulator& sim, std::string name, sim::DistributionPtr service,
       sim::Rng rng);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueue one I/O; `done` fires when it completes.
  void submit(Callback done);

  const std::string& name() const { return name_; }
  std::size_t queue_length() const { return queue_.size() + (busy_ ? 1 : 0); }
  double busy_seconds() const { return busy_seconds_; }
  std::uint64_t ops_completed() const { return ops_; }

 private:
  void start_next();

  sim::Simulator& sim_;
  std::string name_;
  sim::DistributionPtr service_;
  sim::Rng rng_;
  std::deque<Callback> queue_;
  bool busy_ = false;
  double busy_seconds_ = 0.0;
  std::uint64_t ops_ = 0;
};

}  // namespace softres::hw
