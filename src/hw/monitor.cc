#include "hw/monitor.h"

#include <algorithm>
#include <memory>

namespace softres::hw {
namespace {

struct DeltaState {
  double prev_value = 0.0;
  double prev_time = 0.0;
};

/// Differentiate a cumulative core-seconds counter into percent utilization.
template <typename Getter>
sim::Sampler::Probe make_rate_probe(const Cpu& cpu, Getter get) {
  auto state = std::make_shared<DeltaState>();
  const Cpu* c = &cpu;
  return [state, c, get](sim::SimTime now) {
    const double value = get(*c);
    const double dt = now - state->prev_time;
    const double dv = value - state->prev_value;
    state->prev_value = value;
    state->prev_time = now;
    if (dt <= 0.0) return 0.0;
    const double util = 100.0 * dv / (static_cast<double>(c->cores()) * dt);
    return std::clamp(util, 0.0, 100.0);
  };
}

}  // namespace

std::size_t add_cpu_util_probe(sim::Sampler& sampler, const std::string& name,
                               const Cpu& cpu) {
  return sampler.add_probe(
      name, make_rate_probe(cpu, [](const Cpu& c) { return c.busy_core_seconds(); }));
}

std::size_t add_gc_util_probe(sim::Sampler& sampler, const std::string& name,
                              const Cpu& cpu) {
  return sampler.add_probe(
      name,
      make_rate_probe(cpu, [](const Cpu& c) { return c.freeze_core_seconds(); }));
}

std::size_t add_cpu_load_probe(sim::Sampler& sampler, const std::string& name,
                               const Cpu& cpu) {
  const Cpu* c = &cpu;
  return sampler.add_probe(name, [c](sim::SimTime) {
    return static_cast<double>(c->jobs_in_service());
  });
}

}  // namespace softres::hw
