#pragma once

#include <string>

#include "hw/cpu.h"
#include "sim/sampler.h"

namespace softres::hw {

/// SysStat-style probe registration. Each probe differentiates a cumulative
/// counter over the sampling interval, yielding per-interval utilization
/// percentages exactly as the paper's 1 s monitoring does.

/// CPU utilization in percent (application work + GC freezes).
std::size_t add_cpu_util_probe(sim::Sampler& sampler, const std::string& name,
                               const Cpu& cpu);

/// Share of the interval spent in stop-the-world freezes, in percent of
/// total CPU capacity (the "GC CPU" series of Fig 5).
std::size_t add_gc_util_probe(sim::Sampler& sampler, const std::string& name,
                              const Cpu& cpu);

/// Number of jobs resident on the CPU at sampling instants.
std::size_t add_cpu_load_probe(sim::Sampler& sampler, const std::string& name,
                               const Cpu& cpu);

}  // namespace softres::hw
