#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

#include "sim/inline_callback.h"
#include "sim/simulator.h"
#include "support/prof.h"

namespace softres::hw {

/// Point-to-point network link: propagation latency plus an FCFS serialised
/// transmission stage (bytes / bandwidth). With the testbed's 1 Gbps links
/// the transmission stage rarely matters, but modelling it keeps the network
/// honest under response-heavy workloads.
class Link {
 public:
  using Callback = sim::InlineCallback;

  Link(sim::Simulator& sim, std::string name, double latency_s,
       double bytes_per_second);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Deliver `bytes` across the link; `delivered` fires at the receiver.
  void send(double bytes, Callback delivered);

  const std::string& name() const { return name_; }
  double latency() const { return latency_; }
  double bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_; }
  /// Cumulative seconds the transmitter was busy (for utilization probes).
  double busy_seconds() const { return busy_seconds_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  double latency_;
  double bytes_per_second_;
  sim::SimTime tx_free_at_ = 0.0;  // when the transmitter becomes idle
  double bytes_sent_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t messages_ = 0;
};

// Every tier hop is a send — it runs a couple of million times per trial,
// and the body is a handful of arithmetic ops in front of schedule_at, so
// keeping it in the header lets callers fold the whole hop into one
// inlined schedule.
inline void Link::send(double bytes, Callback delivered) {
  SOFTRES_PROF_SCOPE(kLinkService);
  assert(delivered);
  const sim::SimTime now = sim_.now();
  const double tx_time = std::max(0.0, bytes) / bytes_per_second_;
  const sim::SimTime tx_start = std::max(now, tx_free_at_);
  tx_free_at_ = tx_start + tx_time;
  busy_seconds_ += tx_time;
  bytes_sent_ += bytes;
  ++messages_;
  sim_.schedule_at(tx_free_at_ + latency_, std::move(delivered));
}

}  // namespace softres::hw
