#include "hw/disk.h"

#include <cassert>
#include <utility>

namespace softres::hw {

Disk::Disk(sim::Simulator& sim, std::string name, sim::DistributionPtr service,
           sim::Rng rng)
    : sim_(sim), name_(std::move(name)), service_(std::move(service)),
      rng_(rng) {
  assert(service_);
}

void Disk::submit(Callback done) {
  assert(done);
  queue_.push_back(std::move(done));
  if (!busy_) start_next();
}

void Disk::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Callback done = std::move(queue_.front());
  queue_.pop_front();
  const double s = service_->sample(rng_);
  busy_seconds_ += s;
  sim_.schedule(s, [this, done = std::move(done)]() mutable {
    ++ops_;
    done();
    start_next();
  });
}

}  // namespace softres::hw
