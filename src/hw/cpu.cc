#include "hw/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace softres::hw {

Cpu::Cpu(sim::Simulator& sim, std::string name, unsigned cores,
         double context_switch_coeff)
    : sim_(sim), name_(std::move(name)), cores_(cores),
      inv_cores_(1.0 / static_cast<double>(cores)),
      cs_coeff_(context_switch_coeff) {
  assert(cores > 0);
  last_update_ = sim.now();
}

double Cpu::current_rate() const {
  if (frozen() || jobs_.empty()) return 0.0;
  const double n = static_cast<double>(jobs_.size());
  return std::min(1.0, static_cast<double>(cores_) / n);
}

void Cpu::freeze(double duration) {
  if (duration <= 0.0) return;
  advance_to_now();
  const sim::SimTime until = sim_.now() + duration;
  if (until <= freeze_until_) return;  // already frozen longer
  freeze_until_ = until;
  if (!sim_.reschedule_at(unfreeze_event_, until)) {
    unfreeze_event_ = sim_.schedule_at(until, [this] { on_unfreeze(); });
  }
  // Application progress halts; drop any pending completion.
  sim_.cancel(completion_event_);
  completion_event_ = sim::EventHandle();
  completion_due_ = std::numeric_limits<double>::infinity();
}

void Cpu::on_unfreeze() {
  advance_to_now();
  reschedule_completion();
}

void Cpu::on_completion_timer() {
  completion_event_ = sim::EventHandle();
  completion_due_ = std::numeric_limits<double>::infinity();
  advance_to_now();
  complete_ready_jobs();
}

void Cpu::complete_ready_jobs() {
  while (!jobs_.empty() && jobs_.top().time <= attained_ + sim::kTimeEpsilon) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(jobs_.pop().key & kSlotMask);
    Callback done = std::move(job_slots_[slot]);
    job_free_.push_back(slot);
    ++completed_;
    done();  // may submit new jobs; state is consistent here
  }
  reschedule_completion();
}

double Cpu::busy_core_seconds() const {
  // Include the in-flight interval since the last event.
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return busy_core_seconds_;
}

double Cpu::freeze_core_seconds() const {
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return freeze_core_seconds_;
}

double Cpu::work_done() const {
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return work_done_;
}

double Cpu::instantaneous_utilization() const {
  if (frozen()) return 1.0;
  if (jobs_.empty()) return 0.0;
  return std::min(1.0, static_cast<double>(jobs_.size()) /
                           static_cast<double>(cores_));
}

}  // namespace softres::hw
