#include "hw/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace softres::hw {

Cpu::Cpu(sim::Simulator& sim, std::string name, unsigned cores,
         double context_switch_coeff)
    : sim_(sim), name_(std::move(name)), cores_(cores),
      cs_coeff_(context_switch_coeff) {
  assert(cores > 0);
  last_update_ = sim.now();
}

bool Cpu::frozen() const { return sim_.now() < freeze_until_ - sim::kTimeEpsilon; }

double Cpu::current_rate() const {
  if (frozen() || jobs_.empty()) return 0.0;
  const double n = static_cast<double>(jobs_.size());
  return std::min(1.0, static_cast<double>(cores_) / n);
}

void Cpu::advance_to_now() {
  const sim::SimTime now = sim_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) return;
  // Freeze transitions only happen at events that call advance_to_now first,
  // so the frozen/running state is constant over (last_update_, now).
  const bool was_frozen = last_update_ < freeze_until_ - sim::kTimeEpsilon;
  if (was_frozen) {
    busy_core_seconds_ += static_cast<double>(cores_) * dt;
    freeze_core_seconds_ += static_cast<double>(cores_) * dt;
  } else if (!jobs_.empty()) {
    const double n = static_cast<double>(jobs_.size());
    const double served_cores = std::min(n, static_cast<double>(cores_));
    busy_core_seconds_ += served_cores * dt;
    work_done_ += served_cores * dt;
    attained_ += std::min(1.0, static_cast<double>(cores_) / n) * dt;
  }
  last_update_ = now;
}

void Cpu::submit(double demand, Callback done) {
  assert(done);
  if (demand <= 0.0) {
    sim_.schedule(0.0, std::move(done));
    return;
  }
  advance_to_now();
  if (cs_coeff_ > 0.0) {
    const double n = static_cast<double>(jobs_.size() + 1);
    demand *= 1.0 + cs_coeff_ * std::sqrt(n);
  }
  jobs_.push(Job{attained_ + demand, next_seq_++, std::move(done)});
  reschedule_completion();
}

void Cpu::freeze(double duration) {
  if (duration <= 0.0) return;
  advance_to_now();
  const sim::SimTime until = sim_.now() + duration;
  if (until <= freeze_until_) return;  // already frozen longer
  freeze_until_ = until;
  sim_.cancel(unfreeze_event_);
  unfreeze_event_ = sim_.schedule_at(until, [this] { on_unfreeze(); });
  // Application progress halts; drop any pending completion.
  sim_.cancel(completion_event_);
  completion_event_ = sim::EventHandle();
}

void Cpu::on_unfreeze() {
  advance_to_now();
  reschedule_completion();
}

void Cpu::reschedule_completion() {
  sim_.cancel(completion_event_);
  completion_event_ = sim::EventHandle();
  if (jobs_.empty() || frozen()) return;
  const double rate = current_rate();
  assert(rate > 0.0);
  const double remaining = jobs_.top().finish_attained - attained_;
  const double dt = std::max(0.0, remaining) / rate;
  completion_event_ = sim_.schedule(dt, [this] {
    advance_to_now();
    complete_ready_jobs();
  });
}

void Cpu::complete_ready_jobs() {
  while (!jobs_.empty() &&
         jobs_.top().finish_attained <= attained_ + sim::kTimeEpsilon) {
    // const_cast is safe: the job is removed before its callback runs.
    Callback done = std::move(const_cast<Job&>(jobs_.top()).done);
    jobs_.pop();
    ++completed_;
    done();  // may submit new jobs; state is consistent here
  }
  reschedule_completion();
}

double Cpu::busy_core_seconds() const {
  // Include the in-flight interval since the last event.
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return busy_core_seconds_;
}

double Cpu::freeze_core_seconds() const {
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return freeze_core_seconds_;
}

double Cpu::work_done() const {
  Cpu* self = const_cast<Cpu*>(this);
  self->advance_to_now();
  return work_done_;
}

double Cpu::instantaneous_utilization() const {
  if (frozen()) return 1.0;
  if (jobs_.empty()) return 0.0;
  return std::min(1.0, static_cast<double>(jobs_.size()) /
                           static_cast<double>(cores_));
}

}  // namespace softres::hw
