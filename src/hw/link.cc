#include "hw/link.h"

namespace softres::hw {

Link::Link(sim::Simulator& sim, std::string name, double latency_s,
           double bytes_per_second)
    : sim_(sim), name_(std::move(name)), latency_(latency_s),
      bytes_per_second_(bytes_per_second) {
  assert(latency_s >= 0.0 && bytes_per_second > 0.0);
}

}  // namespace softres::hw
