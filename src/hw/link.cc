#include "hw/link.h"

#include <algorithm>
#include <cassert>

namespace softres::hw {

Link::Link(sim::Simulator& sim, std::string name, double latency_s,
           double bytes_per_second)
    : sim_(sim), name_(std::move(name)), latency_(latency_s),
      bytes_per_second_(bytes_per_second) {
  assert(latency_s >= 0.0 && bytes_per_second > 0.0);
}

void Link::send(double bytes, Callback delivered) {
  assert(delivered);
  const sim::SimTime now = sim_.now();
  const double tx_time = std::max(0.0, bytes) / bytes_per_second_;
  const sim::SimTime tx_start = std::max(now, tx_free_at_);
  tx_free_at_ = tx_start + tx_time;
  busy_seconds_ += tx_time;
  bytes_sent_ += bytes;
  ++messages_;
  sim_.schedule_at(tx_free_at_ + latency_, std::move(delivered));
}

}  // namespace softres::hw
