#include "hw/node.h"

namespace softres::hw {

Node::Node(sim::Simulator& sim, std::string name, const NodeSpec& spec,
           sim::Rng rng)
    : name_(std::move(name)), memory_mb_(spec.memory_mb),
      cpu_(sim, name_ + ".cpu", spec.cores, spec.context_switch_coeff) {
  sim::DistributionPtr disk_service = spec.disk_service;
  if (!disk_service) {
    // 10k-rpm drive: ~4 ms median with a mild tail.
    disk_service = sim::lognormal(0.004, 0.4);
  }
  disk_ = std::make_unique<Disk>(sim, name_ + ".disk", std::move(disk_service),
                                 rng);
}

}  // namespace softres::hw
