#include "soft/pool.h"

#include <cassert>

namespace softres::soft {

Pool::Pool(sim::Simulator& sim, std::string name, std::size_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  occupancy_.reset(sim.now());
}

void Pool::grant(Callback granted, sim::SimTime waited_since) {
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(sim_.now() - waited_since);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  granted();
}

void Pool::acquire(Callback granted) {
  assert(granted);
  if (in_use_ < capacity_) {
    grant(std::move(granted), sim_.now());
  } else {
    waiters_.push_back(Waiter{std::move(granted), sim_.now()});
  }
}

bool Pool::try_acquire() {
  if (in_use_ >= capacity_ || !waiters_.empty()) return false;
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(0.0);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  return true;
}

void Pool::release() {
  assert(in_use_ > 0);
  --in_use_;
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  if (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

void Pool::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

void Pool::reset_stats(sim::SimTime t) {
  total_acquired_ = 0;
  wait_stats_.reset();
  occupancy_.reset(t);
  occupancy_.set(t, static_cast<double>(in_use_));
}

}  // namespace softres::soft
