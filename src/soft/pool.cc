#include "soft/pool.h"

#include "soft/partition.h"

namespace softres::soft {

Pool::Pool(sim::Simulator& sim, std::string name, std::size_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  occupancy_.reset(sim.now());
}

bool Pool::try_acquire(std::uint32_t tenant) {
  if (in_use_ >= capacity_ || !waiters_.empty()) return false;
  if (arbiter_ != nullptr && !arbiter_->may_take(*this, tenant)) return false;
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(0.0);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  if (arbiter_ != nullptr) {
    ++tenant_in_use_[tenant];
    ++tenant_acquired_[tenant];
    tenant_occupancy_[tenant].set(sim_.now(),
                                  static_cast<double>(tenant_in_use_[tenant]));
  }
  return true;
}

void Pool::set_capacity(std::size_t capacity) {
  if (capacity == capacity_) return;
  epochs_.push_back(CapacityEpoch{sim_.now(), capacity_, capacity});
  capacity_ = capacity;
  if (arbiter_ != nullptr) {
    dispatch_shared();
    return;
  }
  while (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

void Pool::set_arbiter(TenantArbiter* arbiter) {
  assert(in_use_ == 0 && waiters_.empty());
  arbiter_ = arbiter;
  const std::size_t n = arbiter != nullptr ? arbiter->tenants() : 0;
  tenant_in_use_.assign(n, 0);
  tenant_waiting_.assign(n, 0);
  tenant_acquired_.assign(n, 0);
  tenant_occupancy_.assign(n, sim::TimeWeighted{});
  for (sim::TimeWeighted& occ : tenant_occupancy_) occ.reset(sim_.now());
}

void Pool::acquire_shared(Callback granted, std::uint32_t tenant) {
  assert(tenant < tenant_in_use_.size());
  if (in_use_ < capacity_ && arbiter_->may_take(*this, tenant)) {
    grant_shared(std::move(granted), sim_.now(), tenant);
  } else {
    waiters_.push_back(Waiter{std::move(granted), sim_.now(), tenant});
    ++tenant_waiting_[tenant];
  }
}

void Pool::release_shared(std::uint32_t tenant) {
  assert(tenant < tenant_in_use_.size());
  assert(tenant_in_use_[tenant] > 0);
  if (in_use_ > capacity_) ++drained_total_;
  --in_use_;
  --tenant_in_use_[tenant];
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  tenant_occupancy_[tenant].set(sim_.now(),
                                static_cast<double>(tenant_in_use_[tenant]));
  dispatch_shared();
}

void Pool::grant_shared(Callback granted, sim::SimTime waited_since,
                        std::uint32_t tenant) {
  ++in_use_;
  ++tenant_in_use_[tenant];
  ++total_acquired_;
  ++tenant_acquired_[tenant];
  wait_stats_.add(sim_.now() - waited_since);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  tenant_occupancy_[tenant].set(sim_.now(),
                                static_cast<double>(tenant_in_use_[tenant]));
  granted();
}

void Pool::dispatch_shared() {
  // Hand out freed/new units one at a time: the arbiter re-selects against
  // fresh state each round because a grant continuation may synchronously
  // acquire or release (the tier state machines do both).
  while (in_use_ < capacity_ && !waiters_.empty()) {
    const std::size_t idx = arbiter_->select(*this);
    if (idx == TenantArbiter::kNoPick) break;
    Waiter w = std::move(waiters_[idx]);
    waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(idx));
    --tenant_waiting_[w.tenant];
    grant_shared(std::move(w.granted), w.enqueued_at, w.tenant);
  }
}

void Pool::reset_stats(sim::SimTime t) {
  total_acquired_ = 0;
  wait_stats_.reset();
  occupancy_.reset(t);
  occupancy_.set(t, static_cast<double>(in_use_));
  for (std::size_t i = 0; i < tenant_occupancy_.size(); ++i) {
    tenant_acquired_[i] = 0;
    tenant_occupancy_[i].reset(t);
    tenant_occupancy_[i].set(t, static_cast<double>(tenant_in_use_[i]));
  }
}

}  // namespace softres::soft
