#include "soft/pool.h"

namespace softres::soft {

Pool::Pool(sim::Simulator& sim, std::string name, std::size_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  occupancy_.reset(sim.now());
}

bool Pool::try_acquire() {
  if (in_use_ >= capacity_ || !waiters_.empty()) return false;
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(0.0);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  return true;
}

void Pool::set_capacity(std::size_t capacity) {
  if (capacity == capacity_) return;
  epochs_.push_back(CapacityEpoch{sim_.now(), capacity_, capacity});
  capacity_ = capacity;
  while (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

void Pool::reset_stats(sim::SimTime t) {
  total_acquired_ = 0;
  wait_stats_.reset();
  occupancy_.reset(t);
  occupancy_.set(t, static_cast<double>(in_use_));
}

}  // namespace softres::soft
