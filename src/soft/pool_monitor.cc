#include "soft/pool_monitor.h"

#include <algorithm>
#include <cmath>

namespace softres::soft {

std::size_t add_pool_util_probe(sim::Sampler& sampler, const std::string& name,
                                const Pool& pool) {
  const Pool* p = &pool;
  return sampler.add_probe(
      name, [p](sim::SimTime) { return 100.0 * p->utilization(); });
}

std::size_t add_pool_waiters_probe(sim::Sampler& sampler,
                                   const std::string& name, const Pool& pool) {
  const Pool* p = &pool;
  return sampler.add_probe(
      name, [p](sim::SimTime) { return static_cast<double>(p->waiting()); });
}

sim::Histogram utilization_density(const sim::TimeSeries& series,
                                   sim::SimTime lo, sim::SimTime hi,
                                   std::size_t bins) {
  sim::Histogram h(0.0, 100.0, bins);
  // Exactly-100% samples belong in the top bin, not the overflow counter.
  const double top = std::nextafter(100.0, 0.0);
  for (double v : series.window(lo, hi)) h.add(std::min(v, top));
  return h;
}

bool is_saturated(const sim::TimeSeries& series, sim::SimTime lo,
                  sim::SimTime hi, double threshold_pct, double fraction) {
  std::size_t total = 0;
  std::size_t above = 0;
  for (double v : series.window(lo, hi)) {
    ++total;
    if (v >= threshold_pct) ++above;
  }
  if (total == 0) return false;
  return static_cast<double>(above) >= fraction * static_cast<double>(total);
}

}  // namespace softres::soft
