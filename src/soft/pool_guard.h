#pragma once

#include "soft/pool.h"

namespace softres::soft {

/// Move-only RAII holder for one granted Pool unit. Pool::acquire is
/// callback-based — the grant fires inside the pool, possibly synchronously
/// — so the guard cannot *perform* the acquire; instead the grant callback
/// `adopt`s the unit into a guard parked where the in-flight state lives
/// (the Request visit blocks, see tier/request.h). From then on every exit
/// path — explicit release, early return, exception, teardown — pays the
/// unit back exactly once, which is the acquire/release bracket softres-lint
/// SR012 enforces outside src/soft.
///
/// `detach()` is the sanctioned escape for units that outlive their owner:
/// the web tier's lingering close keeps a worker bound after the request is
/// recycled, and RequestArena's destructor detaches parked guards because
/// the pools (owned by the Testbed) are destroyed before the arena drains.
/// A detached unit must be released manually — softres-lint flags that raw
/// release, and the call site carries a SOFTRES_LINT_ALLOW(SR012: ...)
/// explaining why RAII cannot hold it.
///
/// One pointer wide; the hot tier paths hold these inside Request blocks, so
/// adopt/release inline next to Pool's own inline fast paths.
class PoolGuard {
 public:
  PoolGuard() noexcept = default;
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
  PoolGuard(PoolGuard&& o) noexcept : pool_(o.pool_), tenant_(o.tenant_) {
    o.pool_ = nullptr;
  }
  PoolGuard& operator=(PoolGuard&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = o.pool_;
      tenant_ = o.tenant_;
      o.pool_ = nullptr;
    }
    return *this;
  }
  ~PoolGuard() { release(); }

  /// Take ownership of a unit of `pool` that the grant callback just
  /// received on behalf of `tenant`. A guard already holding a unit releases
  /// it first — adopting a fresh grant of the same pool is a release+own,
  /// not a merge.
  void adopt(Pool& pool, std::uint32_t tenant = 0) {
    release();
    pool_ = &pool;
    tenant_ = tenant;
  }

  /// Return the held unit (no-op when empty). The guard empties itself
  /// *before* calling into the pool: Pool::release grants the oldest waiter
  /// synchronously, and that continuation may re-enter the code that owns
  /// this guard.
  void release() {
    if (pool_ != nullptr) {
      Pool* p = pool_;
      pool_ = nullptr;
      p->release(tenant_);
    }
  }

  /// Give up ownership without releasing; returns the pool (nullptr when
  /// empty). The caller takes over the release obligation — including the
  /// tenant id (see tenant()) when the pool is partitioned.
  Pool* detach() noexcept {
    Pool* p = pool_;
    pool_ = nullptr;
    return p;
  }

  /// Non-blocking acquire: an engaged guard on success, empty on failure.
  static PoolGuard try_acquire(Pool& pool, std::uint32_t tenant = 0) {
    PoolGuard g;
    if (pool.try_acquire(tenant)) {
      g.pool_ = &pool;
      g.tenant_ = tenant;
    }
    return g;
  }

  explicit operator bool() const noexcept { return pool_ != nullptr; }
  Pool* pool() const noexcept { return pool_; }
  std::uint32_t tenant() const noexcept { return tenant_; }

 private:
  Pool* pool_ = nullptr;
  std::uint32_t tenant_ = 0;
};

}  // namespace softres::soft
