#pragma once

#include <string>
#include <vector>

#include "sim/sampler.h"
#include "sim/stats.h"
#include "soft/pool.h"

namespace softres::soft {

/// Register a probe sampling a pool's occupancy in percent of capacity. The
/// resulting series feeds the paper's utilization-density analysis
/// (Fig 4 b/c/e/f), which reveals soft-resource saturation that hardware
/// monitors cannot see.
std::size_t add_pool_util_probe(sim::Sampler& sampler, const std::string& name,
                                const Pool& pool);

/// Register a probe sampling a pool's queued acquirers.
std::size_t add_pool_waiters_probe(sim::Sampler& sampler,
                                   const std::string& name, const Pool& pool);

/// Build the probability-density view the paper plots: a histogram over
/// utilization [0,100]% of the per-second samples within [lo, hi).
sim::Histogram utilization_density(const sim::TimeSeries& series,
                                   sim::SimTime lo, sim::SimTime hi,
                                   std::size_t bins = 20);

/// A soft resource counts as saturated over a window when its occupancy sat
/// at >= `threshold` percent for at least `fraction` of the samples. This is
/// the detection rule the allocation algorithm's RunExperiment applies to
/// soft resources, mirroring the hardware CPU rule.
bool is_saturated(const sim::TimeSeries& series, sim::SimTime lo,
                  sim::SimTime hi, double threshold_pct = 98.0,
                  double fraction = 0.6);

}  // namespace softres::soft
