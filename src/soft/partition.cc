#include "soft/partition.h"

#include <algorithm>
#include <cassert>

#include "soft/pool.h"

namespace softres::soft {

const char* share_strategy_name(ShareStrategy s) {
  switch (s) {
    case ShareStrategy::kNone:
      return "none";
    case ShareStrategy::kStaticSplit:
      return "static-split";
    case ShareStrategy::kWorkConserving:
      return "work-conserving";
    case ShareStrategy::kKarmaCredits:
      return "karma-credits";
  }
  return "?";
}

TenantArbiter::TenantArbiter(SharePolicy policy,
                             std::vector<TenantShare> tenants)
    : policy_(policy), tenants_(std::move(tenants)) {
  assert(!tenants_.empty());
  for (const TenantShare& t : tenants_) total_entitlement_ += t.entitlement;
  assert(total_entitlement_ > 0.0);
  credits_.assign(tenants_.size(), 0.0);
  prev_integral_.assign(tenants_.size(), 0.0);
}

double TenantArbiter::entitlement_fraction(std::size_t t) const {
  return tenants_[t].entitlement / total_entitlement_;
}

double TenantArbiter::weight(std::size_t t) const {
  // The gameable axis: work-conserving shares scale the contractual
  // entitlement by whatever demand the tenant reports.
  return std::max(1e-9, tenants_[t].entitlement * tenants_[t].reported_demand);
}

double TenantArbiter::quota(const Pool& pool, std::size_t t) const {
  return entitlement_fraction(t) * static_cast<double>(pool.capacity());
}

bool TenantArbiter::may_take(const Pool& pool, std::uint32_t tenant) const {
  const std::size_t t = tenant;
  assert(t < tenants_.size());
  const double held = static_cast<double>(pool.tenant_in_use(tenant));
  switch (policy_.strategy) {
    case ShareStrategy::kNone:
      return true;
    case ShareStrategy::kStaticSplit:
      // Hard quota, never lent out.
      return held < quota(pool, t);
    case ShareStrategy::kWorkConserving:
      // Any free unit may be taken; the weights only matter under
      // contention (see select()).
      return true;
    case ShareStrategy::kKarmaCredits:
      // Below fair share: always. Above: only while the credit balance
      // lasts. Reported demand is deliberately absent from this rule.
      return held < quota(pool, t) || credits_[t] > 0.0;
  }
  return true;
}

std::size_t TenantArbiter::select(const Pool& pool) const {
  const std::size_t n = pool.waiter_count();
  if (n == 0) return kNoPick;
  if (policy_.strategy == ShareStrategy::kWorkConserving) {
    // Pick the queued tenant furthest below its reported-demand weight
    // (min of in_use/weight), ties to the lower tenant id; then the oldest
    // waiter of that tenant. Deterministic and purely state-driven.
    std::size_t best_tenant = kNoPick;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t t = pool.waiter_tenant(i);
      const double ratio =
          static_cast<double>(pool.tenant_in_use(t)) / weight(t);
      if (best_tenant == kNoPick || ratio < best_ratio ||
          (ratio == best_ratio && t < best_tenant)) {
        best_tenant = t;
        best_ratio = ratio;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (pool.waiter_tenant(i) == best_tenant) return i;
    }
    return kNoPick;
  }
  // Static split and Karma: global FIFO filtered by admissibility — the
  // oldest waiter whose tenant may take the unit.
  for (std::size_t i = 0; i < n; ++i) {
    if (may_take(pool, pool.waiter_tenant(i))) return i;
  }
  return kNoPick;
}

void TenantArbiter::tick(sim::SimTime now, const Pool& pool) {
  if (policy_.strategy != ShareStrategy::kKarmaCredits) return;
  if (!seeded_) {
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      prev_integral_[t] = pool.tenant_occupancy_integral(t, now);
    }
    last_tick_ = now;
    seeded_ = true;
    return;
  }
  const double dt = now - last_tick_;
  last_tick_ = now;
  if (dt <= 0.0) return;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const double integral = pool.tenant_occupancy_integral(t, now);
    if (integral < prev_integral_[t]) {
      // reset_stats rewound the integral; reseed this tenant's snapshot.
      prev_integral_[t] = integral;
      continue;
    }
    const double used = (integral - prev_integral_[t]) / dt;
    prev_integral_[t] = integral;
    const double fair = quota(pool, t);
    // Earn while below fair, pay while above — both in unit-seconds, so a
    // long quiet spell funds an equally sized burst later, up to the cap.
    const double cap = policy_.karma_credit_cap_s * std::max(1.0, fair);
    credits_[t] = std::clamp(credits_[t] + (fair - used) * dt, 0.0, cap);
  }
}

}  // namespace softres::soft
