#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "soft/pool.h"

namespace softres::soft {

/// Role a pool plays in the n-tier topology. Controllers use this to choose
/// headroom policy (web tiers buffer bursts, cf. the allocation algorithm's
/// web_buffer_factor) without knowing anything about tier classes.
enum class PoolRole { kWebWorkers, kAppThreads, kDbConnections };

const char* pool_role_name(PoolRole role);

/// Uniform registration surface for every live-resizable pool in a testbed.
///
/// Tiers register the pools they own (instead of tuners grubbing through
/// per-tier accessors), optionally with floor/ceiling bounds that encode
/// tier-local constraints. Cross-pool consistency work — keeping a JVM's
/// live-thread count in sync with its pools so §III-B GC over-allocation
/// costs are felt, propagating connection counts upstream — hangs off
/// post-resize hooks that a controller runs once per control tick after all
/// resizes of that tick have been applied.
///
/// Registration order is the iteration order; controllers must walk
/// `entries()` in order (never keyed/unordered) to keep trials bit-identical
/// across sweep workers.
class ResizablePoolSet {
 public:
  struct Entry {
    Pool* pool = nullptr;
    PoolRole role = PoolRole::kAppThreads;
    std::size_t floor = 1;    ///< never shrink below this
    std::size_t ceiling = 0;  ///< 0 = no pool-local ceiling
  };

  using Hook = std::function<void()>;

  void add(Pool& pool, PoolRole role, std::size_t floor = 1,
           std::size_t ceiling = 0);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entry whose pool is named `name`, or nullptr. Linear scan — the set is
  /// a handful of pools and this runs at control cadence, not per event.
  const Entry* find(const std::string& name) const;

  /// Register a consistency hook; hooks run in registration order.
  void add_post_resize_hook(Hook hook);
  void run_hooks();

 private:
  std::vector<Entry> entries_;
  std::vector<Hook> hooks_;
};

}  // namespace softres::soft
