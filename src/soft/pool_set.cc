#include "soft/pool_set.h"

#include <utility>

namespace softres::soft {

const char* pool_role_name(PoolRole role) {
  switch (role) {
    case PoolRole::kWebWorkers:
      return "web_workers";
    case PoolRole::kAppThreads:
      return "app_threads";
    case PoolRole::kDbConnections:
      return "db_connections";
  }
  return "unknown";
}

void ResizablePoolSet::add(Pool& pool, PoolRole role, std::size_t floor,
                           std::size_t ceiling) {
  Entry e;
  e.pool = &pool;
  e.role = role;
  e.floor = floor;
  e.ceiling = ceiling;
  entries_.push_back(e);
}

const ResizablePoolSet::Entry* ResizablePoolSet::find(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.pool->name() == name) return &e;
  }
  return nullptr;
}

void ResizablePoolSet::add_post_resize_hook(Hook hook) {
  hooks_.push_back(std::move(hook));
}

void ResizablePoolSet::run_hooks() {
  for (Hook& h : hooks_) h();
}

}  // namespace softres::soft
