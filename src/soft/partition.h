#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace softres::soft {

class Pool;

/// How a shared Pool divides its units between tenants. `kNone` keeps the
/// pool single-tenant (the legacy path — Pool's fast paths are untouched and
/// bit-identical). The other three reproduce the sharing-policy spectrum from
/// the multi-tenant literature ("SLO beyond the Hardware Isolation Limits",
/// Karma/Ginseng): isolation, efficiency, and strategy-proof efficiency.
enum class ShareStrategy : std::uint8_t {
  kNone,
  /// Hard quota per tenant (entitlement share x capacity). Never lends idle
  /// units: perfectly isolated, not work-conserving.
  kStaticSplit,
  /// Work-conserving weighted shares: a free unit always goes to the waiter
  /// whose tenant is furthest below its *self-reported* demand weight. Fully
  /// efficient, but the weights are gameable — inflating reported demand
  /// buys a larger share of the contended pool.
  kWorkConserving,
  /// Karma-style credits: entitlements (not reports) set the fair share;
  /// tenants running below fair earn credits they can later spend to borrow
  /// above it. Self-reported demand never enters any decision, so demand
  /// misreporting is exactly worthless — the strategy-proofness property the
  /// tenant_sweep ctest pins down.
  kKarmaCredits,
};

const char* share_strategy_name(ShareStrategy s);

/// Pool-partitioning knobs carried alongside GovernorConfig through
/// ExperimentOptions -> RunContext -> Testbed. Like the governor, the policy
/// is deliberately NOT part of the trial-seed derivation: strategies must be
/// comparable on identical arrival sequences.
struct SharePolicy {
  ShareStrategy strategy = ShareStrategy::kNone;
  /// Credit accounting cadence; the Testbed ticks arbiters at the sampler
  /// cadence, this only scales the ceiling below.
  double karma_epoch_s = 0.5;
  /// Per-tenant credit ceiling, in unit-seconds per unit of fair share.
  /// Bounds how long a tenant can borrow above fair after a quiet spell.
  double karma_credit_cap_s = 10.0;

  bool enabled() const { return strategy != ShareStrategy::kNone; }
};

/// One tenant's contract with a shared pool. `entitlement` is what the
/// operator provisioned (the basis for static quotas and Karma fair shares);
/// `reported_demand` is what the tenant *claims* to need — only the
/// work-conserving strategy trusts it, which is precisely its weakness.
struct TenantShare {
  std::string name;
  double entitlement = 1.0;
  double reported_demand = 1.0;
};

/// Per-pool admission arbiter. A Pool with an arbiter attached defers two
/// decisions to it: may a tenant take a free unit right now (`may_take`),
/// and which queued waiter receives a freed unit (`select`). Both are pure
/// functions of pool state + credit ledgers, so grant order stays a
/// deterministic function of the event sequence.
class TenantArbiter {
 public:
  static constexpr std::size_t kNoPick = std::numeric_limits<std::size_t>::max();

  TenantArbiter(SharePolicy policy, std::vector<TenantShare> tenants);

  std::size_t tenants() const { return tenants_.size(); }
  ShareStrategy strategy() const { return policy_.strategy; }
  const TenantShare& tenant(std::size_t t) const { return tenants_[t]; }

  /// May `tenant` take one more unit of `pool`? Called by Pool::acquire when
  /// a unit is free, and used by `select` to filter waiters.
  bool may_take(const Pool& pool, std::uint32_t tenant) const;

  /// Index into `pool`'s waiter queue of the waiter to grant a freed unit
  /// to, or kNoPick when no queued tenant is currently admissible (the unit
  /// then idles — the non-work-conserving strategies pay this price for
  /// isolation). FIFO within a tenant; across tenants the strategy decides.
  std::size_t select(const Pool& pool) const;

  /// Karma epoch accounting: credit each tenant for time spent below its
  /// fair share since the last tick, charge time spent above. Driven at the
  /// sampler cadence by the Testbed; a no-op for the other strategies.
  void tick(sim::SimTime now, const Pool& pool);

  /// This tenant's hard quota (static split) or fair share (Karma), in
  /// units, for the pool's current capacity.
  double quota(const Pool& pool, std::size_t t) const;
  /// Remaining Karma balance, unit-seconds (0 for other strategies).
  double credits(std::size_t t) const { return credits_[t]; }

 private:
  double entitlement_fraction(std::size_t t) const;
  double weight(std::size_t t) const;

  SharePolicy policy_;
  std::vector<TenantShare> tenants_;
  double total_entitlement_ = 0.0;
  // Karma ledgers: balance + previous occupancy-integral snapshot per
  // tenant. `seeded_` guards the first tick (and any reset_stats rewind).
  std::vector<double> credits_;
  std::vector<double> prev_integral_;
  sim::SimTime last_tick_ = 0.0;
  bool seeded_ = false;
};

}  // namespace softres::soft
