#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "support/prof.h"

namespace softres::soft {

class TenantArbiter;

/// A *soft resource* in the paper's sense: a counted pool of software units
/// (worker threads, DB connections) that gate access to hardware. Acquires
/// beyond capacity queue FIFO; this queueing is exactly how under-allocation
/// bottlenecks form (Section III-A), and the capacity itself is what the
/// allocation algorithm of Section IV tunes.
///
/// Multi-tenant mode: attaching a TenantArbiter (see partition.h) makes the
/// pool tenant-aware — acquire/release carry a tenant id, per-tenant
/// occupancy is tracked, and the arbiter decides admission and waiter
/// selection. With no arbiter attached every path below is byte-for-byte the
/// single-tenant behaviour (the tenant argument defaults to 0 and is only
/// recorded on waiters), keeping legacy trials bit-identical.
class Pool {
 public:
  using Callback = sim::InlineCallback;

  /// One live-resize event: at time `at` the capacity moved `from` -> `to`.
  /// The log is what lets timelines and reports distinguish "load grew"
  /// from "capacity shrank" after the fact.
  struct CapacityEpoch {
    sim::SimTime at;
    std::size_t from;
    std::size_t to;
  };

  Pool(sim::Simulator& sim, std::string name, std::size_t capacity);
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Request one unit on behalf of `tenant`. `granted` fires immediately
  /// (synchronously) if a unit is free — and, with an arbiter attached, the
  /// tenant is admissible — otherwise when a released unit is handed to this
  /// waiter (FIFO; arbiter-ordered across tenants).
  void acquire(Callback granted, std::uint32_t tenant = 0);

  /// Non-blocking variant; true on success.
  bool try_acquire(std::uint32_t tenant = 0);

  /// Return one unit held by `tenant`; hands it straight to the oldest
  /// (arbiter-selected) waiter if any.
  void release(std::uint32_t tenant = 0);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t waiting() const { return waiters_.size(); }
  /// Occupancy fraction, clamped to [0,1]. While draining, `in_use_` can
  /// exceed `capacity_`; reporting >100% would make a shrinking pool look
  /// like a measurement bug, so the over-commit is surfaced via `draining()`
  /// and `drain_pending()` instead.
  double utilization() const {
    if (!capacity_) return 1.0;
    return std::min(
        1.0, static_cast<double>(in_use_) / static_cast<double>(capacity_));
  }
  /// A pool is saturated when every unit is taken and someone is queued.
  /// `>=`, not `==`: a draining pool (in_use_ > capacity_) with a queue is
  /// just as starved as an exactly-full one.
  bool saturated() const { return in_use_ >= capacity_ && !waiters_.empty(); }
  /// True while a shrink is still paying out: more units are checked out
  /// than the new capacity allows. Drains lazily, one unit per release.
  bool draining() const { return in_use_ > capacity_; }
  /// Units that must be released (and retired, not recycled) before the pool
  /// reaches its post-shrink capacity. Zero when not draining.
  std::size_t drain_pending() const {
    return in_use_ > capacity_ ? in_use_ - capacity_ : 0;
  }
  /// Units retired by lazy shrink since construction (never reset).
  std::uint64_t drained_total() const { return drained_total_; }
  /// Full live-resize history, in event order.
  const std::vector<CapacityEpoch>& capacity_epochs() const {
    return epochs_;
  }

  std::uint64_t total_acquired() const { return total_acquired_; }
  /// Mean time acquirers spent queued (0 when nothing ever waited).
  double mean_wait_time() const { return wait_stats_.mean(); }
  const sim::Welford& wait_stats() const { return wait_stats_; }
  /// Time-weighted occupancy statistics since construction / last reset.
  double average_in_use(sim::SimTime until) const {
    return occupancy_.average(until);
  }
  /// Running occupancy integral (unit-seconds) up to `until`. Differencing
  /// two snapshots yields the exact time-weighted occupancy of the window —
  /// the governor's demand signal, immune to sampling-instant aliasing when
  /// holds are much shorter than the control period. Drops on reset_stats.
  double occupancy_integral(sim::SimTime until) const {
    return occupancy_.integral(until);
  }
  void reset_stats(sim::SimTime t);

  /// Resize the pool (the allocation algorithm's "S = 2S" step). Growing
  /// admits waiters immediately; shrinking takes effect lazily as units are
  /// released.
  void set_capacity(std::size_t capacity);

  /// Attach a partition arbiter (non-owning; the Testbed owns it). Must be
  /// called before any unit is handed out — per-tenant ledgers start empty.
  void set_arbiter(TenantArbiter* arbiter);
  TenantArbiter* arbiter() const { return arbiter_; }

  // Per-tenant views; valid only with an arbiter attached (the vectors are
  // sized to the arbiter's tenant count).
  std::size_t tenant_in_use(std::uint32_t t) const { return tenant_in_use_[t]; }
  std::size_t tenant_waiting(std::uint32_t t) const {
    return tenant_waiting_[t];
  }
  std::uint64_t tenant_acquired(std::uint32_t t) const {
    return tenant_acquired_[t];
  }
  /// Per-tenant running occupancy integral (unit-seconds); the governor's
  /// per-tenant demand-attribution signal and Karma's usage meter.
  double tenant_occupancy_integral(std::uint32_t t, sim::SimTime until) const {
    return tenant_occupancy_[t].integral(until);
  }
  // Waiter-queue view for the arbiter's select().
  std::size_t waiter_count() const { return waiters_.size(); }
  std::uint32_t waiter_tenant(std::size_t i) const {
    return waiters_[i].tenant;
  }

 private:
  struct Waiter {
    Callback granted;
    sim::SimTime enqueued_at;
    std::uint32_t tenant = 0;
  };

  void grant(Callback granted, sim::SimTime waited_since);
  // Arbiter-mediated slow paths (pool.cc): same accounting as the legacy
  // inline paths plus the per-tenant ledgers and the admission/selection
  // hooks. Kept out of line — multi-tenant trials opt into the cost.
  void acquire_shared(Callback granted, std::uint32_t tenant);
  void release_shared(std::uint32_t tenant);
  void grant_shared(Callback granted, sim::SimTime waited_since,
                    std::uint32_t tenant);
  void dispatch_shared();

  sim::Simulator& sim_;
  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Waiter> waiters_;
  std::uint64_t total_acquired_ = 0;
  std::uint64_t drained_total_ = 0;
  sim::Welford wait_stats_;
  sim::TimeWeighted occupancy_;
  std::vector<CapacityEpoch> epochs_;
  TenantArbiter* arbiter_ = nullptr;
  std::vector<std::size_t> tenant_in_use_;
  std::vector<std::size_t> tenant_waiting_;
  std::vector<std::uint64_t> tenant_acquired_;
  std::vector<sim::TimeWeighted> tenant_occupancy_;
};

// acquire/release bracket every request's residence in every tier (two pools
// in Tomcat alone), so the uncontended paths — counter bump, stats update,
// synchronous grant — stay in the header and inline into the tier state
// machines. The contended-path deque traffic is rare by comparison.

inline void Pool::grant(Callback granted, sim::SimTime waited_since) {
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(sim_.now() - waited_since);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  granted();
}

inline void Pool::acquire(Callback granted, std::uint32_t tenant) {
  // The synchronous grant path runs the continuation under this scope;
  // scoped subsystems it reaches (cpu, dist, queue pushes) nest and subtract,
  // so pool_service keeps only the grant-cascade glue. See DESIGN.md §11.
  SOFTRES_PROF_SCOPE(kPoolService);
  assert(granted);
  if (arbiter_ != nullptr) {
    acquire_shared(std::move(granted), tenant);
    return;
  }
  if (in_use_ < capacity_) {
    grant(std::move(granted), sim_.now());
  } else {
    waiters_.push_back(Waiter{std::move(granted), sim_.now(), tenant});
  }
}

inline void Pool::release(std::uint32_t tenant) {
  SOFTRES_PROF_SCOPE(kPoolService);
  assert(in_use_ > 0);
  if (arbiter_ != nullptr) {
    release_shared(tenant);
    return;
  }
  // A release while draining retires the unit instead of recycling it: this
  // is the lazy shrink paying out one unit at a time.
  if (in_use_ > capacity_) ++drained_total_;
  --in_use_;
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  if (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

}  // namespace softres::soft
