#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "support/prof.h"

namespace softres::soft {

/// A *soft resource* in the paper's sense: a counted pool of software units
/// (worker threads, DB connections) that gate access to hardware. Acquires
/// beyond capacity queue FIFO; this queueing is exactly how under-allocation
/// bottlenecks form (Section III-A), and the capacity itself is what the
/// allocation algorithm of Section IV tunes.
class Pool {
 public:
  using Callback = sim::InlineCallback;

  /// One live-resize event: at time `at` the capacity moved `from` -> `to`.
  /// The log is what lets timelines and reports distinguish "load grew"
  /// from "capacity shrank" after the fact.
  struct CapacityEpoch {
    sim::SimTime at;
    std::size_t from;
    std::size_t to;
  };

  Pool(sim::Simulator& sim, std::string name, std::size_t capacity);
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Request one unit. `granted` fires immediately (synchronously) if a unit
  /// is free, otherwise when one is released to this waiter (FIFO).
  void acquire(Callback granted);

  /// Non-blocking variant; true on success.
  bool try_acquire();

  /// Return one unit; hands it straight to the oldest waiter if any.
  void release();

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t waiting() const { return waiters_.size(); }
  /// Occupancy fraction, clamped to [0,1]. While draining, `in_use_` can
  /// exceed `capacity_`; reporting >100% would make a shrinking pool look
  /// like a measurement bug, so the over-commit is surfaced via `draining()`
  /// and `drain_pending()` instead.
  double utilization() const {
    if (!capacity_) return 1.0;
    return std::min(
        1.0, static_cast<double>(in_use_) / static_cast<double>(capacity_));
  }
  /// A pool is saturated when every unit is taken and someone is queued.
  /// `>=`, not `==`: a draining pool (in_use_ > capacity_) with a queue is
  /// just as starved as an exactly-full one.
  bool saturated() const { return in_use_ >= capacity_ && !waiters_.empty(); }
  /// True while a shrink is still paying out: more units are checked out
  /// than the new capacity allows. Drains lazily, one unit per release.
  bool draining() const { return in_use_ > capacity_; }
  /// Units that must be released (and retired, not recycled) before the pool
  /// reaches its post-shrink capacity. Zero when not draining.
  std::size_t drain_pending() const {
    return in_use_ > capacity_ ? in_use_ - capacity_ : 0;
  }
  /// Units retired by lazy shrink since construction (never reset).
  std::uint64_t drained_total() const { return drained_total_; }
  /// Full live-resize history, in event order.
  const std::vector<CapacityEpoch>& capacity_epochs() const {
    return epochs_;
  }

  std::uint64_t total_acquired() const { return total_acquired_; }
  /// Mean time acquirers spent queued (0 when nothing ever waited).
  double mean_wait_time() const { return wait_stats_.mean(); }
  const sim::Welford& wait_stats() const { return wait_stats_; }
  /// Time-weighted occupancy statistics since construction / last reset.
  double average_in_use(sim::SimTime until) const {
    return occupancy_.average(until);
  }
  /// Running occupancy integral (unit-seconds) up to `until`. Differencing
  /// two snapshots yields the exact time-weighted occupancy of the window —
  /// the governor's demand signal, immune to sampling-instant aliasing when
  /// holds are much shorter than the control period. Drops on reset_stats.
  double occupancy_integral(sim::SimTime until) const {
    return occupancy_.integral(until);
  }
  void reset_stats(sim::SimTime t);

  /// Resize the pool (the allocation algorithm's "S = 2S" step). Growing
  /// admits waiters immediately; shrinking takes effect lazily as units are
  /// released.
  void set_capacity(std::size_t capacity);

 private:
  struct Waiter {
    Callback granted;
    sim::SimTime enqueued_at;
  };

  void grant(Callback granted, sim::SimTime waited_since);

  sim::Simulator& sim_;
  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Waiter> waiters_;
  std::uint64_t total_acquired_ = 0;
  std::uint64_t drained_total_ = 0;
  sim::Welford wait_stats_;
  sim::TimeWeighted occupancy_;
  std::vector<CapacityEpoch> epochs_;
};

// acquire/release bracket every request's residence in every tier (two pools
// in Tomcat alone), so the uncontended paths — counter bump, stats update,
// synchronous grant — stay in the header and inline into the tier state
// machines. The contended-path deque traffic is rare by comparison.

inline void Pool::grant(Callback granted, sim::SimTime waited_since) {
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(sim_.now() - waited_since);
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  granted();
}

inline void Pool::acquire(Callback granted) {
  // The synchronous grant path runs the continuation under this scope;
  // scoped subsystems it reaches (cpu, dist, queue pushes) nest and subtract,
  // so pool_service keeps only the grant-cascade glue. See DESIGN.md §11.
  SOFTRES_PROF_SCOPE(kPoolService);
  assert(granted);
  if (in_use_ < capacity_) {
    grant(std::move(granted), sim_.now());
  } else {
    waiters_.push_back(Waiter{std::move(granted), sim_.now()});
  }
}

inline void Pool::release() {
  SOFTRES_PROF_SCOPE(kPoolService);
  assert(in_use_ > 0);
  // A release while draining retires the unit instead of recycling it: this
  // is the lazy shrink paying out one unit at a time.
  if (in_use_ > capacity_) ++drained_total_;
  --in_use_;
  occupancy_.set(sim_.now(), static_cast<double>(in_use_));
  if (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    grant(std::move(w.granted), w.enqueued_at);
  }
}

}  // namespace softres::soft
