#pragma once

#include <cstdint>

namespace softres::sim {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the simulator draws from an
/// explicitly passed Rng so that experiments are exactly reproducible and
/// independent streams can be derived per subsystem with `split()`.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Exponential variate with the given mean (mean <= 0 returns 0).
  double exponential(double mean);

  /// Standard normal variate (Box-Muller, cached pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal variate parameterised by the *median* and sigma of log-space.
  double lognormal_median(double median, double sigma);

  /// Derive an independent child stream; deterministic given current state.
  Rng split();

  /// Stateless SplitMix64 finalizer of (seed, value): the same pair always
  /// maps to the same 64-bit word, independent of any stream's draw order.
  /// Used for deterministic per-item decisions such as 1-in-N trace sampling.
  static std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace softres::sim
