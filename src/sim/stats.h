#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "sim/sim_time.h"

namespace softres::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Welford {
 public:
  // Inline: servers and pools feed a sample into a Welford on nearly every
  // completion, so this sits on the simulation hot path.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }
  void merge(const Welford& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi) with under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  void reset();

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total() const { return total_; }
  /// Fraction of total weight in bin i (0 when empty).
  double density(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

/// Histogram with caller-supplied bucket boundaries (e.g. the paper's
/// response-time buckets [0,.2,.4,.6,.8,1,1.5,2,inf) in Fig 3c).
class BucketedHistogram {
 public:
  explicit BucketedHistogram(std::vector<double> upper_bounds);

  void add(double x);
  std::size_t buckets() const { return counts_.size(); }
  /// Upper bound of bucket i; the last bucket is unbounded.
  double upper_bound(std::size_t i) const;
  std::size_t count(std::size_t i) const { return counts_[i]; }
  std::size_t total() const { return total_; }
  double fraction(std::size_t i) const;

 private:
  std::vector<double> bounds_;       // ascending; implicit +inf terminal bucket
  std::vector<std::size_t> counts_;  // bounds_.size() + 1 entries
  std::size_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths, pool
/// occupancy, #jobs in server). `set(t, v)` records that the signal holds
/// value v from time t until the next call.
class TimeWeighted {
 public:
  // Inline: tracks pool occupancy / server job counts, updated per event.
  void set(SimTime t, double value) {
    const SimTime dt = t - last_;
    if (dt > 0.0) weighted_sum_ += value_ * dt;
    last_ = t;
    value_ = value;
  }
  /// Close the window at time t and return stats; the signal keeps running.
  double average(SimTime until) const;
  /// Running integral of the signal up to `until` (since construction or the
  /// last reset). Two snapshots give an exact window average — how the
  /// governor measures demand without aliasing sub-tick holds.
  double integral(SimTime until) const {
    return weighted_sum_ + value_ * (until - last_);
  }
  double current() const { return value_; }
  void reset(SimTime t);

 private:
  SimTime start_ = 0.0;
  SimTime last_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Reservoir of raw samples with exact quantile queries. The workloads we
/// simulate produce < 10^6 response times per run, so exact storage is cheap
/// and avoids estimator bias in the SLA goodput computation.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// q in [0, 1]; nearest-rank quantile. Returns 0 for an empty set.
  double quantile(double q) const;
  /// Number of samples <= threshold.
  std::size_t count_at_or_below(double threshold) const;
  const std::vector<double>& raw() const { return samples_; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace softres::sim
