#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "support/prof.h"

namespace softres::sim {
namespace {

/// Precomputed ziggurat for the unit exponential (Marsaglia & Tsang 2000),
/// 256 layers, widened from the classic 32-bit tables to the 53 uniform bits
/// a double can hold. Layer areas are all kZigguratV; kZigguratR is the
/// start of the analytic tail.
constexpr int kZigguratLayers = 256;
constexpr double kZigguratR = 7.69711747013104972;
constexpr double kZigguratV = 3.9496598225815571993e-3;
constexpr double kZigguratM = 9007199254740992.0;  // 2^53

struct ZigguratExpTable {
  std::uint64_t ke[kZigguratLayers];  // accept threshold per layer (53-bit)
  double we[kZigguratLayers];         // layer x-scale / 2^53
  double fe[kZigguratLayers];         // f(x_i) = exp(-x_i)

  ZigguratExpTable() {
    double de = kZigguratR;
    double te = kZigguratR;
    const double q = kZigguratV / std::exp(-de);
    ke[0] = static_cast<std::uint64_t>((de / q) * kZigguratM);
    ke[1] = 0;
    we[0] = q / kZigguratM;
    we[kZigguratLayers - 1] = de / kZigguratM;
    fe[0] = 1.0;
    fe[kZigguratLayers - 1] = std::exp(-de);
    for (int i = kZigguratLayers - 2; i >= 1; --i) {
      de = -std::log(kZigguratV / de + std::exp(-de));
      ke[i + 1] = static_cast<std::uint64_t>((de / te) * kZigguratM);
      te = de;
      fe[i] = std::exp(-de);
      we[i] = de / kZigguratM;
    }
  }
};

const ZigguratExpTable kExpTable;

/// Unit exponential draw: the common case (~98.9 % of draws) is a single
/// next_u64. The low 8 bits pick the layer, the high 53 bits are the uniform
/// position inside it — disjoint bit ranges, so index and position are
/// independent.
double ziggurat_exp(Rng& rng) {
  for (;;) {
    const std::uint64_t u = rng.next_u64();
    const std::uint64_t jz = u >> 11;          // 53-bit uniform
    const std::size_t iz = u & 0xFF;           // layer index
    if (jz < kExpTable.ke[iz]) {
      return static_cast<double>(jz) * kExpTable.we[iz];
    }
    if (iz == 0) {
      // Tail beyond R: memoryless, so R plus a fresh unit exponential.
      double v;
      do {
        v = rng.next_double();
      } while (v <= 0.0);
      return kZigguratR - std::log(v);
    }
    const double x = static_cast<double>(jz) * kExpTable.we[iz];
    if (kExpTable.fe[iz] +
            rng.next_double() * (kExpTable.fe[iz - 1] - kExpTable.fe[iz]) <
        std::exp(-x)) {
      return x;
    }
  }
}

}  // namespace

double fast_exponential(Rng& rng, double mean) {
  SOFTRES_PROF_SCOPE(kDistSample);
  if (mean <= 0.0) return 0.0;
  return mean * ziggurat_exp(rng);
}

double LogNormal::mean() const {
  // mean of lognormal with mu = ln(median): median * exp(sigma^2 / 2).
  return median_ * std::exp(0.5 * sigma_ * sigma_);
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the bounded Pareto.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return std::log(hi_ / lo_) / (1.0 / lo_ - 1.0 / hi_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

Empirical::Empirical(std::vector<double> values) : values_(std::move(values)) {
  assert(!values_.empty());
  mean_ = std::accumulate(values_.begin(), values_.end(), 0.0) /
          static_cast<double>(values_.size());
}

double Empirical::sample(Rng& rng) const {
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(values_.size()) - 1));
  return values_[i];
}

DiscreteChoice::DiscreteChoice(std::vector<double> weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  probability_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    assert(weights[i] >= 0.0);
    probability_[i] = weights[i] / total;
  }
  build_alias();
}

void DiscreteChoice::build_alias() {
  // Walker/Vose alias construction: split the masses into "small" (< 1/n)
  // and "large" columns, then pair each small column with a large donor.
  const std::size_t n = probability_.size();
  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = static_cast<std::uint32_t>(i);
    scaled[i] = probability_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Whatever remains (round-off stragglers) keeps probability 1.0: it always
  // accepts its own column, which is exactly right at the boundary.
}

std::size_t DiscreteChoice::sample(Rng& rng) const {
  const double u = rng.next_double() * static_cast<double>(prob_.size());
  std::size_t i = static_cast<std::size_t>(u);
  if (i >= prob_.size()) i = prob_.size() - 1;  // u == n after round-up
  const double frac = u - static_cast<double>(i);
  return frac < prob_[i] ? i : alias_[i];
}

double DiscreteChoice::probability(std::size_t i) const {
  assert(i < probability_.size());
  return probability_[i];
}

Zipf::Zipf(std::size_t n, double s)
    : choice_([n, s] {
        assert(n > 0);
        std::vector<double> w(n);
        for (std::size_t k = 0; k < n; ++k) {
          w[k] = std::pow(static_cast<double>(k + 1), -s);
        }
        return w;
      }()) {
  for (std::size_t k = 1; k <= n; ++k) {
    mean_ += static_cast<double>(k) * choice_.probability(k - 1);
  }
}

double Zipf::sample(Rng& rng) const {
  return static_cast<double>(sample_rank(rng));
}

std::size_t Zipf::sample_rank(Rng& rng) const {
  return choice_.sample(rng) + 1;
}

DistributionPtr constant(double v) { return std::make_shared<Deterministic>(v); }
DistributionPtr exponential(double mean) {
  return std::make_shared<Exponential>(mean);
}
DistributionPtr lognormal(double median, double sigma) {
  return std::make_shared<LogNormal>(median, sigma);
}
DistributionPtr shifted_exp(double offset, double mean_extra) {
  return std::make_shared<ShiftedExponential>(offset, mean_extra);
}
DistributionPtr uniform(double lo, double hi) {
  return std::make_shared<Uniform>(lo, hi);
}
DistributionPtr bounded_pareto(double lo, double hi, double alpha) {
  return std::make_shared<BoundedPareto>(lo, hi, alpha);
}
DistributionPtr zipf(std::size_t n, double s) {
  return std::make_shared<Zipf>(n, s);
}

}  // namespace softres::sim
