#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace softres::sim {

double LogNormal::mean() const {
  // mean of lognormal with mu = ln(median): median * exp(sigma^2 / 2).
  return median_ * std::exp(0.5 * sigma_ * sigma_);
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the bounded Pareto.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return std::log(hi_ / lo_) / (1.0 / lo_ - 1.0 / hi_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

Empirical::Empirical(std::vector<double> values) : values_(std::move(values)) {
  assert(!values_.empty());
  mean_ = std::accumulate(values_.begin(), values_.end(), 0.0) /
          static_cast<double>(values_.size());
}

double Empirical::sample(Rng& rng) const {
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(values_.size()) - 1));
  return values_[i];
}

DiscreteChoice::DiscreteChoice(std::vector<double> weights) {
  assert(!weights.empty());
  cumulative_.resize(weights.size());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    assert(weights[i] >= 0.0);
    acc += weights[i] / total;
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against round-off
}

std::size_t DiscreteChoice::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double DiscreteChoice::probability(std::size_t i) const {
  assert(i < cumulative_.size());
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

DistributionPtr constant(double v) { return std::make_shared<Deterministic>(v); }
DistributionPtr exponential(double mean) {
  return std::make_shared<Exponential>(mean);
}
DistributionPtr lognormal(double median, double sigma) {
  return std::make_shared<LogNormal>(median, sigma);
}
DistributionPtr shifted_exp(double offset, double mean_extra) {
  return std::make_shared<ShiftedExponential>(offset, mean_extra);
}
DistributionPtr uniform(double lo, double hi) {
  return std::make_shared<Uniform>(lo, hi);
}
DistributionPtr bounded_pareto(double lo, double hi, double alpha) {
  return std::make_shared<BoundedPareto>(lo, hi, alpha);
}

}  // namespace softres::sim
