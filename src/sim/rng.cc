#include "sim/rng.h"

#include <cmath>

namespace softres::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_median(double median, double sigma) {
  if (median <= 0.0) return 0.0;
  return median * std::exp(sigma * normal());
}

Rng Rng::split() {
  Rng child(0);
  for (auto& s : child.s_) s = next_u64();
  return child;
}

std::uint64_t Rng::hash_mix(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t x = seed ^ (value + 0x9E3779B97F4A7C15ull * (value | 1));
  return splitmix64(x);
}

}  // namespace softres::sim
