#include "sim/simulator.h"

#include <cassert>

namespace softres::sim {

Simulator::~Simulator() {
  for (Record* r : all_) delete r;
}

Simulator::Record* Simulator::allocate() {
  if (!freelist_.empty()) {
    Record* r = freelist_.back();
    freelist_.pop_back();
    return r;
  }
  Record* r = new Record();
  all_.push_back(r);
  return r;
}

void Simulator::release(Record* r) {
  r->seq = 0;
  r->fn = nullptr;
  freelist_.push_back(r);
}

EventHandle Simulator::schedule(SimTime delay, Callback fn) {
  return schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime t, Callback fn) {
  assert(fn);
  Record* r = allocate();
  r->time = t < now_ ? now_ : t;
  r->seq = next_seq_++;
  r->fn = std::move(fn);
  heap_.push(r);
  ++live_;
  return EventHandle(r, r->seq);
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  auto* r = static_cast<Record*>(h.record_);
  if (r->seq != h.seq_ || r->seq == 0) return false;  // stale handle
  // Mark cancelled; the record is reclaimed lazily when popped.
  r->seq = 0;
  r->fn = nullptr;
  --live_;
  return true;
}

void Simulator::dispatch(Record* r) {
  now_ = r->time;
  Callback fn = std::move(r->fn);
  release(r);
  --live_;
  ++executed_;
  fn();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Record* r = heap_.top();
    heap_.pop();
    if (r->seq == 0) {  // cancelled
      freelist_.push_back(r);
      continue;
    }
    dispatch(r);
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty()) {
    Record* r = heap_.top();
    if (r->seq != 0 && r->time > t) break;
    heap_.pop();
    if (r->seq == 0) {
      freelist_.push_back(r);
      continue;
    }
    dispatch(r);
  }
  if (t > now_) now_ = t;
}

}  // namespace softres::sim
