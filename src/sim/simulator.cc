#include "sim/simulator.h"

#include <cassert>

namespace softres::sim {

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  auto* r = static_cast<Record*>(h.record_);
  // Generation mismatch = the record was recycled since this handle was
  // issued (possibly several times); the handle is stale regardless of what
  // currently occupies the slot. live_seq == 0 = this scheduling already
  // fired or was cancelled. Cancellation is eager: the queue entry is
  // erased via the index->position map and the record recycles immediately
  // (the generation bump retires every outstanding handle to it).
  if (r->gen != h.gen_ || r->live_seq == 0) return false;
  queue_.erase(r->idx);
  r->live_seq = 0;
  release(r);
  return true;
}

bool Simulator::reschedule(EventHandle h, SimTime delay) {
  return reschedule_at(h, now_ + (delay > 0.0 ? delay : 0.0));
}

bool Simulator::reschedule_at(EventHandle h, SimTime t) {
  if (!h.valid()) return false;
  auto* r = static_cast<Record*>(h.record_);
  if (r->gen != h.gen_ || r->live_seq == 0) return false;
  // Re-key the record's one pending entry in place — no callback move, no
  // record churn, no superseded entry left behind; the heap sift is a level
  // or two since due times only drift. Fresh seq: the moved event fires in
  // FIFO order as if scheduled now.
  const std::uint64_t seq = next_seq_++;
  assert(seq < (std::uint64_t{1} << (64 - kIdxBits)));
  r->live_seq = seq;
  queue_.update(r->idx, {t < now_ ? now_ : t, (seq << kIdxBits) | r->idx});
  return true;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  dispatch(queue_.pop());
  return true;
}

void Simulator::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(SimTime t) {
  // The cached top bounds every pending entry (heap minimum), so stopping
  // at the first top with time > t is exact.
  while (!queue_.empty() && queue_.top().time <= t) {
    dispatch(queue_.pop());
  }
  if (t > now_) now_ = t;
}

}  // namespace softres::sim
