#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_callback.h"
#include "sim/sim_time.h"

namespace softres::sim {

/// Handle to a scheduled event; allows O(1) cancellation. Default-constructed
/// handles are inert. The handle pins the *generation* the record had when
/// the event was scheduled: records are recycled through a freelist, and a
/// recycled record bumps its generation, so a handle kept across the recycle
/// boundary can never cancel the stranger now living in the same slot (the
/// classic ABA hazard of freelist-backed handles).
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return record_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(void* record, std::uint64_t gen) : record_(record), gen_(gen) {}
  void* record_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// Discrete-event simulation engine: a clock plus a pending-event heap.
///
/// All model components (CPUs, pools, servers, clients) are callback state
/// machines driven by this single engine; the engine itself is strictly
/// single-threaded and deterministic, which is what makes whole-testbed
/// experiments exactly reproducible. Events scheduled for the same instant
/// fire in FIFO order of scheduling.
///
/// Hot-path layout (DESIGN.md §9): callbacks are sim::InlineCallback, so
/// small captures ride inside the event record with no allocation; the
/// pending set is a four-ary heap of (time, seq, record) entries whose keys
/// live inline, so heap maintenance never dereferences a record; records
/// live in a deque-backed freelist, so a steady-state trial stops asking
/// the allocator for anything. Cancellation and rescheduling are *eager*:
/// each record owns exactly one queue entry while pending, reschedule()
/// re-keys it in place (one sift, via the queue's index->position map) and
/// cancel() erases it outright, so every popped entry dispatches — there
/// are no stale entries to drain. This matters because the CPU model
/// re-aims its completion timer on every arrival: under the older lazy
/// scheme those re-aims left a superseded entry behind each time, and the
/// stale drains grew to ~a third of all heap pops.
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay < 0 clamps to 0).
  EventHandle schedule(SimTime delay, Callback fn) {
    return schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (t < now clamps to now).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Cancel a pending event. Safe to call with stale or inert handles; returns
  /// true iff the event was pending and is now cancelled.
  bool cancel(EventHandle h);

  /// Move a pending event to fire `delay` seconds from now, keeping its
  /// callback and handle (the handle stays valid under the same generation).
  /// The event is re-keyed in place in the heap — no cancel + schedule round
  /// trip, no callback move. It fires in FIFO order as if freshly scheduled
  /// at its new instant. Safe with stale or inert handles; returns true iff
  /// the event was pending and has been moved.
  bool reschedule(EventHandle h, SimTime delay);

  /// Like reschedule, with an absolute target time (t < now clamps to now).
  bool reschedule_at(EventHandle h, SimTime t);

  /// Execute events until the queue is empty or `limit` events have run.
  void run(std::uint64_t limit = ~0ull);

  /// Execute events with time <= t, then set the clock to exactly t.
  void run_until(SimTime t);

  /// Pop and run the single earliest event; false if none pending.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Record {
    std::uint64_t gen = 1;      // bumped on every recycle; a handle pins one
    std::uint64_t live_seq = 0; // seq of the pending queue entry; 0 = none
    std::uint32_t idx = 0;      // slot in slots_, fixed for the record's life
    Callback fn;
  };

  // Queue entries pack (seq << kIdxBits) | record-index into one 64-bit key
  // following EventQueue's layout contract (the queue's index->position map
  // reads the low bits). Seq in the high bits makes key order equal schedule
  // order, preserving the FIFO same-instant guarantee through a plain
  // integer compare.
  static constexpr unsigned kIdxBits = EventQueue::kIndexBits;
  static constexpr std::uint64_t kIdxMask = EventQueue::kIndexMask;

  Record* allocate();
  void release(Record* r);
  void dispatch(const EventQueue::Entry& e);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  EventQueue queue_;
  std::vector<Record*> freelist_;
  std::vector<Record*> slots_;  // idx -> record, L1-hot on the pop path
  std::deque<Record> records_;  // stable storage; grows, never shrinks
};

// The schedule/dispatch round trip runs a few hundred thousand times per
// trial; keeping these bodies in the header lets the event loop (run_until,
// step) and every tier's schedule call inline them.

inline Simulator::Record* Simulator::allocate() {
  if (!freelist_.empty()) {
    Record* r = freelist_.back();
    freelist_.pop_back();
    return r;
  }
  assert(records_.size() < (std::size_t{1} << kIdxBits));
  records_.emplace_back();
  Record* r = &records_.back();
  r->idx = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(r);
  return r;
}

inline void Simulator::release(Record* r) {
  // The generation bump is what retires every outstanding handle to this
  // record: a handle carries the generation it was issued under, and
  // cancel()/reschedule() refuse any mismatch. A record is released exactly
  // when its one queue entry leaves the queue (dispatch or eager cancel),
  // so a live generation match always refers to this scheduling, never a
  // recycled stranger.
  ++r->gen;
  r->fn.reset();
  freelist_.push_back(r);
}

inline EventHandle Simulator::schedule_at(SimTime t, Callback fn) {
  assert(fn);
  Record* r = allocate();
  r->fn = std::move(fn);
  const std::uint64_t seq = next_seq_++;
  assert(seq < (std::uint64_t{1} << (64 - kIdxBits)));
  r->live_seq = seq;
  queue_.push({t < now_ ? now_ : t, (seq << kIdxBits) | r->idx});
  return EventHandle(r, r->gen);
}

inline void Simulator::dispatch(const EventQueue::Entry& e) {
  SOFTRES_PROF_SCOPE(kDispatch);
  Record* r = slots_[e.key & kIdxMask];
  // Eager cancel/reschedule means every popped entry is the live claim.
  assert(r->live_seq == (e.key >> kIdxBits));
  r->live_seq = 0;
  now_ = e.time;
  ++executed_;
  // Invoke in place: the record is released only after the call returns, so
  // a re-entrant schedule can't recycle it mid-invocation, and skipping the
  // move-out saves a 40-byte callback relocation per event. The capture is
  // destroyed at the same point as before (after the body runs), just by
  // release() instead of a local's destructor. A re-entrant cancel or
  // reschedule of this same handle sees live_seq == 0 and refuses, exactly
  // as it refused a fired event before.
  r->fn();
  release(r);
}

}  // namespace softres::sim
