#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_time.h"

namespace softres::sim {

/// Handle to a scheduled event; allows O(1) cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return record_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(void* record, std::uint64_t seq) : record_(record), seq_(seq) {}
  void* record_ = nullptr;
  std::uint64_t seq_ = 0;
};

/// Discrete-event simulation engine: a clock plus a pending-event heap.
///
/// All model components (CPUs, pools, servers, clients) are callback state
/// machines driven by this single engine; the engine itself is strictly
/// single-threaded and deterministic, which is what makes whole-testbed
/// experiments exactly reproducible. Events scheduled for the same instant
/// fire in FIFO order of scheduling.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay < 0 clamps to 0).
  EventHandle schedule(SimTime delay, Callback fn);

  /// Schedule `fn` at absolute time `t` (t < now clamps to now).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Cancel a pending event. Safe to call with stale or inert handles; returns
  /// true iff the event was pending and is now cancelled.
  bool cancel(EventHandle h);

  /// Execute events until the queue is empty or `limit` events have run.
  void run(std::uint64_t limit = ~0ull);

  /// Execute events with time <= t, then set the clock to exactly t.
  void run_until(SimTime t);

  /// Pop and run the single earliest event; false if none pending.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return live_; }

 private:
  struct Record {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // tie-break + staleness check; 0 means free
    Callback fn;
  };
  struct Cmp {
    bool operator()(const Record* a, const Record* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  Record* allocate();
  void release(Record* r);
  void dispatch(Record* r);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled and not cancelled
  std::priority_queue<Record*, std::vector<Record*>, Cmp> heap_;
  std::vector<Record*> freelist_;
  std::vector<Record*> all_;  // ownership of every allocated record
};

}  // namespace softres::sim
