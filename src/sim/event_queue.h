#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/sim_time.h"
#include "support/prof.h"

namespace softres::sim {

/// Pending-event priority queue of the discrete-event engine: a four-ary
/// implicit min-heap of (time, key) entries ordered by (time, key), with
/// the current minimum cached outside the array.
///
/// The key's low kIndexBits are an owner-assigned record index, and the
/// queue maintains a dense index -> heap-position map (`pos_`) keyed on
/// them. That map is what makes cancellation and rescheduling *eager*:
/// update() re-keys an entry in place with a single sift, erase() removes
/// one outright, and no stale entry ever reaches pop(). The map is a flat
/// uint32 array off to the side, so maintaining it costs one L1 store per
/// entry move and heap maintenance still never dereferences a record. (The
/// owner must keep at most one entry per index in the queue for pos_ to be
/// authoritative; the simulator's one-entry-per-record invariant and the
/// CPU's one-entry-per-slot run queue both satisfy this. An owner that
/// never calls update()/erase() may ignore the rule — stale positions are
/// then never read.)
///
/// Layout notes (measured on BM_TestbedTrial, see DESIGN.md §9):
///  * An entry is 16 bytes: the time plus one `key` word that packs the
///    schedule sequence number (high bits) over the record index (low
///    bits). Sifts touch only the flat entry array plus the pos_ array,
///    and an aligned group of four siblings is exactly one cache line —
///    the array for a few thousand pending events stays L1-resident,
///    which is what the 24-byte (time, seq, pointer) layout lost.
///  * Arity 4 halves the tree height of a binary heap, and ~3/4 of the
///    nodes are leaves, so a pushed entry usually settles after a single
///    parent comparison.
///  * The minimum is cached in `top_`, not at heap_[0]: the common
///    schedule-then-fire pattern replaces the cached top without touching
///    the array, and peeking at the next event time reads a member. Its
///    position in pos_ is the sentinel kTopPos.
///  * Pop refills the root bottom-up: the hole walks the min-child path to
///    a leaf (three comparisons per level, none against the displaced last
///    element), then the last element sifts up from there — rarely more
///    than a step, because a recently pushed entry is rarely early.
///
/// Ties on `time` break by `key`; because the sequence number occupies the
/// key's high bits and is unique per push, key order *is* schedule order,
/// which is what gives the simulator its FIFO same-instant guarantee.
class EventQueue {
 public:
  /// Low bits of Entry::key that address the owner's record slab; the
  /// owner packs (seq << kIndexBits) | index. 24 bits address 16.7M
  /// concurrently-live records (a trial peaks in the thousands), leaving
  /// 40 seq bits — 10^12 schedules per queue.
  static constexpr unsigned kIndexBits = 24;
  static constexpr std::uint64_t kIndexMask = (1ull << kIndexBits) - 1;

  struct Entry {
    SimTime time = 0.0;
    std::uint64_t key = 0;  // (seq << kIndexBits) | record index
  };

  bool empty() const { return !has_top_; }
  std::size_t size() const { return heap_.size() + (has_top_ ? 1u : 0u); }

  const Entry& top() const {
    assert(has_top_);
    return top_;
  }

  void push(const Entry& e) {
    SOFTRES_PROF_SCOPE(kEventQueuePush);
    const std::uint32_t idx = static_cast<std::uint32_t>(e.key & kIndexMask);
    if (idx >= pos_.size()) pos_.resize(idx + 1, 0);
    if (!has_top_) {
      top_ = e;
      has_top_ = true;
      pos_[idx] = kTopPos;
      return;
    }
    if (before(e, top_)) {
      heap_push(top_);
      top_ = e;
      pos_[idx] = kTopPos;
    } else {
      heap_push(e);
    }
  }

  Entry pop() {
    SOFTRES_PROF_SCOPE(kEventQueuePop);
    assert(has_top_);
    const Entry out = top_;
    if (heap_.empty()) {
      has_top_ = false;
    } else {
      top_ = heap_pop_min();
      pos_[top_.key & kIndexMask] = kTopPos;
    }
    return out;
  }

  /// Re-key the entry whose index is `idx` to `e` (same index, new time and
  /// seq) with a single in-place sift. Precondition: exactly one entry with
  /// that index is in the queue (the owner's pending flag guards this).
  void update(std::uint32_t idx, const Entry& e) {
    SOFTRES_PROF_SCOPE(kEventQueueCancel);
    assert((e.key & kIndexMask) == idx && idx < pos_.size());
    const std::uint32_t p = pos_[idx];
    if (p == kTopPos) {
      assert(has_top_ && (top_.key & kIndexMask) == idx);
      // The cached min is the one moving; it may no longer be the min.
      if (heap_.empty() || before(e, heap_.front())) {
        top_ = e;  // pos_ already kTopPos
        return;
      }
      top_ = heap_pop_min();
      pos_[top_.key & kIndexMask] = kTopPos;
      heap_push(e);
      return;
    }
    assert(p < heap_.size() && (heap_[p].key & kIndexMask) == idx);
    if (before(e, top_)) {
      // e becomes the new cached min; the old min re-enters at the hole.
      const Entry old_top = top_;
      top_ = e;
      pos_[idx] = kTopPos;
      sift_from(p, old_top);
      return;
    }
    sift_from(p, e);
  }

  /// Remove the entry whose index is `idx`. Same precondition as update().
  void erase(std::uint32_t idx) {
    SOFTRES_PROF_SCOPE(kEventQueueCancel);
    assert(idx < pos_.size());
    const std::uint32_t p = pos_[idx];
    if (p == kTopPos) {
      assert(has_top_ && (top_.key & kIndexMask) == idx);
      if (heap_.empty()) {
        has_top_ = false;
        return;
      }
      top_ = heap_pop_min();
      pos_[top_.key & kIndexMask] = kTopPos;
      return;
    }
    assert(p < heap_.size() && (heap_[p].key & kIndexMask) == idx);
    const Entry last = heap_.back();
    heap_.pop_back();
    if (p < heap_.size()) sift_from(p, last);  // else: erased the tail entry
  }

  void clear() {
    heap_.clear();
    has_top_ = false;
  }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::uint32_t kTopPos = 0xFFFFFFFFu;

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void place(const Entry& e, std::size_t i) {
    heap_[i] = e;
    pos_[e.key & kIndexMask] = static_cast<std::uint32_t>(i);
  }

  void heap_push(const Entry& e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    // Hole insertion: shift ancestors down until e's slot is found.
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      place(heap_[parent], i);
      i = parent;
    }
    place(e, i);
  }

  // Fill the hole at position p with entry e, sifting it up or down to
  // wherever heap order puts it. e may come from anywhere (a re-keyed
  // entry, the displaced old top, the detached tail), so both directions
  // are possible; at most one of them moves.
  void sift_from(std::size_t p, const Entry& e) {
    std::size_t i = p;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      place(heap_[parent], i);
      i = parent;
    }
    if (i == p) {
      const std::size_t n = heap_.size();
      for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end =
            first_child + kArity < n ? first_child + kArity : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], e)) break;
        place(heap_[best], i);
        i = best;
      }
    }
    place(e, i);
  }

  Entry heap_pop_min() {
    const Entry min = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      // Bottom-up refill: walk the hole down the min-child path to a leaf
      // (no comparisons against `last`), then sift `last` up from there.
      std::size_t i = 0;
      const std::size_t n = heap_.size();
      for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end =
            first_child + kArity < n ? first_child + kArity : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        place(heap_[best], i);
        i = best;
      }
      while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!before(last, heap_[parent])) break;
        place(heap_[parent], i);
        i = parent;
      }
      place(last, i);
    }
    return min;
  }

  Entry top_;
  bool has_top_ = false;
  std::vector<Entry> heap_;
  // index -> heap position (kTopPos for the cached top). Authoritative only
  // while that index has an entry in the queue; garbage otherwise.
  std::vector<std::uint32_t> pos_;
};

}  // namespace softres::sim
