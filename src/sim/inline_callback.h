#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace softres::sim {

namespace detail {

#if defined(__SANITIZE_ADDRESS__)
#define SOFTRES_BOX_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SOFTRES_BOX_POOL_PASSTHROUGH 1
#endif
#endif

/// Size-classed freelist for boxed callback captures. Tier continuation
/// chains nest callbacks inside callbacks, so roughly one capture per
/// simulated event outgrows the inline buffer and is heap-boxed; routing
/// those boxes through a recycling pool turns a malloc/free round trip per
/// event into a couple of vector ops. The pool is thread-local (each
/// ParallelExecutor worker owns its trials' callbacks end to end) and
/// nothing observable depends on the addresses handed out, so determinism
/// is unaffected. Under ASan the pool passes straight through to the
/// global allocator so use-after-free stays visible.
class BoxPool {
 public:
  static void* acquire(std::size_t n) {
#if !defined(SOFTRES_BOX_POOL_PASSTHROUGH)
    const std::size_t c = class_of(n);
    if (c < kClasses) {
      auto& free = pools().free[c];
      if (!free.empty()) {
        void* p = free.back();
        free.pop_back();
        return p;
      }
      return ::operator new(class_bytes(c));
    }
#endif
    return ::operator new(n);
  }

  static void release(void* p, std::size_t n) noexcept {
#if !defined(SOFTRES_BOX_POOL_PASSTHROUGH)
    const std::size_t c = class_of(n);
    if (c < kClasses) {
      auto& free = pools().free[c];
      if (free.size() < kMaxPerClass) {
        free.push_back(p);
        return;
      }
    }
#endif
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kGranule = 32;
  static constexpr std::size_t kClasses = 4;  // 32, 64, 96, 128 bytes
  static constexpr std::size_t kMaxPerClass = 4096;

  static constexpr std::size_t class_of(std::size_t n) {
    return (n - 1) / kGranule;  // n >= 1 always (boxed captures are objects)
  }
  static constexpr std::size_t class_bytes(std::size_t c) {
    return (c + 1) * kGranule;
  }

  struct Pools {
    std::vector<void*> free[kClasses];
    ~Pools() {
      for (auto& f : free)
        for (void* p : f) ::operator delete(p);
    }
  };

  static Pools& pools() {
    thread_local Pools tl;
    return tl;
  }
};

}  // namespace detail

/// Small-buffer-optimized move-only callable, the event loop's callback
/// currency. Simulation hot paths schedule millions of short-lived
/// continuations per trial, and a callback is *moved* several times on its
/// way into an event record (built, handed through a continuation chain,
/// stored), so the move must be flat — a memcpy plus two pointer copies,
/// no indirect call. That rules out storing arbitrary callables in place:
/// only trivially copyable captures (this-pointers, indices, plain values)
/// live inline; anything with a real move constructor or destructor is
/// heap-boxed once and its box pointer relocates for free, exactly like
/// std::function — but with a 24-byte inline budget instead of 16, which
/// keeps the simulator's bread-and-butter captures (`[this]`,
/// `[this, user, remaining]`) out of the allocator entirely.
///
/// Contract (see DESIGN.md §9):
///  * captures that are trivially copyable, of sizeof <=
///    kInlineFunctionCapacity and alignof <= 8, are stored inline — zero
///    heap traffic and flat moves for the whole schedule/dispatch round
///    trip;
///  * anything else is heap-allocated once and owned through a pointer
///    stored inline; its moves are the same flat copy;
///  * invoking costs one member load and an indirect call (no vtable
///    double-indirection);
///  * it is move-only: continuation chains hand the callback forward, they
///    never fork it. Copyable state that must be shared belongs in the
///    capture (e.g. a RequestPtr), not in the callable wrapper.
inline constexpr std::size_t kInlineFunctionCapacity = 24;

template <class Sig>
class InlineFunction;

template <class R, class... Args>
class InlineFunction<R(Args...)> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      destroy_ = nullptr;  // trivially destructible by construction
    } else if constexpr (alignof(D) <= alignof(std::max_align_t)) {
      void* box = detail::BoxPool::acquire(sizeof(D));
      ::new (static_cast<void*>(storage_))
          D*(::new (box) D(std::forward<F>(f)));
      invoke_ = &invoke_boxed<D>;
      destroy_ = &destroy_pooled<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_boxed<D>;
      destroy_ = &destroy_boxed<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  /// True when a callable of type F would be stored inline (test hook; the
  /// bench suite asserts the simulator's common captures stay inline).
  template <class F>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  template <class D>
  static constexpr bool fits_inline() {
    // Trivial copyability is what licenses the flat move: relocating the
    // capture is a byte copy with no source fix-up and no destructor.
    return sizeof(D) <= kInlineFunctionCapacity && alignof(D) <= 8 &&
           std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <class D>
  static R invoke_inline(unsigned char* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(s)))(
        std::forward<Args>(args)...);
  }

  template <class D>
  static D*& box(unsigned char* s) {
    return *std::launder(reinterpret_cast<D**>(s));
  }
  template <class D>
  static R invoke_boxed(unsigned char* s, Args&&... args) {
    return (*box<D>(s))(std::forward<Args>(args)...);
  }
  template <class D>
  static void destroy_boxed(unsigned char* s) noexcept {
    delete box<D>(s);
  }
  template <class D>
  static void destroy_pooled(unsigned char* s) noexcept {
    D* p = box<D>(s);
    p->~D();
    detail::BoxPool::release(p, sizeof(D));
  }

  void steal(InlineFunction& other) noexcept {
    // Flat relocation: inline contents are trivially copyable and a box
    // relocates as its pointer, so one memcpy moves either representation.
    std::memcpy(storage_, other.storage_, kInlineFunctionCapacity);
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(8) unsigned char storage_[kInlineFunctionCapacity];
  R (*invoke_)(unsigned char*, Args&&...) = nullptr;
  void (*destroy_)(unsigned char*) noexcept = nullptr;
};

/// The event loop's callback type: a void() continuation.
using InlineCallback = InlineFunction<void()>;

}  // namespace softres::sim
