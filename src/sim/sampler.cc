#include "sim/sampler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace softres::sim {

double TimeSeries::mean() const {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double TimeSeries::mean_between(SimTime lo, SimTime hi) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= lo && times[i] < hi) {
      sum += values[i];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_between(SimTime lo, SimTime hi) const {
  double best = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= lo && times[i] < hi) best = std::max(best, values[i]);
  }
  return best;
}

std::vector<double> TimeSeries::window(SimTime lo, SimTime hi) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= lo && times[i] < hi) out.push_back(values[i]);
  }
  return out;
}

Sampler::Sampler(Simulator& sim, SimTime interval)
    : sim_(sim), interval_(interval) {
  assert(interval > 0.0);
}

std::size_t Sampler::add_probe(std::string name, Probe probe) {
  probes_.push_back(std::move(probe));
  series_.push_back(TimeSeries{std::move(name), {}, {}});
  return series_.size() - 1;
}

void Sampler::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule(interval_, [this] { tick(); });
}

void Sampler::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle();
}

void Sampler::tick() {
  if (!running_) return;
  const SimTime t = sim_.now();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].add(t, probes_[i](t));
  }
  pending_ = sim_.schedule(interval_, [this] { tick(); });
}

const TimeSeries* Sampler::find(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace softres::sim
