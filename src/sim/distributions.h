#pragma once

#include <memory>
#include <vector>

#include "sim/rng.h"

namespace softres::sim {

/// A sampleable non-negative random variable. Service demands, think times,
/// FIN delays etc. are all expressed as Distributions so workloads can be
/// reconfigured without touching the servers.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(Rng& rng) const = 0;
  /// Analytical mean (used by operational-law sanity checks).
  virtual double mean() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Point mass at `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {}
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {}
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean() const override { return mean_; }

 private:
  double mean_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Log-normal parameterised by median and log-space sigma; widely used for
/// service times with occasional long tails (e.g. disk seeks, FIN waits).
class LogNormal final : public Distribution {
 public:
  LogNormal(double median, double sigma) : median_(median), sigma_(sigma) {}
  double sample(Rng& rng) const override {
    return rng.lognormal_median(median_, sigma_);
  }
  double mean() const override;

 private:
  double median_;
  double sigma_;
};

/// Bounded Pareto on [lo, hi] with shape alpha; models heavy-tailed demands.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lo, double hi, double alpha);
  double sample(Rng& rng) const override;
  double mean() const override;

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Shifted exponential: `offset + Exp(mean_extra)`; a common model for
/// "constant work plus random tail" service demands.
class ShiftedExponential final : public Distribution {
 public:
  ShiftedExponential(double offset, double mean_extra)
      : offset_(offset), mean_extra_(mean_extra) {}
  double sample(Rng& rng) const override {
    return offset_ + rng.exponential(mean_extra_);
  }
  double mean() const override { return offset_ + mean_extra_; }

 private:
  double offset_;
  double mean_extra_;
};

/// Empirical distribution: samples uniformly from observed values.
class Empirical final : public Distribution {
 public:
  explicit Empirical(std::vector<double> values);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }

 private:
  std::vector<double> values_;
  double mean_ = 0.0;
};

/// Weighted discrete choice over indices 0..n-1 (linear scan; the interaction
/// tables this backs have ~24 entries, so an alias table is not warranted).
class DiscreteChoice {
 public:
  explicit DiscreteChoice(std::vector<double> weights);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cumulative_.size(); }
  double probability(std::size_t i) const;

 private:
  std::vector<double> cumulative_;  // normalised cumulative weights
};

// Convenience factories.
DistributionPtr constant(double v);
DistributionPtr exponential(double mean);
DistributionPtr lognormal(double median, double sigma);
DistributionPtr shifted_exp(double offset, double mean_extra);
DistributionPtr uniform(double lo, double hi);
DistributionPtr bounded_pareto(double lo, double hi, double alpha);

}  // namespace softres::sim
