#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.h"

namespace softres::sim {

/// O(1) exponential variate with the given mean via a precomputed 256-layer
/// ziggurat table (Marsaglia & Tsang). Exact — the accept/reject wedge and
/// tail paths reproduce the true density — but the common case is one
/// next_u64(), a table compare and a multiply, where Rng::exponential pays a
/// next_double() plus std::log on every draw. This is the hot-path sampler:
/// think times in the client farm and the per-tier demand tails both sit on
/// it, at several draws per page. Deterministic given the Rng state (the
/// draw *count* per call varies on the rare reject path, which is fine: the
/// determinism contract fixes the stream per seed, not the draws per call).
/// mean <= 0 returns 0, matching Rng::exponential.
double fast_exponential(Rng& rng, double mean);

/// A sampleable non-negative random variable. Service demands, think times,
/// FIN delays etc. are all expressed as Distributions so workloads can be
/// reconfigured without touching the servers.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(Rng& rng) const = 0;
  /// Analytical mean (used by operational-law sanity checks).
  virtual double mean() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Point mass at `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {}
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {}
  double sample(Rng& rng) const override {
    return fast_exponential(rng, mean_);
  }
  double mean() const override { return mean_; }

 private:
  double mean_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Log-normal parameterised by median and log-space sigma; widely used for
/// service times with occasional long tails (e.g. disk seeks, FIN waits).
class LogNormal final : public Distribution {
 public:
  LogNormal(double median, double sigma) : median_(median), sigma_(sigma) {}
  double sample(Rng& rng) const override {
    return rng.lognormal_median(median_, sigma_);
  }
  double mean() const override;

 private:
  double median_;
  double sigma_;
};

/// Bounded Pareto on [lo, hi] with shape alpha; models heavy-tailed demands.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lo, double hi, double alpha);
  double sample(Rng& rng) const override;
  double mean() const override;

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Shifted exponential: `offset + Exp(mean_extra)`; a common model for
/// "constant work plus random tail" service demands.
class ShiftedExponential final : public Distribution {
 public:
  ShiftedExponential(double offset, double mean_extra)
      : offset_(offset), mean_extra_(mean_extra) {}
  double sample(Rng& rng) const override {
    return offset_ + fast_exponential(rng, mean_extra_);
  }
  double mean() const override { return offset_ + mean_extra_; }

 private:
  double offset_;
  double mean_extra_;
};

/// Empirical distribution: samples uniformly from observed values.
class Empirical final : public Distribution {
 public:
  explicit Empirical(std::vector<double> values);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }

 private:
  std::vector<double> values_;
  double mean_ = 0.0;
};

/// Weighted discrete choice over indices 0..n-1. Sampling uses a
/// Walker/Vose alias table built at construction: one uniform draw, one
/// table row, no search — the interaction choice runs once per page, so this
/// keeps the workload generator off the binary-search path entirely.
class DiscreteChoice {
 public:
  explicit DiscreteChoice(std::vector<double> weights);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }
  double probability(std::size_t i) const;

 private:
  void build_alias();

  std::vector<double> probability_;     // normalised weights (exact masses)
  std::vector<double> prob_;            // alias acceptance thresholds
  std::vector<std::uint32_t> alias_;    // alias targets
};

/// Zipf(n, s) over ranks 1..n: P(k) proportional to k^-s. Backed by the same
/// alias-table construction as DiscreteChoice, so sampling is O(1) however
/// large the catalogue — the power-law popularity model for content
/// selection (RUBBoS stories, static objects) at web scale. sample() returns
/// the rank as a double (Distribution interface); sample_rank() returns it
/// typed.
class Zipf final : public Distribution {
 public:
  Zipf(std::size_t n, double s);
  double sample(Rng& rng) const override;
  std::size_t sample_rank(Rng& rng) const;
  double mean() const override { return mean_; }
  std::size_t size() const { return choice_.size(); }
  /// P(rank); rank in [1, n].
  double probability(std::size_t rank) const {
    return choice_.probability(rank - 1);
  }

 private:
  DiscreteChoice choice_;
  double mean_ = 0.0;
};

// Convenience factories.
DistributionPtr constant(double v);
DistributionPtr exponential(double mean);
DistributionPtr lognormal(double median, double sigma);
DistributionPtr shifted_exp(double offset, double mean_extra);
DistributionPtr uniform(double lo, double hi);
DistributionPtr bounded_pareto(double lo, double hi, double alpha);
DistributionPtr zipf(std::size_t n, double s);

}  // namespace softres::sim
