#pragma once

namespace softres::sim {

/// Simulation time in seconds. The whole library models wall-clock seconds of
/// the emulated testbed; a `double` gives sub-microsecond resolution over the
/// multi-hour horizons we simulate while staying trivially arithmetic.
using SimTime = double;

/// Sentinel for "never".
inline constexpr SimTime kNever = 1e300;

/// Comparison slack for accumulated floating-point time arithmetic.
inline constexpr SimTime kTimeEpsilon = 1e-9;

}  // namespace softres::sim
