#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace softres::sim {

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Welford::reset() { *this = Welford(); }

double Welford::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
  } else if (x >= hi_) {
    overflow_ += weight;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // round-off guard
    counts_[i] += weight;
  }
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  underflow_ = overflow_ = total_ = 0.0;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}
double Histogram::density(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

BucketedHistogram::BucketedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void BucketedHistogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
}

double BucketedHistogram::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

double BucketedHistogram::fraction(std::size_t i) const {
  return total_ ? static_cast<double>(counts_[i]) /
                      static_cast<double>(total_)
                : 0.0;
}

double TimeWeighted::average(SimTime until) const {
  const SimTime span = until - start_;
  if (span <= 0.0) return value_;
  double sum = weighted_sum_;
  if (until > last_) sum += value_ * (until - last_);
  return sum / span;
}

void TimeWeighted::reset(SimTime t) {
  start_ = last_ = t;
  weighted_sum_ = 0.0;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

std::size_t SampleSet::count_at_or_below(double threshold) const {
  ensure_sorted();
  return static_cast<std::size_t>(
      std::upper_bound(samples_.begin(), samples_.end(), threshold) -
      samples_.begin());
}

}  // namespace softres::sim
