#pragma once

#include <string>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"

namespace softres::sim {

/// A named time series of (time, value) samples, the in-memory analogue of a
/// SysStat column.
struct TimeSeries {
  std::string name;
  std::vector<SimTime> times;
  std::vector<double> values;

  void add(SimTime t, double v) {
    times.push_back(t);
    values.push_back(v);
  }
  std::size_t size() const { return values.size(); }
  double mean() const;
  double mean_between(SimTime lo, SimTime hi) const;
  double max_between(SimTime lo, SimTime hi) const;
  /// Values with lo <= t < hi (for density histograms per workload window).
  std::vector<double> window(SimTime lo, SimTime hi) const;
};

/// Periodic probe runner: the simulated SysStat. Probes are polled at a fixed
/// interval (default 1 s, matching the paper's measurement granularity) and
/// each probe's return value is appended to its TimeSeries.
class Sampler {
 public:
  using Probe = InlineFunction<double(SimTime)>;

  Sampler(Simulator& sim, SimTime interval = 1.0);

  /// Register a probe; returns its series index.
  std::size_t add_probe(std::string name, Probe probe);

  void start();
  void stop();

  const TimeSeries& series(std::size_t i) const { return series_[i]; }
  const TimeSeries* find(const std::string& name) const;
  std::size_t probes() const { return series_.size(); }

 private:
  void tick();

  Simulator& sim_;
  SimTime interval_;
  bool running_ = false;
  EventHandle pending_;
  std::vector<Probe> probes_;
  std::vector<TimeSeries> series_;
};

}  // namespace softres::sim
