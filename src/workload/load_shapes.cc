#include "workload/load_shapes.h"

#include <cmath>

namespace softres::workload {

std::vector<LoadPhase> flash_crowd_schedule(std::size_t baseline,
                                            std::size_t peak,
                                            sim::SimTime crowd_start,
                                            double crowd_duration_s) {
  return {LoadPhase{0.0, baseline}, LoadPhase{crowd_start, peak},
          LoadPhase{crowd_start + crowd_duration_s, baseline}};
}

std::vector<LoadPhase> diurnal_schedule(std::size_t low, std::size_t high,
                                        double period_s, double total_s,
                                        std::size_t steps_per_period) {
  std::vector<LoadPhase> phases;
  if (steps_per_period == 0) steps_per_period = 1;
  const double dt = period_s / static_cast<double>(steps_per_period);
  const double two_pi = 6.283185307179586;
  for (double t = 0.0; t < total_s; t += dt) {
    // Raised cosine, trough at t = 0.
    const double frac = 0.5 * (1.0 - std::cos(two_pi * t / period_s));
    const auto users = static_cast<std::size_t>(std::llround(
        static_cast<double>(low) +
        frac * static_cast<double>(high - low)));
    phases.push_back(LoadPhase{t, users});
  }
  return phases;
}

std::vector<DemandPhase> tier_slowdown_schedule(sim::SimTime slow_start,
                                                double slow_scale,
                                                sim::SimTime recover_at) {
  return {DemandPhase{0.0, 1.0}, DemandPhase{slow_start, slow_scale},
          DemandPhase{recover_at, 1.0}};
}

}  // namespace softres::workload
