#include "workload/rubbos.h"

#include <cassert>

#include "sim/distributions.h"

namespace softres::workload {

std::vector<Interaction> RubbosWorkload::default_interactions() {
  // name, browse_w, rw_w, queries, tomcat_mult, mysql_mult, disk_prob, resp_kb
  return {
      {"StoriesOfTheDay", 14.0, 12.0, 2, 0.9, 1.0, 0.01, 12.0},
      {"ViewStory", 22.0, 18.0, 3, 1.0, 1.0, 0.02, 14.0},
      {"ViewComment", 16.0, 13.0, 3, 1.0, 1.1, 0.02, 10.0},
      {"BrowseCategories", 8.0, 6.0, 1, 0.6, 0.8, 0.01, 6.0},
      {"BrowseStoriesByCategory", 10.0, 8.0, 3, 1.0, 1.2, 0.03, 12.0},
      {"BrowseRegions", 3.0, 2.0, 1, 0.6, 0.8, 0.01, 6.0},
      {"BrowseStoriesByRegion", 4.0, 3.0, 3, 1.0, 1.2, 0.03, 12.0},
      {"OlderStories", 6.0, 5.0, 3, 1.0, 1.3, 0.05, 12.0},
      {"SearchInStories", 5.0, 4.0, 4, 1.3, 1.8, 0.08, 10.0},
      {"SearchInComments", 3.0, 2.5, 4, 1.3, 2.0, 0.09, 10.0},
      {"SearchInUsers", 1.5, 1.2, 2, 0.9, 1.2, 0.04, 6.0},
      {"ViewUserInfo", 3.0, 2.5, 2, 0.8, 0.9, 0.02, 7.0},
      {"ViewPageNext", 2.5, 2.0, 3, 1.0, 1.0, 0.02, 12.0},
      {"StoryTextSearch", 1.0, 0.8, 5, 1.5, 2.2, 0.10, 10.0},
      // Write interactions: zero weight in the browse-only mix.
      {"SubmitStory", 0.0, 3.0, 4, 1.4, 1.5, 0.06, 6.0},
      {"PostComment", 0.0, 6.0, 4, 1.3, 1.4, 0.05, 6.0},
      {"ModerateComment", 0.0, 1.5, 3, 1.1, 1.2, 0.04, 6.0},
      {"RegisterUser", 0.5, 1.5, 3, 1.1, 1.1, 0.03, 5.0},
      {"Author:ReviewStories", 0.0, 1.5, 3, 1.1, 1.3, 0.04, 10.0},
      {"Author:AcceptStory", 0.0, 0.8, 4, 1.2, 1.4, 0.05, 6.0},
      {"Author:RejectStory", 0.0, 0.5, 2, 0.9, 1.0, 0.03, 5.0},
      {"AuthorLogin", 0.3, 1.2, 2, 0.8, 0.9, 0.02, 5.0},
      {"UserLogin", 0.2, 2.0, 2, 0.8, 0.9, 0.02, 5.0},
      {"Feedback", 0.0, 1.0, 1, 0.7, 0.8, 0.01, 4.0},
  };
}

namespace {

std::vector<double> mix_weights(const std::vector<Interaction>& table,
                                Mix mix) {
  std::vector<double> w;
  w.reserve(table.size());
  for (const auto& it : table) {
    w.push_back(mix == Mix::kBrowseOnly ? it.browse_weight : it.rw_weight);
  }
  return w;
}

}  // namespace

RubbosWorkload::RubbosWorkload(Mix mix, DemandProfile profile)
    : mix_(mix), profile_(profile), interactions_(default_interactions()),
      choice_(mix_weights(interactions_, mix)) {
  assert(interactions_.size() == 24);
}

double RubbosWorkload::sample_demand(double mean, sim::Rng& rng) const {
  // Constant floor plus exponential tail: keeps the mean exact while giving
  // realistic service-time variability.
  const double v = profile_.variability;
  if (v <= 0.0) return mean;
  return mean * (1.0 - v) + sim::fast_exponential(rng, mean * v);
}

void RubbosWorkload::sample_dynamic(tier::Request& req, sim::Rng& rng) const {
  const std::size_t idx = choice_.sample(rng);
  const Interaction& it = interactions_[idx];
  req.kind = tier::RequestKind::kDynamic;
  req.interaction = static_cast<int>(idx);
  req.num_queries = it.num_queries;
  req.apache_demand_s = sample_demand(profile_.apache_dynamic_s, rng);
  req.tomcat_demand_s =
      sample_demand(profile_.tomcat_base_s * it.tomcat_mult, rng);
  req.cjdbc_demand_s = sample_demand(profile_.cjdbc_per_query_s, rng);
  req.mysql_demand_s =
      sample_demand(profile_.mysql_per_query_s * it.mysql_mult, rng);
  req.mysql_disk_prob = it.disk_prob;
  req.request_bytes = 512.0;
  req.response_bytes = it.response_kb * 1024.0;
}

void RubbosWorkload::sample_static(tier::Request& req, sim::Rng& rng) const {
  req.kind = tier::RequestKind::kStatic;
  req.interaction = -1;
  req.num_queries = 0;
  req.apache_demand_s = sample_demand(profile_.apache_static_s, rng);
  req.tomcat_demand_s = 0.0;
  req.cjdbc_demand_s = 0.0;
  req.mysql_demand_s = 0.0;
  req.mysql_disk_prob = 0.0;
  req.request_bytes = 384.0;
  req.response_bytes = profile_.static_response_kb * 1024.0;
}

double RubbosWorkload::req_ratio() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < interactions_.size(); ++i) {
    acc += choice_.probability(i) *
           static_cast<double>(interactions_[i].num_queries);
  }
  return acc;
}

double RubbosWorkload::mean_tomcat_demand() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < interactions_.size(); ++i) {
    acc += choice_.probability(i) * profile_.tomcat_base_s *
           interactions_[i].tomcat_mult;
  }
  return acc;
}

double RubbosWorkload::mean_cjdbc_demand_per_request() const {
  return req_ratio() * profile_.cjdbc_per_query_s;
}

double RubbosWorkload::mean_mysql_demand_per_request() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < interactions_.size(); ++i) {
    acc += choice_.probability(i) *
           static_cast<double>(interactions_[i].num_queries) *
           profile_.mysql_per_query_s * interactions_[i].mysql_mult;
  }
  return acc;
}

}  // namespace softres::workload
