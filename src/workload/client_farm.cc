#include "workload/client_farm.h"

#include <cassert>

#include "sim/distributions.h"

namespace softres::workload {

// Salt separating the per-tenant stream roots from every other consumer of
// the trial seed (trace sampling, node/TCP streams).
constexpr std::uint64_t kTenantStreamSalt = 0x7e6a9c15b4d3f201ull;

ClientFarm::ClientFarm(sim::Simulator& sim, const RubbosWorkload& workload,
                       ClientConfig config, hw::Link& to_server,
                       tier::RequestArena* arena)
    : sim_(sim), workload_(workload), config_(std::move(config)),
      to_server_(to_server), arena_(arena) {
  if (!config_.tenants.empty()) {
    // Multi-tenant farm: one session block per tenant; `users` becomes the
    // tenant sum. Each user's stream is a pure function of (trial seed,
    // tenant index, index within the tenant) — NOT of the global slot index
    // or of any other tenant's size — so adding an idle tenant, or resizing
    // tenant k, leaves every other tenant's request sequence untouched.
    config_.users = 0;
    for (const TenantSpec& t : config_.tenants) config_.users += t.users;
    assert(config_.users > 0);
    user_rngs_.reserve(config_.users);
    tenant_of_user_.reserve(config_.users);
    tenant_user_base_.reserve(config_.tenants.size());
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      tenant_user_base_.push_back(user_rngs_.size());
      const std::uint64_t tenant_root =
          sim::Rng::hash_mix(config_.seed, kTenantStreamSalt + t);
      for (std::size_t j = 0; j < config_.tenants[t].users; ++j) {
        // SOFTRES_LINT_ALLOW(SR004: seeded from the derived trial seed)
        user_rngs_.push_back(sim::Rng(sim::Rng::hash_mix(tenant_root, j)));
        tenant_of_user_.push_back(static_cast<std::uint32_t>(t));
      }
    }
    tenant_target_.assign(config_.tenants.size(), 0);
    tenant_started_.assign(config_.tenants.size(), 0);
    tenant_rts_.resize(config_.tenants.size());
    tenant_windows_.resize(config_.tenants.size());
    tenant_requests_.resize(config_.tenants.size());
    return;
  }
  // config_.seed is the trial seed the harness already derived via
  // RunContext::derive_seed; this is the sanctioned root of the per-user
  // streams. SOFTRES_LINT_ALLOW(SR004: seed is the derived trial seed)
  sim::Rng master(config_.seed);
  user_rngs_.reserve(config_.users);
  for (std::size_t u = 0; u < config_.users; ++u) {
    user_rngs_.push_back(master.split());
  }
}

void ClientFarm::bind_registry(obs::Registry& registry) {
  dynamic_requests_ =
      registry.counter("client_requests_total", {{"kind", "dynamic"}},
                       "Requests issued by the client farm");
  static_requests_ =
      registry.counter("client_requests_total", {{"kind", "static"}},
                       "Requests issued by the client farm");
  // The paper's Fig 3c response-time buckets.
  rt_hist_ = registry.histogram(
      "client_response_time_seconds", {0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0}, {},
      "End-to-end response time of dynamic requests in the window");
  registry.gauge_fn(
      "client_active_users",
      [this](sim::SimTime) { return static_cast<double>(started_users_); },
      {}, "Closed-loop sessions currently active", "client.active_users");
  registry.gauge_fn(
      "client_load", [this](sim::SimTime) { return client_load(); }, {},
      "Started-user fraction of client capacity (drives the FIN-delay model)",
      "client.load");
  // Per-tenant SLA lanes. goodput/badput are interval rates over the sampler
  // window (see sample_tenant_window); active_users is instantaneous. The
  // noisy-neighbor detector reads tenant_badput to find victims.
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    const obs::Labels labels{{"tenant", config_.tenants[t].name}};
    tenant_requests_[t] = registry.counter(
        "tenant_requests_total", labels, "Dynamic requests issued per tenant");
    registry.gauge_fn(
        "tenant_active_users",
        [this, t](sim::SimTime) {
          return static_cast<double>(tenant_started_[t]);
        },
        labels, "Closed-loop sessions of this tenant currently active");
    registry.gauge_fn(
        "tenant_goodput",
        [this, t](sim::SimTime now) {
          sample_tenant_window(t, now);
          return tenant_windows_[t].good_rate;
        },
        labels, "Interactions/s meeting the tenant SLA over the last window");
    registry.gauge_fn(
        "tenant_badput",
        [this, t](sim::SimTime now) {
          sample_tenant_window(t, now);
          return tenant_windows_[t].bad_rate;
        },
        labels, "Interactions/s violating the tenant SLA over the last window");
  }
}

void ClientFarm::sample_tenant_window(std::size_t t, sim::SimTime now) {
  TenantWindow& w = tenant_windows_[t];
  if (now == w.cached_at) return;
  const double dt = now - w.window_start;
  w.good_rate = dt > 0.0 ? static_cast<double>(w.good) / dt : 0.0;
  w.bad_rate = dt > 0.0 ? static_cast<double>(w.bad) / dt : 0.0;
  w.good = 0;
  w.bad = 0;
  w.window_start = now;
  w.cached_at = now;
}

void ClientFarm::set_load_schedule(std::vector<LoadPhase> schedule) {
  for (const auto& phase : schedule) {
    assert(phase.active_users <= config_.users);
    (void)phase;
  }
  schedule_ = std::move(schedule);
}

double ClientFarm::demand_scale(sim::SimTime t) const {
  double scale = 1.0;
  // Tiny sorted schedule; the last phase that has started wins.
  for (const auto& phase : config_.demand_schedule) {
    if (phase.start <= t) scale = phase.scale;
  }
  return scale;
}

void ClientFarm::start() {
  assert(!apaches_.empty());
  if (!config_.tenants.empty()) {
    // Multi-tenant: each tenant block ramps independently — fixed
    // population staggered across the ramp-up, or its own load schedule.
    user_active_.assign(config_.users, false);
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      const TenantSpec& spec = config_.tenants[t];
      if (spec.load_schedule.empty()) {
        tenant_target_[t] = spec.users;
        for (std::size_t j = 0; j < spec.users; ++j) {
          const std::size_t u = tenant_user_base_[t] + j;
          const double offset = config_.ramp_up_s *
                                (static_cast<double>(j) + 0.5) /
                                static_cast<double>(spec.users);
          sim_.schedule(offset, [this, u] { start_user(u); });
        }
        continue;
      }
      for (const LoadPhase& phase : spec.load_schedule) {
        assert(phase.active_users <= spec.users);
        sim_.schedule_at(phase.start, [this, t, n = phase.active_users] {
          apply_tenant_target(t, n);
        });
      }
    }
    return;
  }
  // A shape carried in the config is the default schedule; an explicit
  // set_load_schedule() call (made before start()) wins.
  if (schedule_.empty() && !config_.load_schedule.empty()) {
    set_load_schedule(config_.load_schedule);
  }
  user_active_.assign(config_.users, false);
  if (schedule_.empty()) {
    // Fixed population: stagger activation uniformly across the ramp-up.
    active_target_ = config_.users;
    for (std::size_t u = 0; u < config_.users; ++u) {
      const double offset = config_.ramp_up_s *
                            (static_cast<double>(u) + 0.5) /
                            static_cast<double>(config_.users);
      sim_.schedule(offset, [this, u] { start_user(u); });
    }
    return;
  }
  for (const auto& phase : schedule_) {
    sim_.schedule_at(phase.start,
                     [this, n = phase.active_users] { apply_target(n); });
  }
}

void ClientFarm::apply_target(std::size_t target) {
  active_target_ = target;
  // Growth: wake dormant sessions, staggered over a couple of seconds so a
  // phase change does not arrive as one synchronized burst. Shrink takes
  // effect lazily: surplus sessions park at their next cycle boundary.
  for (std::size_t u = 0; u < target; ++u) {
    if (user_active_[u]) continue;
    user_active_[u] = true;
    ++started_users_;
    const double jitter =
        2.0 * static_cast<double>(u % 97) / 97.0;
    sim_.schedule(jitter, [this, u] {
      if (user_active_[u]) issue_page(u);
    });
  }
}

void ClientFarm::apply_tenant_target(std::size_t t, std::size_t target) {
  // Per-tenant variant of apply_target over the tenant's slot block. The
  // jitter is keyed on the index *within* the tenant so a tenant's wake
  // pattern is independent of where its block happens to sit.
  tenant_target_[t] = target;
  for (std::size_t j = 0; j < target; ++j) {
    const std::size_t u = tenant_user_base_[t] + j;
    if (user_active_[u]) continue;
    user_active_[u] = true;
    ++started_users_;
    ++tenant_started_[t];
    const double jitter = 2.0 * static_cast<double>(j % 97) / 97.0;
    sim_.schedule(jitter, [this, u] {
      if (user_active_[u]) issue_page(u);
    });
  }
}

bool ClientFarm::stopped() const {
  return sim_.now() >= measure_end() + config_.ramp_down_s;
}

double ClientFarm::client_load() const {
  return static_cast<double>(started_users_) / config_.users_capacity;
}

void ClientFarm::start_user(std::size_t u) {
  ++started_users_;
  if (!tenant_of_user_.empty()) ++tenant_started_[tenant_of_user_[u]];
  user_active_[u] = true;
  // New sessions browse immediately, then settle into the think cycle.
  issue_page(u);
}

void ClientFarm::think_then_browse(std::size_t u) {
  if (stopped()) return;
  if (!tenant_of_user_.empty()) {
    const std::uint32_t t = tenant_of_user_[u];
    if (u - tenant_user_base_[t] >= tenant_target_[t] && user_active_[u]) {
      // Elastic shrink of this tenant: leave at the cycle boundary.
      user_active_[u] = false;
      --started_users_;
      --tenant_started_[t];
      return;
    }
  } else if (u >= active_target_ && user_active_[u]) {
    // Elastic shrink: this session leaves at the cycle boundary.
    user_active_[u] = false;
    --started_users_;
    return;
  }
  const double think =
      sim::fast_exponential(user_rngs_[u], config_.think_time_mean_s);
  sim_.schedule(think, [this, u] { issue_page(u); });
}

void ClientFarm::issue_page(std::size_t u) {
  if (stopped()) return;
  tier::RequestPtr req = tier::make_request(arena_);
  req->id = next_request_id_++;
  if (!tenant_of_user_.empty()) req->tenant = tenant_of_user_[u];
  workload_.sample_dynamic(*req, user_rngs_[u]);
  if (!config_.demand_schedule.empty()) {
    // Tier slowdown/recovery: scale backend demands at issue time. The RNG
    // stream is untouched, so a scaled trial replays the same request mix.
    const double scale = demand_scale(sim_.now());
    req->tomcat_demand_s *= scale;
    req->cjdbc_demand_s *= scale;
    req->mysql_demand_s *= scale;
  }
  req->sent_at = sim_.now();
  ++pages_started_;
  dynamic_requests_.inc();
  if (config_.trace_sample_rate > 0.0 &&
      traced_.size() < kMaxTracedRequests &&
      should_trace(req->id)) {
    req->enable_trace();
    traced_.push_back(req);
  }
  // In-flight state parks in the request so the send/response callbacks
  // below capture {this, Request*} and stay inside InlineFunction's buffer.
  auto& hold = req->client_hold;
  hold.self = req;
  hold.user = static_cast<std::uint32_t>(u);
  hold.target = next_apache();
  tier::Request* r = req.get();
  to_server_.send(r->request_bytes, [this, r] {
    r->client_hold.target->handle(tier::RequestPtr(r),
                                  [this, r] { on_page_done(r); });
  });
}

void ClientFarm::on_page_done(tier::Request* r) {
  r->completed_at = sim_.now();
  if (r->completed_at >= measure_start() && r->completed_at < measure_end()) {
    const double rt = r->completed_at - r->sent_at;
    rts_.add(rt);
    completion_times_.push_back(r->completed_at);
    rt_hist_.observe(rt);
    if (!tenant_of_user_.empty()) {
      const std::uint32_t t = r->tenant;
      tenant_rts_[t].add(rt);
      tenant_requests_[t].inc();
      TenantWindow& w = tenant_windows_[t];
      if (rt <= config_.tenants[t].sla_threshold_s) {
        ++w.good;
      } else {
        ++w.bad;
      }
    }
  }
  const std::size_t u = r->client_hold.user;
  tier::RequestPtr keep = std::move(r->client_hold.self);
  issue_static(u, RubbosWorkload::kStaticsPerPage);
}

void ClientFarm::issue_static(std::size_t u, int remaining) {
  if (remaining <= 0 || stopped()) {
    think_then_browse(u);
    return;
  }
  tier::RequestPtr req = tier::make_request(arena_);
  req->id = next_request_id_++;
  if (!tenant_of_user_.empty()) req->tenant = tenant_of_user_[u];
  workload_.sample_static(*req, user_rngs_[u]);
  req->sent_at = sim_.now();
  static_requests_.inc();
  auto& hold = req->client_hold;
  hold.self = req;
  hold.user = static_cast<std::uint32_t>(u);
  hold.statics_remaining = remaining;
  hold.target = next_apache();
  tier::Request* r = req.get();
  to_server_.send(r->request_bytes, [this, r] {
    r->client_hold.target->handle(tier::RequestPtr(r),
                                  [this, r] { on_static_done(r); });
  });
}

void ClientFarm::on_static_done(tier::Request* r) {
  const std::size_t u = r->client_hold.user;
  const int remaining = r->client_hold.statics_remaining;
  tier::RequestPtr keep = std::move(r->client_hold.self);
  issue_static(u, remaining - 1);
}

bool ClientFarm::should_trace(std::uint64_t request_id) const {
  // Hash-based 1-in-N sampling: deterministic per (seed, request id), and —
  // unlike drawing from a user's RNG stream — consumes no random numbers, so
  // a traced trial replays the exact event sequence of an untraced one.
  const std::uint64_t h = sim::Rng::hash_mix(config_.seed, request_id);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < config_.trace_sample_rate;
}

tier::ApacheServer* ClientFarm::next_apache() {
  tier::ApacheServer* a = apaches_[next_apache_];
  next_apache_ = (next_apache_ + 1) % apaches_.size();
  return a;
}

double ClientFarm::window_throughput() const {
  return static_cast<double>(rts_.count()) / config_.runtime_s;
}

double ClientFarm::goodput(double threshold_s) const {
  return static_cast<double>(rts_.count_at_or_below(threshold_s)) /
         config_.runtime_s;
}

double ClientFarm::tenant_throughput(std::size_t t) const {
  return static_cast<double>(tenant_rts_[t].count()) / config_.runtime_s;
}

double ClientFarm::tenant_goodput(std::size_t t, double threshold_s) const {
  return static_cast<double>(tenant_rts_[t].count_at_or_below(threshold_s)) /
         config_.runtime_s;
}

}  // namespace softres::workload
