#pragma once

#include <cstddef>
#include <vector>

#include "sim/sim_time.h"
#include "workload/client_farm.h"

namespace softres::workload {

/// Canonical time-varying load shapes for governor/tuner scenarios. Each
/// returns a LoadPhase schedule for ClientConfig::load_schedule (or
/// ClientFarm::set_load_schedule). All are pure functions of their
/// arguments — no randomness, so scenario identity stays deterministic.

/// Flash crowd: `baseline` users, spiking to `peak` at `crowd_start` for
/// `crowd_duration_s`, then back to baseline (paper §I: internet-facing
/// peak load is several times the steady state).
std::vector<LoadPhase> flash_crowd_schedule(std::size_t baseline,
                                            std::size_t peak,
                                            sim::SimTime crowd_start,
                                            double crowd_duration_s);

/// Diurnal wave: a raised-cosine staircase between `low` and `high` users
/// with the given period, sampled `steps_per_period` times per period for
/// `total_s` seconds. Starts at the trough (t = 0 is "night").
std::vector<LoadPhase> diurnal_schedule(std::size_t low, std::size_t high,
                                        double period_s, double total_s,
                                        std::size_t steps_per_period = 12);

/// Tier slowdown/recovery: backend demands inflate by `slow_scale` at
/// `slow_start` and return to 1.0 at `recover_at` (ClientConfig::
/// demand_schedule). Models a degraded replica or cold cache downstream.
std::vector<DemandPhase> tier_slowdown_schedule(sim::SimTime slow_start,
                                                double slow_scale,
                                                sim::SimTime recover_at);

}  // namespace softres::workload
