#pragma once

#include <cstdint>
#include <vector>

#include "hw/link.h"
#include "obs/registry.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "tier/apache.h"
#include "workload/rubbos.h"

namespace softres::workload {

/// One step of an elastic load profile: from `start` (absolute simulation
/// time) onward, `active_users` sessions are active. Internet-scale workloads
/// have peak load several times the steady state (paper, Section I); the
/// schedule lets experiments replay such profiles.
struct LoadPhase {
  sim::SimTime start = 0.0;
  std::size_t active_users = 0;
};

/// One step of a service-demand profile: from `start` onward, backend
/// (Tomcat/C-JDBC/MySQL) per-request CPU demands are multiplied by `scale`.
/// scale > 1 models a tier slowdown (cache loss, degraded replica); a later
/// phase with scale = 1 models recovery. Demands are scaled at issue time, so
/// the profile perturbs no RNG stream and trials stay bit-identical.
struct DemandPhase {
  sim::SimTime start = 0.0;
  double scale = 1.0;
};

/// One tenant of a multi-tenant trial: its own closed-loop session block,
/// SLA bound, and sharing contract. `entitlement` is the provisioned share
/// weight (what static quotas and Karma fair shares divide by);
/// `reported_demand` is the tenant's *claimed* demand weight — only the
/// work-conserving strategy trusts it, which is what makes misreporting
/// profitable there (see soft/partition.h). Per-user RNG streams are derived
/// from (trial seed, tenant index, user index within the tenant), so tenants
/// are mutually stream-independent: adding or resizing one tenant never
/// perturbs another's request sequence.
struct TenantSpec {
  std::string name;
  std::size_t users = 0;
  double entitlement = 1.0;
  double reported_demand = 1.0;
  /// Per-tenant SLA bound feeding the tenant_goodput/tenant_badput series.
  double sla_threshold_s = 2.0;
  /// Optional per-tenant elastic profile (an empty schedule staggers the
  /// tenant's users across the ramp-up like the fixed-population default).
  std::vector<LoadPhase> load_schedule;
};

/// Closed-loop load generation parameters. The paper's trials are an 8 min
/// ramp-up, 12 min runtime, 30 s ramp-down; the defaults here are compressed
/// for iteration speed and widened by the experiment harness when
/// SOFTRES_FULL is set.
struct ClientConfig {
  std::size_t users = 1000;
  double think_time_mean_s = 7.0;
  double ramp_up_s = 30.0;
  double runtime_s = 120.0;
  double ramp_down_s = 5.0;
  /// Aggregate user capacity of the client machines; beyond ~88 % of this the
  /// FIN-reply latency model kicks in (see net::TcpConfig).
  double users_capacity = 8000.0;
  std::uint64_t seed = 42;
  /// Fraction of dynamic requests traced tier-by-tier (Request::trace),
  /// default off. Sampling is a deterministic hash of (seed, request id), so
  /// the traced subset is reproducible and tracing perturbs neither the RNG
  /// streams nor the event sequence. The farm retains at most
  /// kMaxTracedRequests traced requests. Benches and examples share this one
  /// switch via exp::ExperimentOptions::trace_sample_rate.
  double trace_sample_rate = 0.0;
  /// Optional time-varying load shape (flash crowd, diurnal wave — see
  /// workload/load_shapes.h). When non-empty and set_load_schedule() was not
  /// called explicitly, start() follows this profile instead of the fixed
  /// population. Phase populations must not exceed `users`. Carried in the
  /// config so experiment harnesses can plumb scenarios through
  /// ExperimentOptions without touching the farm directly.
  std::vector<LoadPhase> load_schedule;
  /// Optional backend service-demand profile (tier slowdown/recovery).
  std::vector<DemandPhase> demand_schedule;
  /// Multi-tenant mode: when non-empty the farm runs one session block per
  /// tenant (`users` above is overridden with the tenant sum) and tags every
  /// request with its tenant index. Empty = the legacy single-tenant farm,
  /// bit-identical to before this knob existed.
  std::vector<TenantSpec> tenants;
};

/// Emulated RUBBoS client farm: `users` independent closed-loop sessions,
/// each cycling think -> dynamic page request -> 2 static requests. Response
/// times of dynamic requests completed inside the measurement window are
/// recorded for the SLA goodput analysis.
class ClientFarm {
 public:
  /// `arena`, when supplied, is the per-trial Request pool every issued
  /// request is drawn from (it must outlive the farm and the simulator's
  /// pending events — exp::RunContext guarantees both). Without an arena the
  /// farm heap-allocates requests, which standalone tests use.
  ClientFarm(sim::Simulator& sim, const RubbosWorkload& workload,
             ClientConfig config, hw::Link& to_server,
             tier::RequestArena* arena = nullptr);

  /// Register the web server(s) requests go to; at least one must be added
  /// before start(). Multiple servers are used round-robin (DNS balancing).
  void add_target(tier::ApacheServer& apache) { apaches_.push_back(&apache); }

  /// Replace the default fixed-population behaviour with an elastic load
  /// profile. Phase populations must not exceed `config.users` (the slot
  /// pool). Call before start().
  void set_load_schedule(std::vector<LoadPhase> schedule);

  /// Activate the users, staggered across the ramp-up period (fixed
  /// population) or according to the load schedule (elastic).
  void start();

  /// Sessions currently active (the elastic population).
  std::size_t active_users() const { return started_users_; }

  /// Backend demand multiplier in effect at time `t` (1.0 without a
  /// demand schedule). Exposed for tests and probes.
  double demand_scale(sim::SimTime t) const;

  /// Started-user fraction of client capacity; drives the FIN-delay model.
  double client_load() const;

  sim::SimTime measure_start() const { return config_.ramp_up_s; }
  sim::SimTime measure_end() const {
    return config_.ramp_up_s + config_.runtime_s;
  }
  sim::SimTime total_duration() const {
    return config_.ramp_up_s + config_.runtime_s + config_.ramp_down_s;
  }

  /// Dynamic-request response times completed inside the window.
  const sim::SampleSet& response_times() const { return rts_; }
  const std::vector<sim::SimTime>& completion_times() const {
    return completion_times_;
  }

  /// Interactions per second over the measurement window.
  double window_throughput() const;
  /// Interactions per second that met `threshold_s` (the paper's goodput).
  double goodput(double threshold_s) const;

  std::uint64_t pages_started() const { return pages_started_; }
  const ClientConfig& config() const { return config_; }

  // Multi-tenant views (num_tenants() == 0 on a legacy farm).
  std::size_t num_tenants() const { return config_.tenants.size(); }
  const TenantSpec& tenant(std::size_t t) const { return config_.tenants[t]; }
  /// Sessions of tenant `t` currently active.
  std::size_t tenant_active_users(std::size_t t) const {
    return tenant_started_[t];
  }
  /// Dynamic-request response times of tenant `t` inside the window.
  const sim::SampleSet& tenant_response_times(std::size_t t) const {
    return tenant_rts_[t];
  }
  /// Window interactions per second of tenant `t`.
  double tenant_throughput(std::size_t t) const;
  /// Window interactions per second of tenant `t` that met `threshold_s`.
  double tenant_goodput(std::size_t t, double threshold_s) const;

  /// Requests that carried tier-by-tier tracing (Fig 9 style analysis).
  const std::vector<tier::RequestPtr>& traced_requests() const {
    return traced_;
  }
  static constexpr std::size_t kMaxTracedRequests = 200;

  /// Register the farm's client-side metrics (request counters, the Fig 3c
  /// response-time histogram, active users / client load gauges) on the
  /// unified registry. Call before start().
  void bind_registry(obs::Registry& registry);

 private:
  void start_user(std::size_t u);
  void apply_target(std::size_t target);
  void apply_tenant_target(std::size_t t, std::size_t target);
  void think_then_browse(std::size_t u);
  void issue_page(std::size_t u);
  void issue_static(std::size_t u, int remaining);
  // Completion stages (in-flight state in req->client_hold, so the
  // send/response callbacks capture only {farm, Request*} and stay inline).
  void on_page_done(tier::Request* r);
  void on_static_done(tier::Request* r);
  bool stopped() const;
  bool should_trace(std::uint64_t request_id) const;
  tier::ApacheServer* next_apache();
  /// Idempotent per-sampler-tick close of tenant `t`'s goodput/badput
  /// window (both gauge_fns of a tick see the same rates).
  void sample_tenant_window(std::size_t t, sim::SimTime now);

  sim::Simulator& sim_;
  const RubbosWorkload& workload_;
  ClientConfig config_;
  hw::Link& to_server_;
  tier::RequestArena* arena_ = nullptr;
  std::vector<tier::ApacheServer*> apaches_;
  std::size_t next_apache_ = 0;

  std::vector<sim::Rng> user_rngs_;
  std::vector<LoadPhase> schedule_;
  std::vector<bool> user_active_;
  std::size_t active_target_ = 0;
  std::size_t started_users_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t pages_started_ = 0;

  sim::SampleSet rts_;
  std::vector<sim::SimTime> completion_times_;
  std::vector<tier::RequestPtr> traced_;

  // Multi-tenant state (all empty on a legacy farm).
  std::vector<std::uint32_t> tenant_of_user_;
  std::vector<std::size_t> tenant_user_base_;  // first slot of each tenant
  std::vector<std::size_t> tenant_target_;     // elastic per-tenant target
  std::vector<std::size_t> tenant_started_;
  std::vector<sim::SampleSet> tenant_rts_;
  /// Per-tenant goodput/badput interval accumulator, closed once per sampler
  /// tick (cached_at makes the close idempotent across the two gauge_fns).
  struct TenantWindow {
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    sim::SimTime window_start = 0.0;
    sim::SimTime cached_at = -1.0;
    double good_rate = 0.0;
    double bad_rate = 0.0;
  };
  std::vector<TenantWindow> tenant_windows_;
  std::vector<obs::Counter> tenant_requests_;

  // Observability handles; default-constructed handles are no-op sinks, so
  // an unbound farm pays one null check per event.
  obs::Counter dynamic_requests_;
  obs::Counter static_requests_;
  obs::Histogram rt_hist_;
};

}  // namespace softres::workload
