#pragma once

#include <string>
#include <vector>

#include "sim/distributions.h"
#include "sim/rng.h"
#include "tier/request.h"

namespace softres::workload {

/// One of RUBBoS's 24 interaction types. Weights select the interaction in
/// each mix; the multipliers scale the testbed's base demands, and
/// `num_queries` is the interaction's SQL count (the Forced-Flow-Law
/// Req_ratio is the mix-weighted mean of this column).
struct Interaction {
  std::string name;
  double browse_weight;   // weight in the browsing-only mix
  double rw_weight;       // weight in the read/write mix
  int num_queries;        // SQL queries issued by the servlet
  double tomcat_mult;     // servlet CPU multiplier
  double mysql_mult;      // per-query DB CPU multiplier
  double disk_prob;       // probability a query misses the buffer cache
  double response_kb;     // dynamic response size
};

enum class Mix { kBrowseOnly, kReadWrite };

/// Base per-tier demands; multiplied by the interaction factors. Defaults are
/// calibrated so the simulated testbed reproduces the paper's knees (see
/// DESIGN.md §5).
struct DemandProfile {
  double apache_dynamic_s = 0.00025;
  double apache_static_s = 0.00006;
  double tomcat_base_s = 0.0026;
  double cjdbc_per_query_s = 0.00037;
  double mysql_per_query_s = 0.00055;
  /// Demands get an exponential tail of this relative weight (0 = constant).
  double variability = 0.5;
  double static_response_kb = 4.0;
};

/// The RUBBoS bulletin-board workload: a fixed interaction table plus demand
/// sampling. Each page view is one dynamic request followed by
/// `statics_per_page` static requests (logo images etc.), matching the
/// benchmark's behaviour with keepalive off.
class RubbosWorkload {
 public:
  explicit RubbosWorkload(Mix mix = Mix::kBrowseOnly,
                          DemandProfile profile = DemandProfile{});

  /// Populate a fresh dynamic request with sampled demands.
  void sample_dynamic(tier::Request& req, sim::Rng& rng) const;

  /// Populate a static follow-up request.
  void sample_static(tier::Request& req, sim::Rng& rng) const;

  /// Mix-weighted mean SQL queries per dynamic request (the paper's
  /// Req_ratio between the Tomcat and C-JDBC tiers).
  double req_ratio() const;

  /// Mix-weighted mean CPU seconds per dynamic request at each tier (for
  /// capacity back-of-envelope checks and tests).
  double mean_tomcat_demand() const;
  double mean_cjdbc_demand_per_request() const;
  double mean_mysql_demand_per_request() const;

  static constexpr int kStaticsPerPage = 2;

  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }
  Mix mix() const { return mix_; }
  const DemandProfile& profile() const { return profile_; }

  /// The canonical 24-interaction RUBBoS table.
  static std::vector<Interaction> default_interactions();

 private:
  double sample_demand(double mean, sim::Rng& rng) const;

  Mix mix_;
  DemandProfile profile_;
  std::vector<Interaction> interactions_;
  sim::DiscreteChoice choice_;
};

}  // namespace softres::workload
