#include "core/runner.h"

namespace softres::core {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kWeb:
      return "web";
    case Tier::kApp:
      return "app";
    case Tier::kMiddleware:
      return "middleware";
    case Tier::kDb:
      return "db";
  }
  return "?";
}

std::string Allocation::to_string() const {
  return std::to_string(web_threads) + "-" + std::to_string(app_threads) +
         "-" + std::to_string(app_connections);
}

bool Observation::any_hardware_saturated() const {
  for (const auto& h : hardware) {
    if (h.saturated) return true;
  }
  return false;
}

bool Observation::any_soft_saturated() const {
  for (const auto& s : soft) {
    if (s.saturated) return true;
  }
  return false;
}

const ServerObservation* Observation::find_server(
    const std::string& name) const {
  for (const auto& s : servers) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<Observation> ExperimentRunner::run_batch(
    const Allocation& alloc, const std::vector<std::size_t>& workloads) {
  std::vector<Observation> out;
  out.reserve(workloads.size());
  for (std::size_t w : workloads) out.push_back(run(alloc, w));
  return out;
}

}  // namespace softres::core
