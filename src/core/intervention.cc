#include "core/intervention.h"

#include <algorithm>
#include <cmath>

namespace softres::core {

InterventionResult intervention_analysis(const std::vector<double>& series,
                                         const InterventionConfig& cfg) {
  InterventionResult r;
  if (series.size() < 2) {
    r.last_stable_index = series.empty() ? 0 : series.size() - 1;
    return r;
  }
  const std::size_t nb =
      std::max<std::size_t>(1, std::min(cfg.baseline_points, series.size() / 2));
  double mean = 0.0;
  for (std::size_t i = 0; i < nb; ++i) mean += series[i];
  mean /= static_cast<double>(nb);
  double var = 0.0;
  for (std::size_t i = 0; i < nb; ++i) {
    var += (series[i] - mean) * (series[i] - mean);
  }
  var = nb > 1 ? var / static_cast<double>(nb - 1) : 0.0;
  const double sigma = std::sqrt(var);

  r.baseline_mean = mean;
  r.baseline_stddev = sigma;
  r.threshold = mean - std::max(cfg.sigma_multiplier * sigma, cfg.min_drop);

  const std::size_t need = std::max<std::size_t>(1, cfg.confirmations);
  std::size_t run = 0;
  for (std::size_t i = nb; i < series.size(); ++i) {
    if (series[i] < r.threshold) {
      ++run;
      if (run >= need) {
        r.found = true;
        r.change_index = i - run + 1;
        r.last_stable_index = r.change_index == 0 ? 0 : r.change_index - 1;
        return r;
      }
    } else {
      run = 0;
    }
  }
  // Tail that intervenes but is not long enough to confirm still counts when
  // the series ends mid-run.
  if (run > 0) {
    r.found = true;
    r.change_index = series.size() - run;
    r.last_stable_index = r.change_index == 0 ? 0 : r.change_index - 1;
    return r;
  }
  r.last_stable_index = series.size() - 1;
  return r;
}

}  // namespace softres::core
