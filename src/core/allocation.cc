#include "core/allocation.h"

#include "core/ops_laws.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cmath>

namespace softres::core {

const char* to_string(AlgorithmStatus s) {
  switch (s) {
    case AlgorithmStatus::kOk:
      return "ok";
    case AlgorithmStatus::kNoBottleneckFound:
      return "no-bottleneck-found";
    case AlgorithmStatus::kMultiBottleneck:
      return "multi-bottleneck";
    case AlgorithmStatus::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "?";
}

AllocationAlgorithm::AllocationAlgorithm(ExperimentRunner& runner,
                                         AlgorithmConfig config)
    : runner_(runner), cfg_(config) {}

Observation AllocationAlgorithm::run_once(const Allocation& alloc,
                                          std::size_t workload,
                                          std::size_t step) {
  ++runs_;
  // Ramp look-ahead: if a previous batch already speculated this point,
  // serve it; the runner's contract (run_batch order-independence) makes
  // this indistinguishable from having run it now.
  for (std::size_t i = 0; i < prefetch_.size(); ++i) {
    if (prefetch_[i].alloc == alloc && prefetch_[i].workload == workload) {
      Observation obs = std::move(prefetch_[i].obs);
      prefetch_.erase(prefetch_.begin() +
                      static_cast<std::ptrdiff_t>(i));
      return obs;
    }
  }
  // Miss: the ramp restarted or doubled its allocation — stale speculation
  // can never match again, so drop it and fetch a fresh batch along the
  // predicted continuation (workload, workload+step, ...).
  prefetch_.clear();
  std::size_t k = cfg_.lookahead != 0 ? cfg_.lookahead
                                      : runner_.preferred_batch();
  if (k < 1) k = 1;
  // Never speculate past what the run budget could still consume.
  const std::size_t remaining =
      cfg_.max_runs > runs_ ? cfg_.max_runs - runs_ : 0;
  k = std::min(k, remaining + 1);
  std::vector<std::size_t> workloads;
  workloads.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    workloads.push_back(workload + i * step);
  }
  std::vector<Observation> batch = runner_.run_batch(alloc, workloads);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    prefetch_.push_back({alloc, workloads[i], std::move(batch[i])});
  }
  return std::move(batch.front());
}

namespace {

TracePoint make_trace(const Observation& obs, const Allocation& alloc,
                      const BottleneckReport& rep) {
  TracePoint t;
  t.workload = obs.workload;
  t.alloc = alloc;
  t.throughput = obs.throughput;
  t.goodput = obs.goodput;
  t.slo_satisfaction = obs.slo_satisfaction;
  t.bottleneck = rep.kind;
  t.critical = rep.critical;
  return t;
}

std::string server_of_resource(const std::string& resource) {
  const auto dot = resource.rfind('.');
  return dot == std::string::npos ? resource : resource.substr(0, dot);
}

int tier_index(Tier t) { return static_cast<int>(t); }

struct TierAgg {
  int servers = 0;
  double rtt_sum = 0.0;
  double tp_total = 0.0;
  double jobs_total = 0.0;
  double rtt() const {
    return servers ? rtt_sum / static_cast<double>(servers) : 0.0;
  }
};

std::map<Tier, TierAgg> aggregate_tiers(const Observation& obs) {
  std::map<Tier, TierAgg> agg;
  for (const auto& s : obs.servers) {
    TierAgg& a = agg[s.tier];
    ++a.servers;
    a.rtt_sum += s.mean_rt_s;
    a.tp_total += s.throughput;
    a.jobs_total += s.avg_jobs;
  }
  return agg;
}

}  // namespace

CriticalResourceResult AllocationAlgorithm::find_critical_resource() {
  CriticalResourceResult result;
  Allocation s = cfg_.initial;
  std::size_t workload = cfg_.start_workload;
  double tp_max = -1.0;

  while (runs_ < cfg_.max_runs) {
    const Observation obs = run_once(s, workload, cfg_.workload_step);
    const BottleneckReport rep = detect_bottleneck(obs);
    result.trace.push_back(make_trace(obs, s, rep));

    if (rep.kind == BottleneckKind::kHardware ||
        rep.kind == BottleneckKind::kMulti) {
      // Hardware saturation: the critical resource is exposed.
      result.status = rep.kind == BottleneckKind::kMulti
                          ? AlgorithmStatus::kMultiBottleneck
                          : AlgorithmStatus::kOk;
      result.critical_resource = rep.critical;
      result.critical_server = server_of_resource(rep.critical);
      if (const ServerObservation* srv =
              obs.find_server(result.critical_server)) {
        result.critical_tier = srv->tier;
      }
      result.reserve = s;
      return result;
    }
    if (rep.kind == BottleneckKind::kSoft) {
      // Hardware is under-utilized because some pool is scarce: double every
      // soft allocation and restart the ramp (pseudo-code line 14).
      s = s.doubled();
      workload = cfg_.start_workload;
      tp_max = -1.0;
      continue;
    }
    // Nothing saturated. Throughput must still be climbing, otherwise the
    // system saturates in a way our monitors cannot attribute.
    if (obs.throughput <= tp_max) {
      result.status = AlgorithmStatus::kNoBottleneckFound;
      return result;
    }
    tp_max = obs.throughput;
    workload += cfg_.workload_step;
  }
  result.status = AlgorithmStatus::kBudgetExhausted;
  return result;
}

MinJobsResult AllocationAlgorithm::infer_min_concurrent_jobs(
    const CriticalResourceResult& crit) {
  MinJobsResult result;
  if (crit.status != AlgorithmStatus::kOk &&
      crit.status != AlgorithmStatus::kMultiBottleneck) {
    result.status = crit.status;
    return result;
  }

  std::vector<double> satisfaction;
  std::vector<double> crit_rtt;
  std::vector<double> crit_tp;
  std::vector<Observation> observations;
  std::vector<std::size_t> workloads;

  std::size_t workload = cfg_.start_workload;
  double tp_max = -1.0;
  int declines = 0;
  std::size_t first_saturated = SIZE_MAX;  // first WL with the critical
                                           // resource at full utilization

  while (runs_ < cfg_.max_runs) {
    Observation obs = run_once(crit.reserve, workload, cfg_.small_step);
    if (first_saturated == SIZE_MAX) {
      for (const auto& h : obs.hardware) {
        if (h.name == crit.critical_resource && h.saturated) {
          first_saturated = satisfaction.size();  // index of this point
          break;
        }
      }
    }
    const BottleneckReport rep = detect_bottleneck(obs);
    result.trace.push_back(make_trace(obs, crit.reserve, rep));

    satisfaction.push_back(obs.slo_satisfaction);
    const ServerObservation* srv = obs.find_server(crit.critical_server);
    crit_rtt.push_back(srv != nullptr ? srv->mean_rt_s : 0.0);
    crit_tp.push_back(srv != nullptr ? srv->throughput : 0.0);
    workloads.push_back(workload);
    observations.push_back(std::move(obs));

    const double tp = observations.back().throughput;
    if (tp <= tp_max) {
      ++declines;
    } else {
      tp_max = tp;
      declines = 0;
    }

    const InterventionResult ia =
        intervention_analysis(satisfaction, cfg_.intervention);
    const std::size_t min_points =
        cfg_.intervention.baseline_points + cfg_.intervention.confirmations;
    if ((ia.found && satisfaction.size() >= min_points) || declines >= 2) {
      result.intervention = ia;
      break;
    }
    workload += cfg_.small_step;
  }

  if (observations.empty()) {
    result.status = AlgorithmStatus::kBudgetExhausted;
    return result;
  }
  if (!result.intervention.found) {
    result.intervention =
        intervention_analysis(satisfaction, cfg_.intervention);
  }

  // WL_min is where the critical hardware resource first saturates; the
  // intervention point on SLO satisfaction bounds it from above (response
  // times may only deteriorate once the resource is pegged).
  std::size_t idx =
      std::min(result.intervention.last_stable_index, observations.size() - 1);
  if (first_saturated != SIZE_MAX) idx = std::min(idx, first_saturated);
  result.saturation_workload = workloads[idx];
  result.saturation_throughput = observations[idx].throughput;
  result.critical_rtt_s = crit_rtt[idx];
  result.critical_throughput = crit_tp[idx];
  // Little's law: minimum concurrent jobs saturating the critical server.
  result.min_jobs = static_cast<std::size_t>(
      std::max(1.0, std::ceil(crit_tp[idx] * crit_rtt[idx])));
  result.at_saturation = observations[idx];
  return result;
}

AllocationReport AllocationAlgorithm::calculate_min_allocation(
    const CriticalResourceResult& crit, const MinJobsResult& jobs) {
  AllocationReport report;
  report.critical = crit;
  report.min_jobs = jobs;
  report.experiments_run = runs_;
  if (jobs.status != AlgorithmStatus::kOk) {
    report.status = jobs.status;
    return report;
  }
  report.status = crit.status;

  const Observation& obs = jobs.at_saturation;
  report.req_ratio = obs.req_ratio;
  const auto agg = aggregate_tiers(obs);
  const auto crit_it = agg.find(crit.critical_tier);
  assert(crit_it != agg.end());
  const TierAgg& crit_agg = crit_it->second;
  const double crit_total_jobs =
      static_cast<double>(jobs.min_jobs) *
      static_cast<double>(crit_agg.servers);

  auto per_server_for = [&](Tier tier, const TierAgg& a) -> std::size_t {
    if (tier == crit.critical_tier) return jobs.min_jobs;
    if (tier_index(tier) < tier_index(crit.critical_tier)) {
      // Front tier: Formula (3), with the forced-flow ratio measured from
      // the tiers' throughputs at saturation.
      const double req_ratio =
          a.tp_total > 0.0 ? crit_agg.tp_total / a.tp_total : 1.0;
      const double rtt_ratio =
          crit_agg.rtt() > 0.0 ? a.rtt() / crit_agg.rtt() : 1.0;
      const double l_tier =
          front_tier_jobs(crit_total_jobs, rtt_ratio, req_ratio);
      return static_cast<std::size_t>(std::max(
          1.0, std::ceil(l_tier / static_cast<double>(a.servers))));
    }
    // Back-end tier: at least minjobs each so the critical tier never
    // starves on downstream congestion.
    return jobs.min_jobs;
  };

  for (const auto& [tier, a] : agg) {
    TierRow row;
    row.tier = tier;
    row.servers = a.servers;
    row.rtt_s = a.rtt();
    row.throughput = a.tp_total;
    row.avg_jobs = a.jobs_total;
    row.pool_per_server = per_server_for(tier, a);
    row.pool_total = row.pool_per_server * static_cast<std::size_t>(a.servers);
    report.rows.push_back(row);
  }

  // Translate tier rows into the #Wt-#At-#Ac knobs.
  Allocation rec;
  std::size_t app_servers = 1;
  for (const auto& row : report.rows) {
    switch (row.tier) {
      case Tier::kWeb:
        rec.web_threads = static_cast<std::size_t>(std::ceil(
            static_cast<double>(row.pool_per_server) *
            cfg_.web_buffer_factor));
        break;
      case Tier::kApp:
        rec.app_threads = row.pool_per_server;
        app_servers = static_cast<std::size_t>(row.servers);
        break;
      default:
        break;
    }
  }
  if (crit.critical_tier == Tier::kApp) {
    // Pseudo-code lines 31-32: both pools of the critical server = minjobs.
    rec.app_connections = jobs.min_jobs;
  } else if (tier_index(crit.critical_tier) > tier_index(Tier::kApp)) {
    // The middleware/db tier has no explicit pool: its thread count is
    // controlled 1:1 by the app tier's DB connections, so the connection
    // pools jointly provide exactly the critical tier's total concurrency.
    rec.app_connections = static_cast<std::size_t>(std::max(
        1.0, std::ceil(crit_total_jobs / static_cast<double>(app_servers))));
  } else {
    rec.app_connections = jobs.min_jobs;
  }
  report.recommended = rec;
  return report;
}

AllocationReport AllocationAlgorithm::run() {
  const CriticalResourceResult crit = find_critical_resource();
  if (crit.status != AlgorithmStatus::kOk &&
      crit.status != AlgorithmStatus::kMultiBottleneck) {
    AllocationReport report;
    report.status = crit.status;
    report.critical = crit;
    report.experiments_run = runs_;
    return report;
  }
  const MinJobsResult jobs = infer_min_concurrent_jobs(crit);
  return calculate_min_allocation(crit, jobs);
}

}  // namespace softres::core
