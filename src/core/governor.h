#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_time.h"
#include "soft/pool_set.h"

namespace softres::core {

/// Advice distilled from the Diagnoser's SuggestedAction for one tick.
/// core cannot depend on obs (same layering rule as DiagnosisHint in
/// bottleneck.h), so the exp layer converts the live diagnosis into this
/// vocabulary before calling Governor::tick.
struct GovernorAdvice {
  enum class Kind { kNone, kGrow, kShrink };
  Kind kind = Kind::kNone;
  /// Pool label the advice names (e.g. "tomcat0.threads"); empty = generic.
  std::string resource;
};

/// Control-law parameters. Defaults are tuned for the paper's RUBBoS-style
/// testbed at sampler cadence; see DESIGN.md §12 for the derivation of each
/// hysteresis knob.
struct GovernorConfig {
  bool enabled = false;

  // -- target computation -------------------------------------------------
  /// Demand smoothing time constant for the per-pool EWMA of demand. Demand
  /// per tick is the exact time-weighted occupancy of the window (from the
  /// pool's occupancy integral — immune to sampling-instant aliasing when
  /// holds are much shorter than the tick) plus the queue behind the pool.
  /// Larger = steadier, slower to chase a flash crowd.
  double ewma_tau_s = 3.0;
  /// Target capacity = headroom * smoothed demand.
  double headroom = 1.3;
  /// Web-worker pools buffer whole-page bursts; mirror the allocation
  /// algorithm's web_buffer_factor by giving them more slack.
  double web_headroom = 1.6;
  /// Headroom used when the diagnoser advises shrinking a pool (§III-B GC
  /// over-allocation): drain close to observed demand.
  double shrink_headroom = 1.1;

  // -- hysteresis ----------------------------------------------------------
  /// Relative deadband: skip resizes that move capacity by less than this
  /// fraction (and by less than one whole unit).
  double deadband = 0.15;
  /// Per-pool minimum time between applied resizes.
  double cooldown_s = 8.0;
  /// Bounded step, growth only: one grow lands at a capacity `to` satisfying
  /// to <= from + max(min_step, ceil(max_step_fraction * to)) — geometric
  /// escalation (doubling at the default 0.5) that the next tick can still
  /// veto, yet closes large gaps in logarithmically many ticks. Shrinks move
  /// to the target in one action: lazy drain makes them safe, and lingering
  /// over-allocation is exactly the §III-B cost the governor exists to shed.
  double max_step_fraction = 0.5;
  /// ...but a grow never moves by less than this (so small pools can move).
  std::size_t min_step = 2;

  // -- global rate limit (token bucket over applied resizes) ---------------
  /// Applied resizes spend one token each, most-starved pool first (ranked
  /// by relative gap between target and capacity), so a fleet of churning
  /// pools cannot starve the one that is genuinely under-allocated.
  double tokens_per_s = 1.0;
  double token_burst = 6.0;

  // -- safety --------------------------------------------------------------
  /// Do not grow any pool while the hottest backend CPU is at or above this
  /// utilization: more software concurrency cannot create hardware capacity
  /// (paper §III-B), it only adds GC/dispatch overhead. Explicit kGrow
  /// advice for a specific pool bypasses the guard (and the cooldown, step
  /// bound and token bucket): the diagnoser has already watched a full
  /// evidence window and concluded the bottleneck is the pool, not the CPU
  /// — far stronger evidence than one smoothed tick. The default
  /// matches the diagnoser's under-allocation criterion (hardware counts as
  /// "idle below a saturated pool" up to 95%), so the two controllers never
  /// fight over the 92–95% band.
  double cpu_guard_pct = 95.0;
  /// Global clamp applied after pool-local floor/ceiling.
  std::size_t min_pool = 2;
  std::size_t max_pool = 4096;
};

/// One applied resize, for reports, tests and the flight recorder.
struct GovernorAction {
  sim::SimTime at = 0.0;
  std::string pool;
  std::size_t from = 0;
  std::size_t to = 0;
};

/// Closed-loop soft-resource controller (the ROADMAP's "online reactive
/// governor"). Runs at sampler cadence inside a trial, smooths per-pool
/// demand, and resizes pool capacities live through a ResizablePoolSet —
/// with a deadband, per-pool cooldowns, bounded steps and a global token
/// bucket so it reacts to load shifts without thrashing the very pools it
/// is trying to stabilize. Pure function of simulated time and pool state:
/// governed trials stay bit-identical across sweep workers.
class Governor {
 public:
  Governor(const GovernorConfig& cfg, soft::ResizablePoolSet& pools);

  /// One control tick. `max_backend_cpu_pct` is the utilization of the
  /// hottest non-web CPU over the last tick (the growth guard input);
  /// `advice` is the diagnoser's current suggestion, already translated.
  /// Returns the number of resizes applied this tick.
  std::size_t tick(sim::SimTime now, double max_backend_cpu_pct,
                   const GovernorAdvice& advice);

  const GovernorConfig& config() const { return cfg_; }
  const std::vector<GovernorAction>& actions() const { return actions_; }
  std::uint64_t resizes_applied() const { return resizes_applied_; }
  std::uint64_t resizes_rate_limited() const { return rate_limited_; }

  /// Largest single step the governor may take when the larger end of the
  /// move is `cap` — the "one resize step" used by the convergence
  /// acceptance test.
  std::size_t max_step_from(std::size_t cap) const;

  /// Smoothed demand estimate for entry `i` (testing/diagnostics).
  double smoothed_demand(std::size_t i) const { return state_[i].ewma; }

  /// Smoothed demand the governor attributes to `tenant` on pool entry `i`
  /// (0.0 unless the pool carries a TenantArbiter). Same integral-differenced
  /// occupancy-plus-queue signal as smoothed_demand, split per tenant ledger,
  /// so a capacity decision can be traced to the tenant that drove it.
  double tenant_demand(std::size_t i, std::size_t tenant) const {
    if (i >= state_.size()) return 0.0;
    const PoolState& st = state_[i];
    return tenant < st.tenant_ewma.size() ? st.tenant_ewma[tenant] : 0.0;
  }

 private:
  struct PoolState {
    double ewma = 0.0;
    bool seeded = false;
    sim::SimTime last_resize = -1e18;
    /// Occupancy-integral snapshot at the previous tick; differencing gives
    /// the window's exact time-weighted occupancy. Re-seeds on the first
    /// tick and after Pool::reset_stats (the integral drops backwards).
    double prev_integral = 0.0;
    bool integral_seeded = false;
    /// Per-tenant attribution of the same signal (partitioned pools only;
    /// sized on the first tick that sees the pool's arbiter).
    std::vector<double> tenant_ewma;
    std::vector<double> tenant_prev_integral;
  };

  std::size_t desired_capacity(const soft::ResizablePoolSet::Entry& e,
                               const PoolState& st, bool advised_shrink) const;

  GovernorConfig cfg_;
  soft::ResizablePoolSet& pools_;
  std::vector<PoolState> state_;
  std::vector<GovernorAction> actions_;
  sim::SimTime last_tick_ = -1.0;
  double tokens_ = 0.0;
  std::uint64_t resizes_applied_ = 0;
  std::uint64_t rate_limited_ = 0;
};

}  // namespace softres::core
