#pragma once

#include <cstddef>
#include <vector>

namespace softres::core {

/// Statistical intervention analysis on a monotone stress series [11].
///
/// The SLO satisfaction of a system is near-constant while workload stays
/// below the saturation point of the critical resource, then deteriorates
/// sharply. Given satisfaction measured at increasing workloads, this finds
/// the last workload index at which the series is still consistent with the
/// low-workload baseline.
struct InterventionConfig {
  /// How many leading points form the baseline (clamped to series size / 2).
  std::size_t baseline_points = 3;
  /// A point intervenes when it drops below baseline_mean - max(k*sigma,
  /// min_drop).
  double sigma_multiplier = 3.0;
  double min_drop = 0.02;
  /// Require this many consecutive intervening points (guards against noise).
  std::size_t confirmations = 2;
};

struct InterventionResult {
  bool found = false;
  /// Index of the last stable point (the saturation workload of Table I).
  std::size_t last_stable_index = 0;
  /// Index of the first confirmed intervening point.
  std::size_t change_index = 0;
  double baseline_mean = 0.0;
  double baseline_stddev = 0.0;
  double threshold = 0.0;
};

/// Analyse a satisfaction (or any stability metric) series. Values are in
/// arbitrary units; only drops below the baseline band count as intervention.
InterventionResult intervention_analysis(const std::vector<double>& series,
                                         const InterventionConfig& cfg = {});

}  // namespace softres::core
