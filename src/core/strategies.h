#pragma once

#include "core/runner.h"

namespace softres::core {

/// The naive allocation strategies the paper evaluates against (Section III)
/// plus the practitioners' static rule of thumb of Fig 2/3.

/// Straight-forward resource minimisation: small pools to avoid overhead.
/// Risks the hidden soft bottleneck of Section III-A.
inline Allocation conservative_strategy() { return {100, 6, 6}; }

/// Straight-forward resource maximisation: big pools so hardware can always
/// be fed. Risks the GC collapse of Section III-B.
inline Allocation liberal_strategy() { return {400, 200, 200}; }

/// Industry rule of thumb (the paper's 400-150-60, "considered a good choice
/// by practitioners").
inline Allocation rule_of_thumb_strategy() { return {400, 150, 60}; }

}  // namespace softres::core
