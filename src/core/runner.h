#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace softres::core {

/// Logical tiers of the n-tier deployment, front to back.
enum class Tier { kWeb, kApp, kMiddleware, kDb };

const char* tier_name(Tier t);

/// Soft resource allocation in generic terms: the three pools the paper
/// tunes (#Wt-#At-#Ac). Values are per-server.
struct Allocation {
  std::size_t web_threads = 100;
  std::size_t app_threads = 50;
  std::size_t app_connections = 50;

  Allocation doubled() const {
    return {web_threads * 2, app_threads * 2, app_connections * 2};
  }
  std::string to_string() const;
  bool operator==(const Allocation&) const = default;
};

/// What the monitoring stack reports about one hardware resource.
struct ResourceObservation {
  std::string name;       // e.g. "tomcat0.cpu"
  double util_pct = 0.0;  // window-mean utilization
  bool saturated = false;
};

/// What the monitoring stack reports about one soft resource pool.
struct SoftPoolObservation {
  std::string name;  // e.g. "tomcat0.threads"
  std::size_t capacity = 0;
  double util_pct = 0.0;
  bool saturated = false;
};

/// Per-server operational quantities from the server logs.
struct ServerObservation {
  Tier tier = Tier::kApp;
  std::string name;
  double throughput = 0.0;  // completions/s
  double mean_rt_s = 0.0;   // residence time (the server "RTT" of Table I)
  double avg_jobs = 0.0;    // time-averaged concurrent jobs
};

/// One RunExperiment(H, S, workload) outcome.
struct Observation {
  std::size_t workload = 0;
  double throughput = 0.0;        // interactions/s at the client
  double goodput = 0.0;           // within the SLO threshold
  double slo_satisfaction = 1.0;  // goodput / throughput
  std::vector<ResourceObservation> hardware;
  std::vector<SoftPoolObservation> soft;
  std::vector<ServerObservation> servers;
  /// Sub-requests per front-tier request between app and middleware tier
  /// (the workload's Req_ratio).
  double req_ratio = 1.0;

  bool any_hardware_saturated() const;
  bool any_soft_saturated() const;
  const ServerObservation* find_server(const std::string& name) const;
};

/// Abstraction of "deploy this allocation, offer this workload, monitor".
/// The simulator implements it (exp::RunnerAdapter); a real testbed could
/// implement it identically — the algorithm cannot tell the difference.
class ExperimentRunner {
 public:
  virtual ~ExperimentRunner() = default;
  virtual Observation run(const Allocation& alloc, std::size_t workload) = 0;

  /// Run one allocation at several workloads, results in input order. The
  /// default is a serial loop; runners backed by independent trials (the
  /// simulator, a farm of rigs) override it to run the batch concurrently.
  /// Implementations must return results identical to the serial loop —
  /// AllocationAlgorithm uses this for speculative ramp look-ahead and
  /// discards nothing-observed suffixes, so any order dependence would leak
  /// into the report.
  virtual std::vector<Observation> run_batch(
      const Allocation& alloc, const std::vector<std::size_t>& workloads);

  /// How many workload points a batch can usefully exploit (1 = serial
  /// runner). Callers use it to size speculative look-ahead.
  virtual std::size_t preferred_batch() const { return 1; }
};

}  // namespace softres::core
