#pragma once

#include <cstddef>

namespace softres::core {

/// Operational laws of queueing network analysis (Denning & Buzen [12]).
/// These are measurement identities — they hold for any observed system —
/// which is what makes the allocation algorithm model-free.

/// Little's law: average jobs in a system L = X * R.
inline double little_l(double throughput, double response_time_s) {
  return throughput * response_time_s;
}

/// Little's law solved for response time: R = L / X.
inline double little_rt(double jobs, double throughput) {
  return throughput > 0.0 ? jobs / throughput : 0.0;
}

/// Forced Flow Law: a tier processing `visits` sub-requests per front-tier
/// request sees X_tier = X_front * visits.
inline double forced_flow(double front_throughput, double visit_ratio) {
  return front_throughput * visit_ratio;
}

/// Utilization law: U = X * D (throughput times per-job service demand).
inline double utilization_law(double throughput, double service_demand_s) {
  return throughput * service_demand_s;
}

/// Interactive response time law: R = N / X - Z for a closed system with N
/// users and think time Z.
inline double interactive_rt(std::size_t users, double throughput,
                             double think_time_s) {
  return throughput > 0.0
             ? static_cast<double>(users) / throughput - think_time_s
             : 0.0;
}

/// The paper's Formula (3): required concurrency in a front tier given the
/// critical tier's concurrency, the per-request RTT ratio between the tiers
/// and the sub-request fan-out (Req_ratio). Combines Little + Forced Flow.
inline double front_tier_jobs(double critical_jobs, double rtt_ratio,
                              double req_ratio) {
  return req_ratio > 0.0 ? critical_jobs * rtt_ratio / req_ratio : 0.0;
}

}  // namespace softres::core
