#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/bottleneck.h"
#include "core/intervention.h"
#include "core/runner.h"

namespace softres::core {

/// Tuning knobs of Algorithm 1.
struct AlgorithmConfig {
  /// S0: deliberately modest so soft saturation is observable and the
  /// doubling step of FindCriticalResource gets exercised.
  Allocation initial{100, 25, 25};
  /// Workload increment of FindCriticalResource (the pseudo-code's `step`).
  std::size_t workload_step = 1000;
  /// Finer increment of InferMinConcurrentJobs (`smallstep`).
  std::size_t small_step = 400;
  /// Start workload for both procedures.
  std::size_t start_workload = 1000;
  /// Safety valve across all RunExperiment invocations.
  std::size_t max_runs = 60;
  /// Speculative ramp look-ahead: both ramp procedures fetch up to this many
  /// upcoming workload points as one ExperimentRunner::run_batch so a
  /// parallel runner can overlap them. 0 = ask the runner
  /// (preferred_batch()); 1 = strictly serial. The algorithm consumes
  /// observations in ramp order and discards unused speculation, so the
  /// report (trace, status, recommendation) is identical for every value;
  /// only `max_runs` accounting differs — it counts consumed observations,
  /// and up to lookahead-1 speculative trials may run beyond it.
  std::size_t lookahead = 0;
  InterventionConfig intervention;
  /// Headroom multiplier applied to the front-tier (web) allocation: the
  /// formula yields a *minimum*, and Section III-C shows the web tier wants
  /// buffering slack on top of it.
  double web_buffer_factor = 1.25;
};

enum class AlgorithmStatus {
  kOk,
  kNoBottleneckFound,  // workload exhausted without any saturation
  kMultiBottleneck,    // oscillating/multiple hardware bottlenecks [9]
  kBudgetExhausted,    // max_runs hit
};

const char* to_string(AlgorithmStatus s);

/// One RunExperiment invocation, kept for reporting/debugging.
struct TracePoint {
  std::size_t workload = 0;
  Allocation alloc;
  double throughput = 0.0;
  double goodput = 0.0;
  double slo_satisfaction = 1.0;
  BottleneckKind bottleneck = BottleneckKind::kNone;
  std::string critical;
};

/// Output of procedure FindCriticalResource.
struct CriticalResourceResult {
  AlgorithmStatus status = AlgorithmStatus::kOk;
  std::string critical_resource;  // "tomcat0.cpu"
  std::string critical_server;    // "tomcat0"
  Tier critical_tier = Tier::kApp;
  Allocation reserve;             // S_reserve: allocation that exposed it
  std::vector<TracePoint> trace;
};

/// Output of procedure InferMinConcurrentJobs.
struct MinJobsResult {
  AlgorithmStatus status = AlgorithmStatus::kOk;
  std::size_t saturation_workload = 0;   // WL_min
  double saturation_throughput = 0.0;    // client interactions/s at WL_min
  double critical_rtt_s = 0.0;           // critical server RTT at WL_min
  double critical_throughput = 0.0;      // critical server TP at WL_min
  std::size_t min_jobs = 0;              // per critical server
  InterventionResult intervention;
  std::vector<TracePoint> trace;
  /// Observation at the saturation workload (feeds CalculateMinAllocation).
  Observation at_saturation;
};

/// One Table I row: tier-level operational quantities at saturation.
struct TierRow {
  Tier tier = Tier::kApp;
  int servers = 0;
  double rtt_s = 0.0;        // mean per-request residence in one server
  double throughput = 0.0;   // tier-total completions/s
  double avg_jobs = 0.0;     // measured tier-total concurrency
  std::size_t pool_total = 0;       // recommended total soft units
  std::size_t pool_per_server = 0;  // recommended per-server pool size
};

/// Full output of the algorithm — the content of the paper's Table I.
struct AllocationReport {
  AlgorithmStatus status = AlgorithmStatus::kOk;
  CriticalResourceResult critical;
  MinJobsResult min_jobs;
  double req_ratio = 1.0;
  std::vector<TierRow> rows;
  Allocation recommended;  // per-server sizes in #Wt-#At-#Ac terms
  std::size_t experiments_run = 0;
};

/// The paper's three-procedure soft-resource allocation algorithm
/// (Section IV, Algorithm 1). Drives an ExperimentRunner; substrate-agnostic.
class AllocationAlgorithm {
 public:
  AllocationAlgorithm(ExperimentRunner& runner, AlgorithmConfig config = {});

  /// Run all three procedures.
  AllocationReport run();

  /// Procedure 1: expose the critical hardware resource.
  CriticalResourceResult find_critical_resource();

  /// Procedure 2: minimum concurrency that saturates the critical resource.
  MinJobsResult infer_min_concurrent_jobs(const CriticalResourceResult& crit);

  /// Procedure 3: size every other tier from the critical tier's allocation.
  AllocationReport calculate_min_allocation(
      const CriticalResourceResult& crit, const MinJobsResult& jobs);

  std::size_t experiments_run() const { return runs_; }

 private:
  /// One ramp observation. `step` is the ramp increment, used to predict the
  /// upcoming workloads for speculative batching; cache hits are served from
  /// `prefetch_`, anything else flushes it and fetches a fresh batch.
  Observation run_once(const Allocation& alloc, std::size_t workload,
                       std::size_t step);

  struct Prefetched {
    Allocation alloc;
    std::size_t workload = 0;
    Observation obs;
  };

  ExperimentRunner& runner_;
  AlgorithmConfig cfg_;
  std::size_t runs_ = 0;
  std::vector<Prefetched> prefetch_;
};

}  // namespace softres::core
