#include "core/bottleneck.h"

#include <set>

namespace softres::core {
namespace {

std::string server_of_resource(const std::string& resource) {
  const auto dot = resource.rfind('.');
  return dot == std::string::npos ? resource : resource.substr(0, dot);
}

}  // namespace

BottleneckReport detect_bottleneck(const Observation& obs) {
  BottleneckReport report;
  // Saturated replicas of the same tier (e.g. both Tomcat CPUs in 1/2/1/2)
  // are one logical bottleneck; a true multi-bottleneck spans tiers [9].
  std::set<Tier> tiers;
  for (const auto& h : obs.hardware) {
    if (!h.saturated) continue;
    report.hardware.push_back(h.name);
    if (const ServerObservation* srv =
            obs.find_server(server_of_resource(h.name))) {
      tiers.insert(srv->tier);
    }
  }
  for (const auto& s : obs.soft) {
    if (s.saturated) report.soft.push_back(s.name);
  }
  if (!report.hardware.empty()) {
    report.critical = report.hardware.front();
    report.kind = tiers.size() > 1 ? BottleneckKind::kMulti
                                   : BottleneckKind::kHardware;
  } else if (!report.soft.empty()) {
    report.kind = BottleneckKind::kSoft;
  }
  return report;
}

BottleneckReport detect_bottleneck(const Observation& obs,
                                   const DiagnosisHint& hint) {
  if (!hint.valid) return detect_bottleneck(obs);
  BottleneckReport report;
  report.kind = hint.kind;
  report.hardware = hint.hardware;
  report.soft = hint.soft;
  report.critical = hint.critical;
  report.diagnosed = true;
  report.confidence = hint.confidence;
  return report;
}

}  // namespace softres::core
