#include "core/governor.h"

#include <algorithm>
#include <cmath>

#include "soft/partition.h"

namespace softres::core {

namespace {

std::size_t clamp_size(std::size_t v, std::size_t lo, std::size_t hi) {
  return std::max(lo, std::min(v, hi));
}

}  // namespace

Governor::Governor(const GovernorConfig& cfg, soft::ResizablePoolSet& pools)
    : cfg_(cfg), pools_(pools) {
  state_.resize(pools_.size());
  tokens_ = cfg_.token_burst;
}

std::size_t Governor::max_step_from(std::size_t cap) const {
  const auto frac = static_cast<std::size_t>(
      std::ceil(cfg_.max_step_fraction * static_cast<double>(cap)));
  return std::max(cfg_.min_step, frac);
}

std::size_t Governor::desired_capacity(const soft::ResizablePoolSet::Entry& e,
                                       const PoolState& st,
                                       bool advised_shrink) const {
  double headroom = e.role == soft::PoolRole::kWebWorkers ? cfg_.web_headroom
                                                          : cfg_.headroom;
  if (advised_shrink) headroom = cfg_.shrink_headroom;
  const double target = std::ceil(headroom * st.ewma);
  std::size_t lo = std::max(cfg_.min_pool, e.floor);
  std::size_t hi = e.ceiling ? std::min(cfg_.max_pool, e.ceiling)
                             : cfg_.max_pool;
  if (hi < lo) hi = lo;
  const auto want =
      target <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(target);
  return clamp_size(want, lo, hi);
}

std::size_t Governor::tick(sim::SimTime now, double max_backend_cpu_pct,
                           const GovernorAdvice& advice) {
  const std::vector<soft::ResizablePoolSet::Entry>& entries = pools_.entries();
  if (state_.size() != entries.size()) state_.resize(entries.size());

  const double dt = last_tick_ >= 0.0 ? now - last_tick_ : 0.0;
  last_tick_ = now;
  if (dt > 0.0) {
    tokens_ = std::min(cfg_.token_burst, tokens_ + cfg_.tokens_per_s * dt);
  }
  const double alpha = dt > 0.0 ? 1.0 - std::exp(-dt / cfg_.ewma_tau_s) : 1.0;

  // Pass 1 — update every pool's demand estimate and collect the moves that
  // survive the hysteresis gates. Applying comes second, in urgency order,
  // so the token bucket throttles the least-starved pools first.
  struct Move {
    std::size_t idx;
    std::size_t desired;
    double rel_gap;  // |desired - cap| / cap: how starved/bloated the pool is
    bool advised;
  };
  std::vector<Move> moves;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const soft::ResizablePoolSet::Entry& e = entries[i];
    PoolState& st = state_[i];

    // Demand = exact time-weighted occupancy of the last window (snapshot
    // difference of the pool's occupancy integral — an instantaneous in_use
    // read at tick cadence aliases to near-zero when holds last milliseconds)
    // plus the queue behind the pool. A draining pool's over-commit counts
    // as demand too: it is real work in flight.
    const double integral = e.pool->occupancy_integral(now);
    const bool window_ok =
        st.integral_seeded && dt > 0.0 && integral >= st.prev_integral;
    double occupancy = static_cast<double>(e.pool->in_use());
    if (window_ok) {
      occupancy = (integral - st.prev_integral) / dt;
    }  // first sight, zero dt, or stats reset: fall back to the instant read
    st.prev_integral = integral;
    st.integral_seeded = true;
    const double demand = occupancy + static_cast<double>(e.pool->waiting());
    if (!st.seeded) {
      st.ewma = demand;
      st.seeded = true;
    } else {
      st.ewma += alpha * (demand - st.ewma);
    }

    // Per-tenant attribution of the same signal on a partitioned pool: the
    // pool keeps one occupancy integral per tenant, so the window's demand
    // splits exactly — no estimation — and a resize can be traced to the
    // tenant whose occupancy-plus-queue drove it.
    if (const soft::TenantArbiter* arb = e.pool->arbiter()) {
      const std::size_t n = arb->tenants();
      const bool first = st.tenant_ewma.size() != n;
      if (first) {
        st.tenant_ewma.assign(n, 0.0);
        st.tenant_prev_integral.assign(n, 0.0);
      }
      for (std::size_t t = 0; t < n; ++t) {
        const double ti = e.pool->tenant_occupancy_integral(t, now);
        double occ = static_cast<double>(e.pool->tenant_in_use(t));
        if (!first && window_ok && ti >= st.tenant_prev_integral[t]) {
          occ = (ti - st.tenant_prev_integral[t]) / dt;
        }
        st.tenant_prev_integral[t] = ti;
        const double td =
            occ + static_cast<double>(e.pool->tenant_waiting(t));
        if (first) {
          st.tenant_ewma[t] = td;
        } else {
          st.tenant_ewma[t] += alpha * (td - st.tenant_ewma[t]);
        }
      }
    }

    const bool named = !advice.resource.empty() &&
                       advice.resource == e.pool->name();
    const bool advised_grow =
        named && advice.kind == GovernorAdvice::Kind::kGrow;
    const bool advised_shrink =
        named && advice.kind == GovernorAdvice::Kind::kShrink;

    const std::size_t cap = e.pool->capacity();
    std::size_t desired = desired_capacity(e, st, advised_shrink);
    if (desired == cap) continue;
    const bool advised = (advised_grow && desired > cap) ||
                         (advised_shrink && desired < cap);

    // Deadband: ignore moves smaller than the noise floor.
    const double delta = static_cast<double>(desired) -
                         static_cast<double>(cap);
    if (std::abs(delta) < std::max(1.0, cfg_.deadband *
                                            static_cast<double>(cap))) {
      continue;
    }
    // The remaining gates bow to explicit diagnoser advice: a confirmed
    // pathology (a full evidence window) outranks one smoothed tick.
    if (!advised) {
      // Per-pool cooldown.
      if (now - st.last_resize < cfg_.cooldown_s) continue;
      // CPU guard: growth cannot help a saturated backend CPU (§III-B).
      if (desired > cap && max_backend_cpu_pct >= cfg_.cpu_guard_pct) {
        continue;
      }
      // Bounded step on growth only: adding capacity is what risks a GC
      // regression (§III-B), so it escalates geometrically — each landing
      // capacity `to` obeys to <= cap + max_step_from(to), so the next tick
      // can still veto the trajectory. Shrinking is safe under lazy drain
      // (in-flight holders finish; the pool retires units on release), so
      // it moves to the target in one action and sheds §III-B cost now.
      if (desired > cap) {
        const double f = std::min(cfg_.max_step_fraction, 0.9);
        const auto geometric = static_cast<std::size_t>(
            std::floor(static_cast<double>(cap) / (1.0 - f)));
        desired = std::min(desired, std::max(cap + cfg_.min_step, geometric));
      }
      if (desired == cap) continue;
    }

    const double rel_gap =
        std::abs(delta) / std::max(1.0, static_cast<double>(cap));
    moves.push_back(Move{i, desired, rel_gap, advised});
  }

  // Pass 2 — most-urgent first. Advised moves outrank everything and are
  // exempt from the token bucket; ties break on registration order, keeping
  // governed trials bit-identical across sweep workers.
  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& a, const Move& b) {
                     if (a.advised != b.advised) return a.advised;
                     return a.rel_gap > b.rel_gap;
                   });

  std::size_t applied = 0;
  for (const Move& m : moves) {
    if (!m.advised) {
      if (tokens_ < 1.0) {
        ++rate_limited_;
        continue;
      }
      tokens_ -= 1.0;
    }
    const soft::ResizablePoolSet::Entry& e = entries[m.idx];
    actions_.push_back(
        GovernorAction{now, e.pool->name(), e.pool->capacity(), m.desired});
    e.pool->set_capacity(m.desired);
    state_[m.idx].last_resize = now;
    ++resizes_applied_;
    ++applied;
  }

  if (applied > 0) pools_.run_hooks();
  return applied;
}

}  // namespace softres::core
