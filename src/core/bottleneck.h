#pragma once

#include <string>
#include <vector>

#include "core/runner.h"

namespace softres::core {

enum class BottleneckKind {
  kNone,          // nothing saturated: offered load is insufficient
  kHardware,      // a hardware resource saturated (the classic case)
  kSoft,          // only soft resources saturated: the hidden bottleneck of
                  // Section III-A — hardware idles while a pool is pegged
  kMulti,         // more than one hardware resource saturated [9]
};

struct BottleneckReport {
  BottleneckKind kind = BottleneckKind::kNone;
  std::vector<std::string> hardware;  // saturated hardware resources
  std::vector<std::string> soft;      // saturated soft resources
  /// The critical hardware resource (first saturated one) when kind is
  /// kHardware or kMulti.
  std::string critical;
  /// True when the verdict came from a timeline-backed diagnosis rather than
  /// the single-observation classifier, with its evidence-scaled confidence.
  bool diagnosed = false;
  double confidence = 0.0;
};

/// A verdict handed down from a richer diagnoser (obs::Diagnoser) in core
/// vocabulary. core cannot depend on obs, so the obs layer converts its
/// Diagnosis into this and detect_bottleneck delegates when `valid`.
struct DiagnosisHint {
  bool valid = false;
  BottleneckKind kind = BottleneckKind::kNone;
  std::vector<std::string> hardware;  // implicated "<node>.cpu" resources
  std::vector<std::string> soft;      // implicated pools
  std::string critical;
  double confidence = 0.0;
};

/// Classify one observation. This is the detection step the paper argues
/// must look at soft resources too: monitoring only `hardware` would report
/// kNone in the under-allocation scenario.
BottleneckReport detect_bottleneck(const Observation& obs);

/// Classify with streaming evidence available: a valid hint (built from a
/// whole trial's timeline, not one end-of-run snapshot) wins over the
/// single-observation classifier, which remains the fallback.
BottleneckReport detect_bottleneck(const Observation& obs,
                                   const DiagnosisHint& hint);

}  // namespace softres::core
