#pragma once

#include <string>
#include <vector>

#include "core/runner.h"

namespace softres::core {

enum class BottleneckKind {
  kNone,          // nothing saturated: offered load is insufficient
  kHardware,      // a hardware resource saturated (the classic case)
  kSoft,          // only soft resources saturated: the hidden bottleneck of
                  // Section III-A — hardware idles while a pool is pegged
  kMulti,         // more than one hardware resource saturated [9]
};

struct BottleneckReport {
  BottleneckKind kind = BottleneckKind::kNone;
  std::vector<std::string> hardware;  // saturated hardware resources
  std::vector<std::string> soft;      // saturated soft resources
  /// The critical hardware resource (first saturated one) when kind is
  /// kHardware or kMulti.
  std::string critical;
};

/// Classify one observation. This is the detection step the paper argues
/// must look at soft resources too: monitoring only `hardware` would report
/// kNone in the under-allocation scenario.
BottleneckReport detect_bottleneck(const Observation& obs);

}  // namespace softres::core
