#pragma once

#include <cstdint>
#include <string>

#include "hw/cpu.h"
#include "sim/simulator.h"
#include "support/prof.h"

namespace softres::jvm {

/// Tunables of the garbage-collection model, loosely matching a Sun JDK 1.6
/// generational collector with the synchronous (stop-the-world) behaviour the
/// paper cites [10].
struct JvmConfig {
  /// Allocation budget between minor collections (young generation size).
  double young_gen_mb = 48.0;
  /// Pause floor for a minor collection with a tiny live set.
  double pause_base_s = 0.0015;
  /// Coefficient of the live-thread term of the pause.
  double pause_per_thread_s = 2.5e-5;
  /// Superlinearity of pause in the live-thread count. Threads pin stacks and
  /// per-connection buffers into the live set, and card scanning degrades
  /// with live-set size, so pauses grow faster than linearly.
  double thread_exponent = 1.25;
  /// Every Nth collection promotes enough to trigger a full (major) GC.
  std::uint64_t full_gc_period = 32;
  /// Full collections take this multiple of a minor pause.
  double full_gc_multiplier = 5.0;
  /// Per-thread bookkeeping (context switching, lock contention) inflates
  /// every CPU demand by (1 + overhead_per_thread * threads).
  double overhead_per_thread = 2.0e-4;
};

/// Process-level JVM model attached to one node's CPU.
///
/// Components report allocation as they process requests; once the young
/// generation fills, the collector freezes the CPU for a pause whose length
/// grows superlinearly with the number of live threads. Idle threads still
/// contribute: a thread consumes memory and GC work whether it is being used
/// or not, which is exactly the soft-vs-hardware asymmetry of Section III-B.
class Jvm {
 public:
  Jvm(sim::Simulator& sim, hw::Cpu& cpu, JvmConfig config, std::string name);
  Jvm(const Jvm&) = delete;
  Jvm& operator=(const Jvm&) = delete;

  /// Record `mb` of allocation; may trigger a collection. The common
  /// no-collection path is an add and a compare, inlined into each tier's
  /// request entry; the collection itself stays out of line.
  void allocate(double mb) {
    // Count-only on the fast path (an add and a compare needs no timer);
    // the collection itself is timed out of line in jvm.cc.
    SOFTRES_PROF_COUNT(kJvmService);
    allocated_since_gc_mb_ += mb;
    if (allocated_since_gc_mb_ >= config_.young_gen_mb && !cpu_.frozen()) {
      collect();
    }
  }

  /// Total threads alive in this process (pool capacities, not occupancy).
  void set_live_threads(std::size_t n) { live_threads_ = n; }
  std::size_t live_threads() const { return live_threads_; }

  /// Demand multiplier for CPU work executed by this process.
  double runtime_overhead_factor() const {
    return 1.0 + config_.overhead_per_thread *
                     static_cast<double>(live_threads_);
  }

  /// Pause a collection would take right now (exposed for tests/benches).
  double pause_duration(bool full) const;

  double total_gc_seconds() const { return total_gc_seconds_; }
  std::uint64_t collections() const { return collections_; }
  const std::string& name() const { return name_; }
  const JvmConfig& config() const { return config_; }

 private:
  void collect();

  sim::Simulator& sim_;
  hw::Cpu& cpu_;
  JvmConfig config_;
  std::string name_;
  std::size_t live_threads_ = 0;
  double allocated_since_gc_mb_ = 0.0;
  double total_gc_seconds_ = 0.0;
  std::uint64_t collections_ = 0;
};

}  // namespace softres::jvm
