#include "jvm/jvm.h"

#include <cmath>

namespace softres::jvm {

Jvm::Jvm(sim::Simulator& sim, hw::Cpu& cpu, JvmConfig config, std::string name)
    : sim_(sim), cpu_(cpu), config_(config), name_(std::move(name)) {}

double Jvm::pause_duration(bool full) const {
  const double threads = static_cast<double>(live_threads_);
  double pause = config_.pause_base_s +
                 config_.pause_per_thread_s *
                     std::pow(threads, config_.thread_exponent);
  if (full) pause *= config_.full_gc_multiplier;
  return pause;
}

void Jvm::collect() {
  SOFTRES_PROF_SCOPE(kJvmService);
  allocated_since_gc_mb_ = 0.0;
  ++collections_;
  const bool full =
      config_.full_gc_period > 0 && collections_ % config_.full_gc_period == 0;
  const double pause = pause_duration(full);
  total_gc_seconds_ += pause;
  // Synchronous collector: the whole process stops; pending requests resume
  // only after the pause [10], lengthening their response times.
  cpu_.freeze(pause);
}

}  // namespace softres::jvm
