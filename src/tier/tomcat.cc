#include "tier/tomcat.h"

#include <utility>

#include "soft/pool_set.h"

namespace softres::tier {

TomcatServer::TomcatServer(sim::Simulator& sim, std::string name,
                           hw::Node& node, jvm::JvmConfig jvm_config,
                           std::size_t threads, std::size_t db_connections,
                           CJdbcServer& cjdbc, hw::Link& down_link,
                           hw::Link& up_link, double alloc_per_request_mb)
    : Server(sim, std::move(name)), node_(node),
      jvm_(sim, node.cpu(), jvm_config, this->name() + ".jvm"),
      threads_(sim, this->name() + ".threads", threads),
      db_conns_(sim, this->name() + ".dbconns", db_connections),
      cjdbc_(cjdbc), down_link_(down_link), up_link_(up_link),
      alloc_per_request_mb_(alloc_per_request_mb) {
  // Idle threads and pooled connections consume heap whether used or not.
  jvm_.set_live_threads(threads + db_connections);
  set_profile_subsystem(prof::Subsystem::kTomcatService);
}

void TomcatServer::submit(const RequestPtr& req, Callback done) {
  // Residence state lives in the request (see Request::TomcatVisitState) so
  // the stage callbacks capture a bare Request* and stay inline.
  auto& v = req->tomcat_visit;
  v.self = req;
  v.server = this;
  v.arrived = sim().now();
  v.done = std::move(done);
  Request* r = req.get();
  threads_.acquire(
      [r] {
        // Adopt the grant into the request's guard before anything can exit:
        // from here every path pays the thread back exactly once (SR012).
        auto& tv = r->tomcat_visit;
        tv.thread.adopt(tv.server->threads_, r->tenant);
        on_thread(r);
      },
      req->tenant);
}

void TomcatServer::on_thread(Request* r) {
  auto& v = r->tomcat_visit;
  TomcatServer* self = v.server;
  v.entered = self->sim().now();
  v.gc0 = r->trace ? self->jvm_.total_gc_seconds() : 0.0;
  self->job_entered();
  self->jvm_.allocate(self->alloc_per_request_mb_);
  const double pre_demand = r->tomcat_demand_s * kPreDbCpuFraction *
                            self->jvm_.runtime_overhead_factor();

  self->node_.cpu().submit(pre_demand, [r] {
    auto& pv = r->tomcat_visit;
    TomcatServer* s = pv.server;
    if (r->num_queries <= 0) {
      pv.conn_queue_s = 0.0;
      finish_visit(r);
      return;
    }
    // Hold one DB connection for the entire query phase (Fig 9).
    pv.conn_wait_started = s->sim().now();
    s->db_conns_.acquire(
        [r] {
          auto& cv = r->tomcat_visit;
          TomcatServer* cs = cv.server;
          cv.db_conn.adopt(cs->db_conns_, r->tenant);
          cv.conn_queue_s = cs->sim().now() - cv.conn_wait_started;
          cs->run_queries(RequestPtr(r), r->num_queries, [r] {
            r->tomcat_visit.db_conn.release();
            finish_visit(r);
          });
        },
        r->tenant);
  });
}

// The post-DB CPU phase; closes the span and releases the servlet thread.
void TomcatServer::finish_visit(Request* r) {
  auto& v = r->tomcat_visit;
  TomcatServer* self = v.server;
  const double post_demand = r->tomcat_demand_s * (1.0 - kPreDbCpuFraction) *
                             self->jvm_.runtime_overhead_factor();
  self->node_.cpu().submit(post_demand, [r] {
    auto& fv = r->tomcat_visit;
    TomcatServer* s = fv.server;
    s->job_left(fv.entered);
    if (r->trace) {
      r->record_span(s->name(), fv.entered, s->sim().now(),
                     fv.entered - fv.arrived, fv.conn_queue_s,
                     s->jvm_.total_gc_seconds() - fv.gc0);
    }
    fv.thread.release();
    Callback done = std::move(fv.done);
    RequestPtr keep = std::move(fv.self);  // alive until done() returns
    done();
  });
}

void TomcatServer::run_queries(const RequestPtr& req, int remaining,
                               Callback done) {
  // Park the loop state in the request (see Request::QueryLoopState): the
  // per-query continuations below then capture a bare Request* and stay
  // inside InlineFunction's inline buffer instead of heap-boxing a
  // RequestPtr + nested-callback capture three times per query.
  auto& loop = req->query_loop;
  loop.self = req;
  loop.tomcat = this;
  loop.remaining = remaining;
  loop.done = std::move(done);
  query_loop_step(req.get());
}

void TomcatServer::register_soft_resources(soft::ResizablePoolSet& set) {
  set.add(threads_, soft::PoolRole::kAppThreads, /*floor=*/2);
  set.add(db_conns_, soft::PoolRole::kDbConnections, /*floor=*/2);
  set.add_post_resize_hook([this] {
    jvm_.set_live_threads(threads_.capacity() + db_conns_.capacity());
  });
}

void TomcatServer::query_loop_step(Request* r) {
  auto& loop = r->query_loop;
  if (loop.remaining <= 0) {
    Callback done = std::move(loop.done);
    RequestPtr keep = std::move(loop.self);  // alive until done() returns
    done();
    return;
  }
  TomcatServer* self = loop.tomcat;
  self->down_link_.send(r->request_bytes, [self, r] {
    self->cjdbc_.query(RequestPtr(r), [r] {
      auto& ql = r->query_loop;
      ql.tomcat->up_link_.send(r->response_bytes * 0.25, [r] {
        --r->query_loop.remaining;
        query_loop_step(r);
      });
    });
  });
}

}  // namespace softres::tier
