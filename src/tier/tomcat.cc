#include "tier/tomcat.h"

#include <utility>

namespace softres::tier {

TomcatServer::TomcatServer(sim::Simulator& sim, std::string name,
                           hw::Node& node, jvm::JvmConfig jvm_config,
                           std::size_t threads, std::size_t db_connections,
                           CJdbcServer& cjdbc, hw::Link& down_link,
                           hw::Link& up_link, double alloc_per_request_mb)
    : Server(sim, std::move(name)), node_(node),
      jvm_(sim, node.cpu(), jvm_config, this->name() + ".jvm"),
      threads_(sim, this->name() + ".threads", threads),
      db_conns_(sim, this->name() + ".dbconns", db_connections),
      cjdbc_(cjdbc), down_link_(down_link), up_link_(up_link),
      alloc_per_request_mb_(alloc_per_request_mb) {
  // Idle threads and pooled connections consume heap whether used or not.
  jvm_.set_live_threads(threads + db_connections);
}

void TomcatServer::submit(const RequestPtr& req, Callback done) {
  const sim::SimTime arrived = sim().now();
  threads_.acquire([this, req, arrived, done = std::move(done)]() mutable {
    const sim::SimTime entered = sim().now();
    const double queue_s = entered - arrived;
    const double gc0 = req->trace ? jvm_.total_gc_seconds() : 0.0;
    job_entered();
    jvm_.allocate(alloc_per_request_mb_);
    const double pre_demand = req->tomcat_demand_s * kPreDbCpuFraction *
                              jvm_.runtime_overhead_factor();

    // `finish(conn_queue_s)` runs the post-DB CPU phase and closes the span.
    auto finish = [this, req, entered, queue_s, gc0,
                   done = std::move(done)](double conn_queue_s) mutable {
      const double post_demand = req->tomcat_demand_s *
                                 (1.0 - kPreDbCpuFraction) *
                                 jvm_.runtime_overhead_factor();
      node_.cpu().submit(post_demand,
                         [this, req, entered, queue_s, conn_queue_s, gc0,
                          done = std::move(done)]() mutable {
                           job_left(entered);
                           if (req->trace) {
                             req->record_span(
                                 name(), entered, sim().now(), queue_s,
                                 conn_queue_s,
                                 jvm_.total_gc_seconds() - gc0);
                           }
                           threads_.release();
                           done();
                         });
    };

    node_.cpu().submit(pre_demand, [this, req,
                                    finish = std::move(finish)]() mutable {
      if (req->num_queries <= 0) {
        finish(0.0);
        return;
      }
      // Hold one DB connection for the entire query phase (Fig 9).
      const sim::SimTime conn_wait_started = sim().now();
      db_conns_.acquire([this, req, conn_wait_started,
                         finish = std::move(finish)]() mutable {
        const double conn_queue_s = sim().now() - conn_wait_started;
        run_queries(req, req->num_queries,
                    [this, conn_queue_s,
                     finish = std::move(finish)]() mutable {
                      db_conns_.release();
                      finish(conn_queue_s);
                    });
      });
    });
  });
}

void TomcatServer::run_queries(const RequestPtr& req, int remaining,
                               Callback done) {
  if (remaining <= 0) {
    done();
    return;
  }
  down_link_.send(req->request_bytes, [this, req, remaining,
                                       done = std::move(done)]() mutable {
    cjdbc_.query(req, [this, req, remaining,
                       done = std::move(done)]() mutable {
      up_link_.send(req->response_bytes * 0.25,
                    [this, req, remaining, done = std::move(done)]() mutable {
                      run_queries(req, remaining - 1, std::move(done));
                    });
    });
  });
}

}  // namespace softres::tier
