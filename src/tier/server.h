#pragma once

#include <cstdint>
#include <string>

#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "support/prof.h"

namespace softres::soft {
class ResizablePoolSet;
}  // namespace softres::soft

namespace softres::tier {

/// Common per-server accounting: every tier records, for a measurement
/// window, its throughput, per-request residence time (the "server RTT" of
/// Table I) and the time-weighted number of jobs inside the server — the
/// three quantities the allocation algorithm combines through Little's law.
class Server {
 public:
  Server(sim::Simulator& sim, std::string name);
  virtual ~Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const { return name_; }

  /// Restart window accounting (called at measurement-window start).
  virtual void reset_window_stats();

  /// Register this server's live-resizable soft resources (pools plus any
  /// consistency hooks, e.g. JVM live-thread sync) with the testbed-wide
  /// set. The uniform hook every tier exposes so controllers (AdaptiveTuner,
  /// core::Governor) never reach into tier-specific accessors. Default: the
  /// server owns no resizable pools.
  virtual void register_soft_resources(soft::ResizablePoolSet&) {}

  /// Which profiler subsystem this server's request counts land in; tiers
  /// tag themselves in their constructors (kCount = untagged, not counted).
  void set_profile_subsystem(prof::Subsystem sub) { prof_subsystem_ = sub; }

  std::uint64_t window_completed() const { return completed_; }
  /// Completions per second over the window so far.
  double window_throughput() const;
  /// Mean residence time of requests completed in the window.
  double window_mean_rt() const { return rt_stats_.mean(); }
  const sim::Welford& window_rt_stats() const { return rt_stats_; }
  /// Time-average number of jobs inside the server over the window.
  double window_avg_jobs() const;

 protected:
  sim::Simulator& sim() { return sim_; }
  const sim::Simulator& sim() const { return sim_; }

  /// Bracket a request's residence in this server. Every request crosses
  /// each tier once, so these run millions of times per trial; the bodies
  /// are a counter bump plus an inlined TimeWeighted/Welford update, kept
  /// here so the tier state machines fold them in.
  void job_entered() {
    prof::count(prof_subsystem_);  // per-tier request count (no-op untagged)
    ++jobs_inside_;
    jobs_tw_.set(sim_.now(), static_cast<double>(jobs_inside_));
  }
  void job_left(sim::SimTime entered_at) {
    --jobs_inside_;
    jobs_tw_.set(sim_.now(), static_cast<double>(jobs_inside_));
    ++completed_;
    rt_stats_.add(sim_.now() - entered_at);
  }

 private:
  sim::Simulator& sim_;
  std::string name_;
  sim::SimTime window_start_ = 0.0;
  prof::Subsystem prof_subsystem_ = prof::Subsystem::kCount;
  std::uint64_t completed_ = 0;
  std::size_t jobs_inside_ = 0;
  sim::Welford rt_stats_;
  sim::TimeWeighted jobs_tw_;
};

}  // namespace softres::tier
