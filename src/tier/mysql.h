#pragma once

#include "hw/link.h"
#include "hw/node.h"
#include "sim/rng.h"
#include "tier/request.h"
#include "tier/server.h"

namespace softres::tier {

/// MySQL database server model. One worker thread per upstream connection
/// executes a query: CPU demand, plus a disk access on buffer-cache misses.
/// Concurrency is bounded upstream (the C-JDBC thread that owns the
/// connection issues one query at a time), matching the paper's one
/// connection = one MySQL thread observation.
class MySqlServer : public Server {
 public:
  using Callback = sim::InlineCallback;

  MySqlServer(sim::Simulator& sim, std::string name, hw::Node& node,
              sim::Rng rng);

  /// Execute one SQL query; `done` fires when the result is ready to ship.
  void query(const RequestPtr& req, Callback done);

  hw::Node& node() { return node_; }
  const hw::Node& node() const { return node_; }

 private:
  // Closes one query's residence (state in req->mysql_visit); static so the
  // hot-loop callbacks capture nothing but the Request*.
  static void finish_query(Request* r);

  hw::Node& node_;
  sim::Rng rng_;
};

}  // namespace softres::tier
