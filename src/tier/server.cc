#include "tier/server.h"

namespace softres::tier {

Server::Server(sim::Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  jobs_tw_.reset(sim.now());
}

void Server::reset_window_stats() {
  window_start_ = sim_.now();
  completed_ = 0;
  rt_stats_.reset();
  jobs_tw_.reset(sim_.now());
  jobs_tw_.set(sim_.now(), static_cast<double>(jobs_inside_));
}

double Server::window_throughput() const {
  const sim::SimTime span = sim_.now() - window_start_;
  return span > 0.0 ? static_cast<double>(completed_) / span : 0.0;
}

double Server::window_avg_jobs() const { return jobs_tw_.average(sim_.now()); }

}  // namespace softres::tier
