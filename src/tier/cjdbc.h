#pragma once

#include <vector>

#include "hw/link.h"
#include "hw/node.h"
#include "jvm/jvm.h"
#include "tier/mysql.h"
#include "tier/request.h"
#include "tier/server.h"

namespace softres::tier {

/// C-JDBC clustering middleware model.
///
/// Every upstream Tomcat DB connection maps 1:1 to a request-handling thread
/// here (and to a thread in the chosen MySQL server), so the middleware's
/// concurrency — and its JVM live-thread count, hence GC cost — is set
/// entirely by the Tomcat connection-pool allocation. This is the coupling
/// that makes DB-connection over-allocation collapse C-JDBC throughput in
/// Section III-B.
class CJdbcServer : public Server {
 public:
  using Callback = sim::InlineCallback;

  CJdbcServer(sim::Simulator& sim, std::string name, hw::Node& node,
              jvm::JvmConfig jvm_config, hw::Link& down_link,
              hw::Link& up_link, double alloc_per_query_mb);

  void add_backend(MySqlServer& db) { backends_.push_back(&db); }

  /// Route one SQL query to a backend; `done` fires when the result has
  /// travelled back up to this server.
  void query(const RequestPtr& req, Callback done);

  /// Total upstream DB connections = live request-handling threads. Called by
  /// the testbed builder after the soft configuration is applied.
  void set_upstream_connections(std::size_t n) { jvm_.set_live_threads(n); }

  jvm::Jvm& jvm() { return jvm_; }
  const jvm::Jvm& jvm() const { return jvm_; }
  hw::Node& node() { return node_; }
  const hw::Node& node() const { return node_; }

 private:
  // Closes one query's residence (state in req->cjdbc_visit); static so the
  // hot-loop callbacks capture nothing but the Request*.
  static void finish_query(Request* r);

  hw::Node& node_;
  jvm::Jvm jvm_;
  hw::Link& down_link_;  // to MySQL tier
  hw::Link& up_link_;    // back from MySQL tier
  double alloc_per_query_mb_;
  std::vector<MySqlServer*> backends_;
  std::size_t next_backend_ = 0;
};

}  // namespace softres::tier
