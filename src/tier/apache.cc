#include "tier/apache.h"

#include <cassert>
#include <utility>

namespace softres::tier {

ApacheServer::ApacheServer(sim::Simulator& sim, std::string name,
                           hw::Node& node, std::size_t threads,
                           hw::Link& to_tomcat, hw::Link& from_tomcat,
                           hw::Link& to_client, net::TcpModel tcp,
                           LoadFn client_load)
    : Server(sim, std::move(name)), node_(node),
      workers_(sim, this->name() + ".workers", threads),
      to_tomcat_(to_tomcat), from_tomcat_(from_tomcat), to_client_(to_client),
      tcp_(std::move(tcp)), client_load_(std::move(client_load)) {
  assert(client_load_);
}

void ApacheServer::handle(const RequestPtr& req, Callback responded) {
  const sim::SimTime arrived = sim().now();
  workers_.acquire([this, req, arrived,
                    responded = std::move(responded)]() mutable {
    const sim::SimTime worker_started = sim().now();
    const sim::SimTime entered = worker_started;
    const double queue_s = worker_started - arrived;
    job_entered();

    // Parse the request.
    node_.cpu().submit(req->apache_demand_s * 0.5, [this, req, entered,
                                                    worker_started, queue_s,
                                                    responded = std::move(
                                                        responded)]() mutable {
      if (req->kind == RequestKind::kStatic) {
        // Static files are cached in memory; no Tomcat round trip.
        respond(req, entered, worker_started, queue_s, std::move(responded));
        return;
      }
      // Proxy to a Tomcat instance (mod_jk-style balancing). The worker now
      // occupies or waits for a Tomcat connection until the response returns.
      assert(!tomcats_.empty());
      ++connecting_tomcat_;
      const sim::SimTime conn_started = sim().now();
      TomcatServer* tomcat = tomcats_[next_tomcat_];
      next_tomcat_ = (next_tomcat_ + 1) % tomcats_.size();
      to_tomcat_.send(req->request_bytes, [this, req, tomcat, entered,
                                           worker_started, conn_started,
                                           queue_s,
                                           responded = std::move(
                                               responded)]() mutable {
        tomcat->submit(req, [this, req, entered, worker_started, conn_started,
                             queue_s,
                             responded = std::move(responded)]() mutable {
          from_tomcat_.send(
              req->response_bytes,
              [this, req, entered, worker_started, conn_started, queue_s,
               responded = std::move(responded)]() mutable {
                --connecting_tomcat_;
                win_tomcat_sum_s_ += sim().now() - conn_started;
                ++win_tomcat_n_;
                respond(req, entered, worker_started, queue_s,
                        std::move(responded));
              });
        });
      });
    });
  });
}

void ApacheServer::respond(const RequestPtr& req, sim::SimTime entered,
                           sim::SimTime worker_started, double queue_s,
                           Callback responded) {
  // Assemble and write the response.
  node_.cpu().submit(req->apache_demand_s * 0.5, [this, req, entered,
                                                  worker_started, queue_s,
                                                  responded = std::move(
                                                      responded)]() mutable {
    to_client_.send(req->response_bytes, std::move(responded));
    job_left(entered);
    ++win_processed_;
    // Lingering close: the worker stays bound to the connection until the
    // client FINs; under loaded clients this dominates worker busy time.
    const double fin_delay = tcp_.sample_fin_delay(client_load_());
    req->record_span(name(), entered, sim().now(), queue_s,
                     /*conn_queue_s=*/0.0, /*gc_s=*/0.0, fin_delay);
    sim().schedule(fin_delay, [this, worker_started] {
      const double busy = sim().now() - worker_started;
      win_busy_sum_s_ += busy;
      ++win_busy_n_;
      window_busy_stats_.add(busy);
      workers_.release();
    });
  });
}

void ApacheServer::reset_window_stats() {
  Server::reset_window_stats();
  window_busy_stats_.reset();
}

ApacheServer::TimelineSample ApacheServer::sample_window(sim::SimTime now) {
  if (now == cached_sample_time_) return cached_sample_;
  TimelineSample s;
  s.processed_requests = static_cast<double>(win_processed_);
  s.pt_total_ms =
      win_busy_n_ ? 1000.0 * win_busy_sum_s_ / static_cast<double>(win_busy_n_)
                  : 0.0;
  s.pt_tomcat_ms = win_tomcat_n_ ? 1000.0 * win_tomcat_sum_s_ /
                                       static_cast<double>(win_tomcat_n_)
                                 : 0.0;
  s.threads_active = static_cast<double>(workers_.in_use());
  s.threads_connecting = static_cast<double>(connecting_tomcat_);
  win_processed_ = 0;
  win_busy_sum_s_ = 0.0;
  win_busy_n_ = 0;
  win_tomcat_sum_s_ = 0.0;
  win_tomcat_n_ = 0;
  cached_sample_time_ = now;
  cached_sample_ = s;
  return s;
}

void add_apache_timeline_probes(sim::Sampler& sampler, ApacheServer& apache) {
  ApacheServer* a = &apache;
  const std::string prefix = apache.name();
  sampler.add_probe(prefix + ".processed", [a](sim::SimTime t) {
    return a->sample_window(t).processed_requests;
  });
  sampler.add_probe(prefix + ".pt_total_ms", [a](sim::SimTime t) {
    return a->sample_window(t).pt_total_ms;
  });
  sampler.add_probe(prefix + ".pt_tomcat_ms", [a](sim::SimTime t) {
    return a->sample_window(t).pt_tomcat_ms;
  });
  sampler.add_probe(prefix + ".threads_active", [a](sim::SimTime t) {
    return a->sample_window(t).threads_active;
  });
  sampler.add_probe(prefix + ".threads_connecting", [a](sim::SimTime t) {
    return a->sample_window(t).threads_connecting;
  });
}

}  // namespace softres::tier
