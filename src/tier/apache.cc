#include "tier/apache.h"

#include <cassert>
#include <utility>

#include "soft/pool_set.h"

namespace softres::tier {

ApacheServer::ApacheServer(sim::Simulator& sim, std::string name,
                           hw::Node& node, std::size_t threads,
                           hw::Link& to_tomcat, hw::Link& from_tomcat,
                           hw::Link& to_client, net::TcpModel tcp,
                           LoadFn client_load)
    : Server(sim, std::move(name)), node_(node),
      workers_(sim, this->name() + ".workers", threads),
      to_tomcat_(to_tomcat), from_tomcat_(from_tomcat), to_client_(to_client),
      tcp_(std::move(tcp)), client_load_(std::move(client_load)) {
  assert(client_load_);
  set_profile_subsystem(prof::Subsystem::kApacheService);
}

void ApacheServer::handle(const RequestPtr& req, Callback responded) {
  // Residence state lives in the request (see Request::ApacheVisitState) so
  // the stage callbacks capture a bare Request* and stay inline.
  auto& v = req->apache_visit;
  v.self = req;
  v.server = this;
  v.arrived = sim().now();
  v.responded = std::move(responded);
  Request* r = req.get();
  workers_.acquire(
      [r] {
        // Adopt the grant into the request's guard before anything can exit:
        // from here every path pays the worker back exactly once (SR012).
        auto& av = r->apache_visit;
        av.worker.adopt(av.server->workers_, r->tenant);
        on_worker(r);
      },
      req->tenant);
}

void ApacheServer::on_worker(Request* r) {
  auto& v = r->apache_visit;
  ApacheServer* self = v.server;
  v.worker_started = self->sim().now();
  self->job_entered();

  // Parse the request.
  self->node_.cpu().submit(r->apache_demand_s * 0.5, [r] {
    auto& pv = r->apache_visit;
    ApacheServer* s = pv.server;
    if (r->kind == RequestKind::kStatic) {
      // Static files are cached in memory; no Tomcat round trip.
      respond(r);
      return;
    }
    // Proxy to a Tomcat instance (mod_jk-style balancing). The worker now
    // occupies or waits for a Tomcat connection until the response returns.
    assert(!s->tomcats_.empty());
    ++s->connecting_tomcat_;
    pv.conn_started = s->sim().now();
    TomcatServer* tomcat = s->tomcats_[s->next_tomcat_];
    s->next_tomcat_ = (s->next_tomcat_ + 1) % s->tomcats_.size();
    s->to_tomcat_.send(r->request_bytes, [tomcat, r] {
      tomcat->submit(RequestPtr(r), [r] {
        auto& tv = r->apache_visit;
        ApacheServer* ts = tv.server;
        ts->from_tomcat_.send(r->response_bytes, [r] {
          auto& fv = r->apache_visit;
          ApacheServer* fs = fv.server;
          --fs->connecting_tomcat_;
          fs->win_tomcat_sum_s_ += fs->sim().now() - fv.conn_started;
          ++fs->win_tomcat_n_;
          respond(r);
        });
      });
    });
  });
}

void ApacheServer::respond(Request* r) {
  // Assemble and write the response.
  ApacheServer* self = r->apache_visit.server;
  self->node_.cpu().submit(r->apache_demand_s * 0.5, [r] {
    auto& v = r->apache_visit;
    ApacheServer* s = v.server;
    const sim::SimTime entered = v.worker_started;
    const sim::SimTime worker_started = v.worker_started;
    const double queue_s = v.worker_started - v.arrived;
    Callback responded = std::move(v.responded);
    RequestPtr keep = std::move(v.self);  // alive until the span is recorded
    // Lingering close: the worker stays bound to the connection until the
    // client FINs — it outlives the request, which is recycled as soon as
    // `keep` drops. The guard therefore cannot ride in the FIN closure;
    // detach the unit and pay it back manually when the timer fires.
    // The tenant id must ride the FIN closure separately: detach() severs
    // the guard (and with it the tenant) from the unit.
    const std::uint32_t tenant = v.worker.tenant();
    soft::Pool* workers = v.worker.detach();
    s->to_client_.send(r->response_bytes, std::move(responded));
    s->job_left(entered);
    ++s->win_processed_;
    const double fin_delay = s->tcp_.sample_fin_delay(s->client_load_());
    r->record_span(s->name(), entered, s->sim().now(), queue_s,
                   /*conn_queue_s=*/0.0, /*gc_s=*/0.0, fin_delay);
    s->sim().schedule(fin_delay, [s, worker_started, workers, tenant] {
      const double busy = s->sim().now() - worker_started;
      s->win_busy_sum_s_ += busy;
      ++s->win_busy_n_;
      s->window_busy_stats_.add(busy);
      // The unit was detached from the request's PoolGuard in respond();
      // horizon teardown deliberately abandons units still inside the delay.
      // SOFTRES_LINT_ALLOW(SR012: lingering-close FIN release of a detached unit)
      workers->release(tenant);
    });
  });
}

void ApacheServer::reset_window_stats() {
  Server::reset_window_stats();
  window_busy_stats_.reset();
}

ApacheServer::TimelineSample ApacheServer::sample_window(sim::SimTime now) {
  if (now == cached_sample_time_) return cached_sample_;
  TimelineSample s;
  s.processed_requests = static_cast<double>(win_processed_);
  s.pt_total_ms =
      win_busy_n_ ? 1000.0 * win_busy_sum_s_ / static_cast<double>(win_busy_n_)
                  : 0.0;
  s.pt_tomcat_ms = win_tomcat_n_ ? 1000.0 * win_tomcat_sum_s_ /
                                       static_cast<double>(win_tomcat_n_)
                                 : 0.0;
  s.threads_active = static_cast<double>(workers_.in_use());
  s.threads_connecting = static_cast<double>(connecting_tomcat_);
  win_processed_ = 0;
  win_busy_sum_s_ = 0.0;
  win_busy_n_ = 0;
  win_tomcat_sum_s_ = 0.0;
  win_tomcat_n_ = 0;
  cached_sample_time_ = now;
  cached_sample_ = s;
  return s;
}

void ApacheServer::register_soft_resources(soft::ResizablePoolSet& set) {
  set.add(workers_, soft::PoolRole::kWebWorkers, /*floor=*/2);
}

void add_apache_timeline_probes(sim::Sampler& sampler, ApacheServer& apache) {
  ApacheServer* a = &apache;
  const std::string prefix = apache.name();
  sampler.add_probe(prefix + ".processed", [a](sim::SimTime t) {
    return a->sample_window(t).processed_requests;
  });
  sampler.add_probe(prefix + ".pt_total_ms", [a](sim::SimTime t) {
    return a->sample_window(t).pt_total_ms;
  });
  sampler.add_probe(prefix + ".pt_tomcat_ms", [a](sim::SimTime t) {
    return a->sample_window(t).pt_tomcat_ms;
  });
  sampler.add_probe(prefix + ".threads_active", [a](sim::SimTime t) {
    return a->sample_window(t).threads_active;
  });
  sampler.add_probe(prefix + ".threads_connecting", [a](sim::SimTime t) {
    return a->sample_window(t).threads_connecting;
  });
}

}  // namespace softres::tier
