#pragma once

#include "hw/link.h"
#include "hw/node.h"
#include "jvm/jvm.h"
#include "soft/pool.h"
#include "tier/cjdbc.h"
#include "tier/request.h"
#include "tier/server.h"

namespace softres::tier {

/// Apache Tomcat application-server model.
///
/// Two soft resources gate a servlet's execution: the worker *thread pool*
/// (one thread per in-flight request; under-allocating it is the Section
/// III-A bottleneck) and the server-wide *DB connection pool* (the paper's
/// modified RUBBoS shares one global pool across servlets; a request holds
/// one connection for its whole DB phase, per Fig 9).
class TomcatServer : public Server {
 public:
  using Callback = sim::InlineCallback;

  TomcatServer(sim::Simulator& sim, std::string name, hw::Node& node,
               jvm::JvmConfig jvm_config, std::size_t threads,
               std::size_t db_connections, CJdbcServer& cjdbc,
               hw::Link& down_link, hw::Link& up_link,
               double alloc_per_request_mb);

  /// Process one dynamic request; `done` fires when the response leaves this
  /// server. The caller (an Apache worker) blocks in our thread-pool queue
  /// until a Tomcat thread picks the request up — that queue is exactly the
  /// "waiting for a Tomcat connection" state of Figs 7–8.
  void submit(const RequestPtr& req, Callback done);

  soft::Pool& thread_pool() { return threads_; }
  const soft::Pool& thread_pool() const { return threads_; }
  soft::Pool& connection_pool() { return db_conns_; }
  const soft::Pool& connection_pool() const { return db_conns_; }

  jvm::Jvm& jvm() { return jvm_; }
  const jvm::Jvm& jvm() const { return jvm_; }
  hw::Node& node() { return node_; }
  const hw::Node& node() const { return node_; }

  /// Fraction of servlet CPU spent before the DB phase.
  static constexpr double kPreDbCpuFraction = 0.7;

  /// Registers the thread pool (kAppThreads) and DB connection pool
  /// (kDbConnections), plus a post-resize hook that keeps the JVM's
  /// live-thread count equal to their summed capacities — growing the pools
  /// is how the §III-B GC over-allocation cost gets charged.
  void register_soft_resources(soft::ResizablePoolSet& set) override;

 private:
  void run_queries(const RequestPtr& req, int remaining, Callback done);
  // Stages of a request's residence and its query loop (state in
  // req->tomcat_visit / req->query_loop); static so the hot-path callbacks
  // capture nothing but the Request*.
  static void on_thread(Request* r);
  static void finish_visit(Request* r);
  static void query_loop_step(Request* r);

  hw::Node& node_;
  jvm::Jvm jvm_;
  soft::Pool threads_;
  soft::Pool db_conns_;
  CJdbcServer& cjdbc_;
  hw::Link& down_link_;  // to C-JDBC
  hw::Link& up_link_;    // from C-JDBC
  double alloc_per_request_mb_;
};

}  // namespace softres::tier
