#include "tier/mysql.h"

#include <utility>

namespace softres::tier {

MySqlServer::MySqlServer(sim::Simulator& sim, std::string name, hw::Node& node,
                         sim::Rng rng)
    : Server(sim, std::move(name)), node_(node), rng_(rng) {}

void MySqlServer::query(const RequestPtr& req, Callback done) {
  const sim::SimTime entered = sim().now();
  job_entered();
  auto finish = [this, req, entered, done = std::move(done)]() {
    job_left(entered);
    req->record_span(name(), entered, sim().now());
    done();
  };
  const bool disk_hit = rng_.bernoulli(req->mysql_disk_prob);
  node_.cpu().submit(
      req->mysql_demand_s,
      [this, disk_hit, finish = std::move(finish)]() mutable {
        if (disk_hit) {
          node_.disk().submit(std::move(finish));
        } else {
          finish();
        }
      });
}

}  // namespace softres::tier
