#include "tier/mysql.h"

#include <utility>

namespace softres::tier {

MySqlServer::MySqlServer(sim::Simulator& sim, std::string name, hw::Node& node,
                         sim::Rng rng)
    : Server(sim, std::move(name)), node_(node), rng_(rng) {
  set_profile_subsystem(prof::Subsystem::kMySqlService);
}

void MySqlServer::query(const RequestPtr& req, Callback done) {
  // Residence state lives in the request (see Request::MySqlVisitState) so
  // the stage callbacks below capture a bare Request* and stay inline.
  auto& v = req->mysql_visit;
  v.self = req;
  v.server = this;
  v.entered = sim().now();
  v.done = std::move(done);
  job_entered();
  const bool disk_hit = rng_.bernoulli(req->mysql_disk_prob);
  Request* r = req.get();
  if (disk_hit) {
    node_.cpu().submit(r->mysql_demand_s, [r] {
      auto& mv = r->mysql_visit;
      mv.server->node_.disk().submit([r] { finish_query(r); });
    });
  } else {
    node_.cpu().submit(r->mysql_demand_s, [r] { finish_query(r); });
  }
}

void MySqlServer::finish_query(Request* r) {
  auto& v = r->mysql_visit;
  MySqlServer* self = v.server;
  self->job_left(v.entered);
  r->record_span(self->name(), v.entered, self->sim().now());
  Callback done = std::move(v.done);
  RequestPtr keep = std::move(v.self);  // alive until done() returns
  done();
}

}  // namespace softres::tier
