#include "tier/cjdbc.h"

#include <cassert>
#include <utility>

namespace softres::tier {

CJdbcServer::CJdbcServer(sim::Simulator& sim, std::string name, hw::Node& node,
                         jvm::JvmConfig jvm_config, hw::Link& down_link,
                         hw::Link& up_link, double alloc_per_query_mb)
    : Server(sim, std::move(name)), node_(node),
      jvm_(sim, node.cpu(), jvm_config, this->name() + ".jvm"),
      down_link_(down_link), up_link_(up_link),
      alloc_per_query_mb_(alloc_per_query_mb) {}

void CJdbcServer::query(const RequestPtr& req, Callback done) {
  assert(!backends_.empty());
  const sim::SimTime entered = sim().now();
  const double gc0 = req->trace ? jvm_.total_gc_seconds() : 0.0;
  job_entered();

  // Query parsing + routing consumes middleware CPU; the JVM charges each
  // query's allocations against the shared young generation.
  jvm_.allocate(alloc_per_query_mb_);
  const double demand = req->cjdbc_demand_s * jvm_.runtime_overhead_factor();

  MySqlServer* backend = backends_[next_backend_];
  next_backend_ = (next_backend_ + 1) % backends_.size();

  auto finish = [this, req, entered, gc0, done = std::move(done)]() {
    job_left(entered);
    if (req->trace) {
      req->record_span(name(), entered, sim().now(), /*queue_s=*/0.0,
                       /*conn_queue_s=*/0.0, jvm_.total_gc_seconds() - gc0);
    }
    done();
  };

  node_.cpu().submit(demand, [this, req, backend,
                              finish = std::move(finish)]() mutable {
    down_link_.send(req->request_bytes, [this, req, backend,
                                         finish = std::move(finish)]() mutable {
      backend->query(req, [this, req, finish = std::move(finish)]() mutable {
        up_link_.send(req->response_bytes * 0.25, std::move(finish));
      });
    });
  });
}

}  // namespace softres::tier
