#include "tier/cjdbc.h"

#include <cassert>
#include <utility>

namespace softres::tier {

CJdbcServer::CJdbcServer(sim::Simulator& sim, std::string name, hw::Node& node,
                         jvm::JvmConfig jvm_config, hw::Link& down_link,
                         hw::Link& up_link, double alloc_per_query_mb)
    : Server(sim, std::move(name)), node_(node),
      jvm_(sim, node.cpu(), jvm_config, this->name() + ".jvm"),
      down_link_(down_link), up_link_(up_link),
      alloc_per_query_mb_(alloc_per_query_mb) {
  set_profile_subsystem(prof::Subsystem::kCJdbcService);
}

void CJdbcServer::query(const RequestPtr& req, Callback done) {
  assert(!backends_.empty());
  // Residence state lives in the request (see Request::CJdbcVisitState) so
  // the stage callbacks below capture a bare Request* and stay inline.
  auto& v = req->cjdbc_visit;
  v.self = req;
  v.server = this;
  v.entered = sim().now();
  v.gc0 = req->trace ? jvm_.total_gc_seconds() : 0.0;
  v.done = std::move(done);
  job_entered();

  // Query parsing + routing consumes middleware CPU; the JVM charges each
  // query's allocations against the shared young generation.
  jvm_.allocate(alloc_per_query_mb_);
  const double demand = req->cjdbc_demand_s * jvm_.runtime_overhead_factor();

  v.backend = backends_[next_backend_];
  next_backend_ = (next_backend_ + 1) % backends_.size();

  Request* r = req.get();
  node_.cpu().submit(demand, [this, r] {
    down_link_.send(r->request_bytes, [this, r] {
      r->cjdbc_visit.backend->query(RequestPtr(r), [r] {
        auto& cv = r->cjdbc_visit;
        cv.server->up_link_.send(r->response_bytes * 0.25,
                                 [r] { finish_query(r); });
      });
    });
  });
}

void CJdbcServer::finish_query(Request* r) {
  auto& v = r->cjdbc_visit;
  CJdbcServer* self = v.server;
  self->job_left(v.entered);
  if (r->trace) {
    r->record_span(self->name(), v.entered, self->sim().now(),
                   /*queue_s=*/0.0, /*conn_queue_s=*/0.0,
                   self->jvm_.total_gc_seconds() - v.gc0);
  }
  Callback done = std::move(v.done);
  RequestPtr keep = std::move(v.self);  // alive until done() returns
  done();
}

}  // namespace softres::tier
