#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "soft/pool_guard.h"
#include "support/prof.h"

namespace softres::tier {

class RequestArena;
struct Request;
class ApacheServer;
class TomcatServer;
class CJdbcServer;
class MySqlServer;

/// Intrusive smart pointer to a Request (declared ahead of Request so the
/// request's in-flight continuation blocks can hold keep-alive copies;
/// member definitions follow the Request definition). Copying bumps a plain
/// (non-atomic) counter; the last owner returns the Request to its arena's
/// freelist, or deletes it when the Request was heap-allocated without an
/// arena (tests, ad-hoc tools). Replaces std::shared_ptr<Request> on the hot
/// path: half the capture footprint (8 bytes vs 16) and no lock-prefixed
/// refcount traffic.
class RequestPtr {
 public:
  RequestPtr() noexcept = default;
  RequestPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)
  /// Shares ownership of `p`, bumping its refcount.
  explicit RequestPtr(Request* p) noexcept;
  RequestPtr(const RequestPtr& o) noexcept;
  RequestPtr(RequestPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  RequestPtr& operator=(const RequestPtr& o) noexcept {
    RequestPtr(o).swap(*this);
    return *this;
  }
  RequestPtr& operator=(RequestPtr&& o) noexcept {
    RequestPtr(std::move(o)).swap(*this);
    return *this;
  }
  ~RequestPtr() { release(); }

  void reset() noexcept {
    release();
    p_ = nullptr;
  }
  void swap(RequestPtr& o) noexcept { std::swap(p_, o.p_); }

  Request* get() const noexcept { return p_; }
  Request& operator*() const noexcept { return *p_; }
  Request* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  friend bool operator==(const RequestPtr& a, const RequestPtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const RequestPtr& a, const RequestPtr& b) {
    return a.p_ != b.p_;
  }

  /// Owners of this request (test/diagnostic hook).
  std::uint32_t use_count() const noexcept;

 private:
  void release() noexcept;

  Request* p_ = nullptr;
};

enum class RequestKind {
  kDynamic,  // servlet interaction (hits Tomcat, C-JDBC, MySQL)
  kStatic,   // embedded static content (served from Apache's cache)
};

/// One HTTP request travelling down the invocation chain. The workload
/// generator samples the per-tier demands when the interaction is chosen so
/// servers stay policy-free.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kDynamic;
  int interaction = 0;  // index into the RUBBoS interaction table
  /// Issuing tenant (index into the farm's tenant table; 0 in single-tenant
  /// trials). Rides the whole invocation chain so every soft-pool grant along
  /// the way is attributed to — and arbitrated for — the right tenant.
  std::uint32_t tenant = 0;

  // Sampled demands.
  double apache_demand_s = 0.0;  // HTTP parsing + response assembly
  int num_queries = 0;           // SQL queries this servlet issues
  double tomcat_demand_s = 0.0;  // servlet execution CPU (total, split 70/30
                                 // around the DB phase)
  double cjdbc_demand_s = 0.0;   // middleware CPU per query
  double mysql_demand_s = 0.0;   // database CPU per query
  double mysql_disk_prob = 0.0;  // probability a query misses cache -> disk
  double request_bytes = 512.0;
  double response_bytes = 8192.0;

  // Client-side timestamps (set by the client farm).
  sim::SimTime sent_at = 0.0;
  sim::SimTime completed_at = 0.0;

  /// One server visit of a traced request: [enter, leave) is the service
  /// residence (for a Tomcat visit this is the paper's T; the C-JDBC visits
  /// are its t1, t2 — Fig 9), annotated with the sub-phases the observability
  /// layer breaks latency into:
  ///  * queue_s      — wait for a pool unit (worker/servlet thread) *before*
  ///                   enter; the residence interval excludes it.
  ///  * conn_queue_s — in-residence wait for a downstream connection (the
  ///                   Tomcat DB-connection pool).
  ///  * gc_s         — stop-the-world freeze time of this server's JVM that
  ///                   overlapped the residence.
  ///  * fin_wait_s   — lingering-close FIN wait *after* leave (web tier); the
  ///                   worker stays bound but the response is already out, so
  ///                   this is part of worker busy time, not of response time.
  struct TraceSpan {
    std::string server;
    sim::SimTime enter = 0.0;
    sim::SimTime leave = 0.0;
    double queue_s = 0.0;
    double conn_queue_s = 0.0;
    double gc_s = 0.0;
    double fin_wait_s = 0.0;
    double duration() const { return leave - enter; }
  };

  /// Span storage for a sampled request. Tracing is off by default; the farm
  /// arms a deterministic 1-in-N subset by allocating this block. Servers on
  /// the hot path pay exactly one pointer-null check when tracing is off.
  struct Trace {
    std::vector<TraceSpan> spans;
  };
  std::unique_ptr<Trace> trace;

  bool traced() const { return trace != nullptr; }
  void enable_trace() {
    if (!trace) trace = std::make_unique<Trace>();
  }
  /// Spans of a traced request (empty vector when tracing is off).
  const std::vector<TraceSpan>& spans() const {
    static const std::vector<TraceSpan> kEmpty;
    return trace ? trace->spans : kEmpty;
  }

  void record_span(const std::string& server, sim::SimTime enter,
                   sim::SimTime leave, double queue_s = 0.0,
                   double conn_queue_s = 0.0, double gc_s = 0.0,
                   double fin_wait_s = 0.0) {
    if (!trace) return;
    trace->spans.push_back(
        TraceSpan{server, enter, leave, queue_s, conn_queue_s, gc_s,
                  fin_wait_s});
  }

  /// In-flight continuation state for the hot query loop (Tomcat -> C-JDBC
  /// -> MySQL). The loop used to thread its state through nested closures —
  /// each stage capturing a RequestPtr plus the 40-byte downstream callback,
  /// which outgrows InlineFunction's inline buffer and heap-boxes roughly
  /// ten captures per query. Parking that state here instead lets every
  /// stage callback capture a raw Request* (8 bytes, trivially copyable:
  /// always inline) and recycles the storage with the request itself.
  ///
  /// Protocol: a tier fills its block on entry (including the `self`
  /// keep-alive) and moves `self`/`done` back out before invoking the
  /// continuation, so blocks are empty whenever the request is at rest. At
  /// most one visit per tier is in flight per request — the query loop is
  /// sequential — so one block per tier suffices. A filled block makes the
  /// request own a reference to itself; RequestArena's destructor breaks
  /// those cycles for trials that tear down with requests mid-flight.
  struct ClientHoldState {  // client farm: keeps the request alive from
    RequestPtr self;        // link send until the response callback
    std::uint32_t user = 0;
    int statics_remaining = 0;
    ApacheServer* target = nullptr;
  } client_hold;
  struct ApacheVisitState {  // one page's Apache residence
    RequestPtr self;
    ApacheServer* server = nullptr;
    sim::SimTime arrived = 0.0;
    sim::SimTime worker_started = 0.0;
    sim::SimTime conn_started = 0.0;
    sim::InlineCallback responded;
    // The worker unit, adopted inside the acquire grant callback and
    // detached when the response leaves (lingering close keeps the worker
    // bound past the request's life; apache.cc releases it on FIN).
    soft::PoolGuard worker;
  } apache_visit;
  struct TomcatVisitState {  // one page's Tomcat residence
    RequestPtr self;
    TomcatServer* server = nullptr;
    sim::SimTime arrived = 0.0;
    sim::SimTime entered = 0.0;
    sim::SimTime conn_wait_started = 0.0;
    double conn_queue_s = 0.0;
    double gc0 = 0.0;
    sim::InlineCallback done;
    // The servlet thread and (for query-bearing requests) the DB
    // connection, adopted in their grant callbacks and released where the
    // corresponding phase ends (tomcat.cc).
    soft::PoolGuard thread;
    soft::PoolGuard db_conn;
  } tomcat_visit;
  struct QueryLoopState {  // Tomcat's per-request query loop
    RequestPtr self;
    TomcatServer* tomcat = nullptr;
    int remaining = 0;
    sim::InlineCallback done;  // fires once every query has been answered
  } query_loop;
  struct CJdbcVisitState {  // one query's C-JDBC residence
    RequestPtr self;
    CJdbcServer* server = nullptr;
    MySqlServer* backend = nullptr;
    sim::SimTime entered = 0.0;
    double gc0 = 0.0;
    sim::InlineCallback done;
  } cjdbc_visit;
  struct MySqlVisitState {  // one query's MySQL residence
    RequestPtr self;
    MySqlServer* server = nullptr;
    sim::SimTime entered = 0.0;
    sim::InlineCallback done;
  } mysql_visit;

  /// Intrusive bookkeeping, managed by RequestPtr / RequestArena. The count
  /// is deliberately non-atomic: a Request lives and dies inside one trial,
  /// and a trial runs on exactly one thread (see exp::RunContext), so the
  /// atomic increments std::shared_ptr pays on every lambda capture along the
  /// Apache -> Tomcat -> C-JDBC -> MySQL chain buy nothing here.
  std::uint32_t refs_ = 0;
  RequestArena* arena_ = nullptr;

  /// Restore the sampled/recorded fields to their freshly-constructed state
  /// (refs_/arena_ excluded; the arena manages those across recycles).
  void reset_for_reuse() {
    id = 0;
    kind = RequestKind::kDynamic;
    interaction = 0;
    tenant = 0;
    apache_demand_s = 0.0;
    num_queries = 0;
    tomcat_demand_s = 0.0;
    cjdbc_demand_s = 0.0;
    mysql_demand_s = 0.0;
    mysql_disk_prob = 0.0;
    request_bytes = 512.0;
    response_bytes = 8192.0;
    sent_at = 0.0;
    completed_at = 0.0;
    trace.reset();
    // The visit-block protocol guarantees a request at rest has empty
    // blocks; a populated one here means a tier leaked its in-flight state.
    assert(!client_hold.self);
    assert(!apache_visit.self && !apache_visit.responded);
    assert(!apache_visit.worker);
    assert(!tomcat_visit.self && !tomcat_visit.done);
    assert(!tomcat_visit.thread && !tomcat_visit.db_conn);
    assert(!query_loop.self && !query_loop.done);
    assert(!cjdbc_visit.self && !cjdbc_visit.done);
    assert(!mysql_visit.self && !mysql_visit.done);
  }
};

inline RequestPtr::RequestPtr(Request* p) noexcept : p_(p) {
  if (p_ != nullptr) ++p_->refs_;
}
inline RequestPtr::RequestPtr(const RequestPtr& o) noexcept : p_(o.p_) {
  if (p_ != nullptr) ++p_->refs_;
}
inline std::uint32_t RequestPtr::use_count() const noexcept {
  return p_ != nullptr ? p_->refs_ : 0;
}

/// Freelist-backed pool of Request objects for one trial. Requests are
/// carved from a std::deque slab (stable addresses, chunked allocation) and
/// recycled through a LIFO freelist, so the steady-state request churn of a
/// trial — two allocations per page with std::make_shared — touches the
/// allocator only while the pool is still growing toward the trial's peak
/// concurrency. Owned by exp::RunContext, which declares it before the
/// Simulator: pending callbacks capture RequestPtrs, and their destructors
/// must find the arena alive when the engine is torn down.
///
/// Not thread-safe by design — one arena per trial, one trial per thread.
class RequestArena {
 public:
  RequestArena() = default;
  RequestArena(const RequestArena&) = delete;
  RequestArena& operator=(const RequestArena&) = delete;
  ~RequestArena() {
    // A trial that stops at its horizon tears down with requests mid-flight,
    // and an in-flight request owns its own continuation state: e.g.
    // query_loop.done captures a RequestPtr back to its own request. Break
    // those cycles before the drain check — in two phases, stealing every
    // block first so phase two's cascading releases (which recycle requests
    // and assert their blocks are empty) never see a filled block.
    std::vector<RequestPtr> keeps;
    std::vector<sim::InlineCallback> dones;
    for (Request& r : slab_) {
      // Parked pool units are detached, not released: the pools live in the
      // Testbed, which the run tears down before this arena, and a release
      // would also synchronously grant a waiter mid-teardown. A trial that
      // stops at its horizon deliberately abandons these units.
      r.apache_visit.worker.detach();
      r.tomcat_visit.thread.detach();
      r.tomcat_visit.db_conn.detach();
      keeps.push_back(std::move(r.client_hold.self));
      keeps.push_back(std::move(r.apache_visit.self));
      keeps.push_back(std::move(r.tomcat_visit.self));
      keeps.push_back(std::move(r.query_loop.self));
      keeps.push_back(std::move(r.cjdbc_visit.self));
      keeps.push_back(std::move(r.mysql_visit.self));
      dones.push_back(std::move(r.apache_visit.responded));
      dones.push_back(std::move(r.tomcat_visit.done));
      dones.push_back(std::move(r.query_loop.done));
      dones.push_back(std::move(r.cjdbc_visit.done));
      dones.push_back(std::move(r.mysql_visit.done));
    }
    dones.clear();
    keeps.clear();
    // Every request must now be back in the freelist: the arena outlives
    // all other RequestPtrs by the RunContext/Testbed member-ordering
    // contract.
    assert(free_.size() == slab_.size());
  }

  /// A fresh (default-state) request owned by this arena.
  RequestPtr acquire() {
    SOFTRES_PROF_COUNT(kArenaAlloc);
    Request* r;
    if (!free_.empty()) {
      r = free_.back();
      free_.pop_back();
    } else {
      slab_.emplace_back();
      r = &slab_.back();
      r->arena_ = this;
    }
    return RequestPtr(r);
  }

  /// Slab high-water mark: distinct Request objects ever carved.
  std::size_t allocated() const { return slab_.size(); }
  /// Requests currently sitting in the freelist.
  std::size_t free_count() const { return free_.size(); }

 private:
  friend class RequestPtr;
  void recycle(Request* r) {
    r->reset_for_reuse();
    free_.push_back(r);
  }

  std::deque<Request> slab_;
  std::vector<Request*> free_;
};

inline void RequestPtr::release() noexcept {
  if (p_ != nullptr && --p_->refs_ == 0) {
    if (p_->arena_ != nullptr) {
      p_->arena_->recycle(p_);
    } else {
      delete p_;
    }
  }
}

/// A fresh request: from `arena` when one is supplied, else heap-allocated
/// (the convenience path for tests and standalone tools).
inline RequestPtr make_request(RequestArena* arena = nullptr) {
  if (arena != nullptr) return arena->acquire();
  return RequestPtr(new Request());
}

}  // namespace softres::tier
