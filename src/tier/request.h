#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace softres::tier {

enum class RequestKind {
  kDynamic,  // servlet interaction (hits Tomcat, C-JDBC, MySQL)
  kStatic,   // embedded static content (served from Apache's cache)
};

/// One HTTP request travelling down the invocation chain. The workload
/// generator samples the per-tier demands when the interaction is chosen so
/// servers stay policy-free.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kDynamic;
  int interaction = 0;  // index into the RUBBoS interaction table

  // Sampled demands.
  double apache_demand_s = 0.0;  // HTTP parsing + response assembly
  int num_queries = 0;           // SQL queries this servlet issues
  double tomcat_demand_s = 0.0;  // servlet execution CPU (total, split 70/30
                                 // around the DB phase)
  double cjdbc_demand_s = 0.0;   // middleware CPU per query
  double mysql_demand_s = 0.0;   // database CPU per query
  double mysql_disk_prob = 0.0;  // probability a query misses cache -> disk
  double request_bytes = 512.0;
  double response_bytes = 8192.0;

  // Client-side timestamps (set by the client farm).
  sim::SimTime sent_at = 0.0;
  sim::SimTime completed_at = 0.0;

  /// One server visit of a traced request: [enter, leave) is the service
  /// residence (for a Tomcat visit this is the paper's T; the C-JDBC visits
  /// are its t1, t2 — Fig 9), annotated with the sub-phases the observability
  /// layer breaks latency into:
  ///  * queue_s      — wait for a pool unit (worker/servlet thread) *before*
  ///                   enter; the residence interval excludes it.
  ///  * conn_queue_s — in-residence wait for a downstream connection (the
  ///                   Tomcat DB-connection pool).
  ///  * gc_s         — stop-the-world freeze time of this server's JVM that
  ///                   overlapped the residence.
  ///  * fin_wait_s   — lingering-close FIN wait *after* leave (web tier); the
  ///                   worker stays bound but the response is already out, so
  ///                   this is part of worker busy time, not of response time.
  struct TraceSpan {
    std::string server;
    sim::SimTime enter = 0.0;
    sim::SimTime leave = 0.0;
    double queue_s = 0.0;
    double conn_queue_s = 0.0;
    double gc_s = 0.0;
    double fin_wait_s = 0.0;
    double duration() const { return leave - enter; }
  };

  /// Span storage for a sampled request. Tracing is off by default; the farm
  /// arms a deterministic 1-in-N subset by allocating this block. Servers on
  /// the hot path pay exactly one pointer-null check when tracing is off.
  struct Trace {
    std::vector<TraceSpan> spans;
  };
  std::unique_ptr<Trace> trace;

  bool traced() const { return trace != nullptr; }
  void enable_trace() {
    if (!trace) trace = std::make_unique<Trace>();
  }
  /// Spans of a traced request (empty vector when tracing is off).
  const std::vector<TraceSpan>& spans() const {
    static const std::vector<TraceSpan> kEmpty;
    return trace ? trace->spans : kEmpty;
  }

  void record_span(const std::string& server, sim::SimTime enter,
                   sim::SimTime leave, double queue_s = 0.0,
                   double conn_queue_s = 0.0, double gc_s = 0.0,
                   double fin_wait_s = 0.0) {
    if (!trace) return;
    trace->spans.push_back(
        TraceSpan{server, enter, leave, queue_s, conn_queue_s, gc_s,
                  fin_wait_s});
  }
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace softres::tier
