#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace softres::tier {

enum class RequestKind {
  kDynamic,  // servlet interaction (hits Tomcat, C-JDBC, MySQL)
  kStatic,   // embedded static content (served from Apache's cache)
};

/// One HTTP request travelling down the invocation chain. The workload
/// generator samples the per-tier demands when the interaction is chosen so
/// servers stay policy-free.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kDynamic;
  int interaction = 0;  // index into the RUBBoS interaction table

  // Sampled demands.
  double apache_demand_s = 0.0;  // HTTP parsing + response assembly
  int num_queries = 0;           // SQL queries this servlet issues
  double tomcat_demand_s = 0.0;  // servlet execution CPU (total, split 70/30
                                 // around the DB phase)
  double cjdbc_demand_s = 0.0;   // middleware CPU per query
  double mysql_demand_s = 0.0;   // database CPU per query
  double mysql_disk_prob = 0.0;  // probability a query misses cache -> disk
  double request_bytes = 512.0;
  double response_bytes = 8192.0;

  // Client-side timestamps (set by the client farm).
  sim::SimTime sent_at = 0.0;
  sim::SimTime completed_at = 0.0;

  /// One server visit of a traced request: [enter, leave) residence. For a
  /// Tomcat visit this is the paper's T; the C-JDBC visits are its t1, t2
  /// (Fig 9). Off by default; the client farm samples a subset.
  struct TraceSpan {
    std::string server;
    sim::SimTime enter = 0.0;
    sim::SimTime leave = 0.0;
    double duration() const { return leave - enter; }
  };
  bool trace_enabled = false;
  std::vector<TraceSpan> trace;

  void record_span(const std::string& server, sim::SimTime enter,
                   sim::SimTime leave) {
    if (trace_enabled) trace.push_back(TraceSpan{server, enter, leave});
  }
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace softres::tier
