#pragma once

#include <vector>

#include "hw/link.h"
#include "hw/node.h"
#include "net/tcp.h"
#include "sim/sampler.h"
#include "soft/pool.h"
#include "tier/request.h"
#include "tier/server.h"
#include "tier/tomcat.h"

namespace softres::tier {

/// Apache HTTP server model (worker MPM, keepalive off).
///
/// A worker thread owns a connection from accept to the end of the lingering
/// close: parse, proxy to Tomcat (dynamic) or serve from the in-memory cache
/// (static), write the response, then *wait for the client's FIN*. Under
/// high workload that FIN wait balloons (net::TcpModel), so a small worker
/// pool ends up with most threads parked in teardown and only a trickle
/// reaching Tomcat — the Section III-C anti-buffering collapse where back-end
/// CPU utilization falls as workload rises.
class ApacheServer : public Server {
 public:
  using Callback = sim::InlineCallback;
  using LoadFn = sim::InlineFunction<double()>;

  ApacheServer(sim::Simulator& sim, std::string name, hw::Node& node,
               std::size_t threads, hw::Link& to_tomcat,
               hw::Link& from_tomcat, hw::Link& to_client,
               net::TcpModel tcp, LoadFn client_load);

  void add_tomcat(TomcatServer& t) { tomcats_.push_back(&t); }

  /// Process one HTTP request; `responded` fires when the response has been
  /// delivered to the client (the worker is then still tied up in the FIN
  /// wait).
  void handle(const RequestPtr& req, Callback responded);

  soft::Pool& worker_pool() { return workers_; }
  const soft::Pool& worker_pool() const { return workers_; }
  hw::Node& node() { return node_; }
  const hw::Node& node() const { return node_; }

  /// Workers currently occupying or waiting for a Tomcat connection
  /// (Threads_connectingTomcat in Figs 7/8).
  std::size_t threads_connecting_tomcat() const { return connecting_tomcat_; }

  /// Mean worker busy time per request over the measurement window,
  /// including the lingering-close FIN wait. This is the "RTT" that sizes
  /// the web tier: a worker thread is unavailable for exactly this long.
  double window_mean_busy_s() const { return window_busy_stats_.mean(); }

  void reset_window_stats() override;

  /// Registers the worker pool (role kWebWorkers). A worker-pool floor of 2
  /// keeps the accept path alive through aggressive drains.
  void register_soft_resources(soft::ResizablePoolSet& set) override;

  /// One row of the Fig 7/8 timeline; resets the per-interval accumulators.
  /// Idempotent per sampling instant so independent probes may each call it.
  struct TimelineSample {
    double processed_requests = 0.0;   // completed in the interval
    double pt_total_ms = 0.0;          // mean worker busy time per request
    double pt_tomcat_ms = 0.0;         // mean time occupying/waiting Tomcat
    double threads_active = 0.0;       // busy workers at sampling instant
    double threads_connecting = 0.0;   // of which in the Tomcat interaction
  };
  TimelineSample sample_window(sim::SimTime now);

 private:
  // Stages of a request's residence (state in req->apache_visit); static so
  // the hot-path callbacks capture nothing but the Request*.
  static void on_worker(Request* r);
  static void respond(Request* r);

  hw::Node& node_;
  soft::Pool workers_;
  std::vector<TomcatServer*> tomcats_;
  std::size_t next_tomcat_ = 0;
  hw::Link& to_tomcat_;
  hw::Link& from_tomcat_;
  hw::Link& to_client_;
  net::TcpModel tcp_;
  LoadFn client_load_;
  std::size_t connecting_tomcat_ = 0;

  sim::Welford window_busy_stats_;  // worker busy times, measurement window

  // Per-interval accumulators backing sample_window().
  double win_busy_sum_s_ = 0.0;
  std::size_t win_busy_n_ = 0;
  double win_tomcat_sum_s_ = 0.0;
  std::size_t win_tomcat_n_ = 0;
  std::size_t win_processed_ = 0;
  sim::SimTime cached_sample_time_ = -1.0;
  TimelineSample cached_sample_;
};

/// Register the five Fig 7/8 series on a sampler. Series names are prefixed
/// with the server name: "<name>.processed", ".pt_total_ms", ".pt_tomcat_ms",
/// ".threads_active", ".threads_connecting".
void add_apache_timeline_probes(sim::Sampler& sampler, ApacheServer& apache);

}  // namespace softres::tier
