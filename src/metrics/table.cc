#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace softres::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fmt(v, precision));
  return add_row(std::move(out));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace softres::metrics
