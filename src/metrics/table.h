#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace softres::metrics {

/// Minimal fixed-width/CSV table printer for bench output. Columns are
/// declared once; rows are streamed; `print` right-aligns numbers the way the
/// paper's tables read.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` decimals.
  Table& add_row(const std::vector<double>& cells, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  static std::string fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace softres::metrics
