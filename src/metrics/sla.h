#pragma once

#include <vector>

#include "sim/stats.h"

namespace softres::metrics {

/// The paper's simplified SLA model: one response-time threshold splits
/// throughput into goodput (within the bound) and badput (violations).
/// Goodput + badput equals the classic throughput.
struct SlaSplit {
  double goodput = 0.0;  // requests/s within the threshold
  double badput = 0.0;   // requests/s beyond the threshold
  double throughput() const { return goodput + badput; }
  /// SLO satisfaction ratio in [0,1]; 1.0 when there was no traffic.
  double satisfaction() const {
    const double t = throughput();
    return t > 0.0 ? goodput / t : 1.0;
  }
};

class SlaModel {
 public:
  explicit SlaModel(double threshold_s) : threshold_s_(threshold_s) {}

  double threshold() const { return threshold_s_; }

  /// Split a window's response-time samples into goodput/badput rates.
  SlaSplit split(const sim::SampleSet& response_times,
                 double window_s) const;

  const static std::vector<double>& common_thresholds();

 private:
  double threshold_s_;
};

/// Revenue model attached to an SLA: earnings for compliant requests minus
/// penalties for violations (the provider-revenue analysis of Section II-B).
struct RevenueModel {
  double earn_per_good = 1.0;
  double penalty_per_bad = 2.0;

  double revenue(const SlaSplit& split, double window_s) const {
    return (split.goodput * earn_per_good - split.badput * penalty_per_bad) *
           window_s;
  }
};

/// The paper's Fig 3(c) response-time buckets:
/// [0,.2], (.2,.4], ..., (1,1.5], (1.5,2], >2 seconds.
sim::BucketedHistogram make_rt_buckets();

/// Jain's fairness index over per-tenant allocations:
/// J = (sum x)^2 / (N * sum x^2), in (0, 1]; 1.0 = perfectly even, 1/N =
/// one tenant holds everything. Returns 1.0 for empty or all-zero input
/// (nothing allocated is trivially fair).
double jain_fairness(const std::vector<double>& xs);

}  // namespace softres::metrics
