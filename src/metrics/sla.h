#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.h"

namespace softres::metrics {

/// The paper's simplified SLA model: one response-time threshold splits
/// throughput into goodput (within the bound) and badput (violations).
/// Goodput + badput equals the classic throughput.
struct SlaSplit {
  double goodput = 0.0;  // requests/s within the threshold
  double badput = 0.0;   // requests/s beyond the threshold
  double throughput() const { return goodput + badput; }
  /// SLO satisfaction ratio in [0,1]; 1.0 when there was no traffic.
  double satisfaction() const {
    const double t = throughput();
    return t > 0.0 ? goodput / t : 1.0;
  }
};

class SlaModel {
 public:
  explicit SlaModel(double threshold_s) : threshold_s_(threshold_s) {}

  double threshold() const { return threshold_s_; }

  /// Split a window's response-time samples into goodput/badput rates.
  SlaSplit split(const sim::SampleSet& response_times,
                 double window_s) const;

  const static std::vector<double>& common_thresholds();

 private:
  double threshold_s_;
};

/// Revenue model attached to an SLA: earnings for compliant requests minus
/// penalties for violations (the provider-revenue analysis of Section II-B).
struct RevenueModel {
  double earn_per_good = 1.0;
  double penalty_per_bad = 2.0;

  double revenue(const SlaSplit& split, double window_s) const {
    return (split.goodput * earn_per_good - split.badput * penalty_per_bad) *
           window_s;
  }
};

/// One labelled cohort's share of the SLO damage: how many of its samples
/// exceeded the threshold and what fraction of *all* misses it contributes.
struct CohortMiss {
  std::string label;
  std::size_t requests = 0;
  std::size_t misses = 0;    // samples beyond the threshold
  double miss_share = 0.0;   // misses / total misses across cohorts (0 if none)
};

/// Per-cohort SLO-miss attribution over labelled response-time sample sets,
/// in input order. Label-generic on purpose: metrics sits below obs in the
/// layer DAG, so the obs tail attributor feeds its percentile cohorts in and
/// the answer stays reusable for any other partition (tenants, interactions).
std::vector<CohortMiss> slo_miss_by_cohort(
    const std::vector<std::pair<std::string, sim::SampleSet>>& cohorts,
    double threshold_s);

/// The paper's Fig 3(c) response-time buckets:
/// [0,.2], (.2,.4], ..., (1,1.5], (1.5,2], >2 seconds.
sim::BucketedHistogram make_rt_buckets();

/// Jain's fairness index over per-tenant allocations:
/// J = (sum x)^2 / (N * sum x^2), in (0, 1]; 1.0 = perfectly even, 1/N =
/// one tenant holds everything. Returns 1.0 for empty or all-zero input
/// (nothing allocated is trivially fair).
double jain_fairness(const std::vector<double>& xs);

}  // namespace softres::metrics
