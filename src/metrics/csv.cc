#include "metrics/csv.h"

#include <cstdlib>
#include <fstream>
#include <ostream>

namespace softres::metrics {

void write_series_csv(std::ostream& os,
                      const std::vector<const sim::TimeSeries*>& series) {
  os << "time";
  for (const auto* s : series) os << ',' << s->name;
  os << '\n';
  std::size_t rows = 0;
  for (const auto* s : series) rows = std::max(rows, s->size());
  for (std::size_t i = 0; i < rows; ++i) {
    // Sampled together, so any series supplies the timestamp.
    double t = 0.0;
    for (const auto* s : series) {
      if (i < s->size()) {
        t = s->times[i];
        break;
      }
    }
    os << t;
    for (const auto* s : series) {
      os << ',';
      if (i < s->size()) os << s->values[i];
    }
    os << '\n';
  }
}

void write_xy_csv(std::ostream& os, const std::string& x_name,
                  const std::vector<double>& x,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>>& columns) {
  os << x_name;
  for (const auto& [name, _] : columns) os << ',' << name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << x[i];
    for (const auto& [_, values] : columns) {
      os << ',';
      if (i < values.size()) os << values[i];
    }
    os << '\n';
  }
}

std::string csv_dir_from_env() {
  const char* dir = std::getenv("SOFTRES_CSV_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

bool export_csv(const std::string& dir, const std::string& name,
                const std::function<void(std::ostream&)>& fn) {
  if (dir.empty()) return false;
  std::ofstream file(dir + "/" + name);
  if (!file) return false;
  fn(file);
  return true;
}

}  // namespace softres::metrics
