#include "metrics/sla.h"

namespace softres::metrics {

SlaSplit SlaModel::split(const sim::SampleSet& response_times,
                         double window_s) const {
  SlaSplit s;
  if (window_s <= 0.0) return s;
  const auto good = response_times.count_at_or_below(threshold_s_);
  const auto total = response_times.count();
  s.goodput = static_cast<double>(good) / window_s;
  s.badput = static_cast<double>(total - good) / window_s;
  return s;
}

const std::vector<double>& SlaModel::common_thresholds() {
  static const std::vector<double> kThresholds = {0.5, 1.0, 2.0};
  return kThresholds;
}

std::vector<CohortMiss> slo_miss_by_cohort(
    const std::vector<std::pair<std::string, sim::SampleSet>>& cohorts,
    double threshold_s) {
  std::vector<CohortMiss> out;
  out.reserve(cohorts.size());
  std::size_t total_misses = 0;
  for (const auto& [label, samples] : cohorts) {
    CohortMiss m;
    m.label = label;
    m.requests = samples.count();
    m.misses = samples.count() - samples.count_at_or_below(threshold_s);
    total_misses += m.misses;
    out.push_back(std::move(m));
  }
  if (total_misses > 0) {
    for (CohortMiss& m : out) {
      m.miss_share = static_cast<double>(m.misses) /
                     static_cast<double>(total_misses);
    }
  }
  return out;
}

sim::BucketedHistogram make_rt_buckets() {
  return sim::BucketedHistogram({0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0});
}

double jain_fairness(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace softres::metrics
