#include "metrics/sla.h"

namespace softres::metrics {

SlaSplit SlaModel::split(const sim::SampleSet& response_times,
                         double window_s) const {
  SlaSplit s;
  if (window_s <= 0.0) return s;
  const auto good = response_times.count_at_or_below(threshold_s_);
  const auto total = response_times.count();
  s.goodput = static_cast<double>(good) / window_s;
  s.badput = static_cast<double>(total - good) / window_s;
  return s;
}

const std::vector<double>& SlaModel::common_thresholds() {
  static const std::vector<double> kThresholds = {0.5, 1.0, 2.0};
  return kThresholds;
}

sim::BucketedHistogram make_rt_buckets() {
  return sim::BucketedHistogram({0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0});
}

double jain_fairness(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace softres::metrics
