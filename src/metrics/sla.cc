#include "metrics/sla.h"

namespace softres::metrics {

SlaSplit SlaModel::split(const sim::SampleSet& response_times,
                         double window_s) const {
  SlaSplit s;
  if (window_s <= 0.0) return s;
  const auto good = response_times.count_at_or_below(threshold_s_);
  const auto total = response_times.count();
  s.goodput = static_cast<double>(good) / window_s;
  s.badput = static_cast<double>(total - good) / window_s;
  return s;
}

const std::vector<double>& SlaModel::common_thresholds() {
  static const std::vector<double> kThresholds = {0.5, 1.0, 2.0};
  return kThresholds;
}

sim::BucketedHistogram make_rt_buckets() {
  return sim::BucketedHistogram({0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0});
}

}  // namespace softres::metrics
