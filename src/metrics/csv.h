#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/sampler.h"

namespace softres::metrics {

/// Plot-ready exports: the figure benches can drop their series as CSV files
/// (gnuplot/matplotlib friendly) next to the printed tables.

/// Write aligned time series as columns: time,<name1>,<name2>,...
/// Series are matched by index; shorter series pad with empty cells.
void write_series_csv(std::ostream& os,
                      const std::vector<const sim::TimeSeries*>& series);

/// Write rows of (x, y1, y2, ...) with a header line.
void write_xy_csv(std::ostream& os, const std::string& x_name,
                  const std::vector<double>& x,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>>& columns);

/// Directory from SOFTRES_CSV_DIR, or empty when export is disabled.
std::string csv_dir_from_env();

/// Open `dir/name` and write via `fn`; no-op when dir is empty. Returns true
/// when a file was written.
bool export_csv(const std::string& dir, const std::string& name,
                const std::function<void(std::ostream&)>& fn);

}  // namespace softres::metrics
