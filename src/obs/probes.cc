#include "obs/probes.h"

#include <algorithm>
#include <memory>

#include "hw/cpu.h"
#include "hw/node.h"
#include "soft/pool.h"
#include "tier/apache.h"
#include "tier/server.h"

namespace softres::obs {
namespace {

struct DeltaState {
  double prev_value = 0.0;
  double prev_time = 0.0;
};

/// Differentiate a cumulative core-seconds counter into percent utilization
/// over the sampling interval (the SysStat convention, as in hw::Monitor).
template <typename Getter>
Registry::Source make_rate_source(const hw::Cpu& cpu, Getter get) {
  auto state = std::make_shared<DeltaState>();
  const hw::Cpu* c = &cpu;
  return [state, c, get](sim::SimTime now) {
    const double value = get(*c);
    const double dt = now - state->prev_time;
    const double dv = value - state->prev_value;
    state->prev_value = value;
    state->prev_time = now;
    if (dt <= 0.0) return 0.0;
    const double util = 100.0 * dv / (static_cast<double>(c->cores()) * dt);
    return std::clamp(util, 0.0, 100.0);
  };
}

}  // namespace

void register_cpu_util(Registry& registry, const hw::Node& node) {
  registry.gauge_fn(
      "cpu_util_pct",
      make_rate_source(node.cpu(),
                       [](const hw::Cpu& c) { return c.busy_core_seconds(); }),
      {{"node", node.name()}},
      "Percent CPU utilization over the sampling interval",
      node.name() + ".cpu");
}

void register_gc_util(Registry& registry, const std::string& server,
                      const hw::Cpu& cpu) {
  registry.gauge_fn(
      "gc_util_pct",
      make_rate_source(cpu,
                       [](const hw::Cpu& c) { return c.freeze_core_seconds(); }),
      {{"node", server}},
      "Percent of the interval spent in stop-the-world GC freezes",
      server + ".gc");
}

void register_pool(Registry& registry, const soft::Pool& pool) {
  const soft::Pool* p = &pool;
  registry.gauge_fn(
      "pool_util_pct",
      [p](sim::SimTime) { return 100.0 * p->utilization(); },
      {{"pool", pool.name()}}, "Pool occupancy in percent of capacity",
      pool.name() + ".util");
  registry.gauge_fn(
      "pool_waiting",
      [p](sim::SimTime) { return static_cast<double>(p->waiting()); },
      {{"pool", pool.name()}}, "Acquirers queued for a pool unit",
      pool.name() + ".waiting");
  registry.gauge_fn(
      "pool_capacity",
      [p](sim::SimTime) { return static_cast<double>(p->capacity()); },
      {{"pool", pool.name()}},
      "Current pool capacity (soft allocation; adaptive tuning resizes it)",
      pool.name() + ".capacity");
}

void register_server_ops(Registry& registry, const tier::Server& server) {
  const tier::Server* s = &server;
  registry.gauge_fn(
      "server_throughput",
      [s](sim::SimTime) { return s->window_throughput(); },
      {{"server", server.name()}}, "Completions per second (window)",
      server.name() + ".tp");
  registry.gauge_fn(
      "server_mean_rt_seconds",
      [s](sim::SimTime) { return s->window_mean_rt(); },
      {{"server", server.name()}}, "Mean per-request residence time (window)",
      server.name() + ".rt");
}

void register_apache_timeline(Registry& registry, tier::ApacheServer& apache) {
  tier::ApacheServer* a = &apache;
  const std::string prefix = apache.name();
  const Labels labels = {{"server", prefix}};
  registry.gauge_fn(
      "apache_processed_requests",
      [a](sim::SimTime t) { return a->sample_window(t).processed_requests; },
      labels, "Requests completed in the sampling interval",
      prefix + ".processed");
  registry.gauge_fn(
      "apache_worker_busy_ms",
      [a](sim::SimTime t) { return a->sample_window(t).pt_total_ms; }, labels,
      "Mean worker busy time per request (incl. FIN wait)",
      prefix + ".pt_total_ms");
  registry.gauge_fn(
      "apache_tomcat_interaction_ms",
      [a](sim::SimTime t) { return a->sample_window(t).pt_tomcat_ms; }, labels,
      "Mean time a worker occupies or waits for a Tomcat connection",
      prefix + ".pt_tomcat_ms");
  registry.gauge_fn(
      "apache_threads_active",
      [a](sim::SimTime t) { return a->sample_window(t).threads_active; },
      labels, "Busy workers at the sampling instant",
      prefix + ".threads_active");
  registry.gauge_fn(
      "apache_threads_connecting",
      [a](sim::SimTime t) { return a->sample_window(t).threads_connecting; },
      labels, "Workers in the Tomcat interaction at the sampling instant",
      prefix + ".threads_connecting");
}

}  // namespace softres::obs
