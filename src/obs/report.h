#pragma once

// Per-trial flight-recorder report: a single self-contained HTML file with
// inline-SVG timelines for every tracked series (diagnoser evidence windows
// shaded on the series they cite), the diagnosis table, and the per-tier
// latency breakdown. This is the one sanctioned rendering path for timeline
// and diagnoser data (softres-lint SR008 bans stream writes in the detectors
// themselves — a Diagnosis is data; this file turns it into pixels).
//
// Enabled per run via SOFTRES_REPORT_HTML=<path>: exp::Experiment writes one
// file per trial, deriving distinct names from the trial's configuration.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/diagnoser.h"
#include "obs/profiler.h"
#include "obs/tail.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace softres::obs {

/// Trial identification shown in the report header. All strings are
/// free-form; the renderer escapes them.
struct ReportMeta {
  std::string title;       // e.g. "bottleneck_hunt starved trial"
  std::string topology;    // e.g. "1/2/1/2"
  std::string allocation;  // e.g. "apache=400 tomcat=6 cjdbc=60"
  std::string workload;    // e.g. "6200 users"
  sim::SimTime measure_start = 0.0;
  sim::SimTime measure_end = 0.0;
  /// Extra key/value rows appended to the header table (throughput, goodput,
  /// response time, ...).
  std::vector<std::pair<std::string, std::string>> extra;

  /// One live pool resize (e.g. a core::Governor action). Rendered as a
  /// vertical annotation mark on every timeline series labelled with that
  /// pool, plus a "Pool resizes" table — the lanes that distinguish
  /// "load grew" from "capacity changed" when reading a governed trial.
  struct ResizeMark {
    sim::SimTime at = 0.0;
    std::string pool;
    std::size_t from = 0;
    std::size_t to = 0;
  };
  std::vector<ResizeMark> resizes;
};

/// Render the full flight-recorder page. `breakdown` is optional (trials run
/// without tracing simply omit that section); `profile` likewise (a one-line
/// self-profiler summary is appended to the footer when present). `tail`
/// adds the "Why is the tail slow" cohort blame section, and `traces` —
/// needed only alongside `tail` — supplies the assembled span trees for the
/// p99+ exemplar waterfall timelines.
void write_flight_recorder_html(std::ostream& os, const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown = nullptr,
                                const ProfileSnapshot* profile = nullptr,
                                const TailAttribution* tail = nullptr,
                                const TraceCollector* traces = nullptr);

/// Convenience wrapper writing to `path`; returns false when the file cannot
/// be opened (the caller decides whether that is fatal — the experiment
/// driver just warns).
bool write_flight_recorder_html(const std::string& path,
                                const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown = nullptr,
                                const ProfileSnapshot* profile = nullptr,
                                const TailAttribution* tail = nullptr,
                                const TraceCollector* traces = nullptr);

}  // namespace softres::obs
