#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace softres::prof {

// Definitions for the declarations in support/prof.h. They live here so the
// dependency-free core header stays header-only; only code that links
// softres_obs (bench, examples, tests) renders names.
const char* subsystem_name(Subsystem sub) {
  switch (sub) {
    case Subsystem::kEventQueuePush: return "event_queue_push";
    case Subsystem::kEventQueuePop: return "event_queue_pop";
    case Subsystem::kEventQueueCancel: return "event_queue_cancel";
    case Subsystem::kDispatch: return "dispatch";
    case Subsystem::kDistSample: return "dist_sample";
    case Subsystem::kPoolService: return "pool_service";
    case Subsystem::kCpuService: return "cpu_service";
    case Subsystem::kJvmService: return "jvm_service";
    case Subsystem::kLinkService: return "link_service";
    case Subsystem::kArenaAlloc: return "arena_alloc";
    case Subsystem::kTimeline: return "timeline";
    case Subsystem::kApacheService: return "apache_service";
    case Subsystem::kTomcatService: return "tomcat_service";
    case Subsystem::kCJdbcService: return "cjdbc_service";
    case Subsystem::kMySqlService: return "mysql_service";
    case Subsystem::kCount: break;
  }
  return "unknown";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSetup: return "setup";
    case Phase::kRampUp: return "ramp_up";
    case Phase::kMeasure: return "measure";
    case Phase::kRampDown: return "ramp_down";
    case Phase::kCount: break;
  }
  return "unknown";
}

}  // namespace softres::prof

namespace softres::obs {

namespace {

/// Unpack a ledger path key (one byte per level, root lowest, value
/// subsystem+1) into root-first frames.
std::vector<prof::Subsystem> unpack_path(std::uint64_t key) {
  std::vector<prof::Subsystem> frames;
  for (std::size_t level = 0; level < prof::Ledger::kPathDepth; ++level) {
    const std::uint8_t byte =
        static_cast<std::uint8_t>(key >> (8 * level) & 0xFF);
    if (byte == 0) break;
    frames.push_back(static_cast<prof::Subsystem>(byte - 1));
  }
  return frames;
}

double measure_cycles_per_second() {
  using Clock = std::chrono::steady_clock;
  if (prof::cycle_counter() == 0 && prof::cycle_counter() == 0) return 0.0;
  const auto t0 = Clock::now();
  const std::uint64_t c0 = prof::cycle_counter();
  // ~2 ms spin: short enough to be free at startup, long enough that clock
  // granularity contributes < 0.1% error.
  while (Clock::now() - t0 < std::chrono::milliseconds(2)) {
  }
  const std::uint64_t c1 = prof::cycle_counter();
  const auto t1 = Clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  if (seconds <= 0.0 || c1 <= c0) return 0.0;
  return static_cast<double>(c1 - c0) / seconds;
}

double measure_scope_cost_cycles() {
  // Time empty scopes against a scratch ledger on this thread. The result
  // feeds only the overhead estimate, so a rough figure is fine.
  prof::Ledger scratch;
  prof::InstallGuard guard(&scratch);
  constexpr int kIters = 4096;
  const std::uint64_t c0 = prof::cycle_counter();
  for (int i = 0; i < kIters; ++i) {
    prof::ScopeTimer t(prof::Subsystem::kDispatch);
  }
  const std::uint64_t c1 = prof::cycle_counter();
  if (c1 <= c0) return 0.0;
  return static_cast<double>(c1 - c0) / kIters;
}

void append_indent(std::string* out, int indent) {
  out->append(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
}

std::string format_u64(std::uint64_t v) { return std::to_string(v); }

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t ProfileSnapshot::total_counts() const {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < prof::kPhases; ++p) {
    for (std::size_t s = 0; s < prof::kSubsystems; ++s) total += counts[p][s];
  }
  return total;
}

std::uint64_t ProfileSnapshot::total_counts(prof::Phase phase) const {
  std::uint64_t total = 0;
  const std::size_t p = static_cast<std::size_t>(phase);
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) total += counts[p][s];
  return total;
}

std::uint64_t ProfileSnapshot::total_cycles() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) total += cycles[s];
  return total;
}

std::uint64_t ProfileSnapshot::total_scope_entries() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    total += scope_entries[s];
  }
  return total;
}

double ProfileSnapshot::overhead_fraction() const {
  const std::uint64_t total = total_cycles();
  if (total == 0 || scope_cost_cycles <= 0.0) return 0.0;
  const double overhead =
      static_cast<double>(total_scope_entries()) * scope_cost_cycles;
  const double fraction = overhead / static_cast<double>(total);
  return fraction < 0.0 ? 0.0 : fraction > 1.0 ? 1.0 : fraction;
}

std::vector<std::size_t> ProfileSnapshot::subsystems_by_cycles() const {
  std::vector<std::size_t> order(prof::kSubsystems);
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return cycles[a] > cycles[b];
                   });
  return order;
}

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
  if (!other.enabled) return;
  enabled = true;
  for (std::size_t p = 0; p < prof::kPhases; ++p) {
    for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
      counts[p][s] += other.counts[p][s];
    }
  }
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    cycles[s] += other.cycles[s];
    scope_entries[s] += other.scope_entries[s];
  }
  path_overflow_cycles += other.path_overflow_cycles;
  for (const Path& theirs : other.paths) {
    auto it = std::lower_bound(paths.begin(), paths.end(), theirs,
                               [](const Path& a, const Path& b) {
                                 return a.frames < b.frames;
                               });
    if (it != paths.end() && it->frames == theirs.frames) {
      it->cycles += theirs.cycles;
      it->count += theirs.count;
    } else {
      paths.insert(it, theirs);
    }
  }
  if (cycles_per_second == 0.0) cycles_per_second = other.cycles_per_second;
  if (scope_cost_cycles == 0.0) scope_cost_cycles = other.scope_cost_cycles;
}

double Profiler::cycles_per_second() {
  static const double value = measure_cycles_per_second();
  return value;
}

double Profiler::scope_cost_cycles() {
  static const double value = measure_scope_cost_cycles();
  return value;
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  snap.enabled = true;
  for (std::size_t p = 0; p < prof::kPhases; ++p) {
    for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
      snap.counts[p][s] = ledger_.counts[p][s];
    }
  }
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    snap.cycles[s] = ledger_.cycles[s];
    snap.scope_entries[s] = ledger_.scope_entries[s];
  }
  snap.path_overflow_cycles = ledger_.path_overflow_cycles;
  for (const prof::Ledger::PathCell& cell : ledger_.paths) {
    if (cell.key == 0) continue;
    ProfileSnapshot::Path path;
    path.frames = unpack_path(cell.key);
    path.cycles = cell.cycles;
    path.count = cell.count;
    snap.paths.push_back(std::move(path));
  }
  std::sort(snap.paths.begin(), snap.paths.end(),
            [](const ProfileSnapshot::Path& a, const ProfileSnapshot::Path& b) {
              return a.frames < b.frames;
            });
  snap.cycles_per_second = cycles_per_second();
  snap.scope_cost_cycles = scope_cost_cycles();
  return snap;
}

std::string render_profile_table(const ProfileSnapshot& snap) {
  if (!snap.enabled) return "";
  std::ostringstream os;
  const std::uint64_t total_cycles = snap.total_cycles();
  os << "profile: per-subsystem cost attribution\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-18s %12s %12s %12s %14s %9s %7s\n",
                "subsystem", "setup", "ramp_up", "measure", "cycles",
                "cyc/op", "share");
  os << line;
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    std::uint64_t count_total = 0;
    for (std::size_t p = 0; p < prof::kPhases; ++p) {
      count_total += snap.counts[p][s];
    }
    if (count_total == 0 && snap.cycles[s] == 0) continue;
    const auto sub = static_cast<prof::Subsystem>(s);
    const double per_op =
        snap.scope_entries[s] > 0
            ? static_cast<double>(snap.cycles[s]) /
                  static_cast<double>(snap.scope_entries[s])
            : 0.0;
    const double share =
        total_cycles > 0 ? 100.0 * static_cast<double>(snap.cycles[s]) /
                               static_cast<double>(total_cycles)
                         : 0.0;
    std::snprintf(
        line, sizeof line, "  %-18s %12llu %12llu %12llu %14llu %9.1f %6.1f%%\n",
        prof::subsystem_name(sub),
        static_cast<unsigned long long>(
            snap.counts[static_cast<std::size_t>(prof::Phase::kSetup)][s]),
        static_cast<unsigned long long>(
            snap.counts[static_cast<std::size_t>(prof::Phase::kRampUp)][s]),
        static_cast<unsigned long long>(
            snap.counts[static_cast<std::size_t>(prof::Phase::kMeasure)][s]),
        static_cast<unsigned long long>(snap.cycles[s]), per_op, share);
    os << line;
  }
  std::snprintf(line, sizeof line,
                "  total: %llu events, %llu cycles, est. overhead %.1f%%\n",
                static_cast<unsigned long long>(snap.total_counts()),
                static_cast<unsigned long long>(total_cycles),
                100.0 * snap.overhead_fraction());
  os << line;
  return os.str();
}

std::string one_line_profile_summary(const ProfileSnapshot& snap) {
  if (!snap.enabled) return "";
  std::ostringstream os;
  const std::uint64_t total = snap.total_cycles();
  os << "profile: ";
  const std::vector<std::size_t> order = snap.subsystems_by_cycles();
  int shown = 0;
  for (std::size_t s : order) {
    if (shown == 3 || snap.cycles[s] == 0) break;
    if (shown > 0) os << ", ";
    const double share = total > 0 ? 100.0 * static_cast<double>(snap.cycles[s]) /
                                         static_cast<double>(total)
                                   : 0.0;
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %.1f%%",
                  prof::subsystem_name(static_cast<prof::Subsystem>(s)), share);
    os << buf;
    ++shown;
  }
  if (shown == 0) os << "no timed cycles (count axis only)";
  char buf[64];
  std::snprintf(buf, sizeof buf, "; est. overhead %.1f%%",
                100.0 * snap.overhead_fraction());
  os << buf;
  return os.str();
}

void write_collapsed_stacks(std::ostream& os, const ProfileSnapshot& snap) {
  if (!snap.enabled) return;
  for (const ProfileSnapshot::Path& path : snap.paths) {
    if (path.cycles == 0) continue;
    for (std::size_t i = 0; i < path.frames.size(); ++i) {
      if (i > 0) os << ';';
      os << prof::subsystem_name(path.frames[i]);
    }
    os << ' ' << path.cycles << '\n';
  }
}

std::string profile_json(const ProfileSnapshot& snap, int indent) {
  std::string out = "{\n";
  const int inner = indent + 2;
  append_indent(&out, inner);
  out += "\"enabled\": ";
  out += snap.enabled ? "true" : "false";
  out += ",\n";
  append_indent(&out, inner);
  out += "\"cycles_per_second\": " + format_double(snap.cycles_per_second) +
         ",\n";
  append_indent(&out, inner);
  out += "\"scope_cost_cycles\": " + format_double(snap.scope_cost_cycles) +
         ",\n";
  append_indent(&out, inner);
  out += "\"overhead_fraction\": " + format_double(snap.overhead_fraction()) +
         ",\n";
  append_indent(&out, inner);
  out += "\"subsystems\": [\n";
  bool first = true;
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    std::uint64_t count_total = 0;
    for (std::size_t p = 0; p < prof::kPhases; ++p) {
      count_total += snap.counts[p][s];
    }
    if (count_total == 0 && snap.cycles[s] == 0) continue;
    if (!first) out += ",\n";
    first = false;
    append_indent(&out, inner + 2);
    out += "{\"name\": \"";
    out += prof::subsystem_name(static_cast<prof::Subsystem>(s));
    out += "\", \"count\": " + format_u64(count_total);
    out += ", \"cycles\": " + format_u64(snap.cycles[s]);
    out += ", \"scope_entries\": " + format_u64(snap.scope_entries[s]) + "}";
  }
  out += "\n";
  append_indent(&out, inner);
  out += "],\n";
  append_indent(&out, inner);
  out += "\"phases\": {";
  for (std::size_t p = 0; p < prof::kPhases; ++p) {
    if (p > 0) out += ", ";
    out += "\"";
    out += prof::phase_name(static_cast<prof::Phase>(p));
    out += "\": " +
           format_u64(snap.total_counts(static_cast<prof::Phase>(p)));
  }
  out += "}\n";
  append_indent(&out, indent);
  out += "}";
  return out;
}

}  // namespace softres::obs
