#pragma once

#include <string>

#include "obs/registry.h"

namespace softres::hw {
class Cpu;
class Node;
}  // namespace softres::hw
namespace softres::soft {
class Pool;
}
namespace softres::tier {
class ApacheServer;
class Server;
}  // namespace softres::tier

namespace softres::obs {

/// Adapters that register every existing probe family into one Registry —
/// the single place the testbed (and future deployments) wire monitoring.
/// Each keeps the legacy dotted sim::Sampler series name as its alias so all
/// historical series consumers ("tomcat0.threads.util", "apache0.processed",
/// ...) keep working when the registry is attached to the sampler.

/// "cpu_util_pct{node=...}" (alias "<node>.cpu"): SysStat-style percent
/// utilization differenced over the sampling interval.
void register_cpu_util(Registry& registry, const hw::Node& node);

/// "gc_util_pct{node=...}" (alias "<server>.gc"): percent of the interval the
/// CPU spent frozen in stop-the-world collections (the Fig 5 "GC CPU").
void register_gc_util(Registry& registry, const std::string& server,
                      const hw::Cpu& cpu);

/// "pool_util_pct{pool=...}" and "pool_waiting{pool=...}" (aliases
/// "<pool>.util" / "<pool>.waiting"): occupancy percent and queued acquirers.
void register_pool(Registry& registry, const soft::Pool& pool);

/// "server_throughput{server=...}" / "server_mean_rt_seconds{server=...}":
/// per-window operational quantities of any tier server.
void register_server_ops(Registry& registry, const tier::Server& server);

/// The five Fig 7/8 Apache timeline series (processed, busy-time split,
/// parallelism), aliases "<name>.processed", ".pt_total_ms", ".pt_tomcat_ms",
/// ".threads_active", ".threads_connecting".
void register_apache_timeline(Registry& registry, tier::ApacheServer& apache);

}  // namespace softres::obs
