#include "obs/trace.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "metrics/table.h"

namespace softres::obs {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

std::string tier_of(const std::string& server) {
  std::size_t end = server.size();
  while (end > 0 && std::isdigit(static_cast<unsigned char>(server[end - 1]))) {
    --end;
  }
  return server.substr(0, end);
}

std::vector<SpanNode> build_span_tree(
    std::vector<tier::Request::TraceSpan> spans) {
  // Enter-ascending; ties put the outermost (longest) interval first.
  std::sort(spans.begin(), spans.end(),
            [](const tier::Request::TraceSpan& a,
               const tier::Request::TraceSpan& b) {
              if (a.enter != b.enter) return a.enter < b.enter;
              return a.leave > b.leave;
            });
  // Parent of span i = the tightest span whose interval contains it. Traces
  // are a handful of spans, so the quadratic scan beats anything clever.
  const std::size_t n = spans.size();
  std::vector<int> parent(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    double best_span = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const bool contains = spans[j].enter <= spans[i].enter + kEps &&
                            spans[j].leave >= spans[i].leave - kEps &&
                            spans[j].duration() >= spans[i].duration() - kEps;
      if (!contains) continue;
      // Identical intervals: nest the later-sorted one inside the earlier.
      if (spans[j].duration() >= best_span) continue;
      if (spans[j].enter == spans[i].enter &&
          spans[j].leave == spans[i].leave && j > i) {
        continue;
      }
      parent[i] = static_cast<int>(j);
      best_span = spans[j].duration();
    }
  }
  // Assemble bottom-up: children are already enter-ordered by the sort.
  std::vector<SpanNode> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].span = spans[i];
  std::vector<SpanNode> roots;
  // Attach children in reverse so a node is complete before its parent copies
  // it (children always sort after their parent).
  for (std::size_t k = n; k-- > 0;) {
    if (parent[k] >= 0) {
      auto& siblings = nodes[static_cast<std::size_t>(parent[k])].children;
      siblings.insert(siblings.begin(), std::move(nodes[k]));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (parent[i] < 0) roots.push_back(std::move(nodes[i]));
  }
  return roots;
}

bool TraceCollector::add(const tier::Request& req) {
  if (!req.traced() || req.trace->spans.empty() || req.completed_at <= 0.0) {
    return false;
  }
  AssembledTrace t;
  t.request_id = req.id;
  t.interaction = req.interaction;
  t.sent_at = req.sent_at;
  t.completed_at = req.completed_at;
  t.spans = req.trace->spans;
  std::sort(t.spans.begin(), t.spans.end(),
            [](const tier::Request::TraceSpan& a,
               const tier::Request::TraceSpan& b) {
              if (a.enter != b.enter) return a.enter < b.enter;
              return a.leave > b.leave;
            });
  t.roots = build_span_tree(t.spans);
  traces_.push_back(std::move(t));
  return true;
}

std::size_t TraceCollector::collect(
    const std::vector<tier::RequestPtr>& requests) {
  std::size_t added = 0;
  for (const auto& req : requests) {
    if (req != nullptr && add(*req)) ++added;
  }
  return added;
}

namespace {

struct TierAccum {
  double visits = 0.0;
  double queue_s = 0.0;
  double service_s = 0.0;
  double conn_wait_s = 0.0;
  double gc_s = 0.0;
  double fin_wait_s = 0.0;
  double residence_s = 0.0;
};

void accumulate(const SpanNode& node,
                std::vector<std::pair<std::string, TierAccum>>& tiers) {
  const auto& s = node.span;
  double children_s = 0.0;
  for (const auto& child : node.children) {
    children_s += child.span.queue_s + child.span.duration();
    accumulate(child, tiers);
  }
  const std::string tier = tier_of(s.server);
  auto it = std::find_if(tiers.begin(), tiers.end(),
                         [&](const auto& kv) { return kv.first == tier; });
  if (it == tiers.end()) {
    tiers.emplace_back(tier, TierAccum{});
    it = tiers.end() - 1;
  }
  TierAccum& acc = it->second;
  acc.visits += 1.0;
  acc.queue_s += s.queue_s;
  acc.conn_wait_s += s.conn_queue_s;
  acc.gc_s += s.gc_s;
  acc.fin_wait_s += s.fin_wait_s;
  acc.residence_s += s.duration();
  // Exclusive service: residence minus everything separately attributed.
  // Telescopes so that per-request rows + network residual == response time.
  acc.service_s += s.duration() - s.gc_s - s.conn_queue_s - children_s;
}

/// Canonical tier seeding shared by blame() and breakdown(): the paper's four
/// tiers lead in topology order, anything else lands on first appearance.
std::vector<std::pair<std::string, TierAccum>> seeded_tiers() {
  std::vector<std::pair<std::string, TierAccum>> tiers;
  for (const char* t : {"apache", "tomcat", "cjdbc", "mysql"}) {
    tiers.emplace_back(t, TierAccum{});
  }
  return tiers;
}

}  // namespace

BlameVector blame(const AssembledTrace& trace) {
  BlameVector out;
  out.request_id = trace.request_id;
  out.response_time_s = trace.response_time();
  auto tiers = seeded_tiers();
  double root_s = 0.0;
  for (const auto& root : trace.roots) {
    root_s += root.span.queue_s + root.span.duration();
    accumulate(root, tiers);
  }
  for (const auto& [tier, acc] : tiers) {
    if (acc.visits == 0.0) continue;
    out.components.push_back({tier, "queue", acc.queue_s});
    out.components.push_back({tier, "service", acc.service_s});
    out.components.push_back({tier, "conn_wait", acc.conn_wait_s});
    out.components.push_back({tier, "gc", acc.gc_s});
  }
  // The residual telescopes the identity shut: per-tier (queue + service +
  // conn_wait + gc) sums to root_s, and root_s + network == response time.
  out.components.push_back({"", "network", trace.response_time() - root_s});
  return out;
}

double BlameVector::total_s() const {
  double sum = 0.0;
  for (const auto& c : components) sum += c.seconds;
  return sum;
}

const BlameVector::Component* BlameVector::component(
    const std::string& label) const {
  for (const auto& c : components) {
    if (c.label() == label) return &c;
  }
  return nullptr;
}

LatencyBreakdown TraceCollector::breakdown() const {
  LatencyBreakdown out;
  out.requests = traces_.size();
  if (traces_.empty()) return out;

  auto tiers = seeded_tiers();
  double rt_sum = 0.0;
  double network_sum = 0.0;
  for (const auto& trace : traces_) {
    rt_sum += trace.response_time();
    double root_s = 0.0;
    for (const auto& root : trace.roots) {
      root_s += root.span.queue_s + root.span.duration();
      accumulate(root, tiers);
    }
    network_sum += trace.response_time() - root_s;
  }
  const double n = static_cast<double>(traces_.size());
  for (auto& [tier, acc] : tiers) {
    if (acc.visits == 0.0) continue;
    LatencyBreakdown::Row row;
    row.tier = tier;
    row.visits = acc.visits / n;
    row.queue_ms = 1000.0 * acc.queue_s / n;
    row.service_ms = 1000.0 * acc.service_s / n;
    row.conn_wait_ms = 1000.0 * acc.conn_wait_s / n;
    row.gc_ms = 1000.0 * acc.gc_s / n;
    row.fin_wait_ms = 1000.0 * acc.fin_wait_s / n;
    row.residence_ms = 1000.0 * acc.residence_s / n;
    out.rows.push_back(row);
  }
  out.mean_rt_ms = 1000.0 * rt_sum / n;
  out.network_other_ms = 1000.0 * network_sum / n;
  return out;
}

double LatencyBreakdown::accounted_ms() const {
  double sum = network_other_ms;
  for (const auto& r : rows) {
    sum += r.queue_ms + r.service_ms + r.conn_wait_ms + r.gc_ms;
  }
  return sum;
}

const LatencyBreakdown::Row* LatencyBreakdown::find(
    const std::string& tier) const {
  for (const auto& r : rows) {
    if (r.tier == tier) return &r;
  }
  return nullptr;
}

void LatencyBreakdown::print(std::ostream& os) const {
  metrics::Table t({"tier", "visits", "queue_ms", "service_ms", "conn_wait_ms",
                    "gc_ms", "fin_wait_ms", "residence_ms"});
  for (const auto& r : rows) {
    t.add_row({r.tier, metrics::Table::fmt(r.visits, 2),
               metrics::Table::fmt(r.queue_ms, 3),
               metrics::Table::fmt(r.service_ms, 3),
               metrics::Table::fmt(r.conn_wait_ms, 3),
               metrics::Table::fmt(r.gc_ms, 3),
               metrics::Table::fmt(r.fin_wait_ms, 3),
               metrics::Table::fmt(r.residence_ms, 3)});
  }
  t.print(os);
  os << "network/client: " << metrics::Table::fmt(network_other_ms, 3)
     << " ms   accounted: " << metrics::Table::fmt(accounted_ms(), 3)
     << " ms   mean RT: " << metrics::Table::fmt(mean_rt_ms, 3) << " ms   ("
     << requests << " traced requests; FIN wait is post-response and "
     << "excluded from the sum)\n";
}

namespace {

void write_event(std::ostream& os, bool& first, const std::string& name,
                 const std::string& cat, double ts_s, double dur_s, int pid,
                 std::uint64_t tid, const std::string& extra_args) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"X\",\"ts\":" << ts_s * 1e6 << ",\"dur\":" << dur_s * 1e6
     << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{" << extra_args
     << "}}";
}

void write_span(std::ostream& os, bool& first, const SpanNode& node,
                std::uint64_t tid, int interaction,
                std::vector<std::string>& tiers) {
  const auto& s = node.span;
  const std::string tier = tier_of(s.server);
  auto it = std::find(tiers.begin(), tiers.end(), tier);
  if (it == tiers.end()) {
    tiers.push_back(tier);
    it = tiers.end() - 1;
  }
  const int pid = static_cast<int>(it - tiers.begin()) + 1;
  if (s.queue_s > 0.0) {
    write_event(os, first, s.server + " queue", "queue", s.enter - s.queue_s,
                s.queue_s, pid, tid, "");
  }
  write_event(os, first, s.server, "residence", s.enter, s.duration(), pid,
              tid,
              "\"interaction\":" + std::to_string(interaction) +
                  ",\"queue_ms\":" + std::to_string(s.queue_s * 1000.0) +
                  ",\"conn_wait_ms\":" +
                  std::to_string(s.conn_queue_s * 1000.0) +
                  ",\"gc_ms\":" + std::to_string(s.gc_s * 1000.0));
  if (s.fin_wait_s > 0.0) {
    write_event(os, first, s.server + " fin-wait", "fin_wait", s.leave,
                s.fin_wait_s, pid, tid, "");
  }
  for (const auto& child : node.children) {
    write_span(os, first, child, tid, interaction, tiers);
  }
}

}  // namespace

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  const auto old_precision = os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  std::vector<std::string> tiers;
  for (const auto& trace : traces_) {
    for (const auto& root : trace.roots) {
      write_span(os, first, root, trace.request_id, trace.interaction, tiers);
    }
  }
  // Name the per-tier "processes" so Perfetto groups spans by tier.
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << i + 1
       << ",\"args\":{\"name\":\"" << tiers[i] << "\"}}";
  }
  os << "\n]}\n";
  os.precision(old_precision);
}

}  // namespace softres::obs
