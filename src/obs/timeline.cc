#include "obs/timeline.h"

#include <algorithm>
#include <cmath>

#include "sim/sampler.h"
#include "support/prof.h"

namespace softres::obs {

SeriesWindow::SeriesWindow(std::size_t capacity)
    : times_(std::max<std::size_t>(capacity, 2), 0.0),
      values_(std::max<std::size_t>(capacity, 2), 0.0) {}

void SeriesWindow::push(sim::SimTime t, double v) {
  times_[head_] = t;
  values_[head_] = v;
  head_ = (head_ + 1) % times_.size();
  if (count_ < times_.size()) ++count_;
}

std::size_t SeriesWindow::index(std::size_t i) const {
  // Oldest sample sits at head_ - count_ (mod capacity).
  return (head_ + times_.size() - count_ + i) % times_.size();
}

double SeriesWindow::last() const {
  return count_ == 0 ? 0.0 : values_[index(count_ - 1)];
}

sim::SimTime SeriesWindow::last_time() const {
  return count_ == 0 ? 0.0 : times_[index(count_ - 1)];
}

sim::SimTime SeriesWindow::first_time() const {
  return count_ == 0 ? 0.0 : times_[index(0)];
}

sim::SimTime SeriesWindow::time_at(std::size_t i) const {
  return times_[index(i)];
}

double SeriesWindow::value_at(std::size_t i) const { return values_[index(i)]; }

namespace {

/// Apply `fn(t, v)` to every sample in the trailing window [last - w, last].
template <typename Fn>
void for_window(const SeriesWindow& s, double window_s, Fn fn) {
  if (s.empty()) return;
  const sim::SimTime lo = s.last_time() - window_s;
  for (std::size_t i = s.size(); i-- > 0;) {
    const sim::SimTime t = s.time_at(i);
    if (t < lo) break;  // samples are time-ordered; everything older is out
    fn(t, s.value_at(i));
  }
}

}  // namespace

double SeriesWindow::mean_over(double window_s) const {
  double sum = 0.0;
  std::size_t n = 0;
  for_window(*this, window_s, [&](sim::SimTime, double v) {
    sum += v;
    ++n;
  });
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double SeriesWindow::max_over(double window_s) const {
  double best = 0.0;
  bool any = false;
  for_window(*this, window_s, [&](sim::SimTime, double v) {
    best = any ? std::max(best, v) : v;
    any = true;
  });
  return best;
}

double SeriesWindow::min_over(double window_s) const {
  double best = 0.0;
  bool any = false;
  for_window(*this, window_s, [&](sim::SimTime, double v) {
    best = any ? std::min(best, v) : v;
    any = true;
  });
  return best;
}

double SeriesWindow::slope_over(double window_s) const {
  // Standard least squares on (t - t0, v) for numerical stability.
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  std::size_t n = 0;
  const sim::SimTime t0 = last_time() - window_s;
  for_window(*this, window_s, [&](sim::SimTime t, double v) {
    const double x = t - t0;
    st += x;
    sv += v;
    stt += x * x;
    stv += x * v;
    ++n;
  });
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * stt - st * st;
  if (denom == 0.0) return 0.0;
  return (dn * stv - st * sv) / denom;
}

double SeriesWindow::held_for(double threshold, bool at_least) const {
  if (count_ == 0) return 0.0;
  return last_time() - held_since(threshold, at_least);
}

sim::SimTime SeriesWindow::held_since(double threshold, bool at_least) const {
  sim::SimTime since = last_time();
  for (std::size_t i = count_; i-- > 0;) {
    const double v = value_at(i);
    const bool ok = at_least ? v >= threshold : v <= threshold;
    if (!ok) break;
    since = time_at(i);
  }
  return since;
}

double cross_correlation(const SeriesWindow& a, const SeriesWindow& b,
                         double window_s) {
  // Pair samples from the newest backwards; both series are fed by the same
  // tick so equal offsets from the end line up in time.
  const std::size_t pairs = std::min(a.size(), b.size());
  if (pairs < 3 || a.empty()) return 0.0;
  const sim::SimTime lo = a.last_time() - window_s;
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < pairs; ++k) {
    const std::size_t ia = a.size() - 1 - k;
    const std::size_t ib = b.size() - 1 - k;
    if (a.time_at(ia) < lo) break;
    const double x = a.value_at(ia);
    const double y = b.value_at(ib);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    ++n;
  }
  if (n < 3) return 0.0;
  const double dn = static_cast<double>(n);
  const double cov = sxy - sx * sy / dn;
  const double vx = sxx - sx * sx / dn;
  const double vy = syy - sy * sy / dn;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

Timeline::Timeline(const Registry& registry, TimelineConfig cfg)
    : registry_(&registry), cfg_(cfg) {}

std::size_t Timeline::track(const std::string& name, Labels labels) {
  Tracked t{name, labels, render_series(name, labels),
            registry_->reader(name, labels), SeriesWindow(cfg_.capacity)};
  tracked_.push_back(std::move(t));
  return tracked_.size() - 1;
}

std::vector<std::size_t> Timeline::track_family(const std::string& name) {
  std::vector<std::size_t> out;
  for (Labels& labels : registry_->family(name)) {
    out.push_back(track(name, std::move(labels)));
  }
  return out;
}

void Timeline::tick(sim::SimTime now) {
  SOFTRES_PROF_SCOPE(kTimeline);
  for (Tracked& t : tracked_) {
    t.window.push(now, t.reader.read(now));
  }
  ++ticks_;
  last_tick_ = now;
}

void Timeline::attach(sim::Sampler& sampler) {
  sampler.add_probe("obs.timeline", [this](sim::SimTime now) {
    tick(now);
    return static_cast<double>(series_count());
  });
}

const SeriesWindow* Timeline::find(const std::string& name,
                                   const Labels& labels) const {
  for (const Tracked& t : tracked_) {
    if (t.name == name && t.labels == labels) return &t.window;
  }
  return nullptr;
}

}  // namespace softres::obs
