#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sim_time.h"
#include "tier/request.h"

namespace softres::obs {

/// One node of an assembled span tree: a server visit plus the visits nested
/// inside its residence interval (the C-JDBC visits inside a Tomcat span,
/// the MySQL visit inside each C-JDBC span...).
struct SpanNode {
  tier::Request::TraceSpan span;
  std::vector<SpanNode> children;
};

/// A traced request with its spans assembled into a tree. Servers push spans
/// at *leave* time, so the raw list arrives deepest-first and out of order;
/// assembly orders by enter time and nests by interval containment.
struct AssembledTrace {
  std::uint64_t request_id = 0;
  int interaction = 0;
  sim::SimTime sent_at = 0.0;
  sim::SimTime completed_at = 0.0;
  std::vector<tier::Request::TraceSpan> spans;  // enter-ordered flat view
  std::vector<SpanNode> roots;

  double response_time() const { return completed_at - sent_at; }
};

/// Tier key of a server instance name: "tomcat0" -> "tomcat".
std::string tier_of(const std::string& server);

/// Assemble out-of-order spans into root span trees (stable under any
/// recording order; spans sharing an enter time nest outermost-first by
/// descending leave time).
std::vector<SpanNode> build_span_tree(
    std::vector<tier::Request::TraceSpan> spans);

/// Aggregate per-tier latency breakdown over a set of traced requests — the
/// reusable generalization of Fig 9. All values are per-request means in
/// milliseconds. `service_ms` is *exclusive* residence: the tier's own
/// residence minus GC freezes, connection-pool waits and the residence+queue
/// of nested downstream visits, so the rows of one request sum exactly to
/// its end-to-end response time once the network/client residual is added.
/// `fin_wait_ms` (web tier lingering close) happens after the response left
/// and is reported but *not* part of the response-time identity.
struct LatencyBreakdown {
  struct Row {
    std::string tier;
    double visits = 0.0;        // mean visits per request
    double queue_ms = 0.0;      // pool wait before entering
    double service_ms = 0.0;    // exclusive residence
    double conn_wait_ms = 0.0;  // in-residence wait for downstream conns
    double gc_ms = 0.0;         // stop-the-world freezes in residence
    double fin_wait_ms = 0.0;   // post-response lingering close
    double residence_ms = 0.0;  // mean total residence (inclusive)
  };
  std::vector<Row> rows;
  double network_other_ms = 0.0;  // links + client-side, the residual
  double mean_rt_ms = 0.0;        // mean end-to-end response time
  std::size_t requests = 0;

  /// Sum of all per-tier components plus the residual; equals mean_rt_ms up
  /// to floating-point rounding (the acceptance identity).
  double accounted_ms() const;

  const Row* find(const std::string& tier) const;
  void print(std::ostream& os) const;
};

/// Per-request critical-path blame: the request-level refinement of
/// LatencyBreakdown. Each component attributes seconds of the request's
/// response time to a (tier, kind) pair, where kind is one of "queue" |
/// "service" | "conn_wait" | "gc", plus one final tier-less "network"
/// component for the link/client residual. The components are produced by the
/// same telescoping walk as LatencyBreakdown (exclusive service = residence
/// minus GC, conn waits and nested visits), so they sum to response_time()
/// exactly — the accounted_ms() identity at per-request granularity. FIN-wait
/// time is post-response and deliberately absent.
struct BlameVector {
  struct Component {
    std::string tier;      // "tomcat"; empty for the network residual
    std::string kind;      // "queue" | "service" | "conn_wait" | "gc" | "network"
    double seconds = 0.0;

    /// "tomcat.queue" — the shared vocabulary of tail cohorts and reports.
    std::string label() const { return tier.empty() ? kind : tier + "." + kind; }
  };
  std::uint64_t request_id = 0;
  double response_time_s = 0.0;
  std::vector<Component> components;  // canonical tier order, network last

  /// Sum of every component; equals response_time_s up to rounding.
  double total_s() const;
  /// Component by label ("tomcat.queue", "network"); nullptr when absent.
  const Component* component(const std::string& label) const;
};

/// Walk one assembled trace into its blame vector. Tiers follow the canonical
/// {apache, tomcat, cjdbc, mysql} order with unknown tiers appended on first
/// appearance; tiers the request never visited are omitted.
BlameVector blame(const AssembledTrace& trace);

/// Consumes traced requests, assembles span trees, and exports Chrome
/// `trace_event` JSON (loadable in Perfetto / chrome://tracing) plus the
/// aggregate per-tier latency breakdown.
class TraceCollector {
 public:
  /// Add one completed traced request; requests that are untraced, never
  /// completed, or carry no spans are skipped (returns false).
  bool add(const tier::Request& req);

  /// Bulk-add (e.g. workload::ClientFarm::traced_requests()); returns the
  /// number of requests actually collected.
  std::size_t collect(const std::vector<tier::RequestPtr>& requests);

  const std::vector<AssembledTrace>& traces() const { return traces_; }
  std::size_t size() const { return traces_.size(); }

  LatencyBreakdown breakdown() const;

  /// Chrome trace_event JSON: one "X" (complete) event per span, plus
  /// explicit queue and FIN-wait phases; pid = tier, tid = request id,
  /// timestamps in microseconds of simulation time.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<AssembledTrace> traces_;
};

}  // namespace softres::obs
