#pragma once

// Streaming windowed view of registry series: the data structure the online
// pathology diagnoser (obs/diagnoser.h) reads. A Timeline tracks a chosen set
// of registry series into fixed-capacity ring buffers, fed at sampler ticks,
// and answers rolling-window questions — mean, max, min, least-squares slope,
// how long a condition has held, and cross-correlation between two series —
// without ever materializing a full registry snapshot per tick.
//
// Rendering contract (enforced by softres-lint rule SR008): timeline and
// diagnoser code never writes to streams; all human-facing output goes
// through obs/report.h.

#include <cstddef>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "sim/sim_time.h"

namespace softres::sim {
class Sampler;
}

namespace softres::obs {

/// Fixed-capacity ring buffer of (time, value) samples with rolling-window
/// statistics. Windows are trailing: "over the last `window_s` seconds up to
/// the newest sample". All statistics are pure functions of the buffered
/// samples, so they are bit-identical across serial and parallel sweeps.
class SeriesWindow {
 public:
  explicit SeriesWindow(std::size_t capacity);

  void push(sim::SimTime t, double v);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t capacity() const { return times_.size(); }

  /// Newest / oldest retained sample (0 when empty).
  double last() const;
  sim::SimTime last_time() const;
  sim::SimTime first_time() const;

  /// i-th retained sample, oldest first (i < size()).
  sim::SimTime time_at(std::size_t i) const;
  double value_at(std::size_t i) const;

  double mean_over(double window_s) const;
  double max_over(double window_s) const;
  double min_over(double window_s) const;

  /// Least-squares slope (value units per second) over the trailing window;
  /// 0 when fewer than two samples fall inside it.
  double slope_over(double window_s) const;

  /// Seconds the *newest contiguous run* of samples has satisfied
  /// (value >= threshold) — or (value <= threshold) with `at_least=false`.
  /// Returns the span from the first sample of the run to the newest sample;
  /// 0 when the newest sample itself fails the predicate.
  double held_for(double threshold, bool at_least = true) const;

  /// Start time of the run measured by held_for (newest sample's time when
  /// the run is empty).
  sim::SimTime held_since(double threshold, bool at_least = true) const;

 private:
  std::size_t index(std::size_t i) const;  // oldest-first -> ring position

  std::vector<sim::SimTime> times_;
  std::vector<double> values_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // retained samples (<= capacity)
};

/// Pearson correlation of two series over their common trailing window,
/// pairing samples by index from the newest backwards (both series are fed by
/// the same sampler tick, so indices align). Returns 0 when either side is
/// constant or fewer than three pairs fall in the window.
double cross_correlation(const SeriesWindow& a, const SeriesWindow& b,
                         double window_s);

struct TimelineConfig {
  /// Ring entries per tracked series. At the 1 Hz sampler cadence the default
  /// retains ~4 minutes — enough for every detector window while bounding
  /// memory per trial.
  std::size_t capacity = 256;
};

/// The per-trial windowed time-series store. Track individual series (or
/// whole families) after the testbed registered its probes, attach to the
/// sampler, and the timeline polls each tracked series' Reader once per tick.
class Timeline {
 public:
  explicit Timeline(const Registry& registry, TimelineConfig cfg = {});

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Track one registry series; returns its index (stable for the timeline's
  /// lifetime). Unknown series are tracked anyway and read as 0.
  std::size_t track(const std::string& name, Labels labels = {});

  /// Track every series currently registered under family `name`; returns
  /// the new indices in registration order.
  std::vector<std::size_t> track_family(const std::string& name);

  /// Poll every tracked series once. Called by the sampler probe installed by
  /// attach(), or directly by tests.
  void tick(sim::SimTime now);

  /// Register one probe ("obs.timeline") on the sampler whose evaluation
  /// ticks this timeline; its series value is the number of tracked series.
  void attach(sim::Sampler& sampler);

  std::size_t series_count() const { return tracked_.size(); }
  std::size_t ticks() const { return ticks_; }
  sim::SimTime last_tick() const { return last_tick_; }

  const SeriesWindow& window(std::size_t i) const { return tracked_[i].window; }
  const std::string& name(std::size_t i) const { return tracked_[i].name; }
  const Labels& labels(std::size_t i) const { return tracked_[i].labels; }
  /// Rendered "name{k=\"v\"}" identity, as cited in evidence windows.
  const std::string& series(std::size_t i) const { return tracked_[i].series; }

  /// Window of a tracked series, or nullptr when it is not tracked.
  const SeriesWindow* find(const std::string& name,
                           const Labels& labels = {}) const;

 private:
  struct Tracked {
    std::string name;
    Labels labels;
    std::string series;  // rendered name{labels}
    Reader reader;
    SeriesWindow window;
  };

  const Registry* registry_;
  TimelineConfig cfg_;
  std::vector<Tracked> tracked_;
  std::size_t ticks_ = 0;
  sim::SimTime last_tick_ = 0.0;
};

}  // namespace softres::obs
