#include "obs/tail.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "metrics/sla.h"
#include "sim/stats.h"

namespace softres::obs {

namespace {

constexpr const char* kCohortNames[4] = {"p0-50", "p50-95", "p95-99", "p99+"};

/// Does blame component (tier, kind) name the same thing as an implicated
/// resource? Pool waits map onto the pool that gated them ("tomcat.queue"
/// onto "<tomcatN>.threads", "apache.queue" onto "<apacheN>.workers",
/// "tomcat.conn_wait" onto "<tomcatN>.dbconns"); GC freezes and exclusive
/// service map onto the node's CPU ("tomcat.gc" onto "<tomcatN>.cpu").
bool component_matches(const std::string& tier, const std::string& kind,
                       const std::string& resource) {
  const std::size_t dot = resource.rfind('.');
  if (dot == std::string::npos) return false;  // "tenant:<name>" etc.
  if (tier_of(resource.substr(0, dot)) != tier) return false;
  const std::string rkind = resource.substr(dot + 1);
  if (kind == "queue") return rkind == "workers" || rkind == "threads";
  if (kind == "conn_wait") return rkind == "dbconns";
  if (kind == "gc" || kind == "service") return rkind == "cpu";
  return false;
}

}  // namespace

const TailAttribution::Cohort* TailAttribution::find_cohort(
    const std::string& name) const {
  for (const Cohort& c : cohorts) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::size_t TailAttribution::dominant_component(const Cohort& c) const {
  if (c.requests == 0 || c.blame_s.empty()) return npos;
  std::size_t best = 0;
  for (std::size_t i = 1; i < c.blame_s.size(); ++i) {
    if (c.blame_s[i] > c.blame_s[best]) best = i;
  }
  return best;
}

double TailAttribution::delta_vs_base(std::size_t i, const Cohort& c) const {
  const Cohort* base = find_cohort("p0-50");
  if (base == nullptr || i >= base->blame_s.size() || i >= c.blame_s.size()) {
    return 0.0;
  }
  return base->blame_s[i] > 0.0 ? c.blame_s[i] / base->blame_s[i] : 0.0;
}

TailAttribution TailAttributor::attribute(
    const std::vector<AssembledTrace>& traces) const {
  TailAttribution out;
  out.slo_threshold_s = cfg_.slo_threshold_s;
  out.requests = traces.size();
  if (traces.empty()) return out;

  std::vector<BlameVector> blames;
  blames.reserve(traces.size());
  sim::SampleSet rts;
  rts.reserve(traces.size());
  for (const AssembledTrace& t : traces) {
    blames.push_back(blame(t));
    rts.add(t.response_time());
  }
  out.p50_s = rts.quantile(0.50);
  out.p95_s = rts.quantile(0.95);
  out.p99_s = rts.quantile(0.99);

  // Shared axis: the union of (tier, kind) pairs across the blame vectors in
  // first-appearance order (canonical tiers lead because blame() seeds
  // them); the tier-less network residual always closes the axis.
  auto axis_index = [&out](const std::string& tier,
                           const std::string& kind) -> std::size_t {
    for (std::size_t i = 0; i < out.axis.size(); ++i) {
      if (out.axis[i].tier == tier && out.axis[i].kind == kind) return i;
    }
    return TailAttribution::npos;
  };
  for (const BlameVector& bv : blames) {
    for (const BlameVector::Component& c : bv.components) {
      if (!c.tier.empty() &&
          axis_index(c.tier, c.kind) == TailAttribution::npos) {
        out.axis.push_back({c.tier, c.kind});
      }
    }
  }
  out.axis.push_back({"", "network"});

  out.cohorts.resize(4);
  std::vector<std::vector<std::pair<double, std::uint64_t>>> candidates(4);
  std::vector<std::pair<std::string, sim::SampleSet>> rt_cohorts;
  for (std::size_t i = 0; i < 4; ++i) {
    out.cohorts[i].name = kCohortNames[i];
    out.cohorts[i].blame_s.assign(out.axis.size(), 0.0);
    rt_cohorts.emplace_back(kCohortNames[i], sim::SampleSet{});
  }
  auto cohort_of = [&out](double rt) -> std::size_t {
    if (rt <= out.p50_s) return 0;
    if (rt <= out.p95_s) return 1;
    if (rt <= out.p99_s) return 2;
    return 3;
  };
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const double rt = traces[t].response_time();
    const std::size_t ci = cohort_of(rt);
    TailAttribution::Cohort& c = out.cohorts[ci];
    ++c.requests;
    c.mean_rt_s += rt;  // sums here; divided into means below
    for (const BlameVector::Component& comp : blames[t].components) {
      c.blame_s[axis_index(comp.tier, comp.kind)] += comp.seconds;
    }
    candidates[ci].emplace_back(rt, traces[t].request_id);
    rt_cohorts[ci].second.add(rt);
  }
  const std::vector<metrics::CohortMiss> misses =
      metrics::slo_miss_by_cohort(rt_cohorts, cfg_.slo_threshold_s);
  for (std::size_t i = 0; i < 4; ++i) {
    TailAttribution::Cohort& c = out.cohorts[i];
    if (c.requests > 0) {
      const double n = static_cast<double>(c.requests);
      c.mean_rt_s /= n;
      for (double& b : c.blame_s) b /= n;
    }
    c.slo_misses = misses[i].misses;
    c.slo_miss_share = misses[i].miss_share;
    // Exemplars: slowest first, ties by ascending request id — a total
    // order, so the selection is identical however the sweep was scheduled.
    std::sort(candidates[i].begin(), candidates[i].end(),
              [](const std::pair<double, std::uint64_t>& a,
                 const std::pair<double, std::uint64_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const std::size_t k = std::min(cfg_.top_k, candidates[i].size());
    for (std::size_t j = 0; j < k; ++j) {
      c.exemplars.push_back(candidates[i][j].second);
    }
  }
  return out;
}

void corroborate(Diagnosis& d, const TailAttribution& tail) {
  d.tail = TailEvidence{};
  if (tail.empty()) return;
  const TailAttribution::Cohort* cohort = tail.find_cohort("p99+");
  if (cohort == nullptr || cohort->requests == 0) return;
  const std::size_t dom = tail.dominant_component(*cohort);
  if (dom == TailAttribution::npos) return;
  const TailAttribution::Component& comp = tail.axis[dom];
  const TailAttribution::Cohort* base = tail.find_cohort("p0-50");

  TailEvidence& ev = d.tail;
  ev.present = true;
  ev.cohort = cohort->name;
  ev.component = comp.label();
  ev.cohort_mean_ms = 1000.0 * cohort->blame_s[dom];
  ev.base_mean_ms = base != nullptr ? 1000.0 * base->blame_s[dom] : 0.0;
  ev.delta = tail.delta_vs_base(dom, *cohort);
  std::string matched;
  for (const std::string& r : d.implicated_resources) {
    if (component_matches(comp.tier, comp.kind, r)) {
      ev.corroborates = true;
      matched = r;
      break;
    }
  }
  char buf[160];
  if (ev.delta > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "p99+ spends %.1f ms/request in %s vs %.1f ms in p0-50 "
                  "(%.1fx)",
                  ev.cohort_mean_ms, ev.component.c_str(), ev.base_mean_ms,
                  ev.delta);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "p99+ spends %.1f ms/request in %s (no p0-50 baseline)",
                  ev.cohort_mean_ms, ev.component.c_str());
  }
  ev.text = buf;
  if (ev.corroborates) {
    ev.text += "; corroborates " + matched;
  } else if (d.pathology != Pathology::kNone) {
    ev.text += "; does not map onto an implicated resource";
  }
}

}  // namespace softres::obs
