#pragma once

// obs::Profiler — owning facade over the prof::Ledger instrumentation core
// (src/support/prof.h). The ledger is the raw, allocation-free accumulator
// the hot paths write into; this layer installs it for a trial, calibrates
// the cycle counter against a real clock (legal here: obs is the clock-
// exempt domain), snapshots results into an aggregatable value type, and
// renders the three export formats the bench/CI pipeline consumes:
//
//   1. a text summary table            (render_profile_table)
//   2. a collapsed-stack file          (write_collapsed_stacks) for
//      flamegraph.pl / speedscope
//   3. a JSON "profile" block          (profile_json) embedded in
//      BENCH_softres.json for tools/bench_diff regression attribution
//
// Determinism split (DESIGN.md §11): ProfileSnapshot::counts is the
// deterministic axis — safe to compare bit-for-bit across jobs=1/jobs=4.
// cycles/paths/calibration are the timing axis — machine-local, rendered
// but never compared and never fed back into simulation results.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/prof.h"

namespace softres::obs {

/// Value-type copy of one or more ledgers, mergeable across trials so a
/// sweep (or a whole bench run) can report a single attribution.
struct ProfileSnapshot {
  bool enabled = false;  // false => profiling was off; renderers emit nothing

  // Count axis (deterministic).
  std::uint64_t counts[prof::kPhases][prof::kSubsystems] = {};

  // Timing axis (machine-local).
  std::uint64_t cycles[prof::kSubsystems] = {};
  std::uint64_t scope_entries[prof::kSubsystems] = {};
  struct Path {
    std::vector<prof::Subsystem> frames;  // root first
    std::uint64_t cycles = 0;             // exclusive to the leaf frame
    std::uint64_t count = 0;
  };
  std::vector<Path> paths;  // sorted by frame sequence (deterministic order)
  std::uint64_t path_overflow_cycles = 0;

  // Calibration (per-process, measured once in profiler.cc).
  double cycles_per_second = 0.0;
  double scope_cost_cycles = 0.0;  // measured cost of one empty timed scope

  std::uint64_t total_counts() const;
  std::uint64_t total_counts(prof::Phase phase) const;
  std::uint64_t total_cycles() const;
  std::uint64_t total_scope_entries() const;
  /// Estimated fraction of measured cycles spent in the profiler itself:
  /// scope_entries * scope_cost / total_cycles, clamped to [0, 1].
  double overhead_fraction() const;
  /// Subsystem indices sorted by descending exclusive cycles (ties broken
  /// by enum order so the output is stable on cycle-free platforms).
  std::vector<std::size_t> subsystems_by_cycles() const;

  /// Accumulate another snapshot (per-trial ledgers -> sweep totals).
  /// Calibration fields are taken from whichever side has them.
  void merge(const ProfileSnapshot& other);
};

/// Per-trial profiler: construct one, `install()` on the thread that runs
/// the trial, and `snapshot()` afterwards. The guard restores the previous
/// ledger, so profiled and unprofiled trials interleave freely on sweep
/// worker threads.
class Profiler {
 public:
  Profiler() = default;

  prof::InstallGuard install() { return prof::InstallGuard(&ledger_); }
  prof::Ledger& ledger() { return ledger_; }
  ProfileSnapshot snapshot() const;

  /// Calibrated TSC frequency (cycles per second); 0 when the platform has
  /// no cycle counter. Measured once per process against steady_clock.
  static double cycles_per_second();
  /// Measured cost in cycles of one empty installed ScopeTimer.
  static double scope_cost_cycles();

 private:
  prof::Ledger ledger_;
};

/// Human-readable per-subsystem table: counts per phase, exclusive cycles,
/// cycles/op, share of total. Empty string when !snap.enabled.
std::string render_profile_table(const ProfileSnapshot& snap);

/// One line for quickstart / report footers: top-3 subsystems by cycles and
/// the estimated profiling overhead percentage.
std::string one_line_profile_summary(const ProfileSnapshot& snap);

/// Collapsed-stack format: `frame;frame;frame <exclusive-cycles>` per line,
/// sorted, suitable for flamegraph.pl or speedscope.
void write_collapsed_stacks(std::ostream& os, const ProfileSnapshot& snap);

/// JSON object (no trailing newline) for the "profile" key of
/// BENCH_softres.json; tools/bench_diff parses this for its attribution
/// table. `indent` is the number of leading spaces applied to every line.
std::string profile_json(const ProfileSnapshot& snap, int indent = 2);

}  // namespace softres::obs
