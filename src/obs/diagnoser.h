#pragma once

// Online soft-resource pathology diagnoser: one streaming detector per paper
// pathology, each watching correlated obs::Timeline windows and emitting
// evidence windows that cite the exact series, time range and threshold that
// fired. This is the automation of the paper's diagnosis step — the part that
// hardware-only monitoring cannot do (Sections III-A/B/C):
//
//   kSoftUnderAlloc  Fig 4: a thread/connection pool pegged at capacity with
//                    waiters while every CPU idles below the paper's "no
//                    hardware bottleneck" band.
//   kGcOverAlloc     Fig 5: a JVM node whose GC share of CPU stays high while
//                    the node's CPU saturates — goodput collapses although
//                    the allocation was "generous".
//   kFinWaitBuffer   Fig 7: the web tier's worker pool saturated while the
//                    workers actually interacting with the app tier fall far
//                    below the active count (the rest linger in FIN wait),
//                    with the back-end hardware unsaturated.
//   kHardware/kMulti the classic cases, for completeness of the verdict.
//
// Rendering contract (softres-lint SR008): no stream writes here — a
// Diagnosis is data; obs/report.h renders it.

#include <cstddef>
#include <string>
#include <vector>

#include "core/bottleneck.h"
#include "obs/timeline.h"
#include "sim/sim_time.h"

namespace softres::obs {

enum class Pathology {
  kNone,            // healthy: nothing fired over the analysis window
  kSoftUnderAlloc,  // Section III-A starvation (Fig 4)
  kGcOverAlloc,     // Section III-B GC-driven collapse (Fig 5)
  kFinWaitBuffer,   // Section III-C FIN-wait buffer effect (Figs 6-8)
  kNoisyNeighbor,   // one tenant dominating a shared pool starves another
  kHardware,        // a hardware resource saturated
  kMulti,           // more than one pathology fired
};

const char* pathology_name(Pathology p);

/// One contiguous stretch of samples during which a detector's condition
/// held: the citable evidence ("pool_util_pct{pool=tomcat0.threads} >= 99%
/// for 8 s while max cpu_util_pct = 38% < 85%").
struct EvidenceWindow {
  std::string series;     // primary series, rendered name{labels}
  sim::SimTime from = 0.0;
  sim::SimTime to = 0.0;
  std::string condition;  // human-readable rule instance that fired
  double observed = 0.0;  // mean of the primary series over [from, to]
  double threshold = 0.0; // the bound it was compared against

  double duration() const { return to - from; }
};

/// Machine-consumable remediation hint (exp::AdaptiveTuner's hint channel).
struct SuggestedAction {
  enum class Kind { kNone, kGrowPool, kShrinkPool, kAddHardware };
  Kind kind = Kind::kNone;
  std::string resource;  // pool name for grow/shrink, node name otherwise
  std::string text;      // human-readable phrasing
};

/// Request-level corroboration of a series-level verdict: the p99+ cohort's
/// dominant blame component and its ratio against the p0-50 baseline, filled
/// by obs::corroborate (obs/tail.h) from a TailAttribution. present == false
/// when the trial ran untraced; corroborates == true when the component maps
/// onto a resource the verdict implicates ("tomcat.queue" onto
/// "tomcat0.threads"), tying the diagnosis to per-request evidence.
struct TailEvidence {
  bool present = false;
  std::string cohort;           // "p99+"
  std::string component;        // "tomcat.queue"
  double cohort_mean_ms = 0.0;  // mean blame of the component in the cohort
  double base_mean_ms = 0.0;    // same component in the p0-50 cohort
  double delta = 0.0;           // cohort_mean / base_mean (0 when base is 0)
  bool corroborates = false;
  std::string text;             // one-line citation, report-ready
};

/// The structured verdict of one trial.
struct Diagnosis {
  Pathology pathology = Pathology::kNone;
  double confidence = 0.0;  // 0..1, scaled by sustained evidence duration
  std::vector<EvidenceWindow> evidence;
  std::vector<std::string> implicated_resources;
  SuggestedAction suggested_action;
  TailEvidence tail;

  /// Translate into the vocabulary core::detect_bottleneck understands, so
  /// the classifier can delegate to timeline-backed evidence when available.
  core::DiagnosisHint to_hint() const;

  /// One-line rendering ("kSoftUnderAlloc (conf 0.92): tomcat0.threads ...").
  std::string summary() const;
};

struct DiagnoserConfig {
  /// A pool counts as pegged at or above this occupancy percent.
  double pool_saturated_pct = 99.0;
  /// "No hardware bottleneck": every CPU's rolling mean below the saturation
  /// band while a pool is pegged (Fig 4: the starved allocation leaves every
  /// CPU under this line while tomcat0.threads sits at 100%).
  double idle_cpu_pct = 95.0;
  /// Hardware saturation band, matching exp::kCpuSaturationPct.
  double cpu_saturated_pct = 95.0;
  /// GC share of the interval that marks over-allocation collapse.
  double gc_high_pct = 8.0;
  /// The node whose GC is high must itself be at least this busy (the GC is
  /// *consuming* the CPU, not hiding behind an idle node).
  double gc_busy_cpu_pct = 80.0;
  /// FIN-wait: workers interacting with the app tier, as a fraction of
  /// active workers, below which the buffer effect is on (Fig 7d-f).
  double connecting_fraction = 0.6;
  /// Noisy neighbour: a tenant counts as dominating a shared pool when its
  /// occupancy share exceeds this multiple of the even split (100%/N).
  double noisy_dominance_factor = 1.35;
  /// ...and some *other* tenant, holding less than the even split, must be
  /// accruing at least this much badput (req/s) for the domination to count
  /// as a pathology rather than harmless work conservation.
  double noisy_victim_badput = 0.5;
  /// A condition must hold contiguously at least this long to fire.
  double hold_s = 5.0;
  /// A detector's qualified evidence must *total* at least this long to
  /// contribute to the verdict. Post-ramp bursts can clear hold_s once; a
  /// pathology worth reporting keeps re-firing.
  double min_verdict_s = 15.0;
  /// Evidence totalling this many seconds saturates confidence at 1.
  double full_confidence_s = 15.0;
  /// Rolling window every rule input is averaged over before it is compared
  /// against its threshold (instantaneous samples — GC bursts especially —
  /// are too jittery to hold a condition for hold_s).
  double stat_window_s = 10.0;
};

/// Streaming rule engine over one trial's Timeline. Construct after the
/// testbed has tracked its series (the constructor discovers pools, CPUs, GC
/// and web-tier series from the timeline's contents by naming convention:
/// pools "<server>.workers|threads|dbconns", nodes by label). Call observe()
/// once per sampler tick, then diagnosis() for the verdict.
class Diagnoser {
 public:
  explicit Diagnoser(const Timeline& timeline, DiagnoserConfig cfg = {});

  Diagnoser(const Diagnoser&) = delete;
  Diagnoser& operator=(const Diagnoser&) = delete;

  /// Restrict the verdict to evidence overlapping [lo, hi] (the measurement
  /// window) so ramp-up transients cannot fire a pathology.
  void set_analysis_window(sim::SimTime lo, sim::SimTime hi);

  /// Evaluate every detector against the newest samples. Deterministic:
  /// detectors run in construction order and read only timeline state.
  void observe(sim::SimTime now);

  /// The verdict over everything observed so far. Cheap enough to call every
  /// control interval (the AdaptiveTuner hint channel does).
  Diagnosis diagnosis() const;

  /// Pathology the running evidence currently points at (diagnosis() minus
  /// the evidence list), exported as the "obs.diagnosis" sampler series.
  Pathology current() const { return diagnosis().pathology; }

  /// Detectors whose condition held at the latest observe() — the cheap
  /// per-tick health number the "obs.diagnosis" sampler series records.
  std::size_t active_detectors() const;

  /// Ring-buffered pool_capacity series of `pool`, when the timeline tracks
  /// one. Lets consumers (reports, controllers' observability) separate
  /// "load grew" from "capacity shrank" around an evidence window.
  const SeriesWindow* capacity_window(const std::string& pool) const;

  const DiagnoserConfig& config() const { return cfg_; }

 private:
  struct Detector {
    Pathology pathology = Pathology::kNone;
    std::string series;        // primary evidence series (rendered)
    std::size_t primary = 0;   // timeline index of the primary series
    std::string resource;      // implicated resource
    std::vector<std::string> also_implicated;
    SuggestedAction action;
    double threshold = 0.0;
    // Streaming state.
    bool open = false;
    sim::SimTime open_since = 0.0;
    std::string open_condition;
    double open_sum = 0.0;   // running mean of the primary series while open
    std::size_t open_n = 0;
    std::vector<EvidenceWindow> windows;
  };

  // Series groups discovered from the timeline at construction.
  struct PoolRef {
    std::string pool;    // "tomcat0.threads"
    std::string server;  // "tomcat0"
    std::string kind;    // "workers" | "threads" | "dbconns"
    std::size_t util = npos;
    std::size_t waiting = npos;
    std::size_t capacity = npos;  // pool_capacity gauge (live resizes)
  };
  struct CpuRef {
    std::string node;
    std::size_t util = npos;
  };
  struct GcRef {
    std::string node;
    std::size_t gc = npos;
    std::size_t cpu = npos;         // cpu_util_pct of the same node
    std::size_t throughput = npos;  // server_throughput of the same server
  };
  struct WebRef {
    std::string server;
    std::size_t workers_util = npos;
    std::size_t active = npos;
    std::size_t connecting = npos;
  };
  /// One pool_tenant_share_pct series of a partitioned pool.
  struct TenantShareRef {
    std::string pool;
    std::string tenant;
    std::size_t share = npos;
  };
  /// One tenant's farm-side SLA series (tenant_badput, labelled by tenant).
  struct TenantSlaRef {
    std::string tenant;
    std::size_t badput = npos;
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void discover();
  void step(Detector& d, bool cond, double primary_value,
            const std::string& condition, sim::SimTime now);
  /// Rolling mean of series i over stat_window_s (the rule-input smoother).
  double smoothed(std::size_t i) const;
  double max_cpu() const;
  double max_backend_cpu() const;

  const Timeline* timeline_;
  DiagnoserConfig cfg_;
  sim::SimTime analysis_lo_ = 0.0;
  sim::SimTime analysis_hi_ = 1e300;
  sim::SimTime last_observe_ = 0.0;
  sim::SimTime prev_observe_ = 0.0;

  std::vector<PoolRef> pools_;
  std::vector<CpuRef> cpus_;
  std::vector<GcRef> gcs_;
  std::vector<WebRef> webs_;
  std::vector<TenantShareRef> tenant_shares_;
  std::vector<TenantSlaRef> tenant_slas_;

  std::vector<Detector> under_alloc_;  // one per non-web pool
  std::vector<Detector> gc_over_;      // one per JVM node
  std::vector<Detector> fin_wait_;     // one per web server
  std::vector<Detector> noisy_;        // one per (partitioned pool, tenant)
  std::vector<Detector> hardware_;     // one per node
};

}  // namespace softres::obs
