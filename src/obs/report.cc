#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace softres::obs {
namespace {

std::string escape_html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros (and a bare trailing dot) for compact labels.
  while (!s.empty() && s.find('.') != std::string::npos &&
         (s.back() == '0' || s.back() == '.')) {
    const bool dot = s.back() == '.';
    s.pop_back();
    if (dot) break;
  }
  return s.empty() ? "0" : s;
}

struct SvgScale {
  double t0 = 0.0, t1 = 1.0;   // time extent
  double v0 = 0.0, v1 = 1.0;   // value extent
  double w = 640.0, h = 90.0;  // pixel box
  double pad = 4.0;

  double x(double t) const {
    return pad + (t - t0) / std::max(t1 - t0, 1e-9) * (w - 2 * pad);
  }
  double y(double v) const {
    return h - pad - (v - v0) / std::max(v1 - v0, 1e-9) * (h - 2 * pad);
  }
};

void write_series_svg(std::ostream& os, const SeriesWindow& win,
                      const std::string& series,
                      const std::vector<const EvidenceWindow*>& evidence,
                      const std::vector<const ReportMeta::ResizeMark*>& marks,
                      sim::SimTime t0, sim::SimTime t1) {
  SvgScale sc;
  sc.t0 = t0;
  sc.t1 = t1;
  double lo = 0.0, hi = 1.0;
  for (std::size_t i = 0; i < win.size(); ++i) {
    lo = std::min(lo, win.value_at(i));
    hi = std::max(hi, win.value_at(i));
  }
  sc.v0 = lo;
  sc.v1 = hi <= lo ? lo + 1.0 : hi;

  os << "<svg viewBox=\"0 0 " << sc.w << " " << sc.h
     << "\" class=\"series\" role=\"img\" aria-label=\""
     << escape_html(series) << "\">\n";
  os << "  <rect x=\"0\" y=\"0\" width=\"" << sc.w << "\" height=\"" << sc.h
     << "\" class=\"bg\"/>\n";
  // Evidence windows first, shaded under the line.
  for (const EvidenceWindow* ev : evidence) {
    const double xa = sc.x(std::max(ev->from, t0));
    const double xb = sc.x(std::min(ev->to, t1));
    if (xb <= xa) continue;
    os << "  <rect x=\"" << fmt(xa) << "\" y=\"0\" width=\"" << fmt(xb - xa)
       << "\" height=\"" << sc.h << "\" class=\"evidence\"><title>"
       << escape_html(ev->condition) << "</title></rect>\n";
  }
  // Resize lanes: one vertical mark per applied capacity change on this
  // pool's series, so "capacity shrank" is visibly distinct from "load grew".
  for (const ReportMeta::ResizeMark* m : marks) {
    if (m->at < t0 || m->at > t1) continue;
    const double xm = sc.x(m->at);
    os << "  <line x1=\"" << fmt(xm) << "\" y1=\"0\" x2=\"" << fmt(xm)
       << "\" y2=\"" << sc.h << "\" class=\"resize\"><title>"
       << escape_html(m->pool) << " " << m->from << " -> " << m->to << " @ "
       << fmt(m->at, 0) << " s</title></line>\n";
  }
  if (win.size() >= 2) {
    os << "  <polyline class=\"line\" points=\"";
    for (std::size_t i = 0; i < win.size(); ++i) {
      if (i > 0) os << " ";
      os << fmt(sc.x(win.time_at(i))) << "," << fmt(sc.y(win.value_at(i)));
    }
    os << "\"/>\n";
  }
  os << "  <text x=\"" << sc.pad + 2 << "\" y=\"12\" class=\"label\">"
     << escape_html(series) << "</text>\n";
  os << "  <text x=\"" << sc.w - sc.pad - 2
     << "\" y=\"12\" text-anchor=\"end\" class=\"label\">last "
     << fmt(win.last()) << " | max " << fmt(sc.v1) << "</text>\n";
  os << "</svg>\n";
}

const char* kCss = R"css(
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
         max-width: 60em; color: #222; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  table { border-collapse: collapse; margin: 0.6em 0; }
  th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
  th { background: #f2f2f2; }
  .verdict { padding: 0.5em 0.8em; border-radius: 4px; display: inline-block;
             font-weight: 600; }
  .verdict.bad { background: #fde8e8; color: #8a1f1f; }
  .verdict.ok { background: #e6f4ea; color: #1c5e31; }
  svg.series { display: block; width: 100%; height: 90px; margin: 0.4em 0;
               border: 1px solid #ddd; }
  svg .bg { fill: #fcfcfc; }
  svg .evidence { fill: #e05252; fill-opacity: 0.22; }
  svg .resize { stroke: #c07b1a; stroke-width: 1; stroke-dasharray: 3 2; }
  svg .line { fill: none; stroke: #2a6fb0; stroke-width: 1.5; }
  svg .label { font: 11px monospace; fill: #444; }
  code { background: #f5f5f5; padding: 0 0.25em; }
)css";

}  // namespace

void write_flight_recorder_html(std::ostream& os, const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown,
                                const ProfileSnapshot* profile) {
  const bool healthy = diagnosis.pathology == Pathology::kNone;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>" << escape_html(meta.title) << " — flight recorder</title>\n"
     << "<style>" << kCss << "</style>\n</head>\n<body>\n";
  os << "<h1>" << escape_html(meta.title) << "</h1>\n";

  // Header: trial identity.
  os << "<table>\n";
  auto row = [&os](const std::string& k, const std::string& v) {
    os << "<tr><th>" << escape_html(k) << "</th><td>" << escape_html(v)
       << "</td></tr>\n";
  };
  if (!meta.topology.empty()) row("topology", meta.topology);
  if (!meta.allocation.empty()) row("allocation", meta.allocation);
  if (!meta.workload.empty()) row("workload", meta.workload);
  row("measure window",
      "[" + fmt(meta.measure_start, 0) + " s, " + fmt(meta.measure_end, 0) +
          " s]");
  for (const auto& kv : meta.extra) row(kv.first, kv.second);
  os << "</table>\n";

  // Diagnosis.
  os << "<h2>Diagnosis</h2>\n";
  os << "<p><span class=\"verdict " << (healthy ? "ok" : "bad") << "\">"
     << pathology_name(diagnosis.pathology) << "</span> &nbsp;confidence "
     << fmt(diagnosis.confidence) << "</p>\n";
  if (!diagnosis.implicated_resources.empty()) {
    os << "<p>implicated:";
    for (const std::string& r : diagnosis.implicated_resources) {
      os << " <code>" << escape_html(r) << "</code>";
    }
    os << "</p>\n";
  }
  if (!diagnosis.suggested_action.text.empty()) {
    os << "<p>suggested: " << escape_html(diagnosis.suggested_action.text)
       << "</p>\n";
  }
  if (!diagnosis.evidence.empty()) {
    os << "<table>\n<tr><th>series</th><th>from (s)</th><th>to (s)</th>"
       << "<th>observed</th><th>threshold</th><th>condition</th></tr>\n";
    for (const EvidenceWindow& ev : diagnosis.evidence) {
      os << "<tr><td><code>" << escape_html(ev.series) << "</code></td><td>"
         << fmt(ev.from, 0) << "</td><td>" << fmt(ev.to, 0) << "</td><td>"
         << fmt(ev.observed) << "</td><td>" << fmt(ev.threshold)
         << "</td><td>" << escape_html(ev.condition) << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // Timelines: common extent so windows line up vertically across series.
  os << "<h2>Timelines</h2>\n";
  sim::SimTime t0 = 0.0, t1 = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    const SeriesWindow& w = timeline.window(i);
    if (w.empty()) continue;
    t0 = any ? std::min(t0, w.first_time()) : w.first_time();
    t1 = any ? std::max(t1, w.last_time()) : w.last_time();
    any = true;
  }
  if (t1 <= t0) t1 = t0 + 1.0;
  auto render = [&](std::size_t i) {
    std::vector<const EvidenceWindow*> shaded;
    for (const EvidenceWindow& ev : diagnosis.evidence) {
      if (ev.series == timeline.series(i)) shaded.push_back(&ev);
    }
    std::vector<const ReportMeta::ResizeMark*> marks;
    for (const ReportMeta::ResizeMark& m : meta.resizes) {
      for (const auto& kv : timeline.labels(i)) {
        if (kv.first == "pool" && kv.second == m.pool) {
          marks.push_back(&m);
          break;
        }
      }
    }
    write_series_svg(os, timeline.window(i), timeline.series(i), shaded, marks,
                     t0, t1);
  };
  auto tenant_of = [&timeline](std::size_t i) -> std::string {
    for (const auto& kv : timeline.labels(i)) {
      if (kv.first == "tenant") return kv.second;
    }
    return "";
  };
  // Shared (tenant-less) series first; tenant-labelled ones are grouped into
  // one lane per tenant below so each tenant's goodput/badput/share read as
  // a unit against the shared pool picture above them.
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    if (tenant_of(i).empty()) render(i);
  }
  std::vector<std::string> tenant_order;
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    const std::string t = tenant_of(i);
    if (t.empty()) continue;
    if (std::find(tenant_order.begin(), tenant_order.end(), t) ==
        tenant_order.end()) {
      tenant_order.push_back(t);
    }
  }
  for (const std::string& tname : tenant_order) {
    os << "<h2>Tenant " << escape_html(tname) << "</h2>\n";
    for (std::size_t i = 0; i < timeline.series_count(); ++i) {
      if (tenant_of(i) == tname) render(i);
    }
  }

  // Governor / tuner resize log (present when the trial resized pools live).
  if (!meta.resizes.empty()) {
    os << "<h2>Pool resizes</h2>\n";
    os << "<table>\n<tr><th>time (s)</th><th>pool</th><th>from</th>"
       << "<th>to</th></tr>\n";
    for (const ReportMeta::ResizeMark& m : meta.resizes) {
      os << "<tr><td>" << fmt(m.at, 0) << "</td><td><code>"
         << escape_html(m.pool) << "</code></td><td>" << m.from << "</td><td>"
         << m.to << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // Latency breakdown (present when the trial traced requests).
  if (breakdown != nullptr && !breakdown->rows.empty()) {
    os << "<h2>Latency breakdown</h2>\n";
    os << "<table>\n<tr><th>tier</th><th>visits</th><th>queue (ms)</th>"
       << "<th>service (ms)</th><th>conn wait (ms)</th><th>gc (ms)</th>"
       << "<th>fin wait (ms)</th><th>residence (ms)</th></tr>\n";
    for (const LatencyBreakdown::Row& r : breakdown->rows) {
      os << "<tr><td>" << escape_html(r.tier) << "</td><td>"
         << fmt(r.visits) << "</td><td>" << fmt(r.queue_ms) << "</td><td>"
         << fmt(r.service_ms) << "</td><td>" << fmt(r.conn_wait_ms)
         << "</td><td>" << fmt(r.gc_ms) << "</td><td>" << fmt(r.fin_wait_ms)
         << "</td><td>" << fmt(r.residence_ms) << "</td></tr>\n";
    }
    os << "<tr><th>network / other</th><td colspan=\"7\">"
       << fmt(breakdown->network_other_ms) << " ms</td></tr>\n";
    os << "<tr><th>mean response time</th><td colspan=\"7\">"
       << fmt(breakdown->mean_rt_ms) << " ms over " << breakdown->requests
       << " traced request(s)</td></tr>\n";
    os << "</table>\n";
  }

  // Self-profiler footer (present when the trial ran with SOFTRES_PROFILE).
  if (profile != nullptr && profile->enabled) {
    os << "<p class=\"footer\">"
       << escape_html(one_line_profile_summary(*profile)) << "</p>\n";
  }

  os << "</body>\n</html>\n";
}

bool write_flight_recorder_html(const std::string& path,
                                const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown,
                                const ProfileSnapshot* profile) {
  std::ofstream file(path);
  if (!file) return false;
  write_flight_recorder_html(file, meta, timeline, diagnosis, breakdown,
                             profile);
  return file.good();
}

}  // namespace softres::obs
