#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace softres::obs {
namespace {

std::string escape_html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros (and a bare trailing dot) for compact labels.
  while (!s.empty() && s.find('.') != std::string::npos &&
         (s.back() == '0' || s.back() == '.')) {
    const bool dot = s.back() == '.';
    s.pop_back();
    if (dot) break;
  }
  return s.empty() ? "0" : s;
}

struct SvgScale {
  double t0 = 0.0, t1 = 1.0;   // time extent
  double v0 = 0.0, v1 = 1.0;   // value extent
  double w = 640.0, h = 90.0;  // pixel box
  double pad = 4.0;

  double x(double t) const {
    return pad + (t - t0) / std::max(t1 - t0, 1e-9) * (w - 2 * pad);
  }
  double y(double v) const {
    return h - pad - (v - v0) / std::max(v1 - v0, 1e-9) * (h - 2 * pad);
  }
};

void write_series_svg(std::ostream& os, const SeriesWindow& win,
                      const std::string& series,
                      const std::vector<const EvidenceWindow*>& evidence,
                      const std::vector<const ReportMeta::ResizeMark*>& marks,
                      sim::SimTime t0, sim::SimTime t1) {
  SvgScale sc;
  sc.t0 = t0;
  sc.t1 = t1;
  double lo = 0.0, hi = 1.0;
  for (std::size_t i = 0; i < win.size(); ++i) {
    lo = std::min(lo, win.value_at(i));
    hi = std::max(hi, win.value_at(i));
  }
  sc.v0 = lo;
  sc.v1 = hi <= lo ? lo + 1.0 : hi;

  os << "<svg viewBox=\"0 0 " << sc.w << " " << sc.h
     << "\" class=\"series\" role=\"img\" aria-label=\""
     << escape_html(series) << "\">\n";
  os << "  <rect x=\"0\" y=\"0\" width=\"" << sc.w << "\" height=\"" << sc.h
     << "\" class=\"bg\"/>\n";
  // Evidence windows first, shaded under the line.
  for (const EvidenceWindow* ev : evidence) {
    const double xa = sc.x(std::max(ev->from, t0));
    const double xb = sc.x(std::min(ev->to, t1));
    if (xb <= xa) continue;
    os << "  <rect x=\"" << fmt(xa) << "\" y=\"0\" width=\"" << fmt(xb - xa)
       << "\" height=\"" << sc.h << "\" class=\"evidence\"><title>"
       << escape_html(ev->condition) << "</title></rect>\n";
  }
  // Resize lanes: one vertical mark per applied capacity change on this
  // pool's series, so "capacity shrank" is visibly distinct from "load grew".
  for (const ReportMeta::ResizeMark* m : marks) {
    if (m->at < t0 || m->at > t1) continue;
    const double xm = sc.x(m->at);
    os << "  <line x1=\"" << fmt(xm) << "\" y1=\"0\" x2=\"" << fmt(xm)
       << "\" y2=\"" << sc.h << "\" class=\"resize\"><title>"
       << escape_html(m->pool) << " " << m->from << " -> " << m->to << " @ "
       << fmt(m->at, 0) << " s</title></line>\n";
  }
  if (win.size() >= 2) {
    os << "  <polyline class=\"line\" points=\"";
    for (std::size_t i = 0; i < win.size(); ++i) {
      if (i > 0) os << " ";
      os << fmt(sc.x(win.time_at(i))) << "," << fmt(sc.y(win.value_at(i)));
    }
    os << "\"/>\n";
  }
  os << "  <text x=\"" << sc.pad + 2 << "\" y=\"12\" class=\"label\">"
     << escape_html(series) << "</text>\n";
  os << "  <text x=\"" << sc.w - sc.pad - 2
     << "\" y=\"12\" text-anchor=\"end\" class=\"label\">last "
     << fmt(win.last()) << " | max " << fmt(sc.v1) << "</text>\n";
  os << "</svg>\n";
}

/// One exemplar request as a waterfall: a top row spanning the whole request
/// (sent -> completed) and one row per server visit, with the pool-queue wait
/// rendered as a separate segment ahead of the residence. Flat spans are
/// already enter-ordered, so nesting reads top-to-bottom like a call stack.
void write_waterfall_svg(std::ostream& os, const AssembledTrace& t,
                         const std::string& cohort) {
  const double rowh = 16.0;
  const double pad = 4.0;
  SvgScale sc;
  sc.t0 = t.sent_at;
  sc.t1 = std::max(t.completed_at, t.sent_at + 1e-9);
  sc.w = 640.0;
  sc.h = 2 * pad + rowh * static_cast<double>(t.spans.size() + 1);
  sc.pad = pad;
  os << "<svg viewBox=\"0 0 " << sc.w << " " << fmt(sc.h)
     << "\" class=\"waterfall\" role=\"img\" aria-label=\"request "
     << t.request_id << " waterfall\">\n";
  os << "  <rect x=\"0\" y=\"0\" width=\"" << sc.w << "\" height=\""
     << fmt(sc.h) << "\" class=\"bg\"/>\n";
  const double x0 = sc.x(t.sent_at);
  const double x1 = sc.x(t.completed_at);
  os << "  <rect x=\"" << fmt(x0) << "\" y=\"" << fmt(pad + 5)
     << "\" width=\"" << fmt(std::max(x1 - x0, 1.0)) << "\" height=\"4\""
     << " class=\"wnet\"><title>end-to-end "
     << fmt(1000.0 * t.response_time(), 1) << " ms</title></rect>\n";
  os << "  <text x=\"" << fmt(x0) << "\" y=\"" << fmt(pad + 2)
     << "\" class=\"label\" dominant-baseline=\"hanging\">" << cohort
     << " exemplar: request " << t.request_id << " — "
     << fmt(1000.0 * t.response_time(), 1) << " ms</text>\n";
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const tier::Request::TraceSpan& s = t.spans[i];
    const double ytop = pad + rowh * static_cast<double>(i + 1) + 2.0;
    const double hh = rowh - 4.0;
    if (s.queue_s > 0.0) {
      const double qa = sc.x(s.enter - s.queue_s);
      const double qb = sc.x(s.enter);
      os << "  <rect x=\"" << fmt(qa) << "\" y=\"" << fmt(ytop)
         << "\" width=\"" << fmt(std::max(qb - qa, 0.5)) << "\" height=\""
         << fmt(hh) << "\" class=\"wqueue\"><title>" << escape_html(s.server)
         << " queue " << fmt(1000.0 * s.queue_s, 1)
         << " ms</title></rect>\n";
    }
    const double ra = sc.x(s.enter);
    const double rb = sc.x(s.leave);
    os << "  <rect x=\"" << fmt(ra) << "\" y=\"" << fmt(ytop)
       << "\" width=\"" << fmt(std::max(rb - ra, 0.5)) << "\" height=\""
       << fmt(hh) << "\" class=\"wres\"><title>" << escape_html(s.server)
       << " residence " << fmt(1000.0 * s.duration(), 1) << " ms (conn wait "
       << fmt(1000.0 * s.conn_queue_s, 1) << ", gc " << fmt(1000.0 * s.gc_s, 1)
       << ")</title></rect>\n";
    os << "  <text x=\"" << fmt(std::min(ra, sc.w - 60.0) + 2) << "\" y=\""
       << fmt(ytop + hh - 3) << "\" class=\"wlabel\">"
       << escape_html(s.server) << "</text>\n";
  }
  os << "</svg>\n";
}

/// The "Why is the tail slow" section: cohort boundaries, the per-component
/// blame table with the p99+/p0-50 delta column, per-cohort SLO-miss
/// attribution, the diagnosis corroboration line, and the p99+ exemplar
/// waterfalls (when the caller supplied the trace collector).
void write_tail_section(std::ostream& os, const Diagnosis& diagnosis,
                        const TailAttribution& tail,
                        const TraceCollector* traces) {
  os << "<h2>Why is the tail slow</h2>\n";
  os << "<p>cohort boundaries over " << tail.requests
     << " traced request(s): p50 " << fmt(1000.0 * tail.p50_s, 1)
     << " ms, p95 " << fmt(1000.0 * tail.p95_s, 1) << " ms, p99 "
     << fmt(1000.0 * tail.p99_s, 1) << " ms (SLO "
     << fmt(tail.slo_threshold_s, 1) << " s)</p>\n";
  if (diagnosis.tail.present) {
    os << "<p><span class=\"verdict "
       << (diagnosis.tail.corroborates ? "bad" : "ok") << "\">"
       << escape_html(diagnosis.tail.text) << "</span></p>\n";
  }
  const TailAttribution::Cohort* p99 = tail.find_cohort("p99+");
  os << "<table>\n<tr><th>component</th>";
  for (const TailAttribution::Cohort& c : tail.cohorts) {
    os << "<th>" << escape_html(c.name) << " (ms)</th>";
  }
  os << "<th>p99+ / p0-50</th></tr>\n";
  for (std::size_t i = 0; i < tail.axis.size(); ++i) {
    os << "<tr><td><code>" << escape_html(tail.axis[i].label())
       << "</code></td>";
    for (const TailAttribution::Cohort& c : tail.cohorts) {
      os << "<td>"
         << (c.requests > 0 ? fmt(1000.0 * c.blame_s[i], 1) : std::string("—"))
         << "</td>";
    }
    const double delta =
        p99 != nullptr && p99->requests > 0 ? tail.delta_vs_base(i, *p99) : 0.0;
    os << "<td>" << (delta > 0.0 ? fmt(delta, 1) + "×" : std::string("—"))
       << "</td></tr>\n";
  }
  auto stat_row = [&os, &tail](const std::string& name, auto value) {
    os << "<tr><th>" << escape_html(name) << "</th>";
    for (const TailAttribution::Cohort& c : tail.cohorts) {
      os << "<td>" << value(c) << "</td>";
    }
    os << "<td>—</td></tr>\n";
  };
  stat_row("requests", [](const TailAttribution::Cohort& c) {
    return std::to_string(c.requests);
  });
  stat_row("mean rt (ms)", [](const TailAttribution::Cohort& c) {
    return fmt(1000.0 * c.mean_rt_s, 1);
  });
  stat_row("SLO misses", [](const TailAttribution::Cohort& c) {
    return std::to_string(c.slo_misses);
  });
  stat_row("miss share", [](const TailAttribution::Cohort& c) {
    return fmt(100.0 * c.slo_miss_share, 1) + "%";
  });
  os << "</table>\n";

  if (traces != nullptr && p99 != nullptr && !p99->exemplars.empty()) {
    for (std::uint64_t id : p99->exemplars) {
      for (const AssembledTrace& t : traces->traces()) {
        if (t.request_id == id) {
          write_waterfall_svg(os, t, p99->name);
          break;
        }
      }
    }
  }
}

const char* kCss = R"css(
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
         max-width: 60em; color: #222; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  table { border-collapse: collapse; margin: 0.6em 0; }
  th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
  th { background: #f2f2f2; }
  .verdict { padding: 0.5em 0.8em; border-radius: 4px; display: inline-block;
             font-weight: 600; }
  .verdict.bad { background: #fde8e8; color: #8a1f1f; }
  .verdict.ok { background: #e6f4ea; color: #1c5e31; }
  svg.series { display: block; width: 100%; height: 90px; margin: 0.4em 0;
               border: 1px solid #ddd; }
  svg .bg { fill: #fcfcfc; }
  svg .evidence { fill: #e05252; fill-opacity: 0.22; }
  svg .resize { stroke: #c07b1a; stroke-width: 1; stroke-dasharray: 3 2; }
  svg .line { fill: none; stroke: #2a6fb0; stroke-width: 1.5; }
  svg .label { font: 11px monospace; fill: #444; }
  svg.waterfall { display: block; width: 100%; height: auto; margin: 0.4em 0;
                  border: 1px solid #ddd; }
  svg .wnet { fill: #888; }
  svg .wqueue { fill: #e0a030; }
  svg .wres { fill: #2a6fb0; fill-opacity: 0.8; }
  svg .wlabel { font: 10px monospace; fill: #fff; }
  code { background: #f5f5f5; padding: 0 0.25em; }
)css";

}  // namespace

void write_flight_recorder_html(std::ostream& os, const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown,
                                const ProfileSnapshot* profile,
                                const TailAttribution* tail,
                                const TraceCollector* traces) {
  const bool healthy = diagnosis.pathology == Pathology::kNone;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>" << escape_html(meta.title) << " — flight recorder</title>\n"
     << "<style>" << kCss << "</style>\n</head>\n<body>\n";
  os << "<h1>" << escape_html(meta.title) << "</h1>\n";

  // Header: trial identity.
  os << "<table>\n";
  auto row = [&os](const std::string& k, const std::string& v) {
    os << "<tr><th>" << escape_html(k) << "</th><td>" << escape_html(v)
       << "</td></tr>\n";
  };
  if (!meta.topology.empty()) row("topology", meta.topology);
  if (!meta.allocation.empty()) row("allocation", meta.allocation);
  if (!meta.workload.empty()) row("workload", meta.workload);
  row("measure window",
      "[" + fmt(meta.measure_start, 0) + " s, " + fmt(meta.measure_end, 0) +
          " s]");
  for (const auto& kv : meta.extra) row(kv.first, kv.second);
  os << "</table>\n";

  // Diagnosis.
  os << "<h2>Diagnosis</h2>\n";
  os << "<p><span class=\"verdict " << (healthy ? "ok" : "bad") << "\">"
     << pathology_name(diagnosis.pathology) << "</span> &nbsp;confidence "
     << fmt(diagnosis.confidence) << "</p>\n";
  if (!diagnosis.implicated_resources.empty()) {
    os << "<p>implicated:";
    for (const std::string& r : diagnosis.implicated_resources) {
      os << " <code>" << escape_html(r) << "</code>";
    }
    os << "</p>\n";
  }
  if (!diagnosis.suggested_action.text.empty()) {
    os << "<p>suggested: " << escape_html(diagnosis.suggested_action.text)
       << "</p>\n";
  }
  if (!diagnosis.evidence.empty()) {
    os << "<table>\n<tr><th>series</th><th>from (s)</th><th>to (s)</th>"
       << "<th>observed</th><th>threshold</th><th>condition</th></tr>\n";
    for (const EvidenceWindow& ev : diagnosis.evidence) {
      os << "<tr><td><code>" << escape_html(ev.series) << "</code></td><td>"
         << fmt(ev.from, 0) << "</td><td>" << fmt(ev.to, 0) << "</td><td>"
         << fmt(ev.observed) << "</td><td>" << fmt(ev.threshold)
         << "</td><td>" << escape_html(ev.condition) << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // Timelines: common extent so windows line up vertically across series.
  os << "<h2>Timelines</h2>\n";
  sim::SimTime t0 = 0.0, t1 = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    const SeriesWindow& w = timeline.window(i);
    if (w.empty()) continue;
    t0 = any ? std::min(t0, w.first_time()) : w.first_time();
    t1 = any ? std::max(t1, w.last_time()) : w.last_time();
    any = true;
  }
  if (t1 <= t0) t1 = t0 + 1.0;
  auto render = [&](std::size_t i) {
    std::vector<const EvidenceWindow*> shaded;
    for (const EvidenceWindow& ev : diagnosis.evidence) {
      if (ev.series == timeline.series(i)) shaded.push_back(&ev);
    }
    std::vector<const ReportMeta::ResizeMark*> marks;
    for (const ReportMeta::ResizeMark& m : meta.resizes) {
      for (const auto& kv : timeline.labels(i)) {
        if (kv.first == "pool" && kv.second == m.pool) {
          marks.push_back(&m);
          break;
        }
      }
    }
    write_series_svg(os, timeline.window(i), timeline.series(i), shaded, marks,
                     t0, t1);
  };
  auto tenant_of = [&timeline](std::size_t i) -> std::string {
    for (const auto& kv : timeline.labels(i)) {
      if (kv.first == "tenant") return kv.second;
    }
    return "";
  };
  // Shared (tenant-less) series first; tenant-labelled ones are grouped into
  // one lane per tenant below so each tenant's goodput/badput/share read as
  // a unit against the shared pool picture above them.
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    if (tenant_of(i).empty()) render(i);
  }
  std::vector<std::string> tenant_order;
  for (std::size_t i = 0; i < timeline.series_count(); ++i) {
    const std::string t = tenant_of(i);
    if (t.empty()) continue;
    if (std::find(tenant_order.begin(), tenant_order.end(), t) ==
        tenant_order.end()) {
      tenant_order.push_back(t);
    }
  }
  for (const std::string& tname : tenant_order) {
    os << "<h2>Tenant " << escape_html(tname) << "</h2>\n";
    for (std::size_t i = 0; i < timeline.series_count(); ++i) {
      if (tenant_of(i) == tname) render(i);
    }
  }

  // Governor / tuner resize log (present when the trial resized pools live).
  if (!meta.resizes.empty()) {
    os << "<h2>Pool resizes</h2>\n";
    os << "<table>\n<tr><th>time (s)</th><th>pool</th><th>from</th>"
       << "<th>to</th></tr>\n";
    for (const ReportMeta::ResizeMark& m : meta.resizes) {
      os << "<tr><td>" << fmt(m.at, 0) << "</td><td><code>"
         << escape_html(m.pool) << "</code></td><td>" << m.from << "</td><td>"
         << m.to << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // Latency breakdown (present when the trial traced requests).
  if (breakdown != nullptr && !breakdown->rows.empty()) {
    os << "<h2>Latency breakdown</h2>\n";
    os << "<table>\n<tr><th>tier</th><th>visits</th><th>queue (ms)</th>"
       << "<th>service (ms)</th><th>conn wait (ms)</th><th>gc (ms)</th>"
       << "<th>fin wait (ms)</th><th>residence (ms)</th></tr>\n";
    for (const LatencyBreakdown::Row& r : breakdown->rows) {
      os << "<tr><td>" << escape_html(r.tier) << "</td><td>"
         << fmt(r.visits) << "</td><td>" << fmt(r.queue_ms) << "</td><td>"
         << fmt(r.service_ms) << "</td><td>" << fmt(r.conn_wait_ms)
         << "</td><td>" << fmt(r.gc_ms) << "</td><td>" << fmt(r.fin_wait_ms)
         << "</td><td>" << fmt(r.residence_ms) << "</td></tr>\n";
    }
    os << "<tr><th>network / other</th><td colspan=\"7\">"
       << fmt(breakdown->network_other_ms) << " ms</td></tr>\n";
    os << "<tr><th>mean response time</th><td colspan=\"7\">"
       << fmt(breakdown->mean_rt_ms) << " ms over " << breakdown->requests
       << " traced request(s)</td></tr>\n";
    os << "</table>\n";
  }

  // Tail attribution (present when the trial traced requests): the cohort
  // blame table and the p99+ exemplar waterfalls.
  if (tail != nullptr && !tail->empty()) {
    write_tail_section(os, diagnosis, *tail, traces);
  }

  // Self-profiler footer (present when the trial ran with SOFTRES_PROFILE).
  if (profile != nullptr && profile->enabled) {
    os << "<p class=\"footer\">"
       << escape_html(one_line_profile_summary(*profile)) << "</p>\n";
  }

  os << "</body>\n</html>\n";
}

bool write_flight_recorder_html(const std::string& path,
                                const ReportMeta& meta,
                                const Timeline& timeline,
                                const Diagnosis& diagnosis,
                                const LatencyBreakdown* breakdown,
                                const ProfileSnapshot* profile,
                                const TailAttribution* tail,
                                const TraceCollector* traces) {
  std::ofstream file(path);
  if (!file) return false;
  write_flight_recorder_html(file, meta, timeline, diagnosis, breakdown,
                             profile, tail, traces);
  return file.good();
}

}  // namespace softres::obs
