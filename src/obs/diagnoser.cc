#include "obs/diagnoser.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"  // tier_of

namespace softres::obs {

const char* pathology_name(Pathology p) {
  switch (p) {
    case Pathology::kNone: return "kNone";
    case Pathology::kSoftUnderAlloc: return "kSoftUnderAlloc";
    case Pathology::kGcOverAlloc: return "kGcOverAlloc";
    case Pathology::kFinWaitBuffer: return "kFinWaitBuffer";
    case Pathology::kNoisyNeighbor: return "kNoisyNeighbor";
    case Pathology::kHardware: return "kHardware";
    case Pathology::kMulti: return "kMulti";
  }
  return "kNone";
}

namespace {

/// snprintf into a std::string (SR008 keeps streams out of detector code).
template <typename... Args>
std::string fmt(const char* format, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, args...);
  return std::string(buf);
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

core::DiagnosisHint Diagnosis::to_hint() const {
  core::DiagnosisHint hint;
  hint.valid = true;
  hint.confidence = confidence;
  for (const std::string& r : implicated_resources) {
    // Tenant attributions ("tenant:<name>") name a workload principal, not a
    // resizable resource — core's vocabulary has no slot for them.
    if (r.rfind("tenant:", 0) == 0) continue;
    // Hardware resources follow core's "<node>.cpu" convention; everything
    // else is a soft pool name.
    const bool is_cpu = r.size() > 4 && r.compare(r.size() - 4, 4, ".cpu") == 0;
    (is_cpu ? hint.hardware : hint.soft).push_back(r);
  }
  switch (pathology) {
    case Pathology::kNone:
      hint.kind = core::BottleneckKind::kNone;
      break;
    case Pathology::kSoftUnderAlloc:
    case Pathology::kFinWaitBuffer:
    case Pathology::kGcOverAlloc:
    case Pathology::kNoisyNeighbor:
      // All three soft-resource pathologies classify as the paper's hidden
      // soft bottleneck; the GC case additionally names the CPU the collector
      // burns as the critical hardware symptom.
      hint.kind = core::BottleneckKind::kSoft;
      if (!hint.hardware.empty()) hint.critical = hint.hardware.front();
      break;
    case Pathology::kHardware:
      hint.kind = core::BottleneckKind::kHardware;
      if (!hint.hardware.empty()) hint.critical = hint.hardware.front();
      break;
    case Pathology::kMulti:
      hint.kind = core::BottleneckKind::kMulti;
      if (!hint.hardware.empty()) hint.critical = hint.hardware.front();
      break;
  }
  return hint;
}

std::string Diagnosis::summary() const {
  std::string out = fmt("%s (confidence %.2f)", pathology_name(pathology),
                        confidence);
  if (!implicated_resources.empty()) {
    out += ":";
    for (const std::string& r : implicated_resources) out += " " + r;
  }
  if (!evidence.empty()) {
    out += fmt(" — %zu evidence window(s), e.g. [%.0f s, %.0f s] ",
               evidence.size(), evidence.front().from, evidence.front().to);
    out += evidence.front().condition;
  }
  if (!suggested_action.text.empty()) {
    out += " — suggested: " + suggested_action.text;
  }
  return out;
}

Diagnoser::Diagnoser(const Timeline& timeline, DiagnoserConfig cfg)
    : timeline_(&timeline), cfg_(cfg) {
  discover();
}

void Diagnoser::set_analysis_window(sim::SimTime lo, sim::SimTime hi) {
  analysis_lo_ = lo;
  analysis_hi_ = hi;
}

const SeriesWindow* Diagnoser::capacity_window(const std::string& pool) const {
  for (const PoolRef& p : pools_) {
    if (p.pool == pool && p.capacity != npos) {
      return &timeline_->window(p.capacity);
    }
  }
  return nullptr;
}

void Diagnoser::discover() {
  const Timeline& tl = *timeline_;
  auto label = [](const Labels& ls, const char* key) -> std::string {
    for (const auto& kv : ls) {
      if (kv.first == key) return kv.second;
    }
    return "";
  };
  // Pass 1: group the tracked series by semantic family.
  for (std::size_t i = 0; i < tl.series_count(); ++i) {
    const std::string& name = tl.name(i);
    if (name == "cpu_util_pct") {
      cpus_.push_back(CpuRef{label(tl.labels(i), "node"), i});
    } else if (name == "gc_util_pct") {
      gcs_.push_back(GcRef{label(tl.labels(i), "node"), i, npos, npos});
    } else if (name == "pool_util_pct" || name == "pool_waiting" ||
               name == "pool_capacity") {
      const std::string pool = label(tl.labels(i), "pool");
      const std::size_t dot = pool.rfind('.');
      PoolRef* ref = nullptr;
      for (PoolRef& p : pools_) {
        if (p.pool == pool) ref = &p;
      }
      if (ref == nullptr) {
        pools_.push_back(PoolRef{});
        ref = &pools_.back();
        ref->pool = pool;
        ref->server = dot == std::string::npos ? pool : pool.substr(0, dot);
        ref->kind = dot == std::string::npos ? "" : pool.substr(dot + 1);
      }
      if (name == "pool_util_pct") {
        ref->util = i;
      } else if (name == "pool_waiting") {
        ref->waiting = i;
      } else {
        ref->capacity = i;
      }
    } else if (name == "pool_tenant_share_pct") {
      tenant_shares_.push_back(TenantShareRef{
          label(tl.labels(i), "pool"), label(tl.labels(i), "tenant"), i});
    } else if (name == "tenant_badput") {
      tenant_slas_.push_back(TenantSlaRef{label(tl.labels(i), "tenant"), i});
    } else if (name == "apache_threads_active" ||
               name == "apache_threads_connecting") {
      const std::string server = label(tl.labels(i), "server");
      WebRef* ref = nullptr;
      for (WebRef& w : webs_) {
        if (w.server == server) ref = &w;
      }
      if (ref == nullptr) {
        webs_.push_back(WebRef{});
        ref = &webs_.back();
        ref->server = server;
      }
      (name == "apache_threads_active" ? ref->active : ref->connecting) = i;
    }
  }
  // Pass 2: cross-link (GC node -> its CPU/throughput, web server -> its
  // worker pool) and instantiate one detector per rule instance.
  for (GcRef& g : gcs_) {
    for (const CpuRef& c : cpus_) {
      if (c.node == g.node) g.cpu = c.util;
    }
    const SeriesWindow* tp =
        tl.find("server_throughput", {{"server", g.node}});
    if (tp != nullptr) {
      for (std::size_t i = 0; i < tl.series_count(); ++i) {
        if (&tl.window(i) == tp) g.throughput = i;
      }
    }
  }
  for (WebRef& w : webs_) {
    for (const PoolRef& p : pools_) {
      if (p.server == w.server && p.kind == "workers") w.workers_util = p.util;
    }
  }

  for (const PoolRef& p : pools_) {
    if (p.util == npos || p.kind == "workers") continue;  // web -> FIN rule
    Detector d;
    d.pathology = Pathology::kSoftUnderAlloc;
    d.primary = p.util;
    d.series = tl.series(p.util);
    d.resource = p.pool;
    d.threshold = cfg_.pool_saturated_pct;
    d.action = {SuggestedAction::Kind::kGrowPool, p.pool,
                "grow " + p.pool + " (under-allocated: hardware idles below "
                "the saturated pool)"};
    under_alloc_.push_back(std::move(d));
  }
  for (const GcRef& g : gcs_) {
    if (g.gc == npos || g.cpu == npos) continue;
    Detector d;
    d.pathology = Pathology::kGcOverAlloc;
    d.primary = g.gc;
    d.series = tl.series(g.gc);
    d.resource = g.node + ".cpu";
    d.threshold = cfg_.gc_high_pct;
    // The pools whose over-allocation feeds this JVM's live set: the node's
    // own pools for an app server, every DB connection pool for the
    // clustering middleware (one Tomcat connection = one C-JDBC thread).
    const bool middleware = tier_of(g.node) == "cjdbc";
    std::string first_pool;
    for (const PoolRef& p : pools_) {
      const bool feeds = middleware ? p.kind == "dbconns" : p.server == g.node;
      if (!feeds) continue;
      if (first_pool.empty()) first_pool = p.pool;
      d.also_implicated.push_back(p.pool);
    }
    d.action = {SuggestedAction::Kind::kShrinkPool,
                first_pool.empty() ? g.node + ".cpu" : first_pool,
                "shrink " + (first_pool.empty() ? "the pools feeding "
                : first_pool + " (and peers feeding ") + g.node +
                    (first_pool.empty() ? "" : ")") +
                    ": GC of idle-unit heap is eating the CPU"};
    gc_over_.push_back(std::move(d));
  }
  for (const WebRef& w : webs_) {
    if (w.workers_util == npos || w.active == npos || w.connecting == npos) {
      continue;
    }
    Detector d;
    d.pathology = Pathology::kFinWaitBuffer;
    d.primary = w.connecting;
    d.series = tl.series(w.connecting);
    d.resource = w.server + ".workers";
    d.threshold = cfg_.connecting_fraction;
    d.action = {SuggestedAction::Kind::kGrowPool, w.server + ".workers",
                "grow " + w.server + ".workers: FIN-wait lingering eats the "
                "worker pool, so size it as a buffer well above the "
                "downstream slots"};
    fin_wait_.push_back(std::move(d));
  }
  // One noisy-neighbour detector per (partitioned pool, candidate offender):
  // fires when the tenant dominates a saturated pool while another tenant,
  // held under the even split, accrues badput. Only built when the testbed
  // registered tenant share series, i.e. for multi-tenant trials.
  for (const TenantShareRef& ts : tenant_shares_) {
    const PoolRef* pr = nullptr;
    for (const PoolRef& p : pools_) {
      if (p.pool == ts.pool) pr = &p;
    }
    if (pr == nullptr || pr->util == npos) continue;
    std::size_t n = 0;
    for (const TenantShareRef& other : tenant_shares_) {
      if (other.pool == ts.pool) ++n;
    }
    if (n < 2) continue;  // domination needs someone to dominate
    Detector d;
    d.pathology = Pathology::kNoisyNeighbor;
    d.primary = ts.share;
    d.series = tl.series(ts.share);
    d.resource = "tenant:" + ts.tenant;
    d.also_implicated.push_back(ts.pool);
    d.threshold =
        cfg_.noisy_dominance_factor * 100.0 / static_cast<double>(n);
    d.action = {SuggestedAction::Kind::kNone, "tenant:" + ts.tenant,
                "tenant " + ts.tenant + " is crowding " + ts.pool +
                    ": throttle it or switch the pool to credit-based "
                    "(kKarmaCredits) sharing"};
    noisy_.push_back(std::move(d));
  }
  for (const CpuRef& c : cpus_) {
    Detector d;
    d.pathology = Pathology::kHardware;
    d.primary = c.util;
    d.series = tl.series(c.util);
    d.resource = c.node + ".cpu";
    d.threshold = cfg_.cpu_saturated_pct;
    d.action = {SuggestedAction::Kind::kAddHardware, c.node,
                "scale out the " + tier_of(c.node) + " tier: " + c.node +
                    " is hardware-saturated"};
    hardware_.push_back(std::move(d));
  }
}

std::size_t Diagnoser::active_detectors() const {
  std::size_t n = 0;
  for (const auto* group :
       {&under_alloc_, &gc_over_, &fin_wait_, &noisy_, &hardware_}) {
    for (const Detector& d : *group) {
      if (d.open) ++n;
    }
  }
  return n;
}

double Diagnoser::smoothed(std::size_t i) const {
  return timeline_->window(i).mean_over(cfg_.stat_window_s);
}

double Diagnoser::max_cpu() const {
  double best = 0.0;
  for (const CpuRef& c : cpus_) best = std::max(best, smoothed(c.util));
  return best;
}

double Diagnoser::max_backend_cpu() const {
  double best = 0.0;
  for (const CpuRef& c : cpus_) {
    bool is_web = false;
    for (const WebRef& w : webs_) {
      if (w.server == c.node) is_web = true;
    }
    if (is_web) continue;
    best = std::max(best, smoothed(c.util));
  }
  return best;
}

void Diagnoser::step(Detector& d, bool cond, double primary_value,
                     const std::string& condition, sim::SimTime now) {
  if (cond) {
    if (!d.open) {
      d.open = true;
      d.open_since = now;
      d.open_sum = 0.0;
      d.open_n = 0;
    }
    d.open_sum += primary_value;
    ++d.open_n;
    d.open_condition = condition;  // cite the most recent observed values
    return;
  }
  if (!d.open) return;
  // Condition broke: close the run at the previous tick.
  EvidenceWindow w;
  w.series = d.series;
  w.from = d.open_since;
  w.to = prev_observe_;
  w.condition = d.open_condition;
  w.observed = d.open_n == 0 ? 0.0
                             : d.open_sum / static_cast<double>(d.open_n);
  w.threshold = d.threshold;
  d.open = false;
  if (w.duration() >= cfg_.hold_s) d.windows.push_back(std::move(w));
}

void Diagnoser::observe(sim::SimTime now) {
  prev_observe_ = last_observe_;
  last_observe_ = now;
  const double cpu_peak = max_cpu();
  const double backend_cpu = max_backend_cpu();

  // Rule III-A: a non-web pool pegged with a queue while all hardware stays
  // below the saturation band.
  for (std::size_t i = 0; i < under_alloc_.size(); ++i) {
    Detector& d = under_alloc_[i];
    const PoolRef* p = nullptr;
    for (const PoolRef& ref : pools_) {
      if (ref.pool == d.resource) p = &ref;
    }
    const double util = smoothed(d.primary);
    const double waiting =
        p != nullptr && p->waiting != npos ? smoothed(p->waiting) : 0.0;
    const bool cond = util >= cfg_.pool_saturated_pct && waiting > 0.5 &&
                      cpu_peak < cfg_.idle_cpu_pct;
    step(d, cond, util,
         cond ? fmt("%s=%.0f%% >= %.0f%% with %.0f waiter(s) while max "
                    "cpu_util_pct=%.0f%% < %.0f%%",
                    d.series.c_str(), util, cfg_.pool_saturated_pct, waiting,
                    cpu_peak, cfg_.idle_cpu_pct)
              : std::string(),
         now);
  }

  // Rule III-B: sustained high GC share on a busy JVM node.
  for (std::size_t i = 0; i < gc_over_.size(); ++i) {
    Detector& d = gc_over_[i];
    // d.resource is "<node>.cpu"; detectors skip refs with missing series,
    // so look the ref up by node rather than pairing by index.
    const std::string node = d.resource.substr(0, d.resource.rfind('.'));
    const GcRef* gp = nullptr;
    for (const GcRef& ref : gcs_) {
      if (ref.node == node) gp = &ref;
    }
    const GcRef& g = *gp;
    const double gc = smoothed(d.primary);
    const double cpu = smoothed(g.cpu);
    const bool cond = gc >= cfg_.gc_high_pct && cpu >= cfg_.gc_busy_cpu_pct;
    step(d, cond, gc,
         cond ? fmt("%s=%.1f%% >= %.1f%% while cpu_util_pct{node=%s}=%.0f%% "
                    ">= %.0f%%",
                    d.series.c_str(), gc, cfg_.gc_high_pct, g.node.c_str(),
                    cpu, cfg_.gc_busy_cpu_pct)
              : std::string(),
         now);
  }

  // Rule III-C: web workers saturated but mostly *not* talking to the app
  // tier (FIN-wait lingering), back-end hardware unsaturated.
  for (std::size_t i = 0; i < fin_wait_.size(); ++i) {
    Detector& d = fin_wait_[i];
    const std::string server = d.resource.substr(0, d.resource.rfind('.'));
    const WebRef* wp = nullptr;
    for (const WebRef& ref : webs_) {
      if (ref.server == server) wp = &ref;
    }
    const WebRef& w = *wp;
    const double util = smoothed(w.workers_util);
    const double active = smoothed(w.active);
    const double connecting = smoothed(w.connecting);
    const bool cond = util >= cfg_.pool_saturated_pct && active > 0.5 &&
                      connecting <= cfg_.connecting_fraction * active &&
                      backend_cpu < cfg_.cpu_saturated_pct;
    step(d, cond, connecting,
         cond ? fmt("pool_util_pct{pool=%s.workers}=%.0f%% >= %.0f%% while "
                    "threads_connecting=%.0f <= %.2f*threads_active=%.0f and "
                    "max backend cpu_util_pct=%.0f%% < %.0f%%",
                    w.server.c_str(), util, cfg_.pool_saturated_pct,
                    connecting, cfg_.connecting_fraction, active, backend_cpu,
                    cfg_.cpu_saturated_pct)
              : std::string(),
         now);
  }

  // Multi-tenant rule: an offender tenant dominating a saturated shared pool
  // while some under-share tenant accrues badput. Plain over-use of an idle
  // pool is work conservation, not a pathology — the victim clause is what
  // separates the two.
  for (Detector& d : noisy_) {
    const std::string offender = d.resource.substr(7);  // strip "tenant:"
    const std::string& pool = d.also_implicated.front();
    const PoolRef* pr = nullptr;
    for (const PoolRef& ref : pools_) {
      if (ref.pool == pool) pr = &ref;
    }
    const double util = smoothed(pr->util);
    const double share = smoothed(d.primary);
    std::size_t n = 0;
    for (const TenantShareRef& ts : tenant_shares_) {
      if (ts.pool == pool) ++n;
    }
    const double fair = 100.0 / static_cast<double>(n);
    // The victim: any other tenant squeezed below the even split on this
    // pool while its farm-side badput stays above the floor.
    const TenantShareRef* victim = nullptr;
    double victim_badput = 0.0;
    for (const TenantShareRef& ts : tenant_shares_) {
      if (ts.pool != pool || ts.tenant == offender) continue;
      if (smoothed(ts.share) >= fair) continue;
      for (const TenantSlaRef& sla : tenant_slas_) {
        if (sla.tenant != ts.tenant) continue;
        const double badput = smoothed(sla.badput);
        if (badput >= cfg_.noisy_victim_badput && victim == nullptr) {
          victim = &ts;
          victim_badput = badput;
        }
      }
    }
    const bool cond = util >= cfg_.pool_saturated_pct &&
                      share >= cfg_.noisy_dominance_factor * fair &&
                      victim != nullptr;
    step(d, cond, share,
         cond ? fmt("%s=%.0f%% >= %.2f*fair(%.0f%%) on saturated %s "
                    "(util=%.0f%%) while tenant_badput{tenant=%s}=%.1f/s >= "
                    "%.1f/s",
                    d.series.c_str(), share, cfg_.noisy_dominance_factor,
                    fair, pool.c_str(), util, victim->tenant.c_str(),
                    victim_badput, cfg_.noisy_victim_badput)
              : std::string(),
         now);
  }

  // The classic case: a CPU pegged above the saturation band.
  for (std::size_t i = 0; i < hardware_.size(); ++i) {
    Detector& d = hardware_[i];
    const double util = smoothed(d.primary);
    const bool cond = util >= cfg_.cpu_saturated_pct;
    step(d, cond, util,
         cond ? fmt("%s=%.0f%% >= %.0f%%", d.series.c_str(), util,
                    cfg_.cpu_saturated_pct)
              : std::string(),
         now);
  }
}

Diagnosis Diagnoser::diagnosis() const {
  // Qualified evidence: closed windows plus the still-open run, clipped to
  // the analysis window, long enough to count.
  struct Fired {
    const Detector* detector = nullptr;
    std::vector<EvidenceWindow> windows;
    double total_s = 0.0;
  };
  auto qualify = [this](const std::vector<Detector>& detectors) {
    std::vector<Fired> fired;
    for (const Detector& d : detectors) {
      Fired f;
      f.detector = &d;
      std::vector<EvidenceWindow> all = d.windows;
      if (d.open) {
        EvidenceWindow w;
        w.series = d.series;
        w.from = d.open_since;
        w.to = last_observe_;
        w.condition = d.open_condition;
        w.observed = d.open_n == 0
                         ? 0.0
                         : d.open_sum / static_cast<double>(d.open_n);
        w.threshold = d.threshold;
        all.push_back(std::move(w));
      }
      for (EvidenceWindow& w : all) {
        w.from = std::max(w.from, analysis_lo_);
        w.to = std::min(w.to, analysis_hi_);
        if (w.to - w.from < cfg_.hold_s) continue;
        f.total_s += w.duration();
        f.windows.push_back(std::move(w));
      }
      if (!f.windows.empty() && f.total_s >= cfg_.min_verdict_s) {
        fired.push_back(std::move(f));
      }
    }
    return fired;
  };

  const std::vector<Fired> under = qualify(under_alloc_);
  const std::vector<Fired> gc = qualify(gc_over_);
  const std::vector<Fired> fin = qualify(fin_wait_);
  const std::vector<Fired> noisy = qualify(noisy_);
  const std::vector<Fired> hard = qualify(hardware_);

  std::vector<const std::vector<Fired>*> soft_fired;
  if (!under.empty()) soft_fired.push_back(&under);
  if (!gc.empty()) soft_fired.push_back(&gc);
  if (!fin.empty()) soft_fired.push_back(&fin);

  Diagnosis diag;
  auto absorb = [&diag](const std::vector<Fired>& fired) {
    double best = 0.0;
    for (const Fired& f : fired) {
      for (const EvidenceWindow& w : f.windows) diag.evidence.push_back(w);
      if (!contains(diag.implicated_resources, f.detector->resource)) {
        diag.implicated_resources.push_back(f.detector->resource);
      }
      for (const std::string& r : f.detector->also_implicated) {
        if (!contains(diag.implicated_resources, r)) {
          diag.implicated_resources.push_back(r);
        }
      }
      if (f.total_s > best) {
        best = f.total_s;
        diag.suggested_action = f.detector->action;
      }
    }
    return best;
  };

  double evidence_s = 0.0;
  if (!noisy.empty()) {
    // A noisy neighbour *causes* pool contention, so kSoftUnderAlloc fires
    // alongside it on the same evidence; the tenant-level explanation
    // subsumes the pool-level symptom and leads the verdict. Absorb noisy
    // first so implicated_resources leads with "tenant:<name>".
    diag.pathology = Pathology::kNoisyNeighbor;
    const Fired* best = &noisy.front();
    for (const Fired& f : noisy) {
      if (f.total_s > best->total_s) best = &f;
      evidence_s += f.total_s;
    }
    absorb(noisy);
    for (const auto* fired : soft_fired) {
      for (const Fired& f : *fired) evidence_s += f.total_s;
      absorb(*fired);
    }
    diag.suggested_action = best->detector->action;
  } else if (soft_fired.size() > 1) {
    diag.pathology = Pathology::kMulti;
    for (const auto* fired : soft_fired) {
      for (const Fired& f : *fired) evidence_s += f.total_s;
      absorb(*fired);
    }
    diag.suggested_action = SuggestedAction{
        SuggestedAction::Kind::kNone, "",
        "multiple pathologies: re-balance the whole allocation vector"};
  } else if (soft_fired.size() == 1) {
    const std::vector<Fired>& fired = *soft_fired.front();
    diag.pathology = fired.front().detector->pathology;
    for (const Fired& f : fired) evidence_s += f.total_s;
    absorb(fired);
  } else if (!hard.empty()) {
    // Hardware-only: one tier saturated is the classic bottleneck, several
    // tiers is the multi-bottleneck of [9].
    std::vector<std::string> tiers;
    for (const Fired& f : hard) {
      const std::string t = tier_of(f.detector->resource.substr(
          0, f.detector->resource.rfind('.')));
      if (!contains(tiers, t)) tiers.push_back(t);
      evidence_s += f.total_s;
    }
    diag.pathology =
        tiers.size() > 1 ? Pathology::kMulti : Pathology::kHardware;
    absorb(hard);
  } else {
    diag.pathology = Pathology::kNone;
    diag.confidence = 1.0;
    return diag;
  }
  diag.confidence =
      std::min(1.0, evidence_s / std::max(cfg_.full_confidence_s, 1e-9));
  return diag;
}

}  // namespace softres::obs
