#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace softres::obs {

void Histogram::observe(double x) {
  if (m_ == nullptr) return;
  for (std::size_t i = 0; i < m_->bounds.size(); ++i) {
    if (x <= m_->bounds[i]) {
      ++m_->bucket_counts[i];
      break;
    }
  }
  if (m_->bounds.empty() || x > m_->bounds.back()) {
    ++m_->bucket_counts.back();
  }
  m_->sum += x;
  ++m_->count;
}

const MetricSample* Snapshot::find(const std::string& name,
                                   const Labels& labels) const {
  for (const auto& m : metrics) {
    if (m.name == name && (labels.empty() || m.labels == labels)) return &m;
  }
  return nullptr;
}

std::string render_series(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

namespace {

std::string fmt_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "gauge";
}

Labels with_le(const Labels& labels, const std::string& le) {
  Labels out = labels;
  out.emplace_back("le", le);
  return out;
}

/// Families in first-appearance order, each family's series sorted by label
/// key/value. Registration order of a family's series must not leak into the
/// exported text: two topologies that register tomcat0/tomcat1 probes in a
/// different order still produce byte-identical exports (the determinism
/// contract's unordered-iteration rule applied to our own output).
std::vector<const MetricSample*> export_order(const Snapshot& snap) {
  std::vector<std::string> family_order;
  for (const auto& m : snap.metrics) {
    if (std::find(family_order.begin(), family_order.end(), m.name) ==
        family_order.end()) {
      family_order.push_back(m.name);
    }
  }
  std::vector<const MetricSample*> out;
  out.reserve(snap.metrics.size());
  for (const auto& family : family_order) {
    const std::size_t family_begin = out.size();
    for (const auto& m : snap.metrics) {
      if (m.name == family) out.push_back(&m);
    }
    std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(family_begin),
                     out.end(),
                     [](const MetricSample* a, const MetricSample* b) {
                       return a->labels < b->labels;
                     });
  }
  return out;
}

}  // namespace

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  // One HELP/TYPE block per family, families in first-appearance order,
  // series label-sorted within the family.
  std::string current_family;
  for (const MetricSample* mp : export_order(snap)) {
    const MetricSample& m = *mp;
    if (m.name != current_family) {
      current_family = m.name;
      if (!m.help.empty()) os << "# HELP " << m.name << " " << m.help << "\n";
      os << "# TYPE " << m.name << " " << kind_name(m.kind) << "\n";
    }
    if (m.kind != MetricKind::kHistogram) {
      os << render_series(m.name, m.labels) << " " << fmt_value(m.value)
         << "\n";
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      cumulative += m.bucket_counts[i];
      os << render_series(m.name + "_bucket",
                          with_le(m.labels, fmt_value(m.bounds[i])))
         << " " << cumulative << "\n";
    }
    cumulative += m.bucket_counts.back();
    os << render_series(m.name + "_bucket", with_le(m.labels, "+Inf")) << " "
       << cumulative << "\n";
    os << render_series(m.name + "_sum", m.labels) << " " << fmt_value(m.sum)
       << "\n";
    os << render_series(m.name + "_count", m.labels) << " " << m.count
       << "\n";
  }
}

void write_csv(std::ostream& os, const Snapshot& snap) {
  os << "metric,labels,kind,value\n";
  auto labels_cell = [](const Labels& labels) {
    std::string out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += ";";
      out += labels[i].first + "=" + labels[i].second;
    }
    return out;
  };
  // Same family-then-label ordering as the Prometheus export, for the same
  // reason: CSV rows must not depend on probe registration order.
  for (const MetricSample* mp : export_order(snap)) {
    const MetricSample& m = *mp;
    if (m.kind != MetricKind::kHistogram) {
      os << m.name << "," << labels_cell(m.labels) << "," << kind_name(m.kind)
         << "," << fmt_value(m.value) << "\n";
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      cumulative += m.bucket_counts[i];
      os << m.name << "_bucket," << labels_cell(with_le(m.labels,
                                                        fmt_value(m.bounds[i])))
         << ",histogram," << cumulative << "\n";
    }
    cumulative += m.bucket_counts.back();
    os << m.name << "_bucket," << labels_cell(with_le(m.labels, "+Inf"))
       << ",histogram," << cumulative << "\n";
    os << m.name << "_sum," << labels_cell(m.labels) << ",histogram,"
       << fmt_value(m.sum) << "\n";
    os << m.name << "_count," << labels_cell(m.labels) << ",histogram,"
       << m.count << "\n";
  }
}

detail::Metric* Registry::find_or_add(const std::string& name, Labels labels,
                                      const std::string& help,
                                      MetricKind kind) {
  for (auto& m : metrics_) {
    if (m->name == name && m->labels == labels) return m.get();
  }
  auto m = std::make_unique<detail::Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->help = help;
  m->kind = kind;
  metrics_.push_back(std::move(m));
  return metrics_.back().get();
}

Counter Registry::counter(const std::string& name, Labels labels,
                          const std::string& help) {
  return Counter(find_or_add(name, std::move(labels), help,
                             MetricKind::kCounter));
}

Gauge Registry::gauge(const std::string& name, Labels labels,
                      const std::string& help) {
  return Gauge(find_or_add(name, std::move(labels), help, MetricKind::kGauge));
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<double> bounds, Labels labels,
                              const std::string& help) {
  detail::Metric* m =
      find_or_add(name, std::move(labels), help, MetricKind::kHistogram);
  if (m->bucket_counts.empty()) {
    m->bounds = std::move(bounds);
    m->bucket_counts.assign(m->bounds.size() + 1, 0);
  }
  return Histogram(m);
}

void Registry::gauge_fn(const std::string& name, Source source, Labels labels,
                        const std::string& help, const std::string& alias) {
  detail::Metric* m =
      find_or_add(name, std::move(labels), help, MetricKind::kGauge);
  m->source = std::move(source);
  m->alias = alias;
}

void Registry::counter_fn(const std::string& name, Source source,
                          Labels labels, const std::string& help,
                          const std::string& alias) {
  detail::Metric* m =
      find_or_add(name, std::move(labels), help, MetricKind::kCounter);
  m->source = std::move(source);
  m->alias = alias;
}

Reader Registry::reader(const std::string& name, const Labels& labels) const {
  for (const auto& m : metrics_) {
    if (m->name == name && m->labels == labels) return Reader(m.get());
  }
  return Reader();
}

std::vector<Labels> Registry::family(const std::string& name) const {
  std::vector<Labels> out;
  for (const auto& m : metrics_) {
    if (m->name == name) out.push_back(m->labels);
  }
  return out;
}

void Registry::reset_values() {
  for (auto& m : metrics_) {
    m->value = 0.0;
    m->sum = 0.0;
    m->count = 0;
    m->cached_at = -1.0;
    m->cached = 0.0;
    std::fill(m->bucket_counts.begin(), m->bucket_counts.end(), 0);
  }
}

Snapshot Registry::snapshot(sim::SimTime now) const {
  Snapshot snap;
  snap.at = now;
  snap.metrics.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    MetricSample s;
    s.name = m->name;
    s.labels = m->labels;
    s.help = m->help;
    s.kind = m->kind;
    s.value = m->read(now);
    s.bounds = m->bounds;
    s.bucket_counts = m->bucket_counts;
    s.sum = m->sum;
    s.count = m->count;
    snap.metrics.push_back(std::move(s));
  }
  return snap;
}

void Registry::write_prometheus(std::ostream& os, sim::SimTime now) const {
  obs::write_prometheus(os, snapshot(now));
}

void Registry::write_csv(std::ostream& os, sim::SimTime now) const {
  obs::write_csv(os, snapshot(now));
}

void Registry::attach(sim::Sampler& sampler) {
  for (const auto& m : metrics_) {
    detail::Metric* raw = m.get();
    const std::string series =
        raw->alias.empty() ? render_series(raw->name, raw->labels)
                           : raw->alias;
    if (raw->kind == MetricKind::kHistogram) {
      sampler.add_probe(series + ".count", [raw](sim::SimTime) {
        return static_cast<double>(raw->count);
      });
      continue;
    }
    sampler.add_probe(series,
                      [raw](sim::SimTime now) { return raw->read(now); });
  }
}

}  // namespace softres::obs
