#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/sampler.h"
#include "sim/sim_time.h"

namespace softres::obs {

/// Label set of a metric, Prometheus-style: {{"node","tomcat0"}}. Order is
/// preserved as given; two metrics are the same series iff name and rendered
/// labels match exactly.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

namespace detail {
struct Metric {
  std::string name;
  Labels labels;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  /// Legacy dotted series name ("tomcat0.threads.util") used when the
  /// registry is attached to a sim::Sampler; empty -> rendered name.
  std::string alias;

  double value = 0.0;                    // counter/gauge storage
  std::function<double(sim::SimTime)> source;  // pull metrics (polled)

  std::vector<double> bounds;            // histogram bucket upper bounds
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 (+Inf)
  double sum = 0.0;
  std::uint64_t count = 0;

  /// Pull sources are evaluated at most once per timestamp: rate-style
  /// sources differentiate a cumulative counter against their previous call,
  /// so a second same-tick caller (e.g. the Timeline polling after the
  /// sampler probe) would otherwise see dt = 0. Every same-instant reader
  /// gets the first evaluation's value.
  mutable sim::SimTime cached_at = -1.0;
  mutable double cached = 0.0;

  double read(sim::SimTime now) const {
    if (!source) return value;
    if (now != cached_at) {
      cached = source(now);
      cached_at = now;
    }
    return cached;
  }
};
}  // namespace detail

/// Monotonically increasing value (events, completions). Handles are cheap
/// copies; a default-constructed handle is a no-op sink.
class Counter {
 public:
  Counter() = default;
  void inc(double d = 1.0) {
    if (m_ != nullptr) m_->value += d;
  }
  double value() const { return m_ != nullptr ? m_->value : 0.0; }

 private:
  friend class Registry;
  explicit Counter(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Instantaneous value set by the instrumented component.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (m_ != nullptr) m_->value = v;
  }
  void add(double d) {
    if (m_ != nullptr) m_->value += d;
  }
  double value() const { return m_ != nullptr ? m_->value : 0.0; }

 private:
  friend class Registry;
  explicit Gauge(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Cumulative-bucket histogram (Prometheus semantics: bucket i counts
/// observations <= bounds[i]; an implicit +Inf bucket catches the rest).
class Histogram {
 public:
  Histogram() = default;
  void observe(double x);
  std::uint64_t count() const { return m_ != nullptr ? m_->count : 0; }
  double sum() const { return m_ != nullptr ? m_->sum : 0.0; }

 private:
  friend class Registry;
  explicit Histogram(detail::Metric* m) : m_(m) {}
  detail::Metric* m_ = nullptr;
};

/// Read-only handle on one registered series: evaluates the pull source (or
/// returns the stored value) without snapshotting the whole registry. This is
/// what obs::Timeline polls every sampler tick — one cheap read per tracked
/// series instead of a full Snapshot. A default-constructed Reader reads 0.
class Reader {
 public:
  Reader() = default;
  bool valid() const { return m_ != nullptr; }
  double read(sim::SimTime now) const { return m_ != nullptr ? m_->read(now) : 0.0; }

 private:
  friend class Registry;
  explicit Reader(const detail::Metric* m) : m_(m) {}
  const detail::Metric* m_ = nullptr;
};

/// Point-in-time copy of one metric, with pull sources already evaluated.
struct MetricSample {
  std::string name;
  Labels labels;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Frozen view of the whole registry at one instant.
struct Snapshot {
  sim::SimTime at = 0.0;
  std::vector<MetricSample> metrics;

  const MetricSample* find(const std::string& name,
                           const Labels& labels = {}) const;
};

/// Render "name{k=\"v\",...}" (bare name when labels are empty).
std::string render_series(const std::string& name, const Labels& labels);

/// Prometheus text exposition (one HELP/TYPE block per metric family).
void write_prometheus(std::ostream& os, const Snapshot& snap);

/// Flat CSV: metric,labels,kind,value (histograms expand to one row per
/// cumulative bucket plus _sum/_count).
void write_csv(std::ostream& os, const Snapshot& snap);

/// The one place every probe in the system registers: labeled counters,
/// gauges (stored or polled) and histograms, with a snapshot API, Prometheus
/// and CSV exporters, and 1 Hz sampling through the existing sim::Sampler.
///
/// Handles returned by the factories stay valid for the registry's lifetime.
/// Registering an already-existing (name, labels) pair returns the same
/// underlying metric.
class Registry {
 public:
  using Source = std::function<double(sim::SimTime)>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Gauge gauge(const std::string& name, Labels labels = {},
              const std::string& help = "");
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      Labels labels = {}, const std::string& help = "");

  /// Polled gauge: `source` is evaluated at snapshot/sampling time. `alias`
  /// names the sim::Sampler series (legacy dotted names); empty -> rendered
  /// metric name.
  void gauge_fn(const std::string& name, Source source, Labels labels = {},
                const std::string& help = "", const std::string& alias = "");
  /// Polled counter (cumulative source, e.g. total completions).
  void counter_fn(const std::string& name, Source source, Labels labels = {},
                  const std::string& help = "", const std::string& alias = "");

  /// Cheap read-only handle on an already-registered series (invalid Reader
  /// when no such series exists). Stays valid for the registry's lifetime.
  Reader reader(const std::string& name, const Labels& labels = {}) const;

  /// Label sets of every series registered under family `name`, in
  /// registration order (used to enumerate e.g. every pool_util_pct series).
  std::vector<Labels> family(const std::string& name) const;

  /// Reset every stored value — counters, gauges, histogram buckets, sums and
  /// counts — to zero while keeping registrations, pull sources, aliases and
  /// handles intact. A registry reused across back-to-back trials must call
  /// this between trials or the second trial's histograms (and counters)
  /// continue accumulating on top of the first's.
  void reset_values();

  /// Evaluate every metric (pull sources included) at `now`.
  Snapshot snapshot(sim::SimTime now) const;

  void write_prometheus(std::ostream& os, sim::SimTime now) const;
  void write_csv(std::ostream& os, sim::SimTime now) const;

  /// Register every scalar metric as a probe on `sampler`, so the registry is
  /// sampled at the sampler's cadence (1 Hz in the testbed — the SysStat
  /// granularity). Histograms are sampled as their observation count. Metrics
  /// registered after this call are still snapshotted but not sampled.
  void attach(sim::Sampler& sampler);

  std::size_t size() const { return metrics_.size(); }

 private:
  detail::Metric* find_or_add(const std::string& name, Labels labels,
                              const std::string& help, MetricKind kind);

  std::vector<std::unique_ptr<detail::Metric>> metrics_;
};

}  // namespace softres::obs
