#pragma once

// Tail-latency critical-path attribution (DESIGN.md §15): bins every traced
// request into percentile cohorts (p0-50, p50-95, p95-99, p99+ of the traced
// response times), aggregates per-request BlameVectors per cohort, and keeps
// deterministic top-k exemplar request ids per cohort. The output answers
// "why is p99 slow" with the same vocabulary the Diagnoser implicates
// ("the p99+ cohort spends 12x more in tomcat.queue than the median"), and
// obs::corroborate ties the two together on Diagnosis::tail.
//
// Everything here is a pure function of the assembled traces, which are
// themselves deterministic per trial seed — so tail attribution is part of
// the bit-identical-across-SOFTRES_JOBS contract exp::RunResult carries.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/diagnoser.h"
#include "obs/trace.h"

namespace softres::obs {

struct TailConfig {
  /// Exemplar request ids kept per cohort (slowest first; ties by id).
  std::size_t top_k = 3;
  /// SLO bound of the per-cohort miss attribution (the paper's 2 s default;
  /// exp::Experiment passes its ExperimentOptions::sla_threshold_s).
  double slo_threshold_s = 2.0;
};

/// The percentile-cohort blame summary of one trial's traced requests.
struct TailAttribution {
  /// One axis entry, shared by every cohort's blame_s vector. Same label
  /// vocabulary as BlameVector::Component ("tomcat.queue", ..., "network").
  struct Component {
    std::string tier;  // empty for the network residual
    std::string kind;

    std::string label() const {
      return tier.empty() ? kind : tier + "." + kind;
    }
  };

  struct Cohort {
    std::string name;             // "p0-50" | "p50-95" | "p95-99" | "p99+"
    std::size_t requests = 0;
    double mean_rt_s = 0.0;
    std::vector<double> blame_s;  // mean seconds per axis entry
    /// Top-k exemplar request ids, slowest response first (ties broken by
    /// ascending id) — the requests the report renders as waterfalls.
    std::vector<std::uint64_t> exemplars;
    std::size_t slo_misses = 0;   // requests beyond TailConfig::slo_threshold_s
    double slo_miss_share = 0.0;  // of all misses across cohorts
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<Component> axis;
  std::vector<Cohort> cohorts;  // the four canonical cohorts, possibly empty
  double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0;  // cohort boundaries
  std::size_t requests = 0;     // traced requests attributed
  double slo_threshold_s = 2.0;

  bool empty() const { return requests == 0; }
  const Cohort* find_cohort(const std::string& name) const;
  /// Axis index of the cohort's largest mean blame component (ties keep the
  /// lowest index; npos for an empty cohort).
  std::size_t dominant_component(const Cohort& c) const;
  /// Cohort-vs-baseline blame ratio of axis entry i: the cohort's mean over
  /// the p0-50 cohort's mean (0 when the baseline component is <= 0).
  double delta_vs_base(std::size_t i, const Cohort& c) const;
};

/// Builds TailAttributions from assembled traces. Stateless apart from its
/// config; attribute() is a pure function of its input.
class TailAttributor {
 public:
  explicit TailAttributor(TailConfig cfg = {}) : cfg_(cfg) {}

  TailAttribution attribute(const std::vector<AssembledTrace>& traces) const;

  const TailConfig& config() const { return cfg_; }

 private:
  TailConfig cfg_;
};

/// Fill d.tail from the p99+ cohort's dominant blame component and mark
/// whether it corroborates the verdict (maps onto an implicated resource:
/// "tomcat.queue" onto "tomcat0.threads", "tomcat.conn_wait" onto
/// "tomcat0.dbconns", "apache.queue" onto "apache0.workers", "tomcat.gc"
/// onto "tomcat0.cpu"). No-op on an empty attribution beyond resetting
/// d.tail, so untraced trials report present == false.
void corroborate(Diagnosis& d, const TailAttribution& tail);

}  // namespace softres::obs
