#include <gtest/gtest.h>

#include <vector>

#include "hw/disk.h"
#include "hw/link.h"
#include "hw/monitor.h"
#include "hw/node.h"
#include "sim/sampler.h"
#include "sim/simulator.h"

namespace softres::hw {
namespace {

TEST(DiskTest, FcfsOrdering) {
  sim::Simulator sim;
  Disk disk(sim, "d", sim::constant(0.01), sim::Rng(1));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    disk.submit([&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(disk.ops_completed(), 4u);
  EXPECT_NEAR(sim.now(), 0.04, 1e-9);
}

TEST(DiskTest, QueueLengthTracksBacklog) {
  sim::Simulator sim;
  Disk disk(sim, "d", sim::constant(1.0), sim::Rng(1));
  for (int i = 0; i < 3; ++i) disk.submit([] {});
  EXPECT_EQ(disk.queue_length(), 3u);
  sim.run_until(1.5);
  EXPECT_EQ(disk.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(disk.queue_length(), 0u);
}

TEST(DiskTest, BusySecondsAccumulateServiceTime) {
  sim::Simulator sim;
  Disk disk(sim, "d", sim::constant(0.5), sim::Rng(1));
  for (int i = 0; i < 4; ++i) disk.submit([] {});
  sim.run();
  EXPECT_NEAR(disk.busy_seconds(), 2.0, 1e-9);
}

TEST(DiskTest, IdleThenNewWork) {
  sim::Simulator sim;
  Disk disk(sim, "d", sim::constant(0.1), sim::Rng(1));
  double t1 = -1, t2 = -1;
  disk.submit([&] { t1 = sim.now(); });
  sim.run();
  sim.schedule_at(5.0, [&] { disk.submit([&] { t2 = sim.now(); }); });
  sim.run();
  EXPECT_NEAR(t1, 0.1, 1e-9);
  EXPECT_NEAR(t2, 5.1, 1e-9);
}

TEST(LinkTest, LatencyOnlyDelivery) {
  sim::Simulator sim;
  Link link(sim, "l", 0.001, 1e12);  // effectively infinite bandwidth
  double at = -1.0;
  link.send(1000.0, [&] { at = sim.now(); });
  sim.run();
  EXPECT_NEAR(at, 0.001, 1e-9);
}

TEST(LinkTest, TransmissionSerialises) {
  sim::Simulator sim;
  Link link(sim, "l", 0.0, 1000.0);  // 1000 B/s
  std::vector<double> at;
  link.send(500.0, [&] { at.push_back(sim.now()); });  // tx [0, 0.5]
  link.send(500.0, [&] { at.push_back(sim.now()); });  // tx [0.5, 1.0]
  sim.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_NEAR(at[0], 0.5, 1e-9);
  EXPECT_NEAR(at[1], 1.0, 1e-9);
  EXPECT_NEAR(link.busy_seconds(), 1.0, 1e-9);
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_NEAR(link.bytes_sent(), 1000.0, 1e-9);
}

TEST(LinkTest, TransmitterIdleGapsRespected) {
  sim::Simulator sim;
  Link link(sim, "l", 0.0, 1000.0);
  std::vector<double> at;
  link.send(100.0, [&] { at.push_back(sim.now()); });  // done at 0.1
  sim.schedule(1.0, [&] {
    link.send(100.0, [&] { at.push_back(sim.now()); });  // starts at 1.0
  });
  sim.run();
  EXPECT_NEAR(at[0], 0.1, 1e-9);
  EXPECT_NEAR(at[1], 1.1, 1e-9);
}

TEST(NodeTest, ProvidesCpuAndDisk) {
  sim::Simulator sim;
  NodeSpec spec;
  spec.cores = 2;
  Node node(sim, "n0", spec, sim::Rng(3));
  EXPECT_EQ(node.name(), "n0");
  EXPECT_EQ(node.cpu().cores(), 2u);
  bool cpu_done = false, disk_done = false;
  node.cpu().submit(0.01, [&] { cpu_done = true; });
  node.disk().submit([&] { disk_done = true; });
  sim.run();
  EXPECT_TRUE(cpu_done);
  EXPECT_TRUE(disk_done);
}

TEST(MonitorTest, CpuUtilProbeMeasuresBusyFraction) {
  sim::Simulator sim;
  Cpu cpu(sim, "c", 1);
  sim::Sampler sampler(sim, 1.0);
  add_cpu_util_probe(sampler, "c.util", cpu);
  sampler.start();
  // Busy exactly [0, 0.5] each period via repeated submissions.
  for (int t = 0; t < 4; ++t) {
    sim.schedule(t * 1.0, [&] { cpu.submit(0.5, [] {}); });
  }
  sim.run_until(4.0);
  const sim::TimeSeries* s = sampler.find("c.util");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 4u);
  for (double v : s->values) EXPECT_NEAR(v, 50.0, 1.0);
}

TEST(MonitorTest, GcUtilProbeIsolatesFreezeShare) {
  sim::Simulator sim;
  Cpu cpu(sim, "c", 1);
  sim::Sampler sampler(sim, 1.0);
  add_gc_util_probe(sampler, "c.gc", cpu);
  sampler.start();
  sim.schedule(0.2, [&] { cpu.freeze(0.3); });
  sim.run_until(2.0);
  const sim::TimeSeries* s = sampler.find("c.gc");
  ASSERT_EQ(s->size(), 2u);
  EXPECT_NEAR(s->values[0], 30.0, 1.0);
  EXPECT_NEAR(s->values[1], 0.0, 1e-9);
}

TEST(MonitorTest, LoadProbeCountsResidentJobs) {
  sim::Simulator sim;
  Cpu cpu(sim, "c", 1);
  sim::Sampler sampler(sim, 1.0);
  add_cpu_load_probe(sampler, "c.load", cpu);
  sampler.start();
  cpu.submit(10.0, [] {});
  cpu.submit(10.0, [] {});
  sim.run_until(1.0);
  EXPECT_EQ(sampler.find("c.load")->values[0], 2.0);
}

}  // namespace
}  // namespace softres::hw
