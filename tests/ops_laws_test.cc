#include "core/ops_laws.h"

#include <gtest/gtest.h>

namespace softres::core {
namespace {

TEST(OpsLawsTest, LittlesLaw) {
  EXPECT_NEAR(little_l(100.0, 0.05), 5.0, 1e-12);
  EXPECT_NEAR(little_rt(5.0, 100.0), 0.05, 1e-12);
  EXPECT_EQ(little_rt(5.0, 0.0), 0.0);
}

TEST(OpsLawsTest, LittleInversesCompose) {
  const double x = 380.0, r = 0.035;
  EXPECT_NEAR(little_rt(little_l(x, r), x), r, 1e-12);
}

TEST(OpsLawsTest, ForcedFlow) {
  // 800 requests/s at the front, 2.7 queries per request.
  EXPECT_NEAR(forced_flow(800.0, 2.7), 2160.0, 1e-9);
}

TEST(OpsLawsTest, UtilizationLaw) {
  EXPECT_NEAR(utilization_law(380.0, 0.0026), 0.988, 1e-9);
}

TEST(OpsLawsTest, InteractiveResponseTime) {
  // N = X (R + Z)  =>  R = N/X - Z.
  EXPECT_NEAR(interactive_rt(6000, 780.0, 7.0), 6000.0 / 780.0 - 7.0, 1e-12);
  EXPECT_EQ(interactive_rt(6000, 0.0, 7.0), 0.0);
}

TEST(OpsLawsTest, FrontTierJobsFormula3) {
  // L_tomcat = L_cjdbc * (RTT_tomcat/RTT_cjdbc) / Req_ratio.
  // Paper example: 32 jobs in C-JDBC, RTT ratio 3, 2.7 queries/request.
  EXPECT_NEAR(front_tier_jobs(32.0, 3.0, 2.7), 32.0 * 3.0 / 2.7, 1e-12);
  EXPECT_EQ(front_tier_jobs(32.0, 3.0, 0.0), 0.0);
}

TEST(OpsLawsTest, FrontTierJobsConsistentWithLittle) {
  // Derive via Little + Forced Flow and check Formula (3) agrees.
  const double crit_tp = 2500.0, crit_rtt = 0.012;
  const double front_tp = 930.0, front_rtt = 0.055;
  const double l_crit = little_l(crit_tp, crit_rtt);
  const double req_ratio = crit_tp / front_tp;
  const double rtt_ratio = front_rtt / crit_rtt;
  EXPECT_NEAR(front_tier_jobs(l_crit, rtt_ratio, req_ratio),
              little_l(front_tp, front_rtt), 1e-9);
}

}  // namespace
}  // namespace softres::core
