#include <gtest/gtest.h>

#include <memory>

#include "hw/link.h"
#include "hw/node.h"
#include "sim/simulator.h"
#include "tier/apache.h"
#include "tier/cjdbc.h"
#include "tier/mysql.h"
#include "tier/request.h"
#include "tier/tomcat.h"

namespace softres::tier {
namespace {

// Hand-wired miniature deployment: 1 Apache, 1 Tomcat, 1 C-JDBC, 1 MySQL.
struct Rig {
  sim::Simulator sim;
  hw::NodeSpec spec;
  std::unique_ptr<hw::Node> web_node, app_node, cm_node, db_node;
  std::unique_ptr<hw::Link> links[8];
  std::unique_ptr<MySqlServer> mysql;
  std::unique_ptr<CJdbcServer> cjdbc;
  std::unique_ptr<TomcatServer> tomcat;
  std::unique_ptr<ApacheServer> apache;
  double client_load = 0.0;

  explicit Rig(std::size_t apache_threads = 10, std::size_t tomcat_threads = 4,
               std::size_t conns = 4) {
    spec.cores = 1;
    spec.context_switch_coeff = 0.0;
    web_node = std::make_unique<hw::Node>(sim, "apache0", spec, sim::Rng(1));
    app_node = std::make_unique<hw::Node>(sim, "tomcat0", spec, sim::Rng(2));
    cm_node = std::make_unique<hw::Node>(sim, "cjdbc0", spec, sim::Rng(3));
    db_node = std::make_unique<hw::Node>(sim, "mysql0", spec, sim::Rng(4));
    for (auto& l : links) {
      l = std::make_unique<hw::Link>(sim, "link", 0.0001, 125e6);
    }
    mysql = std::make_unique<MySqlServer>(sim, "mysql0", *db_node, sim::Rng(5));
    cjdbc = std::make_unique<CJdbcServer>(sim, "cjdbc0", *cm_node,
                                          jvm::JvmConfig{}, *links[0],
                                          *links[1], 0.0);
    cjdbc->add_backend(*mysql);
    tomcat = std::make_unique<TomcatServer>(
        sim, "tomcat0", *app_node, jvm::JvmConfig{}, tomcat_threads, conns,
        *cjdbc, *links[2], *links[3], 0.0);
    net::TcpConfig tcp_cfg;
    tcp_cfg.fin_base_s = 0.0;
    tcp_cfg.enable_load_dependence = false;
    apache = std::make_unique<ApacheServer>(
        sim, "apache0", *web_node, apache_threads, *links[4], *links[5],
        *links[6], net::TcpModel(tcp_cfg, sim::Rng(6)),
        [this] { return client_load; });
    apache->add_tomcat(*tomcat);
  }

  RequestPtr make_dynamic(int queries = 2) {
    auto req = make_request();
    req->kind = RequestKind::kDynamic;
    req->num_queries = queries;
    req->apache_demand_s = 0.0002;
    req->tomcat_demand_s = 0.002;
    req->cjdbc_demand_s = 0.0004;
    req->mysql_demand_s = 0.0005;
    req->mysql_disk_prob = 0.0;
    return req;
  }

  RequestPtr make_static() {
    auto req = make_request();
    req->kind = RequestKind::kStatic;
    req->num_queries = 0;
    req->apache_demand_s = 0.0001;
    return req;
  }
};

TEST(TierTest, DynamicRequestTraversesAllTiers) {
  Rig rig;
  bool responded = false;
  rig.apache->handle(rig.make_dynamic(3), [&] { responded = true; });
  rig.sim.run();
  EXPECT_TRUE(responded);
  EXPECT_EQ(rig.apache->window_completed(), 1u);
  EXPECT_EQ(rig.tomcat->window_completed(), 1u);
  EXPECT_EQ(rig.cjdbc->window_completed(), 3u);  // one per query
  EXPECT_EQ(rig.mysql->window_completed(), 3u);
}

TEST(TierTest, StaticRequestServedFromCacheOnly) {
  Rig rig;
  bool responded = false;
  rig.apache->handle(rig.make_static(), [&] { responded = true; });
  rig.sim.run();
  EXPECT_TRUE(responded);
  EXPECT_EQ(rig.apache->window_completed(), 1u);
  EXPECT_EQ(rig.tomcat->window_completed(), 0u);
  EXPECT_EQ(rig.cjdbc->window_completed(), 0u);
}

TEST(TierTest, ResponseTimeIncludesAllDemands) {
  Rig rig;
  double rt = -1.0;
  const double t0 = rig.sim.now();
  rig.apache->handle(rig.make_dynamic(2), [&] { rt = rig.sim.now() - t0; });
  rig.sim.run();
  // Lower bound: sum of pure CPU demands.
  const double min_rt = 0.0002 + 0.002 + 2 * (0.0004 + 0.0005);
  EXPECT_GT(rt, min_rt);
  EXPECT_LT(rt, min_rt + 0.05);  // and not wildly above (links+disk only)
}

TEST(TierTest, TomcatThreadPoolLimitsConcurrency) {
  Rig rig(/*apache_threads=*/10, /*tomcat_threads=*/1, /*conns=*/4);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    rig.apache->handle(rig.make_dynamic(1), [&] { ++done; });
  }
  rig.sim.run_until(0.001);
  // Only one request can be inside Tomcat.
  EXPECT_LE(rig.tomcat->thread_pool().in_use(), 1u);
  EXPECT_GE(rig.tomcat->thread_pool().waiting(), 1u);
  rig.sim.run();
  EXPECT_EQ(done, 5);
}

TEST(TierTest, ConnectionHeldForWholeQueryPhase) {
  Rig rig(/*apache_threads=*/10, /*tomcat_threads=*/4, /*conns=*/1);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    rig.apache->handle(rig.make_dynamic(3), [&] { ++done; });
  }
  rig.sim.run_until(0.004);
  // With one connection, at most one request is in its DB phase; the C-JDBC
  // server must never see concurrent queries.
  EXPECT_LE(rig.cjdbc->window_avg_jobs(), 1.0 + 1e-9);
  rig.sim.run();
  EXPECT_EQ(done, 3);
}

TEST(TierTest, ApacheTracksThreadsConnectingTomcat) {
  Rig rig(/*apache_threads=*/10, /*tomcat_threads=*/1, /*conns=*/1);
  for (int i = 0; i < 4; ++i) {
    rig.apache->handle(rig.make_dynamic(1), [] {});
  }
  rig.sim.run_until(0.001);
  // All four workers are occupying or waiting for the single Tomcat slot.
  EXPECT_EQ(rig.apache->threads_connecting_tomcat(), 4u);
  rig.sim.run();
  EXPECT_EQ(rig.apache->threads_connecting_tomcat(), 0u);
}

TEST(TierTest, FinWaitHoldsWorkerAfterResponse) {
  Rig rig(/*apache_threads=*/1, 4, 4);
  net::TcpConfig tcp_cfg;
  tcp_cfg.fin_base_s = 1.0;  // huge FIN delay
  tcp_cfg.fin_sigma = 0.0;
  tcp_cfg.enable_load_dependence = false;
  // Rebuild apache with the slow-FIN stack.
  rig.apache = std::make_unique<ApacheServer>(
      rig.sim, "apache0", *rig.web_node, 1, *rig.links[4], *rig.links[5],
      *rig.links[6], net::TcpModel(tcp_cfg, sim::Rng(6)), [] { return 0.0; });
  rig.apache->add_tomcat(*rig.tomcat);

  double first_response = -1.0, second_response = -1.0;
  rig.apache->handle(rig.make_static(), [&] { first_response = rig.sim.now(); });
  rig.apache->handle(rig.make_static(), [&] { second_response = rig.sim.now(); });
  rig.sim.run();
  // The single worker is stuck in FIN wait for ~1 s after the first response,
  // so the second response lags by at least that.
  EXPECT_GT(second_response - first_response, 0.9);
}

TEST(TierTest, MySqlDiskHitAddsLatency) {
  Rig rig;
  auto no_disk = rig.make_dynamic(1);
  no_disk->mysql_disk_prob = 0.0;
  auto with_disk = rig.make_dynamic(1);
  with_disk->mysql_disk_prob = 1.0;
  double rt_no = -1, rt_disk = -1;
  double t0 = rig.sim.now();
  rig.apache->handle(no_disk, [&] { rt_no = rig.sim.now() - t0; });
  rig.sim.run();
  Rig rig2;
  t0 = rig2.sim.now();
  rig2.apache->handle(with_disk, [&] { rt_disk = rig2.sim.now() - t0; });
  rig2.sim.run();
  EXPECT_GT(rt_disk, rt_no + 0.001);  // at least ~a disk access more
}

TEST(TierTest, ServerStatsLittleLawConsistency) {
  Rig rig(20, 8, 8);
  rig.apache->reset_window_stats();
  rig.tomcat->reset_window_stats();
  int done = 0;
  // Closed loop of 4 clients hammering for a while.
  std::function<void()> issue = [&] {
    rig.apache->handle(rig.make_dynamic(2), [&] {
      ++done;
      if (rig.sim.now() < 10.0) issue();
    });
  };
  for (int i = 0; i < 4; ++i) issue();
  rig.sim.run();
  // L = X * R within tolerance for the Tomcat server.
  const double l = rig.tomcat->window_avg_jobs();
  const double x = rig.tomcat->window_completed() / rig.sim.now();
  const double r = rig.tomcat->window_mean_rt();
  EXPECT_NEAR(l, x * r, 0.15 * l + 0.01);
}

TEST(TierTest, TimelineSampleIdempotentPerInstant) {
  Rig rig;
  rig.apache->handle(rig.make_static(), [] {});
  rig.sim.run();
  auto s1 = rig.apache->sample_window(1.0);
  auto s2 = rig.apache->sample_window(1.0);  // same instant: cached
  EXPECT_EQ(s1.processed_requests, s2.processed_requests);
  auto s3 = rig.apache->sample_window(2.0);  // next instant: reset window
  EXPECT_EQ(s3.processed_requests, 0.0);
}

TEST(TierTest, RoundRobinAcrossTomcats) {
  Rig rig;
  // Second tomcat on its own node.
  hw::Node node2(rig.sim, "tomcat1", rig.spec, sim::Rng(7));
  TomcatServer tomcat2(rig.sim, "tomcat1", node2, jvm::JvmConfig{}, 4, 4,
                       *rig.cjdbc, *rig.links[2], *rig.links[3], 0.0);
  rig.apache->add_tomcat(tomcat2);
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    rig.apache->handle(rig.make_dynamic(1), [&] { ++done; });
  }
  rig.sim.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(rig.tomcat->window_completed(), 3u);
  EXPECT_EQ(tomcat2.window_completed(), 3u);
}

}  // namespace
}  // namespace softres::tier
