#include "jvm/jvm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hw/cpu.h"
#include "sim/simulator.h"

namespace softres::jvm {
namespace {

JvmConfig small_heap() {
  JvmConfig cfg;
  cfg.young_gen_mb = 10.0;
  cfg.pause_base_s = 0.01;
  cfg.pause_per_thread_s = 0.001;
  cfg.thread_exponent = 1.0;
  cfg.full_gc_period = 4;
  cfg.full_gc_multiplier = 3.0;
  return cfg;
}

TEST(JvmTest, NoCollectionBelowYoungGen) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.allocate(9.9);
  EXPECT_EQ(jvm.collections(), 0u);
  EXPECT_EQ(jvm.total_gc_seconds(), 0.0);
}

TEST(JvmTest, CollectionTriggersAtThreshold) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.set_live_threads(10);
  jvm.allocate(10.0);
  EXPECT_EQ(jvm.collections(), 1u);
  // Pause = 0.01 + 0.001 * 10 = 0.02 s.
  EXPECT_NEAR(jvm.total_gc_seconds(), 0.02, 1e-12);
  EXPECT_TRUE(cpu.frozen());
}

TEST(JvmTest, PauseGrowsWithLiveThreads) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.set_live_threads(10);
  const double p10 = jvm.pause_duration(false);
  jvm.set_live_threads(800);
  const double p800 = jvm.pause_duration(false);
  EXPECT_GT(p800, p10 * 10.0);
}

TEST(JvmTest, SuperlinearExponent) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  JvmConfig cfg = small_heap();
  cfg.pause_base_s = 0.0;
  cfg.thread_exponent = 1.25;
  Jvm jvm(sim, cpu, cfg, "j");
  jvm.set_live_threads(100);
  const double p100 = jvm.pause_duration(false);
  jvm.set_live_threads(200);
  const double p200 = jvm.pause_duration(false);
  EXPECT_NEAR(p200 / p100, std::pow(2.0, 1.25), 1e-9);
}

TEST(JvmTest, FullGcPeriodMultiplies) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.set_live_threads(0);
  // Collections 1..3 minor, 4th full (period 4).
  double before = 0.0;
  for (int i = 1; i <= 4; ++i) {
    before = jvm.total_gc_seconds();
    sim.run();  // let any freeze expire
    jvm.allocate(10.0);
  }
  const double last = jvm.total_gc_seconds() - before;
  EXPECT_NEAR(last, 0.01 * 3.0, 1e-12);  // full multiplier
  EXPECT_EQ(jvm.collections(), 4u);
}

TEST(JvmTest, AllocationAccumulatesAcrossCalls) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  for (int i = 0; i < 9; ++i) jvm.allocate(1.0);
  EXPECT_EQ(jvm.collections(), 0u);
  jvm.allocate(1.0);
  EXPECT_EQ(jvm.collections(), 1u);
}

TEST(JvmTest, NoRetriggerWhileFrozen) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.allocate(10.0);
  EXPECT_EQ(jvm.collections(), 1u);
  // CPU is frozen; further allocation defers the next collection.
  jvm.allocate(50.0);
  EXPECT_EQ(jvm.collections(), 1u);
  sim.run();  // unfreeze
  jvm.allocate(10.0);
  EXPECT_EQ(jvm.collections(), 2u);
}

TEST(JvmTest, RuntimeOverheadFactor) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  JvmConfig cfg;
  cfg.overhead_per_thread = 1e-3;
  Jvm jvm(sim, cpu, cfg, "j");
  jvm.set_live_threads(0);
  EXPECT_NEAR(jvm.runtime_overhead_factor(), 1.0, 1e-12);
  jvm.set_live_threads(200);
  EXPECT_NEAR(jvm.runtime_overhead_factor(), 1.2, 1e-12);
}

TEST(JvmTest, GcFreezeDelaysCpuWork) {
  sim::Simulator sim;
  hw::Cpu cpu(sim, "c", 1);
  Jvm jvm(sim, cpu, small_heap(), "j");
  jvm.set_live_threads(0);
  double done_at = -1.0;
  cpu.submit(1.0, [&] { done_at = sim.now(); });
  sim.schedule(0.5, [&] { jvm.allocate(10.0); });  // 0.01 s pause at t=0.5
  sim.run();
  EXPECT_NEAR(done_at, 1.01, 1e-9);
}

}  // namespace
}  // namespace softres::jvm
