#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace softres::sim {
namespace {

TEST(WelfordTest, BasicMoments) {
  Welford w;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(v);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_NEAR(w.mean(), 5.0, 1e-12);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
  EXPECT_NEAR(w.sum(), 40.0, 1e-9);
}

TEST(WelfordTest, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.stddev(), 0.0);
}

TEST(WelfordTest, MergeEqualsCombinedStream) {
  Rng rng(5);
  Welford a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptySides) {
  Welford a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, BinningAndDensity) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(-1.0);   // underflow
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(999.0);  // overflow
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(1), 2.0);
  EXPECT_EQ(h.underflow(), 1.0);
  EXPECT_EQ(h.overflow(), 2.0);
  EXPECT_EQ(h.total(), 6.0);
  EXPECT_NEAR(h.density(1), 2.0 / 6.0, 1e-12);
  EXPECT_EQ(h.bin_lo(1), 1.0);
  EXPECT_EQ(h.bin_hi(1), 2.0);
}

TEST(HistogramTest, WeightsAccumulate) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.75, 0.5);
  EXPECT_EQ(h.count(0), 2.5);
  EXPECT_EQ(h.count(1), 0.5);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.3);
  h.reset();
  EXPECT_EQ(h.total(), 0.0);
  EXPECT_EQ(h.count(1), 0.0);
}

TEST(BucketedHistogramTest, PaperRtBuckets) {
  BucketedHistogram h({0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0});
  EXPECT_EQ(h.buckets(), 8u);
  h.add(0.1);   // [0, .2]
  h.add(0.2);   // [0, .2] (upper bound inclusive)
  h.add(0.25);  // (.2, .4]
  h.add(1.2);   // (1, 1.5]
  h.add(5.0);   // > 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_NEAR(h.fraction(0), 0.4, 1e-12);
  EXPECT_TRUE(std::isinf(h.upper_bound(7)));
}

TEST(TimeWeightedTest, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.reset(0.0);
  tw.set(0.0, 2.0);   // value 2 on [0, 4)
  tw.set(4.0, 6.0);   // value 6 on [4, 8)
  EXPECT_NEAR(tw.average(8.0), 4.0, 1e-12);
  EXPECT_EQ(tw.current(), 6.0);
}

TEST(TimeWeightedTest, AverageExtrapolatesTail) {
  TimeWeighted tw;
  tw.reset(0.0);
  tw.set(0.0, 1.0);
  // No further updates; at t=10 the signal has been 1.0 throughout.
  EXPECT_NEAR(tw.average(10.0), 1.0, 1e-12);
}

TEST(TimeWeightedTest, ResetRebasesWindow) {
  TimeWeighted tw;
  tw.reset(0.0);
  tw.set(0.0, 100.0);
  tw.set(5.0, 2.0);
  tw.reset(5.0);
  tw.set(5.0, 2.0);
  EXPECT_NEAR(tw.average(10.0), 2.0, 1e-12);
}

TEST(SampleSetTest, QuantilesAndThresholdCounts) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_EQ(s.count_at_or_below(50.0), 50u);
  EXPECT_EQ(s.count_at_or_below(0.5), 0u);
  EXPECT_EQ(s.count_at_or_below(1000.0), 100u);
}

TEST(SampleSetTest, EmptySetIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.count_at_or_below(1.0), 0u);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.add(3.0);
  EXPECT_EQ(s.count_at_or_below(2.0), 0u);
  s.add(1.0);
  EXPECT_EQ(s.count_at_or_below(2.0), 1u);
}

}  // namespace
}  // namespace softres::sim
