// Calibration pins: the simulated testbed must keep reproducing the paper's
// qualitative results (DESIGN.md §5). These run at full scale but with the
// compressed trial schedule, so the suite stays in tens of seconds.

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/runner_adapter.h"
#include "core/bottleneck.h"

namespace softres::exp {
namespace {

ExperimentOptions opts() {
  ExperimentOptions o;
  o.client.ramp_up_s = 20.0;
  o.client.runtime_s = 60.0;
  o.client.ramp_down_s = 3.0;
  return o;
}

Experiment make(const char* hw) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.hw = HardwareConfig::parse(hw);
  return Experiment(cfg, opts());
}

TEST(CalibrationTest, TomcatCpuCriticalOn1212) {
  Experiment e = make("1/2/1/2");
  const RunResult r = e.run(SoftConfig{400, 15, 60}, 6200);
  const CpuStat* tomcat = r.find_cpu("tomcat0.cpu");
  const CpuStat* cjdbc = r.find_cpu("cjdbc0.cpu");
  ASSERT_NE(tomcat, nullptr);
  ASSERT_NE(cjdbc, nullptr);
  EXPECT_GT(tomcat->util_pct, 95.0);
  EXPECT_LT(cjdbc->util_pct, 95.0);
  // Peak throughput in the paper's range (hundreds of req/s).
  EXPECT_GT(r.throughput, 600.0);
  EXPECT_LT(r.throughput, 1100.0);
}

TEST(CalibrationTest, CjdbcCpuCriticalOn1414) {
  Experiment e = make("1/4/1/4");
  const RunResult r = e.run(SoftConfig{400, 15, 20}, 7400);
  const CpuStat* cjdbc = r.find_cpu("cjdbc0.cpu");
  ASSERT_NE(cjdbc, nullptr);
  EXPECT_GT(cjdbc->util_pct, 95.0);
  for (int i = 0; i < 4; ++i) {
    const CpuStat* t = r.find_cpu("tomcat" + std::to_string(i) + ".cpu");
    ASSERT_NE(t, nullptr);
    EXPECT_LT(t->util_pct, 95.0);
  }
}

TEST(CalibrationTest, UnderAllocationHidesBottleneckFromHardware) {
  // Section III-A: 6 threads per Tomcat caps goodput with all hardware idle.
  Experiment e = make("1/2/1/2");
  const RunResult r = e.run(SoftConfig{400, 6, 60}, 6200);
  EXPECT_TRUE(r.saturated_hardware().empty());
  EXPECT_FALSE(r.saturated_soft().empty());
  // And a larger pool does better at the same workload.
  const RunResult better = e.run(SoftConfig{400, 15, 60}, 6200);
  EXPECT_GT(better.goodput(1.0), r.goodput(1.0) * 1.15);
}

TEST(CalibrationTest, OverAllocationGcCollapseOn1414) {
  // Section III-B: 200 connections/Tomcat explode middleware GC time versus
  // 10 connections, and goodput drops.
  Experiment e = make("1/4/1/4");
  const RunResult small = e.run(SoftConfig{400, 200, 10}, 7200);
  const RunResult big = e.run(SoftConfig{400, 200, 200}, 7200);
  EXPECT_GT(big.cjdbc_gc_seconds, small.cjdbc_gc_seconds * 5.0);
  EXPECT_GT(small.goodput(2.0), big.goodput(2.0) * 1.2);
}

TEST(CalibrationTest, BufferingEffectOn1414) {
  // Section III-C: a 30-thread Apache collapses at high workload and the
  // *back-end* CPU utilization drops; 400 threads keep pushing work down.
  Experiment e = make("1/4/1/4");
  const RunResult small_mid = e.run(SoftConfig{30, 6, 20}, 6600);
  const RunResult small_high = e.run(SoftConfig{30, 6, 20}, 7800);
  const RunResult big_high = e.run(SoftConfig{400, 6, 20}, 7800);
  // Non-monotone C-JDBC CPU for the small pool.
  EXPECT_LT(small_high.find_cpu("cjdbc0.cpu")->util_pct,
            small_mid.find_cpu("cjdbc0.cpu")->util_pct - 5.0);
  // The large pool sustains much higher goodput at 7800.
  EXPECT_GT(big_high.goodput(2.0), small_high.goodput(2.0) * 1.5);
}

TEST(CalibrationTest, MultiBottleneckDetectedAcrossTiers) {
  // The paper's excluded case [9]: with inflated per-query DB demand the app
  // and database tiers saturate together, and the detector must classify the
  // observation as a multi-bottleneck rather than pick a single tier.
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.hw = HardwareConfig::parse("1/2/1/2");
  // Lift MySQL demand so its capacity (~1/(D * Req_ratio/2 servers)) lands
  // at the Tomcat tier's ~780 req/s.
  cfg.demands.mysql_per_query_s = 0.00078;
  ExperimentOptions o = opts();
  Experiment e(cfg, o);
  const RunResult r = e.run(SoftConfig{400, 30, 60}, 6800);
  bool app_saturated = false, db_saturated = false;
  for (const auto& c : r.cpus) {
    if (c.name.rfind("tomcat", 0) == 0 && c.saturated) app_saturated = true;
    if (c.name.rfind("mysql", 0) == 0 && c.saturated) db_saturated = true;
  }
  EXPECT_TRUE(app_saturated);
  EXPECT_TRUE(db_saturated);
  const core::BottleneckReport report = core::detect_bottleneck(
      RunnerAdapter::to_observation(r, 1.0));
  EXPECT_EQ(report.kind, core::BottleneckKind::kMulti);
}

TEST(CalibrationTest, InteractiveLawHoldsBelowSaturation) {
  // Below the knee the closed-loop identity N = X (R + Z) must hold.
  Experiment e = make("1/2/1/2");
  const RunResult r = e.run(SoftConfig{400, 15, 60}, 3000);
  const double n = r.throughput *
                   (r.response_times.mean() + 7.0 /* think time */);
  EXPECT_NEAR(n, 3000.0, 150.0);
}

}  // namespace
}  // namespace softres::exp
