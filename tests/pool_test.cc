#include "soft/pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sampler.h"
#include "sim/simulator.h"
#include "soft/pool_monitor.h"

namespace softres::soft {
namespace {

TEST(PoolTest, GrantsImmediatelyWhenFree) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);  // synchronous grant
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(PoolTest, QueuesBeyondCapacityFifo) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(pool.waiting(), 2u);
  EXPECT_TRUE(pool.saturated());
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(PoolTest, UtilizationFraction) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  EXPECT_EQ(pool.utilization(), 0.0);
  pool.acquire([] {});
  pool.acquire([] {});
  EXPECT_NEAR(pool.utilization(), 0.5, 1e-12);
}

TEST(PoolTest, SaturatedRequiresWaiters) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  pool.acquire([] {});
  EXPECT_FALSE(pool.saturated());  // full but nobody queued
  pool.acquire([] {});
  EXPECT_TRUE(pool.saturated());
}

TEST(PoolTest, TryAcquireRespectsQueue) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());  // full
  pool.acquire([] {});               // waiter
  pool.release();
  // Waiter got the unit; try_acquire must not jump the queue.
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_FALSE(pool.try_acquire());
}

TEST(PoolTest, WaitTimeMeasured) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  pool.acquire([] {});
  bool granted = false;
  pool.acquire([&] { granted = true; });
  sim.schedule(2.0, [&] { pool.release(); });
  sim.run();
  EXPECT_TRUE(granted);
  // Two acquisitions: one waited 0, one waited 2.0.
  EXPECT_NEAR(pool.mean_wait_time(), 1.0, 1e-9);
  EXPECT_EQ(pool.total_acquired(), 2u);
}

TEST(PoolTest, GrowCapacityAdmitsWaiters) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  int granted = 0;
  for (int i = 0; i < 3; ++i) pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  pool.set_capacity(3);
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(pool.in_use(), 3u);
}

TEST(PoolTest, ShrinkCapacityTakesEffectLazily) {
  sim::Simulator sim;
  Pool pool(sim, "p", 3);
  for (int i = 0; i < 3; ++i) pool.acquire([] {});
  pool.set_capacity(1);
  EXPECT_EQ(pool.in_use(), 3u);  // nothing evicted
  pool.release();
  pool.release();
  // Now at capacity; a new acquire queues.
  int granted = 0;
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 0);
  pool.release();
  EXPECT_EQ(granted, 1);
}

TEST(PoolTest, GrowAdmitsWaitersFifoWithWaitStats) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });  // granted at t=0, waited 0
  for (int i = 1; i <= 3; ++i) {
    pool.acquire([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(pool.waiting(), 3u);
  sim.schedule(5.0, [&] { pool.set_capacity(3); });
  sim.run();
  // The grow admits exactly the two oldest waiters, in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.waiting(), 1u);
  // Wait stats cover the admitted waiters: waits 0, 5, 5.
  EXPECT_EQ(pool.total_acquired(), 3u);
  EXPECT_NEAR(pool.mean_wait_time(), 10.0 / 3.0, 1e-9);
}

TEST(PoolTest, LazyShrinkDrainsOneUnitPerRelease) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  for (int i = 0; i < 4; ++i) pool.acquire([] {});
  pool.set_capacity(2);
  EXPECT_TRUE(pool.draining());
  EXPECT_EQ(pool.drain_pending(), 2u);
  EXPECT_EQ(pool.drained_total(), 0u);
  int granted = 0;
  pool.acquire([&] { ++granted; });  // queues behind the drain
  EXPECT_TRUE(pool.saturated());     // over-committed + waiter: starved
  pool.release();                    // retires a unit, does not recycle it
  EXPECT_EQ(pool.drained_total(), 1u);
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(granted, 0);
  pool.release();                    // second drain; now at capacity
  EXPECT_EQ(pool.drained_total(), 2u);
  EXPECT_FALSE(pool.draining());
  EXPECT_EQ(pool.drain_pending(), 0u);
  EXPECT_EQ(granted, 0);  // at capacity, the waiter still holds
  pool.release();         // below capacity: the unit recycles to the waiter
  EXPECT_EQ(pool.drained_total(), 2u);
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(pool.in_use(), 2u);
}

TEST(PoolTest, UtilizationClampedWhileDraining) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  for (int i = 0; i < 4; ++i) pool.acquire([] {});
  pool.set_capacity(2);  // in_use 4 > capacity 2
  EXPECT_EQ(pool.utilization(), 1.0);
  EXPECT_EQ(pool.drain_pending(), 2u);
  pool.set_capacity(0);
  EXPECT_EQ(pool.utilization(), 1.0);  // zero capacity never divides
}

TEST(PoolTest, SaturatedUsesOverCommitToo) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});  // waiter
  pool.set_capacity(1);
  // in_use (2) exceeds capacity (1) with a queue: just as starved as an
  // exactly-full pool. The old `==` comparison would have reported healthy.
  EXPECT_TRUE(pool.saturated());
}

TEST(PoolTest, CapacityEpochLogRecordsRealResizes) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  sim.schedule(1.0, [&] { pool.set_capacity(8); });
  sim.schedule(2.0, [&] { pool.set_capacity(8); });  // no-op: not logged
  sim.schedule(3.0, [&] { pool.set_capacity(2); });
  sim.run();
  const auto& epochs = pool.capacity_epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].at, 1.0);
  EXPECT_EQ(epochs[0].from, 4u);
  EXPECT_EQ(epochs[0].to, 8u);
  EXPECT_EQ(epochs[1].at, 3.0);
  EXPECT_EQ(epochs[1].from, 8u);
  EXPECT_EQ(epochs[1].to, 2u);
}

TEST(PoolTest, ResizeAroundResetStatsKeepsOccupancyConsistent) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  for (int i = 0; i < 3; ++i) pool.acquire([] {});  // 3 in use from t=0
  sim.schedule(2.0, [&] {
    pool.reset_stats(2.0);
    pool.set_capacity(1);  // shrink mid-window; occupancy must not jump
  });
  sim.schedule(6.0, [&] { pool.release(); });  // drains one: 3 -> 2
  sim.run();
  sim.run_until(10.0);
  // From the reset at t=2: 3 in use over [2,6], 2 over [6,10] -> 2.5 mean.
  EXPECT_NEAR(pool.average_in_use(10.0), 2.5, 1e-9);
  EXPECT_EQ(pool.drained_total(), 1u);
  EXPECT_TRUE(pool.draining());  // 2 in use > capacity 1
}

TEST(PoolTest, AverageInUseTimeWeighted) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  pool.reset_stats(0.0);
  pool.acquire([] {});               // 1 in use from t=0
  sim.schedule(4.0, [&] { pool.acquire([] {}); });  // 2 in use from t=4
  sim.run();
  sim.run_until(8.0);
  EXPECT_NEAR(pool.average_in_use(8.0), 1.5, 1e-9);
}

TEST(PoolMonitorTest, UtilProbeAndDensity) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  sim::Sampler sampler(sim, 1.0);
  add_pool_util_probe(sampler, "p.util", pool);
  sampler.start();
  pool.acquire([] {});
  sim.run_until(5.0);
  const sim::TimeSeries* s = sampler.find("p.util");
  ASSERT_EQ(s->size(), 5u);
  for (double v : s->values) EXPECT_NEAR(v, 50.0, 1e-9);
  sim::Histogram density = utilization_density(*s, 0.0, 5.0, 10);
  EXPECT_NEAR(density.density(5), 1.0, 1e-12);  // all mass in [50,60)
}

TEST(PoolMonitorTest, SaturationRule) {
  sim::TimeSeries s{"x", {}, {}};
  // 70% of samples at 100% -> saturated.
  for (int i = 0; i < 10; ++i) s.add(i, i < 7 ? 100.0 : 50.0);
  EXPECT_TRUE(is_saturated(s, 0.0, 10.0));
  // Only 30% at 100% -> not saturated.
  sim::TimeSeries s2{"x", {}, {}};
  for (int i = 0; i < 10; ++i) s2.add(i, i < 3 ? 100.0 : 50.0);
  EXPECT_FALSE(is_saturated(s2, 0.0, 10.0));
  // Empty window -> not saturated.
  EXPECT_FALSE(is_saturated(s, 20.0, 30.0));
}

TEST(PoolMonitorTest, WaitersProbe) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  sim::Sampler sampler(sim, 1.0);
  add_pool_waiters_probe(sampler, "p.waiters", pool);
  sampler.start();
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});
  sim.run_until(1.0);
  EXPECT_EQ(sampler.find("p.waiters")->values[0], 2.0);
}

}  // namespace
}  // namespace softres::soft
