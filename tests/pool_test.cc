#include "soft/pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sampler.h"
#include "sim/simulator.h"
#include "soft/pool_monitor.h"

namespace softres::soft {
namespace {

TEST(PoolTest, GrantsImmediatelyWhenFree) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);  // synchronous grant
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(PoolTest, QueuesBeyondCapacityFifo) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(pool.waiting(), 2u);
  EXPECT_TRUE(pool.saturated());
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(PoolTest, UtilizationFraction) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  EXPECT_EQ(pool.utilization(), 0.0);
  pool.acquire([] {});
  pool.acquire([] {});
  EXPECT_NEAR(pool.utilization(), 0.5, 1e-12);
}

TEST(PoolTest, SaturatedRequiresWaiters) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  pool.acquire([] {});
  EXPECT_FALSE(pool.saturated());  // full but nobody queued
  pool.acquire([] {});
  EXPECT_TRUE(pool.saturated());
}

TEST(PoolTest, TryAcquireRespectsQueue) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());  // full
  pool.acquire([] {});               // waiter
  pool.release();
  // Waiter got the unit; try_acquire must not jump the queue.
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_FALSE(pool.try_acquire());
}

TEST(PoolTest, WaitTimeMeasured) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  pool.acquire([] {});
  bool granted = false;
  pool.acquire([&] { granted = true; });
  sim.schedule(2.0, [&] { pool.release(); });
  sim.run();
  EXPECT_TRUE(granted);
  // Two acquisitions: one waited 0, one waited 2.0.
  EXPECT_NEAR(pool.mean_wait_time(), 1.0, 1e-9);
  EXPECT_EQ(pool.total_acquired(), 2u);
}

TEST(PoolTest, GrowCapacityAdmitsWaiters) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  int granted = 0;
  for (int i = 0; i < 3; ++i) pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  pool.set_capacity(3);
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(pool.in_use(), 3u);
}

TEST(PoolTest, ShrinkCapacityTakesEffectLazily) {
  sim::Simulator sim;
  Pool pool(sim, "p", 3);
  for (int i = 0; i < 3; ++i) pool.acquire([] {});
  pool.set_capacity(1);
  EXPECT_EQ(pool.in_use(), 3u);  // nothing evicted
  pool.release();
  pool.release();
  // Now at capacity; a new acquire queues.
  int granted = 0;
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 0);
  pool.release();
  EXPECT_EQ(granted, 1);
}

TEST(PoolTest, AverageInUseTimeWeighted) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  pool.reset_stats(0.0);
  pool.acquire([] {});               // 1 in use from t=0
  sim.schedule(4.0, [&] { pool.acquire([] {}); });  // 2 in use from t=4
  sim.run();
  sim.run_until(8.0);
  EXPECT_NEAR(pool.average_in_use(8.0), 1.5, 1e-9);
}

TEST(PoolMonitorTest, UtilProbeAndDensity) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  sim::Sampler sampler(sim, 1.0);
  add_pool_util_probe(sampler, "p.util", pool);
  sampler.start();
  pool.acquire([] {});
  sim.run_until(5.0);
  const sim::TimeSeries* s = sampler.find("p.util");
  ASSERT_EQ(s->size(), 5u);
  for (double v : s->values) EXPECT_NEAR(v, 50.0, 1e-9);
  sim::Histogram density = utilization_density(*s, 0.0, 5.0, 10);
  EXPECT_NEAR(density.density(5), 1.0, 1e-12);  // all mass in [50,60)
}

TEST(PoolMonitorTest, SaturationRule) {
  sim::TimeSeries s{"x", {}, {}};
  // 70% of samples at 100% -> saturated.
  for (int i = 0; i < 10; ++i) s.add(i, i < 7 ? 100.0 : 50.0);
  EXPECT_TRUE(is_saturated(s, 0.0, 10.0));
  // Only 30% at 100% -> not saturated.
  sim::TimeSeries s2{"x", {}, {}};
  for (int i = 0; i < 10; ++i) s2.add(i, i < 3 ? 100.0 : 50.0);
  EXPECT_FALSE(is_saturated(s2, 0.0, 10.0));
  // Empty window -> not saturated.
  EXPECT_FALSE(is_saturated(s, 20.0, 30.0));
}

TEST(PoolMonitorTest, WaitersProbe) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  sim::Sampler sampler(sim, 1.0);
  add_pool_waiters_probe(sampler, "p.waiters", pool);
  sampler.start();
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});
  sim.run_until(1.0);
  EXPECT_EQ(sampler.find("p.waiters")->values[0], 2.0);
}

}  // namespace
}  // namespace softres::soft
