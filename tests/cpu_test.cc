#include "hw/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace softres::hw {
namespace {

TEST(CpuTest, SingleJobTakesItsDemand) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double done_at = -1.0;
  cpu.submit(2.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
  EXPECT_NEAR(cpu.work_done(), 2.0, 1e-9);
  EXPECT_EQ(cpu.jobs_completed(), 1u);
}

TEST(CpuTest, ZeroDemandCompletesImmediately) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  bool done = false;
  cpu.submit(0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(CpuTest, TwoEqualJobsShareProcessor) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  std::vector<double> done_times;
  cpu.submit(1.0, [&] { done_times.push_back(sim.now()); });
  cpu.submit(1.0, [&] { done_times.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_times.size(), 2u);
  // Egalitarian PS: both progress at rate 1/2, both end at t=2.
  EXPECT_NEAR(done_times[0], 2.0, 1e-9);
  EXPECT_NEAR(done_times[1], 2.0, 1e-9);
}

TEST(CpuTest, ShortJobOvertakesLongJobUnderPs) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double short_done = -1.0, long_done = -1.0;
  cpu.submit(10.0, [&] { long_done = sim.now(); });
  cpu.submit(1.0, [&] { short_done = sim.now(); });
  sim.run();
  // Short job: progresses at 1/2 -> done at 2.0. Long job: 1 unit done at
  // t=2 (rate 1/2), then full rate: done at 2 + 9 = 11.
  EXPECT_NEAR(short_done, 2.0, 1e-9);
  EXPECT_NEAR(long_done, 11.0, 1e-9);
}

TEST(CpuTest, LateArrivalSharesRemainingWork) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double first = -1.0, second = -1.0;
  cpu.submit(2.0, [&] { first = sim.now(); });
  sim.schedule(1.0, [&] { cpu.submit(2.0, [&] { second = sim.now(); }); });
  sim.run();
  // First job has 1.0 left at t=1; both share: first ends at t=3.
  EXPECT_NEAR(first, 3.0, 1e-9);
  // Second has 1.0 left at t=3, runs alone: ends at 4.
  EXPECT_NEAR(second, 4.0, 1e-9);
}

TEST(CpuTest, MultiCoreRunsJobsInParallel) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 2);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    cpu.submit(3.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 3.0, 1e-9);  // each gets a full core
  EXPECT_NEAR(done[1], 3.0, 1e-9);
}

TEST(CpuTest, MultiCoreSharingBeyondCores) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  // 4 jobs on 2 cores: per-job rate 1/2, all complete at t=2.
  for (double t : done) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(CpuTest, WorkConservation) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  const std::vector<double> demands = {0.5, 1.5, 0.25, 2.0, 0.75};
  int completed = 0;
  double expected = 0.0;
  for (double d : demands) {
    expected += d;
    cpu.submit(d, [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 5);
  EXPECT_NEAR(cpu.work_done(), expected, 1e-9);
  // Single core, always busy until all work done.
  EXPECT_NEAR(sim.now(), expected, 1e-9);
  EXPECT_NEAR(cpu.busy_core_seconds(), expected, 1e-9);
}

TEST(CpuTest, FreezeDelaysCompletionAndCountsBusy) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double done_at = -1.0;
  cpu.submit(1.0, [&] { done_at = sim.now(); });
  sim.schedule(0.5, [&] { cpu.freeze(2.0); });
  sim.run();
  // 0.5 executed, then frozen [0.5, 2.5], then remaining 0.5.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
  EXPECT_NEAR(cpu.freeze_core_seconds(), 2.0, 1e-9);
  EXPECT_NEAR(cpu.busy_core_seconds(), 3.0, 1e-9);  // work + freeze
  EXPECT_NEAR(cpu.work_done(), 1.0, 1e-9);
}

TEST(CpuTest, OverlappingFreezesExtend) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double done_at = -1.0;
  cpu.submit(1.0, [&] { done_at = sim.now(); });
  sim.schedule(0.25, [&] { cpu.freeze(1.0); });   // frozen until 1.25
  sim.schedule(0.75, [&] { cpu.freeze(1.0); });   // extends to 1.75
  sim.schedule(1.0, [&] { cpu.freeze(0.1); });    // shorter: no effect
  sim.run();
  // Work: 0.25 before freeze, frozen [0.25, 1.75], 0.75 after.
  EXPECT_NEAR(done_at, 2.5, 1e-9);
  EXPECT_NEAR(cpu.freeze_core_seconds(), 1.5, 1e-9);
}

TEST(CpuTest, SubmitDuringFreezeWaits) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double done_at = -1.0;
  cpu.freeze(1.0);
  cpu.submit(0.5, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(CpuTest, InstantaneousUtilization) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 2);
  EXPECT_EQ(cpu.instantaneous_utilization(), 0.0);
  cpu.submit(10.0, [] {});
  EXPECT_NEAR(cpu.instantaneous_utilization(), 0.5, 1e-12);
  cpu.submit(10.0, [] {});
  cpu.submit(10.0, [] {});
  EXPECT_EQ(cpu.instantaneous_utilization(), 1.0);
  cpu.freeze(1.0);
  EXPECT_EQ(cpu.instantaneous_utilization(), 1.0);
}

TEST(CpuTest, CompletionCallbackCanResubmit) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  int chain = 0;
  std::function<void()> again = [&] {
    if (++chain < 5) cpu.submit(1.0, again);
  };
  cpu.submit(1.0, again);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_NEAR(sim.now(), 5.0, 1e-9);
}

TEST(CpuTest, ContextSwitchPenaltyInflatesDemand) {
  sim::Simulator sim;
  Cpu fast(sim, "fast", 1, 0.0);
  Cpu slow(sim, "slow", 1, 0.1);
  double fast_done = -1, slow_done = -1;
  // Preload each CPU with 3 long jobs so the 4th sees a run queue.
  for (int i = 0; i < 3; ++i) {
    fast.submit(100.0, [] {});
    slow.submit(100.0, [] {});
  }
  fast.submit(1.0, [&] { fast_done = sim.now(); });
  slow.submit(1.0, [&] { slow_done = sim.now(); });
  sim.run(100000);
  EXPECT_GT(slow_done, fast_done);
}

TEST(CpuTest, FifoTieBreakForEqualFinish) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  std::vector<int> order;
  cpu.submit(1.0, [&] { order.push_back(0); });
  cpu.submit(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace softres::hw
