#include <gtest/gtest.h>

#include <sstream>

#include "exp/config.h"
#include "exp/experiment.h"
#include "exp/testbed.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/sampler.h"
#include "sim/simulator.h"

namespace softres::obs {
namespace {

tier::Request::TraceSpan span(const std::string& server, double enter,
                              double leave, double queue = 0.0,
                              double conn = 0.0, double gc = 0.0,
                              double fin = 0.0) {
  return tier::Request::TraceSpan{server, enter, leave, queue, conn, gc, fin};
}

TEST(TierOfTest, StripsTrailingDigits) {
  EXPECT_EQ(tier_of("tomcat0"), "tomcat");
  EXPECT_EQ(tier_of("mysql12"), "mysql");
  EXPECT_EQ(tier_of("apache"), "apache");
}

TEST(SpanTreeTest, AssemblesOutOfOrderSpans) {
  // Servers push spans at *leave* time, so a real trace arrives inner-first;
  // assembly must not care. Feed a deliberately scrambled order.
  std::vector<tier::Request::TraceSpan> spans = {
      span("mysql1", 5.5, 6.5), span("apache0", 0.0, 10.0),
      span("cjdbc0", 2.0, 4.0), span("tomcat0", 1.0, 9.0),
      span("mysql0", 2.5, 3.5), span("cjdbc0", 5.0, 7.0),
  };
  const std::vector<SpanNode> roots = build_span_tree(spans);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span.server, "apache0");
  ASSERT_EQ(roots[0].children.size(), 1u);
  const SpanNode& tomcat = roots[0].children[0];
  EXPECT_EQ(tomcat.span.server, "tomcat0");
  ASSERT_EQ(tomcat.children.size(), 2u);
  // Children come out enter-ordered regardless of recording order.
  EXPECT_EQ(tomcat.children[0].span.enter, 2.0);
  EXPECT_EQ(tomcat.children[1].span.enter, 5.0);
  for (const SpanNode& q : tomcat.children) {
    ASSERT_EQ(q.children.size(), 1u);
    EXPECT_EQ(tier_of(q.children[0].span.server), "mysql");
  }
}

TEST(SpanTreeTest, ConcurrentSiblingsShareAParent) {
  // Overlap without containment must not nest.
  std::vector<tier::Request::TraceSpan> spans = {
      span("tomcat0", 0.0, 10.0), span("cjdbc0", 1.0, 5.0),
      span("cjdbc1", 4.0, 9.0),
  };
  const std::vector<SpanNode> roots = build_span_tree(spans);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].children.size(), 2u);
}

TEST(SamplingTest, HashMixIsDeterministicAndSeedSensitive) {
  for (std::uint64_t id = 1; id < 100; ++id) {
    EXPECT_EQ(sim::Rng::hash_mix(42, id), sim::Rng::hash_mix(42, id));
  }
  int differing = 0;
  for (std::uint64_t id = 1; id < 100; ++id) {
    if (sim::Rng::hash_mix(42, id) != sim::Rng::hash_mix(43, id)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(SamplingTest, HashMixFractionTracksRate) {
  // u = h >> 11 scaled to [0,1) — the sampler traces iff u < rate. Over many
  // ids the traced fraction must track the rate (hash uniformity).
  const double rate = 0.05;
  int hits = 0;
  const int n = 20000;
  for (int id = 1; id <= n; ++id) {
    const std::uint64_t h =
        sim::Rng::hash_mix(7, static_cast<std::uint64_t>(id));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < rate) ++hits;
  }
  const double fraction = static_cast<double>(hits) / n;
  EXPECT_NEAR(fraction, rate, 0.01);
}

TEST(RegistryTest, DedupesOnNameAndLabels) {
  Registry r;
  Counter a = r.counter("x_total", {{"k", "v"}});
  Counter b = r.counter("x_total", {{"k", "v"}});
  Counter c = r.counter("x_total", {{"k", "w"}});
  a.inc();
  b.inc(2.0);
  c.inc();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  const Snapshot snap = r.snapshot(0.0);
  const MetricSample* s = snap.find("x_total", {{"k", "v"}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 3.0);
}

TEST(RegistryTest, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5.0);
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(RegistryTest, PrometheusExpositionGolden) {
  Registry r;
  Counter c = r.counter("requests_total", {{"kind", "dynamic"}},
                        "Total requests");
  c.inc(3.0);
  r.gauge_fn("temp", [](sim::SimTime) { return 42.0; });
  Histogram h = r.histogram("rt_seconds", {0.5, 1.0}, {}, "RT");
  h.observe(0.3);
  h.observe(0.7);
  h.observe(5.0);

  std::ostringstream os;
  r.write_prometheus(os, 0.0);
  const std::string expected =
      "# HELP requests_total Total requests\n"
      "# TYPE requests_total counter\n"
      "requests_total{kind=\"dynamic\"} 3\n"
      "# TYPE temp gauge\n"
      "temp 42\n"
      "# HELP rt_seconds RT\n"
      "# TYPE rt_seconds histogram\n"
      "rt_seconds_bucket{le=\"0.5\"} 1\n"
      "rt_seconds_bucket{le=\"1\"} 2\n"
      "rt_seconds_bucket{le=\"+Inf\"} 3\n"
      "rt_seconds_sum 6\n"
      "rt_seconds_count 3\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(RegistryTest, ExportSortsSeriesWithinFamilyByLabelKey) {
  // Series registration order must not leak into the exported text (the
  // determinism contract's unordered-iteration rule applied to our own
  // exporters): register deliberately out of label order, expect sorted
  // emission. Family blocks keep first-appearance order.
  Registry r;
  r.counter("done_total", {{"srv", "tomcat1"}}).inc(2.0);
  r.counter("done_total", {{"srv", "apache0"}}).inc(1.0);
  r.gauge("queue_depth", {{"srv", "cjdbc0"}}).set(7.0);
  r.counter("done_total", {{"srv", "mysql0"}}).inc(3.0);

  std::ostringstream os;
  r.write_prometheus(os, 0.0);
  const std::string expected =
      "# TYPE done_total counter\n"
      "done_total{srv=\"apache0\"} 1\n"
      "done_total{srv=\"mysql0\"} 3\n"
      "done_total{srv=\"tomcat1\"} 2\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth{srv=\"cjdbc0\"} 7\n";
  EXPECT_EQ(os.str(), expected);

  std::ostringstream csv;
  r.write_csv(csv, 0.0);
  const std::string expected_csv =
      "metric,labels,kind,value\n"
      "done_total,srv=apache0,counter,1\n"
      "done_total,srv=mysql0,counter,3\n"
      "done_total,srv=tomcat1,counter,2\n"
      "queue_depth,srv=cjdbc0,gauge,7\n";
  EXPECT_EQ(csv.str(), expected_csv);
}

TEST(RegistryTest, CsvExportGolden) {
  Registry r;
  Counter c = r.counter("done_total", {{"srv", "a0"}});
  c.inc(4.0);
  Histogram h = r.histogram("lat", {1.0}, {});
  h.observe(0.5);
  std::ostringstream os;
  r.write_csv(os, 0.0);
  const std::string expected =
      "metric,labels,kind,value\n"
      "done_total,srv=a0,counter,4\n"
      "lat_bucket,le=1,histogram,1\n"
      "lat_bucket,le=+Inf,histogram,1\n"
      "lat_sum,,histogram,0.5\n"
      "lat_count,,histogram,1\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(RegistryTest, AttachSamplesAliasedSeries) {
  sim::Simulator sim;
  sim::Sampler sampler(sim, 1.0);
  Registry r;
  double v = 0.0;
  r.gauge_fn("cpu_util_pct", [&v](sim::SimTime) { return v; },
             {{"node", "tomcat0"}}, "", "tomcat0.cpu");
  Counter done = r.counter("pages_total");
  r.attach(sampler);
  sampler.start();
  sim.schedule_at(1.5, [&] { v = 50.0; done.inc(); });
  sim.run_until(3.5);
  // The polled gauge lands under its legacy dotted alias...
  const sim::TimeSeries* s = sampler.find("tomcat0.cpu");
  ASSERT_NE(s, nullptr);
  ASSERT_GE(s->size(), 3u);
  EXPECT_DOUBLE_EQ(s->values[0], 0.0);
  EXPECT_DOUBLE_EQ(s->values[2], 50.0);
  // ...and the alias-less counter under its rendered name.
  ASSERT_NE(sampler.find("pages_total"), nullptr);
}

TEST(BreakdownTest, TelescopesExactlyOnSyntheticTrace) {
  tier::Request req;
  req.id = 1;
  req.interaction = 3;
  req.sent_at = -0.1;
  req.completed_at = 1.05;
  req.enable_trace();
  // Recorded inner-first, as real servers do.
  req.record_span("mysql0", 0.25, 0.35);
  req.record_span("cjdbc0", 0.2, 0.4);
  req.record_span("tomcat0", 0.1, 0.9, 0.01, 0.02, 0.03);
  req.record_span("apache0", 0.0, 1.0, 0.05, 0.0, 0.0, 0.02);

  TraceCollector collector;
  ASSERT_TRUE(collector.add(req));
  const LatencyBreakdown b = collector.breakdown();
  EXPECT_EQ(b.requests, 1u);
  EXPECT_NEAR(b.mean_rt_ms, 1150.0, 1e-9);
  // Root = apache: residual = 1.15 - (0.05 + 1.0) = 0.1 s.
  EXPECT_NEAR(b.network_other_ms, 100.0, 1e-9);
  // The telescoping identity: rows + residual == mean RT (FIN excluded).
  EXPECT_NEAR(b.accounted_ms(), b.mean_rt_ms, 1e-9);

  const LatencyBreakdown::Row* tomcat = b.find("tomcat");
  ASSERT_NE(tomcat, nullptr);
  // Exclusive tomcat service: 0.8 - 0.03 gc - 0.02 conn - (0 + 0.2) cjdbc.
  EXPECT_NEAR(tomcat->service_ms, 550.0, 1e-9);
  EXPECT_NEAR(tomcat->gc_ms, 30.0, 1e-9);
  EXPECT_NEAR(tomcat->conn_wait_ms, 20.0, 1e-9);
  const LatencyBreakdown::Row* apache = b.find("apache");
  ASSERT_NE(apache, nullptr);
  EXPECT_NEAR(apache->fin_wait_ms, 20.0, 1e-9);
  // Exclusive apache service: 1.0 - (0.01 + 0.8) tomcat = 0.19.
  EXPECT_NEAR(apache->service_ms, 190.0, 1e-9);
}

TEST(BreakdownTest, SkipsUntracedAndIncompleteRequests) {
  TraceCollector collector;
  tier::Request untraced;
  untraced.completed_at = 1.0;
  EXPECT_FALSE(collector.add(untraced));
  tier::Request in_flight;
  in_flight.enable_trace();
  in_flight.record_span("tomcat0", 0.0, 1.0);
  EXPECT_FALSE(collector.add(in_flight));
  EXPECT_EQ(collector.size(), 0u);
}

TEST(BreakdownTest, MatchesEndToEndResponseTimeOnLiveTestbed) {
  // The acceptance identity on real traces: per-tier sums plus the network
  // residual reproduce the traced requests' mean RT to within 1 %.
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  workload::ClientConfig client;
  client.users = 300;
  client.ramp_up_s = 5.0;
  client.runtime_s = 30.0;
  client.ramp_down_s = 2.0;
  client.trace_sample_rate = 0.05;
  exp::Testbed bed(cfg, client);
  bed.run();

  TraceCollector collector;
  ASSERT_GT(collector.collect(bed.farm().traced_requests()), 0u);
  const LatencyBreakdown b = collector.breakdown();
  ASSERT_GT(b.mean_rt_ms, 0.0);
  EXPECT_NEAR(b.accounted_ms() / b.mean_rt_ms, 1.0, 0.01);
  // All four tiers show up with sensible visit counts.
  for (const char* tier : {"apache", "tomcat", "cjdbc", "mysql"}) {
    const LatencyBreakdown::Row* row = b.find(tier);
    ASSERT_NE(row, nullptr) << tier;
    EXPECT_GT(row->visits, 0.0);
    EXPECT_GT(row->residence_ms, 0.0);
  }
}

TEST(ChromeTraceTest, EmitsBalancedJsonWithTierProcesses) {
  tier::Request req;
  req.id = 7;
  req.interaction = 1;
  req.sent_at = 0.0;
  req.completed_at = 1.1;
  req.enable_trace();
  req.record_span("tomcat0", 0.1, 0.9, 0.01);
  req.record_span("apache0", 0.0, 1.0, 0.0, 0.0, 0.0, 0.05);
  TraceCollector collector;
  ASSERT_TRUE(collector.add(req));

  std::ostringstream os;
  collector.write_chrome_trace(os);
  const std::string json = os.str();
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("tomcat0 queue"), std::string::npos);
  EXPECT_NE(json.find("apache0 fin-wait"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST(ExperimentTest, RunResultCarriesSnapshotAndTraces) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  exp::ExperimentOptions opts;
  opts.client.users = 300;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 20.0;
  opts.client.ramp_down_s = 2.0;
  opts.set_trace_sample_rate(0.05);
  exp::Experiment experiment(cfg, opts);
  const exp::RunResult r = experiment.run(cfg.soft, 300);

  EXPECT_GT(r.traces.size(), 0u);
  const MetricSample* reqs =
      r.metrics.find("client_requests_total", {{"kind", "dynamic"}});
  ASSERT_NE(reqs, nullptr);
  EXPECT_GT(reqs->value, 0.0);
  const MetricSample* hist = r.metrics.find("client_response_time_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, r.response_times.count());
  // Registry-backed sampler series keep their legacy dotted names.
  EXPECT_NE(r.find_series("apache0.processed"), nullptr);
  EXPECT_NE(r.find_series("tomcat0.threads.util"), nullptr);
  EXPECT_NE(r.find_series("apache0.cpu"), nullptr);
}

}  // namespace
}  // namespace softres::obs
