#include "exp/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace softres::exp {
namespace {

TEST(HardwareConfigTest, ParsesPaperNotation) {
  const HardwareConfig hw = HardwareConfig::parse("1/2/1/2");
  EXPECT_EQ(hw.web, 1);
  EXPECT_EQ(hw.app, 2);
  EXPECT_EQ(hw.middleware, 1);
  EXPECT_EQ(hw.db, 2);
  EXPECT_EQ(hw.to_string(), "1/2/1/2");
}

TEST(HardwareConfigTest, RoundTrips) {
  for (const char* text : {"1/2/1/2", "1/4/1/4", "2/8/2/8", "1/1/1/1"}) {
    EXPECT_EQ(HardwareConfig::parse(text).to_string(), text);
  }
}

TEST(HardwareConfigTest, RejectsMalformed) {
  EXPECT_THROW(HardwareConfig::parse(""), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("1/2/1"), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("1/2/1/2/3"), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("1/a/1/2"), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("1//1/2"), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("1/-2/1/2"), std::invalid_argument);
  EXPECT_THROW(HardwareConfig::parse("0/2/1/2"), std::invalid_argument);
}

TEST(SoftConfigTest, ParsesPaperNotation) {
  const SoftConfig s = SoftConfig::parse("400-15-6");
  EXPECT_EQ(s.apache_threads, 400u);
  EXPECT_EQ(s.tomcat_threads, 15u);
  EXPECT_EQ(s.db_connections, 6u);
  EXPECT_EQ(s.to_string(), "400-15-6");
}

TEST(SoftConfigTest, RejectsMalformed) {
  EXPECT_THROW(SoftConfig::parse("400-15"), std::invalid_argument);
  EXPECT_THROW(SoftConfig::parse("400-15-6-1"), std::invalid_argument);
  EXPECT_THROW(SoftConfig::parse("x-15-6"), std::invalid_argument);
  EXPECT_THROW(SoftConfig::parse("0-15-6"), std::invalid_argument);
  EXPECT_THROW(SoftConfig::parse(""), std::invalid_argument);
}

TEST(SoftConfigTest, Equality) {
  EXPECT_EQ(SoftConfig::parse("400-15-6"), (SoftConfig{400, 15, 6}));
  EXPECT_NE(SoftConfig::parse("400-15-6"), (SoftConfig{400, 15, 7}));
}

TEST(TestbedConfigTest, DefaultsAreSane) {
  const TestbedConfig cfg = TestbedConfig::defaults();
  EXPECT_EQ(cfg.node.cores, 1u);
  EXPECT_GT(cfg.tomcat_jvm.young_gen_mb, 0.0);
  EXPECT_GT(cfg.cjdbc_jvm.young_gen_mb, 0.0);
  EXPECT_GT(cfg.link_bandwidth_Bps, 1e8);
  EXPECT_GT(cfg.tomcat_alloc_per_request_mb, 0.0);
  EXPECT_GT(cfg.cjdbc_alloc_per_query_mb, 0.0);
}

}  // namespace
}  // namespace softres::exp
