#include "net/tcp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace softres::net {
namespace {

TEST(TcpModelTest, BaseDelayBelowKnee) {
  TcpConfig cfg;
  TcpModel model(cfg, sim::Rng(1));
  EXPECT_NEAR(model.median_fin_delay(0.0), cfg.fin_base_s, 1e-12);
  EXPECT_NEAR(model.median_fin_delay(cfg.load_knee), cfg.fin_base_s, 1e-12);
  EXPECT_NEAR(model.median_fin_delay(0.5), cfg.fin_base_s, 1e-12);
}

TEST(TcpModelTest, DelayGrowsBeyondKnee) {
  TcpConfig cfg;
  TcpModel model(cfg, sim::Rng(1));
  const double at_knee = model.median_fin_delay(cfg.load_knee);
  const double above1 = model.median_fin_delay(cfg.load_knee + 0.1);
  const double above2 = model.median_fin_delay(cfg.load_knee + 0.2);
  EXPECT_GT(above1, at_knee);
  EXPECT_GT(above2, above1);
  // Superlinear: the second increment adds more than the first.
  EXPECT_GT(above2 - above1, above1 - at_knee);
}

TEST(TcpModelTest, ExactOverloadFormula) {
  TcpConfig cfg;
  cfg.fin_base_s = 0.01;
  cfg.load_knee = 1.0;
  cfg.fin_load_coeff_s = 0.1;
  cfg.load_scale = 0.1;
  cfg.fin_load_exponent = 2.0;
  TcpModel model(cfg, sim::Rng(1));
  // overload = (1.2 - 1.0)/0.1 = 2; extra = 0.1 * 2^2 = 0.4.
  EXPECT_NEAR(model.median_fin_delay(1.2), 0.41, 1e-12);
}

TEST(TcpModelTest, AblationDisablesLoadDependence) {
  TcpConfig cfg;
  cfg.enable_load_dependence = false;
  TcpModel model(cfg, sim::Rng(1));
  EXPECT_NEAR(model.median_fin_delay(2.0), cfg.fin_base_s, 1e-12);
}

TEST(TcpModelTest, SampleMedianTracksConfiguredMedian) {
  TcpConfig cfg;
  TcpModel model(cfg, sim::Rng(99));
  std::vector<double> v;
  const int n = 40001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(model.sample_fin_delay(1.0));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], model.median_fin_delay(1.0),
              0.1 * model.median_fin_delay(1.0));
}

TEST(TcpModelTest, SamplesAreNonNegative) {
  TcpModel model(TcpConfig{}, sim::Rng(7));
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(model.sample_fin_delay(1.2), 0.0);
  }
}

}  // namespace
}  // namespace softres::net
