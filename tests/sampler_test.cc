#include "sim/sampler.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace softres::sim {
namespace {

TEST(TimeSeriesTest, WindowAndAggregates) {
  TimeSeries s{"x", {}, {}};
  for (int i = 1; i <= 10; ++i) s.add(i, i * 10.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_NEAR(s.mean(), 55.0, 1e-12);
  EXPECT_NEAR(s.mean_between(3.0, 6.0), 40.0, 1e-12);  // t=3,4,5
  EXPECT_EQ(s.max_between(2.0, 8.0), 70.0);
  EXPECT_EQ(s.window(4.0, 6.0), (std::vector<double>{40.0, 50.0}));
}

TEST(TimeSeriesTest, EmptyWindowIsZero) {
  TimeSeries s{"x", {}, {}};
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.mean_between(0.0, 1.0), 0.0);
  EXPECT_EQ(s.max_between(0.0, 1.0), 0.0);
}

TEST(SamplerTest, PollsAtFixedInterval) {
  Simulator sim;
  Sampler sampler(sim, 1.0);
  int calls = 0;
  sampler.add_probe("count", [&](SimTime) { return static_cast<double>(++calls); });
  sampler.start();
  sim.run_until(5.5);
  const TimeSeries& s = sampler.series(0);
  ASSERT_EQ(s.size(), 5u);  // t = 1..5
  EXPECT_EQ(s.times.front(), 1.0);
  EXPECT_EQ(s.times.back(), 5.0);
  EXPECT_EQ(s.values.back(), 5.0);
}

TEST(SamplerTest, StopHaltsSampling) {
  Simulator sim;
  Sampler sampler(sim, 1.0);
  sampler.add_probe("x", [](SimTime) { return 1.0; });
  sampler.start();
  sim.run_until(3.5);
  sampler.stop();
  sim.run_until(10.0);
  EXPECT_EQ(sampler.series(0).size(), 3u);
}

TEST(SamplerTest, ProbeReceivesSampleTime) {
  Simulator sim;
  Sampler sampler(sim, 0.5);
  std::vector<SimTime> seen;
  sampler.add_probe("t", [&](SimTime t) {
    seen.push_back(t);
    return t;
  });
  sampler.start();
  sim.run_until(2.0);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], 0.5);
  EXPECT_EQ(seen[3], 2.0);
}

TEST(SamplerTest, FindByName) {
  Simulator sim;
  Sampler sampler(sim);
  sampler.add_probe("a", [](SimTime) { return 1.0; });
  sampler.add_probe("b", [](SimTime) { return 2.0; });
  EXPECT_NE(sampler.find("a"), nullptr);
  EXPECT_NE(sampler.find("b"), nullptr);
  EXPECT_EQ(sampler.find("c"), nullptr);
  EXPECT_EQ(sampler.find("b")->name, "b");
}

TEST(SamplerTest, MultipleProbesSampledTogether) {
  Simulator sim;
  Sampler sampler(sim, 1.0);
  sampler.add_probe("one", [](SimTime) { return 1.0; });
  sampler.add_probe("two", [](SimTime) { return 2.0; });
  sampler.start();
  sim.run_until(3.0);
  EXPECT_EQ(sampler.series(0).size(), sampler.series(1).size());
  EXPECT_EQ(sampler.series(1).values[0], 2.0);
}

TEST(SamplerTest, StartIsIdempotent) {
  Simulator sim;
  Sampler sampler(sim, 1.0);
  sampler.add_probe("x", [](SimTime) { return 0.0; });
  sampler.start();
  sampler.start();  // must not double-schedule
  sim.run_until(2.5);
  EXPECT_EQ(sampler.series(0).size(), 2u);
}

}  // namespace
}  // namespace softres::sim
