// The PR-2 regression suite: parallel sweeps must be bit-identical to serial
// ones. Trial seeds are a pure function of trial identity (base seed,
// topology, soft allocation, users), so the same trial draws the same random
// stream no matter which thread runs it or in what order.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "exp/experiment.h"
#include "exp/run_context.h"
#include "exp/sweep.h"
#include "obs/profiler.h"
#include "support/prof.h"

namespace softres::exp {
namespace {

TestbedConfig cheap_config() {
  TestbedConfig cfg = TestbedConfig::defaults();
  // 10x demands so trials are cheap.
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  return cfg;
}

ExperimentOptions cheap_options() {
  ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 15.0;
  opts.client.ramp_down_s = 2.0;
  return opts;
}

// Every observable a figure script reads must match exactly — not "close".
void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.trial_seed, b.trial_seed);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.goodput(2.0), b.goodput(2.0));
  EXPECT_EQ(a.goodput(1.0), b.goodput(1.0));
  ASSERT_EQ(a.response_times.count(), b.response_times.count());
  EXPECT_EQ(a.response_times.mean(), b.response_times.mean());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(a.response_times.quantile(q), b.response_times.quantile(q));
  }
  ASSERT_EQ(a.cpus.size(), b.cpus.size());
  for (std::size_t i = 0; i < a.cpus.size(); ++i) {
    EXPECT_EQ(a.cpus[i].util_pct, b.cpus[i].util_pct);
  }
  ASSERT_EQ(a.pools.size(), b.pools.size());
  for (std::size_t i = 0; i < a.pools.size(); ++i) {
    EXPECT_EQ(a.pools[i].util_pct, b.pools[i].util_pct);
    EXPECT_EQ(a.pools[i].mean_wait_ms, b.pools[i].mean_wait_ms);
  }
  // The online diagnoser is part of the determinism contract too: verdict,
  // confidence, every evidence window and the suggested action must be
  // bit-identical, not merely equivalent.
  EXPECT_EQ(a.diagnosis.pathology, b.diagnosis.pathology);
  EXPECT_EQ(a.diagnosis.confidence, b.diagnosis.confidence);
  EXPECT_EQ(a.diagnosis.implicated_resources, b.diagnosis.implicated_resources);
  EXPECT_EQ(a.diagnosis.suggested_action.kind, b.diagnosis.suggested_action.kind);
  EXPECT_EQ(a.diagnosis.suggested_action.resource,
            b.diagnosis.suggested_action.resource);
  EXPECT_EQ(a.diagnosis.suggested_action.text, b.diagnosis.suggested_action.text);
  ASSERT_EQ(a.diagnosis.evidence.size(), b.diagnosis.evidence.size());
  for (std::size_t i = 0; i < a.diagnosis.evidence.size(); ++i) {
    const obs::EvidenceWindow& ea = a.diagnosis.evidence[i];
    const obs::EvidenceWindow& eb = b.diagnosis.evidence[i];
    EXPECT_EQ(ea.series, eb.series);
    EXPECT_EQ(ea.from, eb.from);
    EXPECT_EQ(ea.to, eb.to);
    EXPECT_EQ(ea.condition, eb.condition);
    EXPECT_EQ(ea.observed, eb.observed);
    EXPECT_EQ(ea.threshold, eb.threshold);
  }
  EXPECT_EQ(a.diagnosis.summary(), b.diagnosis.summary());
  // Tail evidence rides on the diagnosis (ISSUE 10) and inherits the same
  // contract: the citation string and every number behind it must match.
  EXPECT_EQ(a.diagnosis.tail.present, b.diagnosis.tail.present);
  EXPECT_EQ(a.diagnosis.tail.cohort, b.diagnosis.tail.cohort);
  EXPECT_EQ(a.diagnosis.tail.component, b.diagnosis.tail.component);
  EXPECT_EQ(a.diagnosis.tail.cohort_mean_ms, b.diagnosis.tail.cohort_mean_ms);
  EXPECT_EQ(a.diagnosis.tail.base_mean_ms, b.diagnosis.tail.base_mean_ms);
  EXPECT_EQ(a.diagnosis.tail.delta, b.diagnosis.tail.delta);
  EXPECT_EQ(a.diagnosis.tail.corroborates, b.diagnosis.tail.corroborates);
  EXPECT_EQ(a.diagnosis.tail.text, b.diagnosis.tail.text);
}

TEST(DeriveSeedTest, PureFunctionOfTrialIdentity) {
  const HardwareConfig hw{1, 2, 1, 2};
  const SoftConfig soft{100, 10, 20};
  const std::uint64_t s = RunContext::derive_seed(42, hw, soft, 3000);
  EXPECT_EQ(s, RunContext::derive_seed(42, hw, soft, 3000));
}

TEST(DeriveSeedTest, EveryComponentChangesTheSeed) {
  const HardwareConfig hw{1, 2, 1, 2};
  const SoftConfig soft{100, 10, 20};
  const std::uint64_t s = RunContext::derive_seed(42, hw, soft, 3000);

  EXPECT_NE(s, RunContext::derive_seed(43, hw, soft, 3000));
  EXPECT_NE(s, RunContext::derive_seed(42, hw, soft, 3001));

  HardwareConfig hw2 = hw;
  hw2.app = 4;
  EXPECT_NE(s, RunContext::derive_seed(42, hw2, soft, 3000));

  SoftConfig apache = soft;
  apache.apache_threads = 101;
  EXPECT_NE(s, RunContext::derive_seed(42, hw, apache, 3000));
  SoftConfig tomcat = soft;
  tomcat.tomcat_threads = 11;
  EXPECT_NE(s, RunContext::derive_seed(42, hw, tomcat, 3000));
  SoftConfig conns = soft;
  conns.db_connections = 21;
  EXPECT_NE(s, RunContext::derive_seed(42, hw, conns, 3000));
}

TEST(DeriveSeedTest, SweepPointsGetDistinctSeeds) {
  const HardwareConfig hw{1, 4, 1, 4};
  std::set<std::uint64_t> seeds;
  for (std::size_t users = 1000; users <= 8000; users += 500) {
    for (std::size_t threads : {30, 100, 400}) {
      seeds.insert(RunContext::derive_seed(
          7, hw, SoftConfig{threads, 6, 20}, users));
    }
  }
  EXPECT_EQ(seeds.size(), 15u * 3u);  // no collisions across the grid
}

TEST(DeterminismTest, ExperimentExposesTheTrialSeed) {
  Experiment e(cheap_config(), cheap_options());
  const SoftConfig soft{50, 10, 10};
  const RunResult r = e.run(soft, 200);
  EXPECT_EQ(r.trial_seed, e.trial_seed(soft, 200));
  EXPECT_NE(r.trial_seed, 0u);
}

// The acceptance criterion of this PR: a 6-point sweep with a 4-worker pool
// is bit-identical to the same sweep run strictly serially.
TEST(DeterminismTest, ParallelSweepMatchesSerialSweep) {
  Experiment e(cheap_config(), cheap_options());
  const SoftConfig soft{50, 10, 10};
  const auto workloads = workload_range(100, 600, 100);
  ASSERT_EQ(workloads.size(), 6u);

  const auto serial = sweep_workload(e, soft, workloads, /*jobs=*/1);
  const auto parallel = sweep_workload(e, soft, workloads, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload " + std::to_string(workloads[i]));
    expect_bit_identical(serial[i], parallel[i]);
  }
}

// A trial run alone equals the same trial run inside a sweep: results do not
// depend on which other trials share the Experiment or the pool.
TEST(DeterminismTest, SingleRunMatchesSweepMember) {
  Experiment e(cheap_config(), cheap_options());
  const SoftConfig soft{50, 10, 10};
  const auto sweep = sweep_workload(e, soft, {100, 200, 300}, /*jobs=*/3);
  const RunResult alone = e.run(soft, 200);
  expect_bit_identical(alone, sweep[1]);
}

// The profiler's count axis is part of the determinism contract: the same
// trial enters the same scopes the same number of times in the same phases
// no matter which worker thread runs it. (The timing axis — cycles, paths'
// cycle weights — is machine-local and deliberately NOT compared.)
TEST(DeterminismTest, ProfileCountAxisIsBitIdenticalAcrossJobs) {
  ExperimentOptions opts = cheap_options();
  opts.profile = true;
  Experiment e(cheap_config(), opts);
  const SoftConfig soft{50, 10, 10};
  const auto workloads = workload_range(100, 400, 100);  // 4 trials

  const auto serial = sweep_workload(e, soft, workloads, /*jobs=*/1);
  const auto parallel = sweep_workload(e, soft, workloads, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload " + std::to_string(workloads[i]));
    const obs::ProfileSnapshot& a = serial[i].profile;
    const obs::ProfileSnapshot& b = parallel[i].profile;
    ASSERT_TRUE(a.enabled);
    ASSERT_TRUE(b.enabled);
    EXPECT_GT(a.total_counts(), 0u);
    for (std::size_t p = 0; p < prof::kPhases; ++p) {
      for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
        EXPECT_EQ(a.counts[p][s], b.counts[p][s])
            << prof::phase_name(static_cast<prof::Phase>(p)) << "/"
            << prof::subsystem_name(static_cast<prof::Subsystem>(s));
      }
    }
    for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
      EXPECT_EQ(a.scope_entries[s], b.scope_entries[s]);
    }
    // Same call paths entered the same number of times; the snapshot sorts
    // paths by frame sequence, so the vectors line up index by index.
    ASSERT_EQ(a.paths.size(), b.paths.size());
    for (std::size_t j = 0; j < a.paths.size(); ++j) {
      EXPECT_EQ(a.paths[j].frames, b.paths[j].frames);
      EXPECT_EQ(a.paths[j].count, b.paths[j].count);
    }
  }
}

// --- Multi-tenant determinism (ISSUE 9) -----------------------------------

ExperimentOptions tenant_options() {
  ExperimentOptions opts = cheap_options();
  workload::TenantSpec a;
  a.name = "a";
  a.users = 120;
  workload::TenantSpec b;
  b.name = "b";
  b.users = 80;
  opts.client.tenants = {a, b};
  opts.partition.strategy = soft::ShareStrategy::kKarmaCredits;
  return opts;
}

void expect_tenants_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    SCOPED_TRACE("tenant " + a.tenants[t].name);
    EXPECT_EQ(a.tenants[t].name, b.tenants[t].name);
    EXPECT_EQ(a.tenants[t].users, b.tenants[t].users);
    EXPECT_EQ(a.tenants[t].throughput, b.tenants[t].throughput);
    EXPECT_EQ(a.tenants[t].goodput, b.tenants[t].goodput);
    EXPECT_EQ(a.tenants[t].badput, b.tenants[t].badput);
    EXPECT_EQ(a.tenants[t].mean_rt_s, b.tenants[t].mean_rt_s);
  }
}

// Per-tenant series, SLA splits and the (Karma-partitioned) diagnosis are
// part of the same contract as everything else: bit-identical jobs=1 vs 4.
TEST(DeterminismTest, MultiTenantSweepMatchesSerialSweep) {
  Experiment e(cheap_config(), tenant_options());
  const SoftConfig soft{50, 10, 10};
  const std::vector<std::size_t> workloads = {200, 300, 400};

  const auto serial = sweep_workload(e, soft, workloads, /*jobs=*/1);
  const auto parallel = sweep_workload(e, soft, workloads, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload " + std::to_string(workloads[i]));
    expect_bit_identical(serial[i], parallel[i]);
    expect_tenants_identical(serial[i], parallel[i]);
    ASSERT_FALSE(serial[i].tenants.empty());
  }
}

// Seed derivation includes the tenant index, not the global slot index: a
// tenant that never activates a user (empty load phase) must leave every
// other tenant's request sequence — and therefore its SLA numbers —
// untouched. Both runs pass the same `users` argument, which in
// multi-tenant mode only feeds the trial-seed derivation (the farm sums the
// tenant populations itself).
TEST(DeterminismTest, IdleTenantDoesNotPerturbOtherTenants) {
  const SoftConfig soft{50, 10, 10};
  const std::size_t seed_users = 200;

  Experiment without(cheap_config(), tenant_options());
  const RunResult a = without.run(soft, seed_users);

  ExperimentOptions opts = tenant_options();
  workload::TenantSpec idle;
  idle.name = "idle";
  idle.users = 40;
  idle.load_schedule = {{0.0, 0}};  // declared but never activates a user
  opts.client.tenants.push_back(idle);
  Experiment with(cheap_config(), opts);
  const RunResult b = with.run(soft, seed_users);

  EXPECT_EQ(a.trial_seed, b.trial_seed);
  EXPECT_EQ(a.throughput, b.throughput);
  ASSERT_EQ(a.response_times.count(), b.response_times.count());
  EXPECT_EQ(a.response_times.mean(), b.response_times.mean());
  ASSERT_EQ(a.tenants.size(), 2u);
  ASSERT_EQ(b.tenants.size(), 3u);
  for (std::size_t t = 0; t < 2; ++t) {
    SCOPED_TRACE("tenant " + a.tenants[t].name);
    EXPECT_EQ(a.tenants[t].name, b.tenants[t].name);
    EXPECT_EQ(a.tenants[t].throughput, b.tenants[t].throughput);
    EXPECT_EQ(a.tenants[t].goodput, b.tenants[t].goodput);
    EXPECT_EQ(a.tenants[t].badput, b.tenants[t].badput);
    EXPECT_EQ(a.tenants[t].mean_rt_s, b.tenants[t].mean_rt_s);
  }
  // The idle tenant itself reports zero traffic.
  EXPECT_EQ(b.tenants[2].throughput, 0.0);
}

// --- Tail attribution determinism (ISSUE 10) ------------------------------

ExperimentOptions traced_options(double rate) {
  ExperimentOptions opts = cheap_options();
  opts.set_trace_sample_rate(rate);
  return opts;
}

// Exact double equality throughout: cohort means and blame vectors are pure
// functions of the deterministic traces, so "close" would hide a bug.
void expect_tail_identical(const obs::TailAttribution& a,
                           const obs::TailAttribution& b) {
  ASSERT_EQ(a.axis.size(), b.axis.size());
  for (std::size_t i = 0; i < a.axis.size(); ++i) {
    EXPECT_EQ(a.axis[i].label(), b.axis[i].label());
  }
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.p50_s, b.p50_s);
  EXPECT_EQ(a.p95_s, b.p95_s);
  EXPECT_EQ(a.p99_s, b.p99_s);
  EXPECT_EQ(a.slo_threshold_s, b.slo_threshold_s);
  ASSERT_EQ(a.cohorts.size(), b.cohorts.size());
  for (std::size_t c = 0; c < a.cohorts.size(); ++c) {
    SCOPED_TRACE("cohort " + a.cohorts[c].name);
    EXPECT_EQ(a.cohorts[c].name, b.cohorts[c].name);
    EXPECT_EQ(a.cohorts[c].requests, b.cohorts[c].requests);
    EXPECT_EQ(a.cohorts[c].mean_rt_s, b.cohorts[c].mean_rt_s);
    EXPECT_EQ(a.cohorts[c].blame_s, b.cohorts[c].blame_s);
    EXPECT_EQ(a.cohorts[c].exemplars, b.cohorts[c].exemplars);
    EXPECT_EQ(a.cohorts[c].slo_misses, b.cohorts[c].slo_misses);
    EXPECT_EQ(a.cohorts[c].slo_miss_share, b.cohorts[c].slo_miss_share);
  }
}

// Tail attribution and its exemplar selection are pure functions of the
// traces, which are pure functions of the trial seed — so a parallel traced
// sweep must reproduce the serial one bit for bit, exemplar ids included.
TEST(DeterminismTest, TailAttributionMatchesAcrossJobs) {
  Experiment e(cheap_config(), traced_options(1.0));
  const SoftConfig soft{50, 10, 10};
  const auto workloads = workload_range(100, 400, 100);

  const auto serial = sweep_workload(e, soft, workloads, /*jobs=*/1);
  const auto parallel = sweep_workload(e, soft, workloads, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  bool attributed = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload " + std::to_string(workloads[i]));
    expect_bit_identical(serial[i], parallel[i]);
    expect_tail_identical(serial[i].tail, parallel[i].tail);
    if (!serial[i].tail.empty()) {
      attributed = true;
      const auto* p99 = serial[i].tail.find_cohort("p99+");
      ASSERT_NE(p99, nullptr);
      EXPECT_FALSE(p99->exemplars.empty());
    }
  }
  EXPECT_TRUE(attributed);  // the sweep must actually exercise the tail path
}

// Sub-unity SOFTRES_TRACE_RATE keeps the contract: the sampling decision is
// drawn from the trial's own seeded stream, so two fresh experiments at the
// same rate trace the same requests and attribute the same tail — and
// sampling must not perturb the non-trace observables at all.
TEST(DeterminismTest, TailAttributionStableUnderTraceRate) {
  const SoftConfig soft{50, 10, 10};
  Experiment a(cheap_config(), traced_options(0.25));
  Experiment b(cheap_config(), traced_options(0.25));
  const RunResult ra = a.run(soft, 300);
  const RunResult rb = b.run(soft, 300);

  Experiment untraced(cheap_config(), cheap_options());
  const RunResult ru = untraced.run(soft, 300);
  EXPECT_TRUE(ru.tail.empty());
  EXPECT_FALSE(ru.diagnosis.tail.present);
  EXPECT_EQ(ra.throughput, ru.throughput);
  // Compare the raw sample sequences before any quantile() call: SampleSet
  // sorts lazily in place, so this is the strongest (order-sensitive) form.
  EXPECT_EQ(ra.response_times.raw(), ru.response_times.raw());

  expect_bit_identical(ra, rb);
  expect_tail_identical(ra.tail, rb.tail);
  ASSERT_FALSE(ra.tail.empty());
  EXPECT_LT(ra.tail.requests, ra.response_times.count());  // sampled, not all
}

TEST(DeterminismTest, GridSweepMatchesPointwiseRuns) {
  Experiment e(cheap_config(), cheap_options());
  const std::vector<SoftConfig> softs = {SoftConfig{50, 10, 10},
                                         SoftConfig{20, 5, 5}};
  const std::vector<std::size_t> workloads = {150, 250};
  const auto grid = sweep_grid(e, softs, workloads, /*jobs=*/4);
  ASSERT_EQ(grid.size(), 2u);
  for (std::size_t s = 0; s < softs.size(); ++s) {
    ASSERT_EQ(grid[s].size(), 2u);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      SCOPED_TRACE("soft " + std::to_string(s) + " workload " +
                   std::to_string(workloads[i]));
      expect_bit_identical(e.run(softs[s], workloads[i]), grid[s][i]);
    }
  }
}

}  // namespace
}  // namespace softres::exp
