// Parameterized property sweeps on the soft-resource pool: accounting
// invariants must hold across capacities and contention levels.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "soft/pool.h"

namespace softres::soft {
namespace {

using Param = std::tuple<std::size_t /*capacity*/, int /*customers*/>;

class PoolPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(PoolPropertyTest, AccountingInvariants) {
  const auto& [capacity, customers] = GetParam();
  sim::Simulator sim;
  Pool pool(sim, "p", capacity);
  sim::Rng rng(99);

  int completed = 0;
  for (int i = 0; i < customers; ++i) {
    const double at = rng.uniform(0.0, 1.0);
    const double hold = rng.exponential(0.05) + 1e-4;
    sim.schedule(at, [&pool, &sim, &completed, hold] {
      pool.acquire([&pool, &sim, &completed, hold] {
        sim.schedule(hold, [&pool, &completed] {
          pool.release();
          ++completed;
        });
      });
    });
  }
  // Invariant holds at every step: in_use <= capacity, and nobody waits
  // while units are free.
  while (sim.step()) {
    ASSERT_LE(pool.in_use(), capacity);
    if (pool.waiting() > 0) {
      ASSERT_EQ(pool.in_use(), capacity);
    }
  }
  EXPECT_EQ(completed, customers);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.total_acquired(), static_cast<std::uint64_t>(customers));
}

TEST_P(PoolPropertyTest, FifoOrderPreserved) {
  const auto& [capacity, customers] = GetParam();
  sim::Simulator sim;
  Pool pool(sim, "p", capacity);
  std::vector<int> grant_order;
  for (int i = 0; i < customers; ++i) {
    pool.acquire([&grant_order, i] { grant_order.push_back(i); });
  }
  while (!grant_order.empty() &&
         grant_order.size() < static_cast<std::size_t>(customers)) {
    pool.release();
  }
  for (std::size_t i = 0; i < grant_order.size(); ++i) {
    ASSERT_EQ(grant_order[i], static_cast<int>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoolPropertyTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{32}),
                       ::testing::Values(3, 40, 300)),
    [](const auto& param_info) {
      return "cap" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

// Capacity changes mid-flight preserve conservation.
TEST(PoolResizeProperty, ResizeUnderLoadConserves) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  sim::Rng rng(7);
  int completed = 0;
  const int customers = 200;
  for (int i = 0; i < customers; ++i) {
    sim.schedule(rng.uniform(0.0, 2.0), [&] {
      pool.acquire([&] {
        sim.schedule(0.01, [&] {
          pool.release();
          ++completed;
        });
      });
    });
  }
  // Whipsaw the capacity while customers flow.
  for (int i = 0; i < 10; ++i) {
    sim.schedule(0.2 * i, [&pool, i] {
      pool.set_capacity(i % 2 == 0 ? 1 : 16);
    });
  }
  sim.run();
  EXPECT_EQ(completed, customers);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace softres::soft
