// Parameterized property sweeps on the soft-resource pool: accounting
// invariants must hold across capacities and contention levels.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <tuple>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "soft/pool.h"

namespace softres::soft {
namespace {

using Param = std::tuple<std::size_t /*capacity*/, int /*customers*/>;

class PoolPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(PoolPropertyTest, AccountingInvariants) {
  const auto& [capacity, customers] = GetParam();
  sim::Simulator sim;
  Pool pool(sim, "p", capacity);
  sim::Rng rng(99);

  int completed = 0;
  for (int i = 0; i < customers; ++i) {
    const double at = rng.uniform(0.0, 1.0);
    const double hold = rng.exponential(0.05) + 1e-4;
    sim.schedule(at, [&pool, &sim, &completed, hold] {
      pool.acquire([&pool, &sim, &completed, hold] {
        sim.schedule(hold, [&pool, &completed] {
          pool.release();
          ++completed;
        });
      });
    });
  }
  // Invariant holds at every step: in_use <= capacity, and nobody waits
  // while units are free.
  while (sim.step()) {
    ASSERT_LE(pool.in_use(), capacity);
    if (pool.waiting() > 0) {
      ASSERT_EQ(pool.in_use(), capacity);
    }
  }
  EXPECT_EQ(completed, customers);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.total_acquired(), static_cast<std::uint64_t>(customers));
}

TEST_P(PoolPropertyTest, FifoOrderPreserved) {
  const auto& [capacity, customers] = GetParam();
  sim::Simulator sim;
  Pool pool(sim, "p", capacity);
  std::vector<int> grant_order;
  for (int i = 0; i < customers; ++i) {
    pool.acquire([&grant_order, i] { grant_order.push_back(i); });
  }
  while (!grant_order.empty() &&
         grant_order.size() < static_cast<std::size_t>(customers)) {
    pool.release();
  }
  for (std::size_t i = 0; i < grant_order.size(); ++i) {
    ASSERT_EQ(grant_order[i], static_cast<int>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoolPropertyTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{32}),
                       ::testing::Values(3, 40, 300)),
    [](const auto& param_info) {
      return "cap" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

// Capacity changes mid-flight preserve conservation.
TEST(PoolResizeProperty, ResizeUnderLoadConserves) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  sim::Rng rng(7);
  int completed = 0;
  const int customers = 200;
  for (int i = 0; i < customers; ++i) {
    sim.schedule(rng.uniform(0.0, 2.0), [&] {
      pool.acquire([&] {
        sim.schedule(0.01, [&] {
          pool.release();
          ++completed;
        });
      });
    });
  }
  // Whipsaw the capacity while customers flow.
  for (int i = 0; i < 10; ++i) {
    sim.schedule(0.2 * i, [&pool, i] {
      pool.set_capacity(i % 2 == 0 ? 1 : 16);
    });
  }
  sim.run();
  EXPECT_EQ(completed, customers);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.waiting(), 0u);
  // Every whipsaw step changed the capacity, so each is one logged epoch.
  EXPECT_EQ(pool.capacity_epochs().size(), 10u);
}

// Reference model of the pool's resize semantics: a plain counter with a
// FIFO queue, lazy drain, and grow-admits-waiters. The Pool must agree with
// it on every observable after every operation.
struct PoolOracle {
  std::size_t cap = 0;
  std::size_t in_use = 0;
  std::deque<int> waiters;
  std::uint64_t drained = 0;
  std::vector<int> grant_order;

  void acquire(int id) {
    if (in_use < cap) {
      ++in_use;
      grant_order.push_back(id);
    } else {
      waiters.push_back(id);
    }
  }
  void release() {
    if (in_use > cap) ++drained;
    --in_use;
    if (!waiters.empty() && in_use < cap) {
      ++in_use;
      grant_order.push_back(waiters.front());
      waiters.pop_front();
    }
  }
  void set_capacity(std::size_t c) {
    cap = c;
    while (!waiters.empty() && in_use < cap) {
      ++in_use;
      grant_order.push_back(waiters.front());
      waiters.pop_front();
    }
  }
};

// Oracle cross-check: a deterministic random walk of acquire / release /
// resize operations, with the Pool and the reference model compared on
// in_use, waiting, drain accounting and grant order after every step.
TEST(PoolResizeProperty, MatchesOracleUnderRandomResizes) {
  sim::Simulator sim;
  Pool pool(sim, "p", 3);
  PoolOracle oracle;
  oracle.cap = 3;
  sim::Rng rng(42);

  std::vector<int> pool_grants;
  int next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const double u = rng.uniform(0.0, 1.0);
    if (u < 0.45) {
      const int id = next_id++;
      oracle.acquire(id);
      pool.acquire([&pool_grants, id] { pool_grants.push_back(id); });
    } else if (u < 0.85) {
      if (pool.in_use() > 0) {
        oracle.release();
        pool.release();
      }
    } else {
      const std::size_t cap = 1 + static_cast<std::size_t>(
                                      rng.uniform(0.0, 1.0) * 12.0);
      oracle.set_capacity(cap);
      pool.set_capacity(cap);
    }
    ASSERT_EQ(pool.in_use(), oracle.in_use) << "step " << step;
    ASSERT_EQ(pool.waiting(), oracle.waiters.size()) << "step " << step;
    ASSERT_EQ(pool.drained_total(), oracle.drained) << "step " << step;
    ASSERT_EQ(pool.draining(), oracle.in_use > oracle.cap) << "step " << step;
    ASSERT_EQ(pool.drain_pending(),
              oracle.in_use > oracle.cap ? oracle.in_use - oracle.cap : 0u)
        << "step " << step;
    ASSERT_EQ(pool_grants, oracle.grant_order) << "step " << step;
  }
}

}  // namespace
}  // namespace softres::soft
