// Tests for the online pathology diagnoser stack: SeriesWindow ring-buffer
// statistics, Timeline tracking, the per-pathology detector rules driven by a
// synthetic registry, the Registry::reset_values() between-trials regression,
// and the golden list of legacy dotted sampler aliases.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/run_context.h"
#include "exp/testbed.h"
#include "obs/diagnoser.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "sim/sampler.h"

namespace softres::obs {
namespace {

// ---------------------------------------------------------------------------
// SeriesWindow

TEST(SeriesWindowTest, RingBufferKeepsNewestCapacitySamples) {
  SeriesWindow w(4);
  EXPECT_TRUE(w.empty());
  for (int t = 0; t < 6; ++t) w.push(t, 10.0 * t);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.capacity(), 4u);
  // Oldest-first iteration starts at the oldest *retained* sample.
  EXPECT_DOUBLE_EQ(w.first_time(), 2.0);
  EXPECT_DOUBLE_EQ(w.time_at(0), 2.0);
  EXPECT_DOUBLE_EQ(w.value_at(0), 20.0);
  EXPECT_DOUBLE_EQ(w.time_at(3), 5.0);
  EXPECT_DOUBLE_EQ(w.value_at(3), 50.0);
  EXPECT_DOUBLE_EQ(w.last(), 50.0);
  EXPECT_DOUBLE_EQ(w.last_time(), 5.0);
}

TEST(SeriesWindowTest, RollingStatisticsOverTrailingWindow) {
  SeriesWindow w(16);
  for (int t = 0; t <= 5; ++t) w.push(t, 2.0 * t);  // 0 2 4 6 8 10
  // A 2 s trailing window from t=5 holds the samples at t=3,4,5.
  EXPECT_DOUBLE_EQ(w.mean_over(2.0), 8.0);
  EXPECT_DOUBLE_EQ(w.max_over(2.0), 10.0);
  EXPECT_DOUBLE_EQ(w.min_over(2.0), 6.0);
  // The full series is the line v = 2t.
  EXPECT_NEAR(w.slope_over(100.0), 2.0, 1e-12);
  // A window too narrow for two samples has no slope.
  EXPECT_DOUBLE_EQ(w.slope_over(0.5), 0.0);
}

TEST(SeriesWindowTest, HeldForMeasuresNewestContiguousRun) {
  SeriesWindow w(16);
  w.push(0.0, 1.0);
  w.push(1.0, 5.0);
  w.push(2.0, 6.0);
  w.push(3.0, 7.0);
  EXPECT_DOUBLE_EQ(w.held_for(5.0), 2.0);  // run started at t=1
  EXPECT_DOUBLE_EQ(w.held_since(5.0), 1.0);
  // The newest sample failing the predicate resets the run.
  w.push(4.0, 2.0);
  EXPECT_DOUBLE_EQ(w.held_for(5.0), 0.0);
  // Flipped predicate: value <= threshold.
  EXPECT_DOUBLE_EQ(w.held_for(2.0, /*at_least=*/false), 0.0);
}

TEST(SeriesWindowTest, CrossCorrelationSigns) {
  SeriesWindow a(16), up(16), down(16), flat(16);
  for (int t = 0; t <= 5; ++t) {
    a.push(t, t);
    up.push(t, 3.0 * t + 1.0);
    down.push(t, 5.0 - t);
    flat.push(t, 2.0);
  }
  EXPECT_NEAR(cross_correlation(a, up, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(cross_correlation(a, down, 100.0), -1.0, 1e-12);
  // A constant side has zero variance: defined as uncorrelated.
  EXPECT_DOUBLE_EQ(cross_correlation(a, flat, 100.0), 0.0);
}

TEST(SeriesWindowTest, StatisticsDegradeGracefullyOnShortSeries) {
  // Fewer samples than a statistic needs must read as "no signal" (0), not
  // extrapolate: detectors call these on windows that are still filling.
  SeriesWindow w(16);
  EXPECT_DOUBLE_EQ(w.slope_over(10.0), 0.0);  // empty
  w.push(1.0, 5.0);
  EXPECT_DOUBLE_EQ(w.slope_over(10.0), 0.0);  // one sample: no slope
  EXPECT_DOUBLE_EQ(w.held_for(1.0), 0.0);     // single sample: zero-width run
  w.push(2.0, 7.0);
  // Two samples are enough for a slope even when the requested window is far
  // wider than the data actually buffered.
  EXPECT_NEAR(w.slope_over(1000.0), 2.0, 1e-12);

  // cross_correlation needs three aligned pairs inside the window.
  SeriesWindow a(16), b(16);
  EXPECT_DOUBLE_EQ(cross_correlation(a, b, 100.0), 0.0);  // both empty
  a.push(1.0, 1.0);
  b.push(1.0, 2.0);
  a.push(2.0, 2.0);
  b.push(2.0, 4.0);
  EXPECT_DOUBLE_EQ(cross_correlation(a, b, 100.0), 0.0);  // two pairs
  a.push(3.0, 3.0);
  b.push(3.0, 6.0);
  EXPECT_NEAR(cross_correlation(a, b, 100.0), 1.0, 1e-12);  // three pairs
  // One side shorter than the other: pairing from the newest backwards
  // bounds the pair count by the shorter series.
  SeriesWindow c(16);
  c.push(3.0, 1.0);
  EXPECT_DOUBLE_EQ(cross_correlation(a, c, 100.0), 0.0);
  // A lag window narrower than the sample spacing holds at most one pair.
  EXPECT_DOUBLE_EQ(cross_correlation(a, b, 0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Timeline

TEST(TimelineTest, TracksFamiliesAndPolledSeries) {
  Registry r;
  Gauge t0 = r.gauge("pool_util_pct", {{"pool", "tomcat0.threads"}});
  Gauge a0 = r.gauge("pool_util_pct", {{"pool", "apache0.workers"}});
  Timeline tl(r);
  const std::vector<std::size_t> idx = tl.track_family("pool_util_pct");
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(tl.series_count(), 2u);
  EXPECT_EQ(tl.series(idx[0]), "pool_util_pct{pool=\"tomcat0.threads\"}");

  t0.set(80.0);
  a0.set(40.0);
  tl.tick(1.0);
  t0.set(90.0);
  tl.tick(2.0);
  EXPECT_EQ(tl.ticks(), 2u);
  EXPECT_DOUBLE_EQ(tl.last_tick(), 2.0);

  const SeriesWindow* w =
      tl.find("pool_util_pct", {{"pool", "tomcat0.threads"}});
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->size(), 2u);
  EXPECT_DOUBLE_EQ(w->value_at(0), 80.0);
  EXPECT_DOUBLE_EQ(w->last(), 90.0);
  EXPECT_EQ(tl.find("pool_util_pct", {{"pool", "nope"}}), nullptr);
}

TEST(TimelineTest, UnknownSeriesReadsZero) {
  Registry r;
  Timeline tl(r);
  // SOFTRES_LINT_ALLOW(SR013: this test exercises the unknown-series path)
  const std::size_t i = tl.track("does_not_exist");
  tl.tick(1.0);
  EXPECT_DOUBLE_EQ(tl.window(i).last(), 0.0);
}

// The double-poll regression: rate-style pull sources differentiate against
// their previous call, so when the sampler probe and the Timeline both read
// the same series in one tick, the second reader used to see dt = 0. The
// registry memoizes one evaluation per timestamp.
TEST(TimelineTest, PullSourceEvaluatedOncePerTimestamp) {
  Registry r;
  int calls = 0;
  r.gauge_fn("poll", [&calls](sim::SimTime now) {
    ++calls;
    return 2.0 * now;
  });
  const Reader reader = r.reader("poll");
  ASSERT_TRUE(reader.valid());
  EXPECT_DOUBLE_EQ(reader.read(1.0), 2.0);
  EXPECT_DOUBLE_EQ(reader.read(1.0), 2.0);  // same instant: memoized
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(reader.read(2.0), 4.0);  // new instant: re-evaluated
  EXPECT_EQ(calls, 2);
  // reset_values() (between trials) drops the memo with the values.
  r.reset_values();
  EXPECT_DOUBLE_EQ(reader.read(2.0), 4.0);
  EXPECT_EQ(calls, 3);
}

// A held_for run must not survive Registry::reset_values(): once the trial
// boundary zeroes the gauge, the next tick pushes a failing sample and the
// run restarts from scratch — no above-threshold credit leaks from trial 1
// into trial 2's evidence windows.
TEST(TimelineTest, HeldForRunBreaksAcrossRegistryReset) {
  Registry r;
  Gauge util = r.gauge("pool_util_pct", {{"pool", "tomcat0.threads"}});
  Timeline tl(r);
  const std::vector<std::size_t> idx = tl.track_family("pool_util_pct");
  ASSERT_EQ(idx.size(), 1u);
  const std::size_t i = idx[0];

  util.set(90.0);
  tl.tick(1.0);
  tl.tick(2.0);
  tl.tick(3.0);
  EXPECT_DOUBLE_EQ(tl.window(i).held_for(80.0), 2.0);  // run since t=1

  r.reset_values();  // the trial boundary: gauge now reads 0
  tl.tick(4.0);
  EXPECT_DOUBLE_EQ(tl.window(i).held_for(80.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.window(i).held_since(80.0), 4.0);

  // Re-asserting the condition starts a *new* run at the first passing
  // sample after the reset, with no credit for the pre-reset run.
  util.set(90.0);
  tl.tick(5.0);
  tl.tick(6.0);
  EXPECT_DOUBLE_EQ(tl.window(i).held_for(80.0), 1.0);
  EXPECT_DOUBLE_EQ(tl.window(i).held_since(80.0), 5.0);
}

// ---------------------------------------------------------------------------
// Registry reset between back-to-back trials (the histogram-leak regression)

TEST(RegistryResetTest, SecondTrialStartsFromZeroedValues) {
  Registry r;
  Counter done = r.counter("client_requests_total");
  Gauge depth = r.gauge("queue_depth");
  Histogram rt = r.histogram("client_response_time_seconds", {0.5, 1.0});

  // Trial 1.
  done.inc(7.0);
  depth.set(3.0);
  rt.observe(0.3);
  rt.observe(0.7);
  rt.observe(5.0);
  ASSERT_EQ(rt.count(), 3u);
  ASSERT_DOUBLE_EQ(rt.sum(), 6.0);

  // What Testbed::build does when re-wiring onto a reused RunContext.
  r.reset_values();
  EXPECT_DOUBLE_EQ(done.value(), 0.0);
  EXPECT_DOUBLE_EQ(depth.value(), 0.0);
  EXPECT_EQ(rt.count(), 0u);
  EXPECT_DOUBLE_EQ(rt.sum(), 0.0);

  // Trial 2: the old handles stay wired and the second trial's numbers are
  // its own, not trial 1's plus its own.
  done.inc(2.0);
  rt.observe(0.4);
  const Snapshot snap = r.snapshot(0.0);
  const MetricSample* h = snap.find("client_response_time_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 0.4);
  ASSERT_EQ(h->bucket_counts.size(), 3u);
  EXPECT_EQ(h->bucket_counts[0], 1u);  // 0.4 <= 0.5 (per-bucket storage)
  EXPECT_EQ(h->bucket_counts[1], 0u);
  EXPECT_EQ(h->bucket_counts[2], 0u);
  const MetricSample* c = snap.find("client_requests_total");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 2.0);
}

TEST(RegistryResetTest, RunContextResetMetricsClearsItsRegistry) {
  exp::RunContext ctx(1, exp::TestbedConfig::defaults(), 100);
  Histogram rt =
      ctx.registry().histogram("client_response_time_seconds", {1.0});
  rt.observe(0.5);
  rt.observe(2.0);
  ASSERT_EQ(rt.count(), 2u);
  ctx.reset_metrics();
  EXPECT_EQ(rt.count(), 0u);
  EXPECT_DOUBLE_EQ(rt.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Diagnoser rules, driven by a synthetic registry

// A miniature two-node topology (apache0 web, tomcat0 app) whose series are
// plain stored gauges, so each test scripts the exact shapes the detectors
// must recognise. Family names, labels and pool naming match the testbed's
// probe registration, which is what Diagnoser::discover() keys on.
class DiagnoserRig {
 public:
  DiagnoserRig() : timeline_(registry_) {
    apache_cpu_ = registry_.gauge("cpu_util_pct", {{"node", "apache0"}});
    tomcat_cpu_ = registry_.gauge("cpu_util_pct", {{"node", "tomcat0"}});
    tomcat_gc_ = registry_.gauge("gc_util_pct", {{"node", "tomcat0"}});
    threads_util_ =
        registry_.gauge("pool_util_pct", {{"pool", "tomcat0.threads"}});
    workers_util_ =
        registry_.gauge("pool_util_pct", {{"pool", "apache0.workers"}});
    threads_waiting_ =
        registry_.gauge("pool_waiting", {{"pool", "tomcat0.threads"}});
    workers_waiting_ =
        registry_.gauge("pool_waiting", {{"pool", "apache0.workers"}});
    throughput_ =
        registry_.gauge("server_throughput", {{"server", "tomcat0"}});
    active_ =
        registry_.gauge("apache_threads_active", {{"server", "apache0"}});
    connecting_ =
        registry_.gauge("apache_threads_connecting", {{"server", "apache0"}});
    for (const char* family :
         {"cpu_util_pct", "gc_util_pct", "pool_util_pct", "pool_waiting",
          "server_throughput", "apache_threads_active",
          "apache_threads_connecting"}) {
      timeline_.track_family(family);
    }
    diagnoser_ = std::make_unique<Diagnoser>(timeline_);
    healthy();
  }

  void healthy() {
    apache_cpu_.set(40.0);
    tomcat_cpu_.set(50.0);
    tomcat_gc_.set(1.0);
    threads_util_.set(60.0);
    threads_waiting_.set(0.0);
    workers_util_.set(50.0);
    workers_waiting_.set(0.0);
    throughput_.set(100.0);
    active_.set(10.0);
    connecting_.set(8.0);
  }

  void starved_threads() {  // Fig 4: pegged app pool, idle hardware
    threads_util_.set(100.0);
    threads_waiting_.set(5.0);
  }

  void gc_storm() {  // Fig 5: high GC share on a busy (not saturated) node
    tomcat_gc_.set(12.0);
    tomcat_cpu_.set(85.0);
  }

  void fin_wait() {  // Fig 7: workers pegged, few talking to the app tier
    workers_util_.set(100.0);
    active_.set(30.0);
    connecting_.set(5.0);
  }

  void run_ticks(int n) {
    for (int i = 0; i < n; ++i) {
      now_ += 1.0;
      timeline_.tick(now_);
      diagnoser_->observe(now_);
    }
  }

  Diagnoser& diagnoser() { return *diagnoser_; }

  Gauge apache_cpu_, tomcat_cpu_, tomcat_gc_;
  Gauge threads_util_, workers_util_, threads_waiting_, workers_waiting_;
  Gauge throughput_, active_, connecting_;

 private:
  Registry registry_;
  Timeline timeline_;
  std::unique_ptr<Diagnoser> diagnoser_;
  sim::SimTime now_ = 0.0;
};

TEST(DiagnoserTest, HealthyTrialDiagnosesNone) {
  DiagnoserRig rig;
  rig.run_ticks(30);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kNone);
  EXPECT_DOUBLE_EQ(d.confidence, 1.0);
  EXPECT_TRUE(d.evidence.empty());
  EXPECT_TRUE(d.implicated_resources.empty());
  EXPECT_EQ(d.to_hint().kind, core::BottleneckKind::kNone);
  EXPECT_EQ(rig.diagnoser().active_detectors(), 0u);
}

TEST(DiagnoserTest, FlagsUnderAllocationWithCitedEvidence) {
  DiagnoserRig rig;
  rig.starved_threads();
  rig.run_ticks(20);
  EXPECT_EQ(rig.diagnoser().active_detectors(), 1u);

  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kSoftUnderAlloc);
  EXPECT_DOUBLE_EQ(d.confidence, 1.0);
  ASSERT_EQ(d.evidence.size(), 1u);
  const EvidenceWindow& w = d.evidence.front();
  EXPECT_EQ(w.series, "pool_util_pct{pool=\"tomcat0.threads\"}");
  EXPECT_DOUBLE_EQ(w.from, 1.0);
  EXPECT_DOUBLE_EQ(w.to, 20.0);
  EXPECT_DOUBLE_EQ(w.observed, 100.0);
  EXPECT_DOUBLE_EQ(w.threshold, 99.0);
  EXPECT_NE(w.condition.find("waiter"), std::string::npos);
  ASSERT_EQ(d.implicated_resources,
            std::vector<std::string>{"tomcat0.threads"});
  EXPECT_EQ(d.suggested_action.kind, SuggestedAction::Kind::kGrowPool);
  EXPECT_EQ(d.suggested_action.resource, "tomcat0.threads");

  const core::DiagnosisHint hint = d.to_hint();
  EXPECT_TRUE(hint.valid);
  EXPECT_EQ(hint.kind, core::BottleneckKind::kSoft);
  ASSERT_EQ(hint.soft, std::vector<std::string>{"tomcat0.threads"});
  EXPECT_TRUE(hint.hardware.empty());
}

TEST(DiagnoserTest, FlagsGcOverAllocationAndImplicatesFeedingPool) {
  DiagnoserRig rig;
  rig.gc_storm();
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kGcOverAlloc);
  ASSERT_GE(d.evidence.size(), 1u);
  EXPECT_EQ(d.evidence.front().series, "gc_util_pct{node=\"tomcat0\"}");
  // The GC rule names both the burned CPU and the pool whose idle units feed
  // the collector.
  const std::vector<std::string> want = {"tomcat0.cpu", "tomcat0.threads"};
  EXPECT_EQ(d.implicated_resources, want);
  EXPECT_EQ(d.suggested_action.kind, SuggestedAction::Kind::kShrinkPool);
  EXPECT_EQ(d.suggested_action.resource, "tomcat0.threads");

  const core::DiagnosisHint hint = d.to_hint();
  EXPECT_EQ(hint.kind, core::BottleneckKind::kSoft);  // hidden soft cause
  EXPECT_EQ(hint.critical, "tomcat0.cpu");            // hardware symptom
}

TEST(DiagnoserTest, FlagsFinWaitBufferEffect) {
  DiagnoserRig rig;
  rig.fin_wait();
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kFinWaitBuffer);
  ASSERT_GE(d.evidence.size(), 1u);
  EXPECT_EQ(d.evidence.front().series,
            "apache_threads_connecting{server=\"apache0\"}");
  ASSERT_EQ(d.implicated_resources,
            std::vector<std::string>{"apache0.workers"});
  EXPECT_EQ(d.suggested_action.kind, SuggestedAction::Kind::kGrowPool);
  EXPECT_EQ(d.suggested_action.resource, "apache0.workers");
}

TEST(DiagnoserTest, SaturatedCpuIsHardwareNotUnderAllocation) {
  DiagnoserRig rig;
  // The pool is pegged *because* the node is out of CPU: the paper's classic
  // case, which must not masquerade as a soft bottleneck.
  rig.starved_threads();
  rig.tomcat_cpu_.set(100.0);
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kHardware);
  ASSERT_EQ(d.implicated_resources, std::vector<std::string>{"tomcat0.cpu"});
  EXPECT_EQ(d.suggested_action.kind, SuggestedAction::Kind::kAddHardware);
  EXPECT_EQ(d.to_hint().kind, core::BottleneckKind::kHardware);
  EXPECT_EQ(d.to_hint().critical, "tomcat0.cpu");
}

TEST(DiagnoserTest, TwoSoftPathologiesDiagnoseMulti) {
  DiagnoserRig rig;
  rig.starved_threads();
  rig.fin_wait();
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kMulti);
  EXPECT_GE(d.evidence.size(), 2u);
  // Both resources are named; the action is the re-balance escape hatch.
  const std::vector<std::string> want = {"tomcat0.threads", "apache0.workers"};
  EXPECT_EQ(d.implicated_resources, want);
  EXPECT_EQ(d.suggested_action.kind, SuggestedAction::Kind::kNone);
}

TEST(DiagnoserTest, SaturatedCpusOnTwoTiersDiagnoseMulti) {
  DiagnoserRig rig;
  rig.apache_cpu_.set(100.0);
  rig.tomcat_cpu_.set(100.0);
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kMulti);
}

TEST(DiagnoserTest, AnalysisWindowExcludesOutOfWindowEvidence) {
  DiagnoserRig rig;
  rig.starved_threads();
  rig.run_ticks(30);
  // The same evidence, restricted to a window it does not overlap, must not
  // fire (ramp transients cannot produce a verdict).
  rig.diagnoser().set_analysis_window(1000.0, 2000.0);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kNone);
  EXPECT_TRUE(d.evidence.empty());
}

TEST(DiagnoserTest, ShortBurstBelowMinVerdictDoesNotFire) {
  DiagnoserRig rig;
  // 9 pegged ticks: the run clears hold_s (5 s) but its 8 s total stays
  // below min_verdict_s (15 s), so the verdict stays healthy.
  rig.starved_threads();
  rig.run_ticks(9);
  rig.healthy();
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kNone);
}

TEST(DiagnoserTest, RunsShorterThanHoldAreDiscarded) {
  DiagnoserRig rig;
  rig.starved_threads();
  rig.run_ticks(4);  // 3 s run < hold_s
  rig.healthy();
  rig.run_ticks(20);
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kNone);
}

TEST(DiagnoserTest, ConfidenceScalesWithEvidenceDuration) {
  DiagnoserRig rig;
  rig.starved_threads();
  rig.run_ticks(12);  // open run [1 s, 12 s] = 11 s of evidence
  const Diagnosis d = rig.diagnoser().diagnosis();
  EXPECT_EQ(d.pathology, Pathology::kNone);  // 11 s < min_verdict_s
  rig.run_ticks(6);  // now 17 s >= min_verdict_s, confidence saturates
  const Diagnosis d2 = rig.diagnoser().diagnosis();
  EXPECT_EQ(d2.pathology, Pathology::kSoftUnderAlloc);
  EXPECT_DOUBLE_EQ(d2.confidence, 1.0);
  EXPECT_NE(d2.summary().find("kSoftUnderAlloc"), std::string::npos);
  EXPECT_NE(d2.summary().find("tomcat0.threads"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden list: every register_* family keeps its legacy dotted sampler alias
// byte-identical. Sampler::find is an exact string match, so a renamed alias
// fails here before it breaks a figure script.

TEST(AliasGoldenTest, EveryProbeFamilyKeepsItsDottedAlias) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = exp::HardwareConfig{1, 1, 1, 1};
  workload::ClientConfig client;
  client.users = 10;
  exp::Testbed bed(cfg, client);

  const std::vector<std::string> golden = {
      // register_cpu_util: "<node>.cpu"
      "apache0.cpu", "tomcat0.cpu", "cjdbc0.cpu", "mysql0.cpu",
      // register_gc_util: "<server>.gc"
      "tomcat0.gc", "cjdbc0.gc",
      // register_pool: "<pool>.util" / ".waiting" / ".capacity"
      "apache0.workers.util", "apache0.workers.waiting",
      "apache0.workers.capacity", "tomcat0.threads.util",
      "tomcat0.threads.waiting", "tomcat0.threads.capacity",
      "tomcat0.dbconns.util", "tomcat0.dbconns.waiting",
      "tomcat0.dbconns.capacity",
      // register_server_ops: "<server>.tp" / ".rt"
      "apache0.tp", "apache0.rt", "tomcat0.tp", "tomcat0.rt", "cjdbc0.tp",
      "cjdbc0.rt", "mysql0.tp", "mysql0.rt",
      // register_apache_timeline: the five Fig 7/8 series
      "apache0.processed", "apache0.pt_total_ms", "apache0.pt_tomcat_ms",
      "apache0.threads_active", "apache0.threads_connecting",
      // the streaming-diagnosis probes wired by Testbed::build
      "obs.timeline", "obs.diagnosis"};
  for (const std::string& name : golden) {
    EXPECT_NE(bed.sampler().find(name), nullptr) << "missing alias: " << name;
  }
}

}  // namespace
}  // namespace softres::obs
