#include "exp/testbed.h"

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace softres::exp {
namespace {

workload::ClientConfig quick_client(std::size_t users) {
  workload::ClientConfig c;
  c.users = users;
  c.ramp_up_s = 5.0;
  c.runtime_s = 20.0;
  c.ramp_down_s = 2.0;
  return c;
}

TEST(TestbedTest, BuildsRequestedTopology) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.hw = HardwareConfig::parse("1/4/1/4");
  Testbed bed(cfg, quick_client(100));
  EXPECT_EQ(bed.apaches().size(), 1u);
  EXPECT_EQ(bed.tomcats().size(), 4u);
  EXPECT_EQ(bed.cjdbcs().size(), 1u);
  EXPECT_EQ(bed.mysqls().size(), 4u);
  EXPECT_EQ(bed.nodes().size(), 10u);
}

TEST(TestbedTest, SoftConfigAppliedToPools) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{123, 45, 7};
  Testbed bed(cfg, quick_client(100));
  EXPECT_EQ(bed.apaches()[0]->worker_pool().capacity(), 123u);
  EXPECT_EQ(bed.tomcats()[0]->thread_pool().capacity(), 45u);
  EXPECT_EQ(bed.tomcats()[0]->connection_pool().capacity(), 7u);
  // One C-JDBC thread per upstream connection: 2 tomcats x 7 conns.
  EXPECT_EQ(bed.cjdbcs()[0]->jvm().live_threads(), 14u);
}

TEST(TestbedTest, RunProducesTraffic) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(300));
  bed.run();
  EXPECT_GT(bed.farm().response_times().count(), 100u);
  EXPECT_GT(bed.farm().window_throughput(), 10.0);
  // All tiers saw work.
  for (const auto& t : bed.tomcats()) EXPECT_GT(t->window_completed(), 0u);
  for (const auto& m : bed.mysqls()) EXPECT_GT(m->window_completed(), 0u);
}

TEST(TestbedTest, DeterministicAcrossRebuilds) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed a(cfg, quick_client(200));
  a.run();
  Testbed b(cfg, quick_client(200));
  b.run();
  EXPECT_EQ(a.farm().response_times().count(),
            b.farm().response_times().count());
  EXPECT_DOUBLE_EQ(a.farm().response_times().mean(),
                   b.farm().response_times().mean());
}

TEST(TestbedTest, SeedChangesTrajectory) {
  TestbedConfig cfg = TestbedConfig::defaults();
  workload::ClientConfig c1 = quick_client(200);
  workload::ClientConfig c2 = quick_client(200);
  c2.seed = 777;
  Testbed a(cfg, c1);
  a.run();
  Testbed b(cfg, c2);
  b.run();
  EXPECT_NE(a.farm().response_times().mean(),
            b.farm().response_times().mean());
}

TEST(TestbedTest, SamplerRecordsCpuSeries) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(300));
  bed.run();
  const sim::TimeSeries* s = bed.sampler().find("tomcat0.cpu");
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->size(), 20u);
  EXPECT_GT(s->mean_between(bed.measure_start(), bed.measure_end()), 0.0);
}

TEST(ExperimentTest, RunResultConservation) {
  TestbedConfig cfg = TestbedConfig::defaults();
  ExperimentOptions opts;
  opts.client = quick_client(300);
  Experiment e(cfg, opts);
  const RunResult r = e.run(SoftConfig{100, 20, 20}, 300);

  // goodput + badput == throughput at any threshold.
  for (double thr : {0.2, 0.5, 1.0, 2.0}) {
    const auto s = r.sla(thr);
    EXPECT_NEAR(s.goodput + s.badput, r.throughput, 1e-9);
  }
  // Goodput monotone in threshold.
  EXPECT_LE(r.goodput(0.5), r.goodput(1.0));
  EXPECT_LE(r.goodput(1.0), r.goodput(2.0));
  // Structure filled in.
  EXPECT_EQ(r.cpus.size(), 6u);   // 1+2+1+2 nodes
  EXPECT_EQ(r.pools.size(), 5u);  // apache workers + 2x(threads+conns)
  EXPECT_EQ(r.servers.size(), 6u);
  EXPECT_GT(r.req_ratio, 1.0);
  EXPECT_NE(r.find_cpu("tomcat0.cpu"), nullptr);
  EXPECT_NE(r.find_server("cjdbc0"), nullptr);
  EXPECT_NE(r.find_pool("tomcat1.dbconns"), nullptr);
  EXPECT_EQ(r.find_cpu("nope"), nullptr);
}

TEST(ExperimentTest, ForcedFlowLawAcrossTiers) {
  // Tier throughputs must satisfy the Forced Flow Law: X_mysql ~=
  // X_client * req_ratio, X_apache ~= X_client * 3 (page + 2 statics).
  TestbedConfig cfg = TestbedConfig::defaults();
  ExperimentOptions opts;
  opts.client = quick_client(400);
  Experiment e(cfg, opts);
  const RunResult r = e.run(SoftConfig{200, 50, 50}, 400);
  double mysql_tp = 0.0;
  for (const auto& s : r.servers) {
    if (s.name.rfind("mysql", 0) == 0) mysql_tp += s.throughput;
  }
  EXPECT_NEAR(mysql_tp, r.throughput * r.req_ratio,
              0.1 * mysql_tp + 1.0);
  const ServerOps* apache = r.find_server("apache0");
  ASSERT_NE(apache, nullptr);
  EXPECT_NEAR(apache->throughput, r.throughput * 3.0,
              0.1 * apache->throughput + 1.0);
}

TEST(ExperimentTest, LowWorkloadNothingSaturated) {
  TestbedConfig cfg = TestbedConfig::defaults();
  ExperimentOptions opts;
  opts.client = quick_client(200);
  Experiment e(cfg, opts);
  const RunResult r = e.run(SoftConfig{200, 50, 50}, 200);
  EXPECT_TRUE(r.saturated_hardware().empty());
  EXPECT_TRUE(r.saturated_soft().empty());
}

TEST(ExperimentTest, TinyThreadPoolSaturatesSoftNotHardware) {
  TestbedConfig cfg = TestbedConfig::defaults();
  ExperimentOptions opts;
  opts.client = quick_client(1500);
  Experiment e(cfg, opts);
  // 1 thread per Tomcat: blatant soft bottleneck at moderate workload.
  const RunResult r = e.run(SoftConfig{200, 1, 20}, 1500);
  EXPECT_TRUE(r.saturated_hardware().empty());
  EXPECT_FALSE(r.saturated_soft().empty());
}

TEST(ExperimentOptionsTest, FromEnvHonoursFullFlag) {
  ::setenv("SOFTRES_FULL", "1", 1);
  const ExperimentOptions full = ExperimentOptions::from_env();
  ::unsetenv("SOFTRES_FULL");
  const ExperimentOptions quick = ExperimentOptions::from_env();
  EXPECT_NEAR(full.client.runtime_s, 720.0, 1e-9);
  EXPECT_LT(quick.client.runtime_s, full.client.runtime_s);
}

}  // namespace
}  // namespace softres::exp
