#include "exp/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace softres::exp {
namespace {

TEST(ParallelExecutorTest, ResultsComeBackInInputOrder) {
  ParallelExecutor pool(4);
  // Early tasks sleep longest so completion order inverts input order.
  const auto out = pool.run_indexed(8, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
    return i * 10;
  });
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);
}

TEST(ParallelExecutorTest, RunAllPreservesOrderOfHeterogeneousTasks) {
  ParallelExecutor pool(3);
  std::vector<std::function<std::string()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((6 - i) * 2));
      return "task" + std::to_string(i);
    });
  }
  const auto out = pool.run_all(std::move(tasks));
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], "task" + std::to_string(i));
}

TEST(ParallelExecutorTest, FirstInputOrderedExceptionPropagates) {
  ParallelExecutor pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i, &completed]() -> int {
      if (i == 2) throw std::runtime_error("trial 2 failed");
      if (i == 5) throw std::logic_error("trial 5 failed");
      ++completed;
      return i;
    });
  }
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "expected run_all to rethrow";
  } catch (const std::runtime_error& e) {
    // Input order: the runtime_error from task 2 wins over task 5's.
    EXPECT_STREQ(e.what(), "trial 2 failed");
  }
  // Every non-throwing job ran to completion before the rethrow — no work
  // is left detached referencing caller state.
  EXPECT_EQ(completed.load(), 6);
}

TEST(ParallelExecutorTest, SingleJobRunsInlineOnCaller) {
  ParallelExecutor pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const auto caller = std::this_thread::get_id();
  const auto ids = pool.run_indexed(
      4, [](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelExecutorTest, MultiJobRunsOffCaller) {
  ParallelExecutor pool(2);
  const auto caller = std::this_thread::get_id();
  const auto ids = pool.run_indexed(
      4, [](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_NE(id, caller);
}

TEST(ParallelExecutorTest, OversubscriptionCompletesEveryTask) {
  // Far more workers than cores and far more tasks than workers: everything
  // still completes exactly once, in order.
  ParallelExecutor pool(32);
  std::atomic<int> ran{0};
  const auto out = pool.run_indexed(200, [&ran](std::size_t i) {
    ++ran;
    return i;
  });
  EXPECT_EQ(ran.load(), 200);
  ASSERT_EQ(out.size(), 200u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(ParallelExecutorTest, SubmitReturnsUsableFuture) {
  ParallelExecutor pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ParallelExecutorTest, DefaultJobsHonoursEnvironment) {
  ::setenv("SOFTRES_JOBS", "3", 1);
  EXPECT_EQ(ParallelExecutor::default_jobs(), 3u);
  EXPECT_EQ(ParallelExecutor(0).jobs(), 3u);

  // Garbage and non-positive values fall through to hardware_concurrency.
  ::setenv("SOFTRES_JOBS", "0", 1);
  EXPECT_GE(ParallelExecutor::default_jobs(), 1u);
  ::setenv("SOFTRES_JOBS", "not-a-number", 1);
  EXPECT_GE(ParallelExecutor::default_jobs(), 1u);

  ::unsetenv("SOFTRES_JOBS");
  EXPECT_GE(ParallelExecutor::default_jobs(), 1u);
}

TEST(ParallelExecutorTest, ExplicitJobsBeatsEnvironment) {
  ::setenv("SOFTRES_JOBS", "7", 1);
  ParallelExecutor pool(2);
  EXPECT_EQ(pool.jobs(), 2u);
  ::unsetenv("SOFTRES_JOBS");
}

TEST(ParallelExecutorTest, ManyTasksSpreadAcrossWorkers) {
  ParallelExecutor pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.run_indexed(64, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
    return i;
  });
  // With 64 sleeping tasks on a 4-worker pool at least two workers must
  // have picked up work.
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace softres::exp
