#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/rng.h"

#include "metrics/sla.h"
#include "metrics/table.h"

namespace softres::metrics {
namespace {

TEST(SlaModelTest, SplitsAtThreshold) {
  sim::SampleSet rts;
  for (double v : {0.1, 0.5, 1.0, 1.5, 2.5, 3.0}) rts.add(v);
  SlaModel sla(1.0);
  const SlaSplit s = sla.split(rts, 2.0);  // 2 s window
  EXPECT_NEAR(s.goodput, 1.5, 1e-12);      // 3 requests / 2 s
  EXPECT_NEAR(s.badput, 1.5, 1e-12);
  EXPECT_NEAR(s.throughput(), 3.0, 1e-12);
  EXPECT_NEAR(s.satisfaction(), 0.5, 1e-12);
}

TEST(SlaModelTest, ThresholdBoundaryIsInclusive) {
  sim::SampleSet rts;
  rts.add(1.0);
  const SlaSplit s = SlaModel(1.0).split(rts, 1.0);
  EXPECT_EQ(s.goodput, 1.0);
  EXPECT_EQ(s.badput, 0.0);
}

TEST(SlaModelTest, EmptyWindowSafe) {
  sim::SampleSet rts;
  const SlaSplit s = SlaModel(1.0).split(rts, 10.0);
  EXPECT_EQ(s.goodput, 0.0);
  EXPECT_EQ(s.badput, 0.0);
  EXPECT_EQ(s.satisfaction(), 1.0);  // vacuously satisfied
  EXPECT_EQ(SlaModel(1.0).split(rts, 0.0).throughput(), 0.0);
}

TEST(SlaModelTest, TighterThresholdNeverIncreasesGoodput) {
  sim::SampleSet rts;
  sim::Rng rng(11);
  for (int i = 0; i < 1000; ++i) rts.add(rng.exponential(1.0));
  double prev = 1e18;
  for (double thr : {2.0, 1.0, 0.5, 0.2}) {
    const double gp = SlaModel(thr).split(rts, 1.0).goodput;
    EXPECT_LE(gp, prev);
    prev = gp;
  }
}

TEST(RevenueModelTest, EarningsMinusPenalties) {
  RevenueModel rev{2.0, 5.0};
  SlaSplit s;
  s.goodput = 10.0;
  s.badput = 2.0;
  // (10*2 - 2*5) * 60 s
  EXPECT_NEAR(rev.revenue(s, 60.0), 600.0, 1e-9);
}

TEST(RevenueModelTest, CanGoNegative) {
  RevenueModel rev{1.0, 10.0};
  SlaSplit s;
  s.goodput = 1.0;
  s.badput = 1.0;
  EXPECT_LT(rev.revenue(s, 1.0), 0.0);
}

TEST(RtBucketsTest, MatchesPaperBoundaries) {
  sim::BucketedHistogram h = make_rt_buckets();
  EXPECT_EQ(h.buckets(), 8u);
  EXPECT_EQ(h.upper_bound(0), 0.2);
  EXPECT_EQ(h.upper_bound(6), 2.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(7)));
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"x", "y"});
  t.add_row(std::vector<std::string>{"1", "2"});
  t.add_row(std::vector<double>{3.14159, 2.0}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3.14,2.00\n");
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace softres::metrics
