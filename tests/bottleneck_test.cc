#include "core/bottleneck.h"

#include <gtest/gtest.h>

namespace softres::core {
namespace {

Observation base_obs() {
  Observation obs;
  obs.servers = {
      {Tier::kWeb, "apache0", 2400.0, 0.02, 48.0},
      {Tier::kApp, "tomcat0", 400.0, 0.03, 12.0},
      {Tier::kApp, "tomcat1", 400.0, 0.03, 12.0},
      {Tier::kMiddleware, "cjdbc0", 2100.0, 0.004, 8.0},
      {Tier::kDb, "mysql0", 1050.0, 0.002, 2.0},
  };
  obs.hardware = {
      {"apache0.cpu", 30.0, false},
      {"tomcat0.cpu", 80.0, false},
      {"tomcat1.cpu", 80.0, false},
      {"cjdbc0.cpu", 60.0, false},
      {"mysql0.cpu", 50.0, false},
  };
  obs.soft = {
      {"apache0.workers", 400, 40.0, false},
      {"tomcat0.threads", 15, 60.0, false},
      {"tomcat0.dbconns", 6, 30.0, false},
  };
  return obs;
}

TEST(BottleneckTest, NothingSaturated) {
  const BottleneckReport r = detect_bottleneck(base_obs());
  EXPECT_EQ(r.kind, BottleneckKind::kNone);
  EXPECT_TRUE(r.hardware.empty());
  EXPECT_TRUE(r.soft.empty());
  EXPECT_TRUE(r.critical.empty());
}

TEST(BottleneckTest, SingleHardwareBottleneck) {
  Observation obs = base_obs();
  obs.hardware[1].saturated = true;  // tomcat0.cpu
  const BottleneckReport r = detect_bottleneck(obs);
  EXPECT_EQ(r.kind, BottleneckKind::kHardware);
  EXPECT_EQ(r.critical, "tomcat0.cpu");
}

TEST(BottleneckTest, SymmetricReplicasAreOneBottleneck) {
  // Both Tomcats saturate together in 1/2/1/2: still a single logical
  // bottleneck (same tier), not a multi-bottleneck.
  Observation obs = base_obs();
  obs.hardware[1].saturated = true;
  obs.hardware[2].saturated = true;
  const BottleneckReport r = detect_bottleneck(obs);
  EXPECT_EQ(r.kind, BottleneckKind::kHardware);
  EXPECT_EQ(r.hardware.size(), 2u);
  EXPECT_EQ(r.critical, "tomcat0.cpu");
}

TEST(BottleneckTest, CrossTierSaturationIsMulti) {
  Observation obs = base_obs();
  obs.hardware[1].saturated = true;  // tomcat0.cpu (app)
  obs.hardware[3].saturated = true;  // cjdbc0.cpu (middleware)
  const BottleneckReport r = detect_bottleneck(obs);
  EXPECT_EQ(r.kind, BottleneckKind::kMulti);
}

TEST(BottleneckTest, SoftOnlyIsHiddenBottleneck) {
  // The Section III-A case: pool pegged, all hardware idle.
  Observation obs = base_obs();
  obs.soft[1].saturated = true;  // tomcat0.threads
  const BottleneckReport r = detect_bottleneck(obs);
  EXPECT_EQ(r.kind, BottleneckKind::kSoft);
  EXPECT_EQ(r.soft, std::vector<std::string>{"tomcat0.threads"});
  EXPECT_TRUE(r.critical.empty());
}

TEST(BottleneckTest, HardwareTakesPriorityOverSoft) {
  // Near saturation pools often peg alongside the CPU; the hardware
  // bottleneck is the critical one.
  Observation obs = base_obs();
  obs.hardware[1].saturated = true;
  obs.soft[1].saturated = true;
  const BottleneckReport r = detect_bottleneck(obs);
  EXPECT_EQ(r.kind, BottleneckKind::kHardware);
  EXPECT_EQ(r.critical, "tomcat0.cpu");
  EXPECT_EQ(r.soft.size(), 1u);  // still reported
}

TEST(ObservationTest, Helpers) {
  Observation obs = base_obs();
  EXPECT_FALSE(obs.any_hardware_saturated());
  EXPECT_FALSE(obs.any_soft_saturated());
  obs.hardware[0].saturated = true;
  obs.soft[0].saturated = true;
  EXPECT_TRUE(obs.any_hardware_saturated());
  EXPECT_TRUE(obs.any_soft_saturated());
  EXPECT_NE(obs.find_server("tomcat1"), nullptr);
  EXPECT_EQ(obs.find_server("tomcat9"), nullptr);
}

TEST(AllocationTest, DoubledAndToString) {
  Allocation a{100, 25, 25};
  const Allocation d = a.doubled();
  EXPECT_EQ(d.web_threads, 200u);
  EXPECT_EQ(d.app_threads, 50u);
  EXPECT_EQ(d.app_connections, 50u);
  EXPECT_EQ(a.to_string(), "100-25-25");
}

TEST(TierTest, Names) {
  EXPECT_STREQ(tier_name(Tier::kWeb), "web");
  EXPECT_STREQ(tier_name(Tier::kApp), "app");
  EXPECT_STREQ(tier_name(Tier::kMiddleware), "middleware");
  EXPECT_STREQ(tier_name(Tier::kDb), "db");
}

}  // namespace
}  // namespace softres::core
