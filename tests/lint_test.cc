// Tests for tools/lint (softres-lint), the determinism & soft-resource
// contract checker. Two layers:
//  * scan_file unit tests on inline snippets — rule mechanics, comment and
//    string stripping, the SOFTRES_LINT_ALLOW escape hatch;
//  * scan_tree over tests/lint/fixtures (a miniature repository layout,
//    SOFTRES_LINT_FIXTURE_DIR) — exact rule IDs and line numbers per seeded
//    violation, and zero findings on the clean fixtures;
//  * analyze_tree over tests/lint/fixtures/crosstu/{graph,pool,series} —
//    golden (file, line, rule) triples for the cross-TU passes SR011-SR013,
//    plus the SARIF/markdown renderings of those analyses.
// The real tree's cleanliness is enforced separately by the
// softres_lint_clean ctest (tools/lint/CMakeLists.txt).

#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace lint = softres::lint;

namespace {

std::vector<std::string> rules_of(const std::vector<lint::Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

}  // namespace

TEST(LintClassifyTest, DomainFromPath) {
  EXPECT_EQ(lint::classify_path("src/sim/rng.cc"), lint::Domain::kSim);
  EXPECT_EQ(lint::classify_path("src/exp/parallel.cc"), lint::Domain::kSim);
  EXPECT_EQ(lint::classify_path("src/obs/registry.cc"), lint::Domain::kObs);
  EXPECT_EQ(lint::classify_path("src/support/contract.h"),
            lint::Domain::kExempt);
  EXPECT_EQ(lint::classify_path("bench/bench_fig4.cpp"),
            lint::Domain::kDriver);
  EXPECT_EQ(lint::classify_path("examples/quickstart.cpp"),
            lint::Domain::kDriver);
  EXPECT_EQ(lint::classify_path("tests/rng_test.cc"), lint::Domain::kTest);
  EXPECT_EQ(lint::classify_path("tools/lint/lint.cc"), lint::Domain::kTool);
  EXPECT_EQ(lint::classify_path("third_party/x.cc"), lint::Domain::kExempt);
}

TEST(LintScanTest, ToolAndTestDomainsKeepDeterminismRulesOnly) {
  // The entropy ban binds everywhere, harness code included...
  EXPECT_EQ(rules_of(lint::scan_file("tools/lint/x.cc",
                                     "#include <random>\n")),
            (std::vector<std::string>{"SR001"}));
  EXPECT_EQ(rules_of(lint::scan_file("tests/x_test.cc",
                                     "std::mt19937 gen(1);\n")),
            (std::vector<std::string>{"SR001"}));
  // ...but tests construct Rng streams and resize pools by design.
  EXPECT_TRUE(lint::scan_file("tests/x_test.cc", "sim::Rng r(123);\n").empty());
  EXPECT_TRUE(lint::scan_file("tools/x.cc", "sim::Rng r(123);\n").empty());
  EXPECT_TRUE(
      lint::scan_file("tests/x_test.cc", "pool->set_capacity(64);\n").empty());
}

TEST(LintScanTest, BannedRngTokens) {
  const auto fs = lint::scan_file(
      "src/tier/x.cc", "#include <random>\nstd::mt19937 gen(1);\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "SR001");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].rule, "SR001");
  EXPECT_EQ(fs[1].line, 2);
}

TEST(LintScanTest, WallClockOnlyOutsideObs) {
  const std::string code = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/exp/x.cc", code)),
            (std::vector<std::string>{"SR002"}));
  EXPECT_TRUE(lint::scan_file("src/obs/x.cc", code).empty());
}

TEST(LintScanTest, CommentsAndStringsAreStripped) {
  EXPECT_TRUE(lint::scan_file("src/sim/x.cc",
                              "// std::random_device in a comment\n"
                              "/* system_clock in a block\n"
                              "   spanning lines */\n"
                              "const char* s = \"std::rand()\";\n")
                  .empty());
  // Raw string bodies are stripped too, across lines and with a delimiter.
  EXPECT_TRUE(lint::scan_file("src/sim/x.cc",
                              "const char* r = R\"(std::mt19937 g;)\";\n"
                              "const char* d = R\"x(\n"
                              "  std::random_device rd;\n"
                              ")x\";\n")
                  .empty());
}

TEST(LintScanTest, NearMissIdentifiersDoNotFire) {
  EXPECT_TRUE(lint::scan_file("src/sim/x.cc",
                              "int threads_active = 0;\n"
                              "double mean_wait_time() { return 0.0; }\n"
                              "double operand(double x) { return x; }\n")
                  .empty());
}

TEST(LintScanTest, UnorderedIterationNotDeclarationOrLookup) {
  const std::string code =
      "std::unordered_map<std::string, int> seen;\n"  // declaration: ok
      "auto it = seen.find(\"k\");\n"                 // lookup: ok
      "for (const auto& kv : seen) use(kv);\n";       // iteration: SR003
  const auto fs = lint::scan_file("src/obs/x.cc", code);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "SR003");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintScanTest, RngConstructionSanctionedSites) {
  const std::string ctor = "sim::Rng local(123);\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc", ctor)),
            (std::vector<std::string>{"SR004"}));
  EXPECT_EQ(rules_of(lint::scan_file("bench/x.cpp", ctor)),
            (std::vector<std::string>{"SR004"}));
  // Sanctioned: the Rng implementation itself and RunContext.
  EXPECT_TRUE(lint::scan_file("src/sim/rng.cc", ctor).empty());
  EXPECT_TRUE(lint::scan_file("src/exp/run_context.cc", ctor).empty());
  // References and by-value parameters are not constructions.
  EXPECT_TRUE(lint::scan_file("src/tier/x.cc",
                              "void f(sim::Rng& rng);\n"
                              "void g(sim::Rng rng);\n")
                  .empty());
}

TEST(LintScanTest, ThreadingOnlyInSimAndCore) {
  const std::string code = "#include <mutex>\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/sim/x.cc", code)),
            (std::vector<std::string>{"SR005"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/core/x.cc", code)),
            (std::vector<std::string>{"SR005"}));
  // exp hosts the ParallelExecutor: concurrency is legitimate there.
  EXPECT_TRUE(lint::scan_file("src/exp/parallel.cc", code).empty());
}

TEST(LintScanTest, AllowEscapeHatchSameLineAndAbove) {
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "sim::Rng r(1);  // SOFTRES_LINT_ALLOW(SR004: derived)\n")
          .empty());
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "// SOFTRES_LINT_ALLOW(SR004: derived)\n"
                      "sim::Rng r(1);\n")
          .empty());
  // The annotation only covers its own rule...
  EXPECT_EQ(rules_of(lint::scan_file(
                "src/tier/x.cc",
                "std::mt19937 g;  // SOFTRES_LINT_ALLOW(SR004: wrong rule)\n")),
            (std::vector<std::string>{"SR001"}));
  // ...and only one line of distance.
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc",
                                     "// SOFTRES_LINT_ALLOW(SR004: too far)\n"
                                     "\n"
                                     "sim::Rng r(1);\n")),
            (std::vector<std::string>{"SR004"}));
}

TEST(LintScanTest, StdFunctionOnlyInHotPathDomains) {
  const std::string code = "std::function<void()> cb;\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/sim/x.cc", code)),
            (std::vector<std::string>{"SR007"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc", code)),
            (std::vector<std::string>{"SR007"}));
  // Cold domains keep std::function: the executor queue, metric sources.
  EXPECT_TRUE(lint::scan_file("src/exp/parallel.h", code).empty());
  EXPECT_TRUE(lint::scan_file("src/obs/registry.h", code).empty());
  EXPECT_TRUE(lint::scan_file("bench/x.cpp", code).empty());
  // The escape hatch works like every other rule's.
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "// SOFTRES_LINT_ALLOW(SR007: cold reporting path)\n" +
                          code)
          .empty());
  // Mentions in comments and near-miss identifiers do not fire.
  EXPECT_TRUE(lint::scan_file("src/sim/x.cc",
                              "// replaces std::function<void()> storage\n"
                              "InlineCallback fn;\n"
                              "int function_count = 0;\n")
                  .empty());
}

TEST(LintScanTest, StreamWritesBannedInDiagnoserAndTimelineFiles) {
  const std::string code = "std::cout << \"verdict\";\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/obs/diagnoser.cc", code)),
            (std::vector<std::string>{"SR008"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/obs/timeline.cc", code)),
            (std::vector<std::string>{"SR008"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/obs/diagnoser_rules.h", code)),
            (std::vector<std::string>{"SR008"}));
  // Out of scope: the rest of obs renders and exports on purpose.
  EXPECT_TRUE(lint::scan_file("src/obs/report.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/obs/registry.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/exp/experiment.cc", code).empty());
  // Stream headers fire even without a write on the same line...
  EXPECT_EQ(rules_of(lint::scan_file("src/obs/timeline.cc",
                                     "#include <sstream>\n")),
            (std::vector<std::string>{"SR008"}));
  // ...but snprintf into a buffer is the sanctioned labelling tool.
  EXPECT_TRUE(lint::scan_file("src/obs/diagnoser.cc",
                              "#include <cstdio>\n"
                              "void f() { std::snprintf(nullptr, 0, \"x\"); }\n")
                  .empty());
  // The escape hatch works like every other rule's.
  EXPECT_TRUE(
      lint::scan_file("src/obs/diagnoser.cc",
                      "// SOFTRES_LINT_ALLOW(SR008: debugging aid)\n" + code)
          .empty());
}

TEST(LintScanTest, CycleCountersOutsideProfilerTu) {
  const std::string code = "auto t = __builtin_ia32_rdtsc();\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc", code)),
            (std::vector<std::string>{"SR009"}));
  EXPECT_EQ(rules_of(lint::scan_file("bench/x.cpp", code)),
            (std::vector<std::string>{"SR009"}));
  // The sanctioned homes: the profiler TU (src/support) and src/obs.
  EXPECT_TRUE(lint::scan_file("src/support/prof.h", code).empty());
  EXPECT_TRUE(lint::scan_file("src/obs/profiler.cc", code).empty());
  // std::chrono stopwatches in drivers are SR009; inside src/ the same line
  // already belongs to SR002 (wall-clock) and must not double-report.
  const std::string chrono = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(rules_of(lint::scan_file("bench/x.cpp", chrono)),
            (std::vector<std::string>{"SR009"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/exp/x.cc", chrono)),
            (std::vector<std::string>{"SR002"}));
  // The escape hatch works like every other rule's.
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "// SOFTRES_LINT_ALLOW(SR009: calibration harness)\n" +
                          code)
          .empty());
}

TEST(LintScanTest, PoolResizeOnlyInSanctionedControllers) {
  const std::string code = "pool->set_capacity(64);\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc", code)),
            (std::vector<std::string>{"SR010"}));
  EXPECT_EQ(rules_of(lint::scan_file("bench/x.cpp", code)),
            (std::vector<std::string>{"SR010"}));
  EXPECT_EQ(rules_of(lint::scan_file("examples/x.cpp", code)),
            (std::vector<std::string>{"SR010"}));
  // Sanctioned: the pool mechanism itself and the two controllers.
  EXPECT_TRUE(lint::scan_file("src/soft/pool.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/exp/adaptive.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/core/governor.cc", code).empty());
  // Near-miss identifiers and comment mentions do not fire.
  EXPECT_TRUE(lint::scan_file("src/tier/x.cc",
                              "// resizes go through set_capacity\n"
                              "int set_capacity_marker = 0;\n")
                  .empty());
  // The escape hatch works like every other rule's.
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "// SOFTRES_LINT_ALLOW(SR010: test-only shim)\n" + code)
          .empty());
}

TEST(LintScanTest, QuantileSelectionOnlyInStatsHomes) {
  const std::string code = "std::nth_element(v.begin(), mid, v.end());\n";
  EXPECT_EQ(rules_of(lint::scan_file("src/tier/x.cc", code)),
            (std::vector<std::string>{"SR015"}));
  EXPECT_EQ(rules_of(lint::scan_file("src/exp/x.cc", code)),
            (std::vector<std::string>{"SR015"}));
  EXPECT_EQ(rules_of(lint::scan_file("bench/x.cpp", code)),
            (std::vector<std::string>{"SR015"}));
  // Sanctioned: the SampleSet implementation, metrics and obs layers — the
  // places the one nearest-rank quantile definition lives — plus harnesses.
  EXPECT_TRUE(lint::scan_file("src/sim/stats.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/metrics/sla.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("src/obs/tail.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("tests/x_test.cc", code).empty());
  EXPECT_TRUE(lint::scan_file("tools/x.cc", code).empty());
  // partial_sort and partial_sort_copy are separate tokens: word-boundary
  // matching keeps the former from firing inside the latter, so each fires
  // exactly once per line.
  EXPECT_EQ(rules_of(lint::scan_file(
                "src/tier/x.cc",
                "std::partial_sort_copy(a.begin(), a.end(), b.begin(), "
                "b.end());\n")),
            (std::vector<std::string>{"SR015"}));
  // Near-miss identifiers and comment mentions do not fire.
  EXPECT_TRUE(lint::scan_file("src/tier/x.cc",
                              "// sorted via std::nth_element upstream\n"
                              "int nth_element_cache = 0;\n"
                              "bool partial = partial_sorted();\n")
                  .empty());
  // The escape hatch works like every other rule's.
  EXPECT_TRUE(
      lint::scan_file("src/tier/x.cc",
                      "// SOFTRES_LINT_ALLOW(SR015: top-k on a local copy)\n" +
                          code)
          .empty());
}

TEST(LintScanTest, RuleTableCoversAllEmittedRules) {
  std::set<std::string> ids;
  for (const auto& r : lint::rule_table()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{"SR001", "SR002", "SR003", "SR004",
                                        "SR005", "SR006", "SR007", "SR008",
                                        "SR009", "SR010", "SR011", "SR012",
                                        "SR013", "SR014", "SR015"}));
}

// ---- Fixture-tree scan: exact rule IDs and lines per seeded violation ----

TEST(LintFixtureTest, DetectsEverySeededViolationExactly) {
  std::vector<std::string> errors;
  const auto fs = lint::scan_tree(SOFTRES_LINT_FIXTURE_DIR, {"src"}, &errors);
  EXPECT_TRUE(errors.empty());

  // (file, line, rule) triples, sorted by (file, line, rule) — the scanner's
  // output contract. One entry per expected finding.
  struct Expected {
    const char* file;
    int line;
    const char* rule;
  };
  const std::vector<Expected> expected = {
      {"src/core/bad_mutex.cc", 4, "SR005"},
      {"src/core/bad_mutex.cc", 5, "SR005"},
      {"src/core/bad_mutex.cc", 10, "SR005"},
      {"src/core/bad_mutex.cc", 15, "SR005"},
      {"src/core/bad_unordered.cc", 14, "SR003"},
      {"src/core/bad_unordered.cc", 17, "SR003"},
      {"src/exp/bad_clock.cc", 9, "SR002"},
      {"src/exp/bad_clock.cc", 10, "SR002"},
      {"src/exp/bad_clock.cc", 11, "SR002"},
      {"src/exp/bad_quantile.cc", 10, "SR015"},
      {"src/exp/bad_quantile.cc", 15, "SR015"},
      {"src/exp/bad_quantile.cc", 17, "SR015"},
      {"src/obs/diagnoser_bad_print.cc", 3, "SR008"},
      {"src/obs/diagnoser_bad_print.cc", 4, "SR008"},
      {"src/obs/diagnoser_bad_print.cc", 10, "SR008"},
      {"src/obs/diagnoser_bad_print.cc", 13, "SR008"},
      {"src/obs/diagnoser_bad_print.cc", 18, "SR008"},
      {"src/sim/bad_rng.cc", 3, "SR001"},
      {"src/sim/bad_rng.cc", 8, "SR001"},
      {"src/sim/bad_rng.cc", 9, "SR001"},
      {"src/sim/bad_thread_id.cc", 5, "SR005"},
      {"src/sim/bad_thread_id.cc", 10, "SR006"},
      {"src/sim/bad_thread_id.cc", 14, "SR005"},
      {"src/sim/bad_thread_id.cc", 14, "SR006"},
      {"src/tier/bad_rdtsc.cc", 10, "SR009"},
      {"src/tier/bad_rdtsc.cc", 13, "SR009"},
      {"src/tier/bad_rdtsc.cc", 20, "SR009"},
      {"src/tier/bad_rng_ctor.cc", 15, "SR004"},
      {"src/tier/bad_rng_ctor.cc", 19, "SR004"},
      {"src/tier/bad_set_capacity.cc", 12, "SR010"},
      {"src/tier/bad_set_capacity.cc", 15, "SR010"},
      {"src/tier/bad_std_function.cc", 15, "SR007"},
      {"src/tier/bad_std_function.cc", 19, "SR007"},
      {"src/tier/bad_std_function.cc", 22, "SR007"},
  };
  ASSERT_EQ(fs.size(), expected.size())
      << [&] {
           std::string got;
           for (const auto& f : fs) got += lint::format_finding(f) + "\n";
           return got;
         }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fs[i].file, expected[i].file) << "finding " << i;
    EXPECT_EQ(fs[i].line, expected[i].line) << "finding " << i;
    EXPECT_EQ(fs[i].rule, expected[i].rule) << "finding " << i;
  }
}

TEST(LintFixtureTest, CleanFixturesProduceNoFindings) {
  for (const char* clean : {"src/obs/ok_clock.cc", "src/exp/ok_allowed.cc",
                            "src/exp/ok_near_miss.cc",
                            "src/exp/adaptive_ok_resize.cc"}) {
    std::vector<std::string> errors;
    const auto fs = lint::scan_tree(SOFTRES_LINT_FIXTURE_DIR, {clean}, &errors);
    EXPECT_TRUE(errors.empty()) << clean;
    std::string got;
    for (const auto& f : fs) got += lint::format_finding(f) + "\n";
    EXPECT_TRUE(fs.empty()) << clean << " produced:\n" << got;
  }
}

TEST(LintFixtureTest, FormatFindingIsClickable) {
  lint::Finding f;
  f.file = "src/sim/bad_rng.cc";
  f.line = 8;
  f.rule = "SR001";
  f.message = "std::random_device is banned";
  f.excerpt = "std::random_device rd;";
  const std::string text = lint::format_finding(f);
  EXPECT_NE(text.find("src/sim/bad_rng.cc:8: [SR001]"), std::string::npos);
  EXPECT_NE(text.find("std::random_device rd;"), std::string::npos);
  f.severity = lint::Severity::kNote;
  EXPECT_NE(lint::format_finding(f).find("[note SR001]"), std::string::npos);
}

// ---- Cross-TU passes: golden triples over the crosstu fixture trees ----

namespace {

struct Expected {
  const char* file;
  int line;
  const char* rule;
};

void expect_triples(const std::vector<lint::Finding>& fs,
                    const std::vector<Expected>& expected) {
  ASSERT_EQ(fs.size(), expected.size()) << [&] {
    std::string got;
    for (const auto& f : fs) got += lint::format_finding(f) + "\n";
    return got;
  }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fs[i].file, expected[i].file) << "finding " << i;
    EXPECT_EQ(fs[i].line, expected[i].line) << "finding " << i;
    EXPECT_EQ(fs[i].rule, expected[i].rule) << "finding " << i;
  }
}

}  // namespace

TEST(LintCrossTuTest, IncludeGraphGolden) {
  lint::Options opt;
  opt.layers_file = SOFTRES_LINT_FIXTURE_DIR "/crosstu/graph/layers.txt";
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/graph",
                                    {"src"}, opt);
  EXPECT_TRUE(a.errors.empty());
  expect_triples(a.findings, {
                                 {"src/base/bad_up.h", 3, "SR011"},
                                 {"src/mid/bad_side.h", 3, "SR011"},
                                 {"src/mid/cycle_b.h", 3, "SR011"},
                             });
  ASSERT_EQ(a.findings.size(), 3u);
  EXPECT_NE(a.findings[0].message.find("upward include"), std::string::npos);
  EXPECT_NE(a.findings[1].message.find("sideways include"), std::string::npos);
  EXPECT_NE(a.findings[2].message.find(
                "include cycle: src/mid/cycle_a.h -> src/mid/cycle_b.h -> "
                "src/mid/cycle_a.h"),
            std::string::npos);
  EXPECT_TRUE(a.notes.empty());
}

TEST(LintCrossTuTest, PoolContractGolden) {
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/pool",
                                    {"src"});
  EXPECT_TRUE(a.errors.empty());
  expect_triples(a.findings, {
                                 {"src/tier/cases.cc", 24, "SR012"},  // leak
                                 {"src/tier/cases.cc", 32, "SR012"},  // return
                                 {"src/tier/cases.cc", 39, "SR012"},  // raw
                             });
  ASSERT_EQ(a.findings.size(), 3u);
  EXPECT_NE(a.findings[0].message.find("leaks from the grant callback"),
            std::string::npos);
  EXPECT_NE(a.findings[1].message.find("early return"), std::string::npos);
  EXPECT_NE(a.findings[2].message.find("raw Pool::release"),
            std::string::npos);
}

TEST(LintCrossTuTest, SeriesXrefGolden) {
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/series",
                                    {"src"});
  EXPECT_TRUE(a.errors.empty());
  // The typo'd lookup is the only finding: the exact lookup matches its
  // registration and the runtime-prefixed probe matches by suffix.
  expect_triples(a.findings, {{"src/obs/cases.cc", 28, "SR013"}});
  ASSERT_EQ(a.findings.size(), 1u);
  EXPECT_NE(a.findings[0].message.find("cpu_util_pc"), std::string::npos);
  // The never-read exact registration is a note, not a gate.
  expect_triples(a.notes, {{"src/obs/cases.cc", 25, "SR013"}});
  ASSERT_EQ(a.notes.size(), 1u);
  EXPECT_EQ(a.notes[0].severity, lint::Severity::kNote);
  // Passed through a variable: a literal inside `.find(` would look like a
  // series lookup to SR013 itself.
  const std::string orphan = std::string("orphan") + ".series";
  EXPECT_NE(a.notes[0].message.find(orphan), std::string::npos);
}

TEST(LintCrossTuTest, ExcludePrefixSkipsFiles) {
  lint::Options opt;
  opt.exclude_prefixes = {"src/tier"};
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/pool",
                                    {"src"}, opt);
  EXPECT_EQ(a.files_scanned, 0u);
  EXPECT_TRUE(a.findings.empty());
}

TEST(LintOutputTest, SarifRendering) {
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/pool",
                                    {"src"});
  const std::string sarif = lint::to_sarif(a);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"softres-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"SR012\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uriBaseId\": \"SRCROOT\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 24"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  // Every rule rides along as a reportingDescriptor.
  for (const auto& r : lint::rule_table()) {
    EXPECT_NE(sarif.find("\"id\": \"" + r.id + "\""), std::string::npos)
        << r.id;
  }
  // Notes render at note level (series fixture has one).
  const auto s = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/series",
                                    {"src"});
  EXPECT_NE(lint::to_sarif(s).find("\"level\": \"note\""), std::string::npos);
}

TEST(LintOutputTest, MarkdownRendering) {
  const auto a = lint::analyze_tree(SOFTRES_LINT_FIXTURE_DIR "/crosstu/series",
                                    {"src"});
  const std::string md = lint::to_markdown(a);
  EXPECT_NE(md.find("### softres-lint"), std::string::npos);
  EXPECT_NE(md.find("| `src/obs/cases.cc` | 28 | SR013 |"),
            std::string::npos);
  lint::Analysis clean;
  EXPECT_NE(lint::to_markdown(clean).find(":white_check_mark:"),
            std::string::npos);
}

TEST(LintOutputTest, DefaultScanSet) {
  EXPECT_EQ(lint::default_paths(),
            (std::vector<std::string>{"src", "bench", "examples", "tools",
                                      "tests"}));
  const auto& ex = lint::default_excludes();
  EXPECT_NE(std::find(ex.begin(), ex.end(), "tests/lint/fixtures"), ex.end());
}
