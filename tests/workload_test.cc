#include <gtest/gtest.h>

#include <map>

#include "workload/rubbos.h"

namespace softres::workload {
namespace {

TEST(RubbosTest, TableHas24Interactions) {
  EXPECT_EQ(RubbosWorkload::default_interactions().size(), 24u);
}

TEST(RubbosTest, WriteInteractionsAbsentFromBrowseMix) {
  RubbosWorkload w(Mix::kBrowseOnly);
  sim::Rng rng(1);
  tier::Request req;
  for (int i = 0; i < 20000; ++i) {
    w.sample_dynamic(req, rng);
    const auto& it = w.interactions()[static_cast<std::size_t>(req.interaction)];
    ASSERT_GT(it.browse_weight, 0.0) << it.name;
  }
}

TEST(RubbosTest, ReadWriteMixIncludesWrites) {
  RubbosWorkload w(Mix::kReadWrite);
  sim::Rng rng(2);
  tier::Request req;
  bool saw_write = false;
  for (int i = 0; i < 20000 && !saw_write; ++i) {
    w.sample_dynamic(req, rng);
    const auto& it = w.interactions()[static_cast<std::size_t>(req.interaction)];
    if (it.browse_weight == 0.0) saw_write = true;
  }
  EXPECT_TRUE(saw_write);
}

TEST(RubbosTest, ReqRatioMatchesEmpiricalMean) {
  RubbosWorkload w(Mix::kBrowseOnly);
  sim::Rng rng(3);
  tier::Request req;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    w.sample_dynamic(req, rng);
    sum += req.num_queries;
  }
  EXPECT_NEAR(sum / n, w.req_ratio(), 0.03);
}

TEST(RubbosTest, ReqRatioDiffersByMix) {
  RubbosWorkload browse(Mix::kBrowseOnly);
  RubbosWorkload rw(Mix::kReadWrite);
  EXPECT_NE(browse.req_ratio(), rw.req_ratio());
  // Both in a plausible RUBBoS range.
  EXPECT_GT(browse.req_ratio(), 1.5);
  EXPECT_LT(browse.req_ratio(), 4.0);
}

TEST(RubbosTest, DemandMeansMatchProfile) {
  DemandProfile profile;
  RubbosWorkload w(Mix::kBrowseOnly, profile);
  sim::Rng rng(4);
  tier::Request req;
  double tomcat_sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    w.sample_dynamic(req, rng);
    tomcat_sum += req.tomcat_demand_s;
  }
  EXPECT_NEAR(tomcat_sum / n, w.mean_tomcat_demand(),
              0.03 * w.mean_tomcat_demand());
}

TEST(RubbosTest, StaticRequestsTouchNoBackend) {
  RubbosWorkload w;
  sim::Rng rng(5);
  tier::Request req;
  w.sample_static(req, rng);
  EXPECT_EQ(req.kind, tier::RequestKind::kStatic);
  EXPECT_EQ(req.num_queries, 0);
  EXPECT_EQ(req.tomcat_demand_s, 0.0);
  EXPECT_GT(req.apache_demand_s, 0.0);
}

TEST(RubbosTest, ZeroVariabilityGivesDeterministicDemands) {
  DemandProfile profile;
  profile.variability = 0.0;
  RubbosWorkload w(Mix::kBrowseOnly, profile);
  sim::Rng rng(6);
  tier::Request a, b;
  // Same interaction index (force by resampling until equal) has identical
  // demands when variability is zero.
  w.sample_dynamic(a, rng);
  do {
    w.sample_dynamic(b, rng);
  } while (b.interaction != a.interaction);
  EXPECT_EQ(a.tomcat_demand_s, b.tomcat_demand_s);
  EXPECT_EQ(a.mysql_demand_s, b.mysql_demand_s);
}

TEST(RubbosTest, DemandsAreNonNegativeAndFinite) {
  RubbosWorkload w(Mix::kReadWrite);
  sim::Rng rng(7);
  tier::Request req;
  for (int i = 0; i < 50000; ++i) {
    w.sample_dynamic(req, rng);
    ASSERT_GE(req.tomcat_demand_s, 0.0);
    ASSERT_GE(req.cjdbc_demand_s, 0.0);
    ASSERT_GE(req.mysql_demand_s, 0.0);
    ASSERT_LT(req.tomcat_demand_s, 1.0);
    ASSERT_GE(req.num_queries, 1);
    ASSERT_LE(req.num_queries, 6);
  }
}

TEST(RubbosTest, InteractionFrequenciesFollowWeights) {
  RubbosWorkload w(Mix::kBrowseOnly);
  sim::Rng rng(8);
  tier::Request req;
  std::map<int, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    w.sample_dynamic(req, rng);
    counts[req.interaction]++;
  }
  // ViewStory (index 1) carries weight 22 of ~100 total.
  double total_w = 0.0;
  for (const auto& it : w.interactions()) total_w += it.browse_weight;
  const double expected = 22.0 / total_w;
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, expected, 0.01);
}

}  // namespace
}  // namespace softres::workload
