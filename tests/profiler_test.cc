// Tests for the self-profiler (DESIGN.md §11): the prof::Ledger core, the
// obs::Profiler facade and its three export formats. The two load-bearing
// guarantees:
//  * zero perturbation — a profiled trial replays the identical event
//    sequence and produces bit-identical results (the ctest analogue of the
//    bench gate; tracing holds the same line in trace_test.cc);
//  * a sound count axis — deterministic per-subsystem counters that tie out
//    against the simulator's own event accounting.
// The timing axis (cycles) is machine-local by design; tests only check
// structural invariants (exclusive cycles, path table, formats), never
// absolute values, and degrade to the count axis on cycle-free platforms.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/experiment.h"
#include "exp/testbed.h"
#include "obs/profiler.h"
#include "support/prof.h"

namespace softres {
namespace {

exp::TestbedConfig cheap_config() {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  // 10x demands so trials are cheap (same scaling as determinism_test).
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  return cfg;
}

exp::ExperimentOptions cheap_options() {
  exp::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 15.0;
  opts.client.ramp_down_s = 2.0;
  return opts;
}

std::uint64_t count_of(const obs::ProfileSnapshot& snap,
                       prof::Subsystem sub) {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < prof::kPhases; ++p) {
    total += snap.counts[p][static_cast<std::size_t>(sub)];
  }
  return total;
}

/// One profiled standalone trial (the Testbed-level path tests use).
obs::ProfileSnapshot profiled_trial(std::uint64_t* events_executed = nullptr) {
  obs::Profiler profiler;
  {
    const prof::InstallGuard guard = profiler.install();
    SOFTRES_PROF_PHASE(kSetup);
    exp::TestbedConfig cfg = cheap_config();
    workload::ClientConfig client;
    client.users = 300;
    client.ramp_up_s = 5.0;
    client.runtime_s = 15.0;
    client.ramp_down_s = 2.0;
    exp::Testbed bed(cfg, client);
    bed.run();
    if (events_executed != nullptr) {
      *events_executed = bed.simulator().events_executed();
    }
  }
  return profiler.snapshot();
}

TEST(ProfilerTest, OffByDefaultAndZeroPerturbation) {
  const exp::SoftConfig soft{50, 10, 10};
  const exp::Experiment plain_e(cheap_config(), cheap_options());
  const exp::RunResult plain = plain_e.run(soft, 200);
  EXPECT_FALSE(plain.profile.enabled);

  exp::ExperimentOptions opts = cheap_options();
  opts.profile = true;
  const exp::Experiment prof_e(cheap_config(), opts);
  const exp::RunResult profiled = prof_e.run(soft, 200);
  ASSERT_TRUE(profiled.profile.enabled);
  EXPECT_GT(profiled.profile.total_counts(), 0u);

  // The instrumented run replays the identical simulation: every observable
  // a figure script reads is bit-identical, not merely close.
  EXPECT_EQ(plain.trial_seed, profiled.trial_seed);
  EXPECT_EQ(plain.throughput, profiled.throughput);
  ASSERT_EQ(plain.response_times.count(), profiled.response_times.count());
  EXPECT_EQ(plain.response_times.mean(), profiled.response_times.mean());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(plain.response_times.quantile(q),
              profiled.response_times.quantile(q));
  }
  ASSERT_EQ(plain.cpus.size(), profiled.cpus.size());
  for (std::size_t i = 0; i < plain.cpus.size(); ++i) {
    EXPECT_EQ(plain.cpus[i].util_pct, profiled.cpus[i].util_pct);
  }
  EXPECT_EQ(plain.diagnosis.pathology, profiled.diagnosis.pathology);
}

TEST(ProfilerTest, DispatchCountTiesOutAgainstSimulator) {
  std::uint64_t events = 0;
  const obs::ProfileSnapshot snap = profiled_trial(&events);
  ASSERT_TRUE(snap.enabled);
  ASSERT_GT(events, 0u);

  // Every dispatched event enters exactly one kDispatch scope.
  EXPECT_EQ(count_of(snap, prof::Subsystem::kDispatch), events);
  // Every dispatch popped its event from the queue first, and pushes must
  // cover everything that was ever popped.
  EXPECT_GE(count_of(snap, prof::Subsystem::kEventQueuePop), events);
  EXPECT_GE(count_of(snap, prof::Subsystem::kEventQueuePush),
            count_of(snap, prof::Subsystem::kEventQueuePop));

  // A loaded trial exercises every attributed subsystem.
  for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < prof::kPhases; ++p) total += snap.counts[p][s];
    EXPECT_GT(total, 0u) << prof::subsystem_name(
        static_cast<prof::Subsystem>(s));
  }
  // The phase marker advanced through the whole schedule: steady-state work
  // landed in the measurement window, setup work before the ramp.
  EXPECT_GT(snap.total_counts(prof::Phase::kMeasure), 0u);
  EXPECT_GT(snap.total_counts(prof::Phase::kRampUp), 0u);
}

TEST(ProfilerTest, SnapshotMergeAccumulatesCountsAndPaths) {
  const obs::ProfileSnapshot one = profiled_trial();
  obs::ProfileSnapshot two = one;
  two.merge(one);
  EXPECT_EQ(two.total_counts(), 2 * one.total_counts());
  EXPECT_EQ(two.total_cycles(), 2 * one.total_cycles());
  ASSERT_EQ(two.paths.size(), one.paths.size());
  for (std::size_t i = 0; i < one.paths.size(); ++i) {
    EXPECT_EQ(two.paths[i].frames, one.paths[i].frames);
    EXPECT_EQ(two.paths[i].count, 2 * one.paths[i].count);
  }
  // Merging a disabled snapshot is a no-op.
  obs::ProfileSnapshot three = one;
  three.merge(obs::ProfileSnapshot{});
  EXPECT_EQ(three.total_counts(), one.total_counts());
}

TEST(ProfilerTest, CollapsedStackFormatIsWellFormed) {
  const obs::ProfileSnapshot snap = profiled_trial();
  std::ostringstream os;
  obs::write_collapsed_stacks(os, snap);
  const std::string text = os.str();
  if (snap.total_cycles() == 0) {
    // No cycle counter on this platform: nothing to fold, and that must be
    // an empty file rather than zero-weight junk lines.
    EXPECT_TRUE(text.empty());
    return;
  }
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // `frame;frame;frame <cycles>` — frames are known subsystem names.
    const std::size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string weight = line.substr(space + 1);
    ASSERT_FALSE(weight.empty()) << line;
    for (char c : weight) EXPECT_TRUE(std::isdigit(c)) << line;
    EXPECT_NE(weight, "0") << line;
    std::istringstream frames(line.substr(0, space));
    std::string frame;
    int depth = 0;
    while (std::getline(frames, frame, ';')) {
      ++depth;
      bool known = false;
      for (std::size_t s = 0; s < prof::kSubsystems; ++s) {
        if (frame == prof::subsystem_name(static_cast<prof::Subsystem>(s))) {
          known = true;
          break;
        }
      }
      EXPECT_TRUE(known) << "unknown frame '" << frame << "' in: " << line;
    }
    EXPECT_GE(depth, 1) << line;
    EXPECT_LE(depth, static_cast<int>(prof::Ledger::kPathDepth)) << line;
  }
}

TEST(ProfilerTest, RenderersEmitNothingWhenDisabled) {
  const obs::ProfileSnapshot off;
  EXPECT_TRUE(obs::render_profile_table(off).empty());
  EXPECT_TRUE(obs::one_line_profile_summary(off).empty());
  std::ostringstream os;
  obs::write_collapsed_stacks(os, off);
  EXPECT_TRUE(os.str().empty());
}

TEST(ProfilerTest, TableSummaryAndJsonCarryTheAttribution) {
  const obs::ProfileSnapshot snap = profiled_trial();

  const std::string table = obs::render_profile_table(snap);
  EXPECT_NE(table.find("subsystem"), std::string::npos);
  EXPECT_NE(table.find("dispatch"), std::string::npos);
  EXPECT_NE(table.find("event_queue_push"), std::string::npos);

  const std::string line = obs::one_line_profile_summary(snap);
  EXPECT_NE(line.find("profile:"), std::string::npos);
  EXPECT_NE(line.find("overhead"), std::string::npos);

  const std::string json = obs::profile_json(snap);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"subsystems\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"measure\""), std::string::npos);
  const double overhead = snap.overhead_fraction();
  EXPECT_GE(overhead, 0.0);
  EXPECT_LE(overhead, 1.0);
}

TEST(ProfilerTest, ScopeTimerCreditsExclusiveCyclesToParentAndChild) {
  // Hand-built nesting on a scratch ledger: parent's exclusive cycles must
  // exclude the child's, and the path table must key parent and child
  // separately (child's path carries the parent frame as its prefix).
  prof::Ledger ledger;
  {
    const prof::InstallGuard guard(&ledger);
    const prof::ScopeTimer parent(prof::Subsystem::kDispatch);
    for (int i = 0; i < 64; ++i) {
      const prof::ScopeTimer child(prof::Subsystem::kDistSample);
    }
  }
  EXPECT_EQ(ledger.counts[0][static_cast<std::size_t>(
                prof::Subsystem::kDispatch)],
            1u);
  EXPECT_EQ(ledger.counts[0][static_cast<std::size_t>(
                prof::Subsystem::kDistSample)],
            64u);
  EXPECT_EQ(ledger.depth, 0u);

  const std::uint64_t dispatch_key =
      static_cast<std::uint64_t>(
          static_cast<std::uint8_t>(prof::Subsystem::kDispatch)) +
      1;
  const std::uint64_t nested_key =
      dispatch_key |
      ((static_cast<std::uint64_t>(
            static_cast<std::uint8_t>(prof::Subsystem::kDistSample)) +
        1)
       << 8);
  std::uint64_t parent_count = 0, child_count = 0;
  for (const auto& cell : ledger.paths) {
    if (cell.key == dispatch_key) parent_count = cell.count;
    if (cell.key == nested_key) child_count = cell.count;
  }
  EXPECT_EQ(parent_count, 1u);
  EXPECT_EQ(child_count, 64u);
}

}  // namespace
}  // namespace softres
