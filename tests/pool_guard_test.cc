// soft::PoolGuard: the RAII holder the SR012 lint contract is built on.
// The guard cannot perform the acquire (Pool::acquire is callback-based),
// so every test mirrors the real call shape: acquire, adopt inside the
// grant callback, then exercise one exit path.

#include "soft/pool_guard.h"

#include <gtest/gtest.h>

#include <deque>
#include <utility>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "soft/pool.h"

namespace softres::soft {
namespace {

TEST(PoolGuardTest, AdoptThenReleaseReturnsUnit) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  PoolGuard g;
  pool.acquire([&] { g.adopt(pool); });
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g.pool(), &pool);
  EXPECT_EQ(pool.in_use(), 1u);
  g.release();
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_EQ(pool.in_use(), 0u);
  g.release();  // idempotent on an empty guard
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolGuardTest, DestructorReleases) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  {
    PoolGuard g;
    pool.acquire([&] { g.adopt(pool); });
    EXPECT_EQ(pool.in_use(), 1u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolGuardTest, MoveTransfersOwnership) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  PoolGuard a;
  pool.acquire([&] { a.adopt(pool); });
  PoolGuard b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(pool.in_use(), 1u);

  // Move-assign over a held unit releases the destination's unit first.
  PoolGuard c;
  pool.acquire([&] { c.adopt(pool); });
  EXPECT_EQ(pool.in_use(), 2u);
  c = std::move(b);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_TRUE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(b));
  c.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolGuardTest, AdoptWhileHoldingIsReleasePlusOwn) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  PoolGuard g;
  pool.acquire([&] { g.adopt(pool); });
  EXPECT_EQ(pool.in_use(), 1u);
  // A second grant adopted into the same guard pays the first unit back.
  pool.acquire([&] { g.adopt(pool); });
  EXPECT_EQ(pool.in_use(), 1u);
  g.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolGuardTest, DetachTransfersObligation) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  Pool* detached = nullptr;
  {
    PoolGuard g;
    pool.acquire([&] { g.adopt(pool); });
    detached = g.detach();
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_EQ(g.detach(), nullptr);  // empty guard detaches nothing
  }
  // The destructor did not release; the unit is still out. Paying it back
  // manually is the detached caller's obligation (SR012 binds src/, not the
  // harness).
  ASSERT_EQ(detached, &pool);
  EXPECT_EQ(pool.in_use(), 1u);
  detached->release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PoolGuardTest, TryAcquire) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  PoolGuard g = PoolGuard::try_acquire(pool);
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(pool.in_use(), 1u);
  PoolGuard h = PoolGuard::try_acquire(pool);  // exhausted
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_EQ(pool.in_use(), 1u);
  g.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

// Pool::release grants the oldest waiter synchronously; if that waiter
// adopts into the very guard being released, the guard must not clobber the
// fresh grant when the call unwinds. This is why release() empties itself
// before calling into the pool.
TEST(PoolGuardTest, ReleaseSurvivesSynchronousWaiterGrantReentrancy) {
  sim::Simulator sim;
  Pool pool(sim, "p", 1);
  PoolGuard g;
  pool.acquire([&] { g.adopt(pool); });
  int granted = 0;
  pool.acquire([&] {
    ++granted;
    g.adopt(pool);  // re-adopt into the guard that is mid-release
  });
  EXPECT_EQ(granted, 0);  // queued behind the held unit
  g.release();
  EXPECT_EQ(granted, 1);
  EXPECT_TRUE(static_cast<bool>(g));  // still holding the waiter's grant
  EXPECT_EQ(pool.in_use(), 1u);
  g.release();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.waiting(), 0u);
}

// Property: a pool driven through guards is observably identical to one
// driven through raw acquire/release under the same randomized schedule.
TEST(PoolGuardPropertyTest, GuardedPoolMatchesRawPool) {
  sim::Simulator sim;
  Pool raw(sim, "raw", 3);
  Pool via_guard(sim, "guarded", 3);
  sim::Rng rng(1234);
  std::deque<PoolGuard> held;
  int raw_done = 0;
  int guard_done = 0;

  const int customers = 300;
  for (int i = 0; i < customers; ++i) {
    const double at = rng.uniform(0.0, 2.0);
    const double hold = rng.exponential(0.05) + 1e-4;
    sim.schedule(at, [&, hold] {
      raw.acquire([&, hold] {
        sim.schedule(hold, [&] {
          raw.release();
          ++raw_done;
        });
      });
      via_guard.acquire([&, hold] {
        held.emplace_back();
        held.back().adopt(via_guard);
        sim.schedule(hold, [&] {
          held.front().release();
          held.pop_front();
          ++guard_done;
        });
      });
    });
  }
  while (sim.step()) {
    ASSERT_LE(via_guard.in_use(), 3u);
    if (via_guard.waiting() > 0) {
      ASSERT_EQ(via_guard.in_use(), 3u);
    }
  }
  EXPECT_EQ(raw_done, customers);
  EXPECT_EQ(guard_done, customers);
  EXPECT_EQ(via_guard.in_use(), raw.in_use());
  EXPECT_EQ(via_guard.waiting(), raw.waiting());
  EXPECT_EQ(via_guard.total_acquired(), raw.total_acquired());
  EXPECT_EQ(via_guard.in_use(), 0u);
}

}  // namespace
}  // namespace softres::soft
