// core::Governor — the closed-loop soft-resource controller. Three layers:
//  * control-law unit tests driving a Governor directly over raw pools
//    (hysteresis: deadband, cooldown, bounded step, token bucket, CPU guard);
//  * load-shape unit tests (pure schedule generators);
//  * scenario acceptance tests on the full testbed: stationary convergence
//    to within one resize step of the static optimum, flash-crowd goodput
//    strictly above the best static allocation, JVM thread-count sync, and
//    bit-identical governed sweeps at jobs=1 vs jobs=4.

#include "core/governor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "exp/config.h"
#include "exp/experiment.h"
#include "exp/run_context.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/simulator.h"
#include "soft/pool.h"
#include "soft/pool_set.h"
#include "workload/load_shapes.h"

namespace softres {
namespace {

using core::Governor;
using core::GovernorAdvice;
using core::GovernorConfig;

/// Hysteresis relaxed so unit tests observe the target computation directly.
GovernorConfig relaxed_config() {
  GovernorConfig cfg;
  cfg.enabled = true;
  cfg.cooldown_s = 0.0;
  cfg.tokens_per_s = 1000.0;
  cfg.token_burst = 1000.0;
  return cfg;
}

/// Advance the simulator clock to `t` so the pool's time-weighted occupancy
/// integral (the governor's demand signal) moves in step with tick time.
void advance_to(sim::Simulator& sim, double t) {
  sim.schedule(t - sim.now(), [&sim] { (void)sim; });
  while (sim.step()) {
  }
}

TEST(GovernorTest, GrowsTowardSmoothedDemandInBoundedSteps) {
  sim::Simulator sim;
  soft::Pool pool(sim, "tomcat0.threads", 4);
  int granted = 0;
  for (int i = 0; i < 12; ++i) pool.acquire([&] { ++granted; });
  ASSERT_EQ(pool.in_use() + pool.waiting(), 12u);  // demand = 12

  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kAppThreads);
  Governor gov(relaxed_config(), set);
  for (int t = 1; t <= 60; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  // Target = ceil(1.3 * 12) = 16; the deadband may park one notch short.
  EXPECT_GE(pool.capacity(), 14u);
  EXPECT_LE(pool.capacity(), 16u);
  EXPECT_GE(gov.resizes_applied(), 2u);  // bounded steps, not one jump
  for (const auto& a : gov.actions()) {
    const std::size_t step =
        a.to > a.from ? a.to - a.from : a.from - a.to;
    EXPECT_LE(step, gov.max_step_from(std::max(a.from, a.to))) << a.pool;
  }
  // The grow admitted every waiter along the way.
  EXPECT_EQ(granted, 12);
}

TEST(GovernorTest, WebPoolsGetWebHeadroom) {
  sim::Simulator sim;
  soft::Pool pool(sim, "apache0.workers", 4);
  for (int i = 0; i < 10; ++i) pool.acquire([] {});
  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kWebWorkers);
  Governor gov(relaxed_config(), set);
  for (int t = 1; t <= 60; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  // Target = ceil(1.6 * 10) = 16, not the app-tier ceil(1.3 * 10) = 13.
  EXPECT_GE(pool.capacity(), 14u);
  EXPECT_LE(pool.capacity(), 16u);
}

TEST(GovernorTest, StationaryAllocationSitsInDeadband) {
  sim::Simulator sim;
  soft::Pool pool(sim, "tomcat0.threads", 16);
  for (int i = 0; i < 12; ++i) pool.acquire([] {});  // target = 16 = cap
  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kAppThreads);
  Governor gov(relaxed_config(), set);
  for (int t = 1; t <= 30; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  EXPECT_TRUE(gov.actions().empty());
  EXPECT_EQ(pool.capacity(), 16u);
}

TEST(GovernorTest, CooldownSpacesResizesPerPool) {
  sim::Simulator sim;
  soft::Pool pool(sim, "tomcat0.threads", 2);
  for (int i = 0; i < 40; ++i) pool.acquire([] {});
  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kAppThreads);
  GovernorConfig cfg = relaxed_config();
  cfg.cooldown_s = 8.0;
  Governor gov(cfg, set);
  for (int t = 1; t <= 60; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  const auto& actions = gov.actions();
  ASSERT_GE(actions.size(), 2u);
  for (std::size_t i = 1; i < actions.size(); ++i) {
    EXPECT_GE(actions[i].at - actions[i - 1].at, 8.0);
  }
}

TEST(GovernorTest, TokenBucketRateLimitsGlobally) {
  sim::Simulator sim;
  soft::Pool a(sim, "tomcat0.threads", 2);
  soft::Pool b(sim, "tomcat0.dbconns", 2);
  for (int i = 0; i < 40; ++i) a.acquire([] {});
  for (int i = 0; i < 40; ++i) b.acquire([] {});
  soft::ResizablePoolSet set;
  set.add(a, soft::PoolRole::kAppThreads);
  set.add(b, soft::PoolRole::kDbConnections);
  GovernorConfig cfg = relaxed_config();
  cfg.tokens_per_s = 0.0;  // no refill: the burst is all there is
  cfg.token_burst = 1.0;
  Governor gov(cfg, set);
  for (int t = 1; t <= 20; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  EXPECT_EQ(gov.resizes_applied(), 1u);
  EXPECT_EQ(gov.actions().size(), 1u);
  EXPECT_GE(gov.resizes_rate_limited(), 1u);
}

TEST(GovernorTest, CpuGuardBlocksGrowthUnlessDiagnoserInsists) {
  sim::Simulator sim;
  soft::Pool pool(sim, "tomcat0.threads", 2);
  for (int i = 0; i < 40; ++i) pool.acquire([] {});
  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kAppThreads);
  Governor gov(relaxed_config(), set);
  // Hottest backend CPU above the guard: more threads cannot help (§III-B).
  for (int t = 1; t <= 20; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 95.0, GovernorAdvice{});
  }
  EXPECT_TRUE(gov.actions().empty());
  // Explicit kGrow advice for this pool overrides the guard: the diagnoser
  // already concluded the pool, not the CPU, is the bottleneck.
  GovernorAdvice grow{GovernorAdvice::Kind::kGrow, "tomcat0.threads"};
  gov.tick(21.0, 95.0, grow);
  EXPECT_FALSE(gov.actions().empty());
  EXPECT_GT(pool.capacity(), 2u);
}

TEST(GovernorTest, ShrinksIdlePoolDownToFloor) {
  sim::Simulator sim;
  soft::Pool pool(sim, "tomcat0.threads", 64);
  for (int i = 0; i < 4; ++i) pool.acquire([] {});
  soft::ResizablePoolSet set;
  set.add(pool, soft::PoolRole::kAppThreads, /*floor=*/8);
  Governor gov(relaxed_config(), set);
  for (int t = 1; t <= 60; ++t) {
    advance_to(sim, static_cast<double>(t));
    gov.tick(static_cast<double>(t), 0.0, GovernorAdvice{});
  }
  // Demand target ceil(1.3 * 4) = 6 is below the floor; the floor wins.
  EXPECT_EQ(pool.capacity(), 8u);
  for (const auto& a : gov.actions()) EXPECT_GE(a.to, 8u);
}

// ---- Load shapes: pure schedule generators ----

TEST(LoadShapesTest, FlashCrowdPhases) {
  const auto phases = workload::flash_crowd_schedule(100, 800, 60.0, 30.0);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].start, 0.0);
  EXPECT_EQ(phases[0].active_users, 100u);
  EXPECT_EQ(phases[1].start, 60.0);
  EXPECT_EQ(phases[1].active_users, 800u);
  EXPECT_EQ(phases[2].start, 90.0);
  EXPECT_EQ(phases[2].active_users, 100u);
}

TEST(LoadShapesTest, DiurnalWaveBounds) {
  const auto phases = workload::diurnal_schedule(100, 900, 120.0, 240.0, 12);
  ASSERT_EQ(phases.size(), 24u);
  EXPECT_EQ(phases[0].active_users, 100u);  // trough at t = 0
  std::size_t peak = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_GE(phases[i].active_users, 100u);
    EXPECT_LE(phases[i].active_users, 900u);
    if (i > 0) {
      EXPECT_GT(phases[i].start, phases[i - 1].start);
    }
    peak = std::max(peak, phases[i].active_users);
  }
  EXPECT_EQ(peak, 900u);  // crest at half period
}

TEST(LoadShapesTest, TierSlowdownRecovers) {
  const auto phases = workload::tier_slowdown_schedule(30.0, 2.5, 90.0);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].scale, 1.0);
  EXPECT_EQ(phases[1].start, 30.0);
  EXPECT_EQ(phases[1].scale, 2.5);
  EXPECT_EQ(phases[2].start, 90.0);
  EXPECT_EQ(phases[2].scale, 1.0);
}

// ---- Scenario acceptance tests on the full testbed ----

namespace e = softres::exp;

e::TestbedConfig cheap_config() {
  e::TestbedConfig cfg = e::TestbedConfig::defaults();
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  return cfg;
}

e::ExperimentOptions cheap_options(double runtime_s = 60.0) {
  e::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = runtime_s;
  opts.client.ramp_down_s = 2.0;
  return opts;
}

// Acceptance: on stationary load, the governed trial's app-tier allocation
// settles within one resize step of the static optimum (Algorithm 1's knee:
// the smallest candidate whose goodput is within 1% of the best). The
// scenario is the Fig 4 under-allocation shape — 1/2/1/2, Apache and DB
// connections ample, Tomcat threads the binding soft resource — where
// goodput genuinely rises with the thread count until the app CPU
// saturates, so the knee is physical, not noise.
TEST(GovernorScenarioTest, StationaryConvergesNearStaticOptimum) {
  const e::TestbedConfig cfg = e::TestbedConfig::defaults();
  const std::size_t users = 6000;
  e::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 90.0;
  opts.client.ramp_down_s = 2.0;
  const e::Experiment exp(cfg, opts);

  std::vector<std::size_t> threads = {4, 6, 8, 12, 16, 24};
  std::vector<e::SoftConfig> candidates;
  for (std::size_t t : threads) {
    candidates.push_back(e::SoftConfig{400, t, 200});
  }
  const auto grid = e::sweep_grid(exp, candidates, {users});
  double best = 0.0;
  for (const auto& row : grid) best = std::max(best, row[0].goodput(2.0));
  ASSERT_GT(best, 0.0);
  std::size_t knee = threads.back();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (grid[i][0].goodput(2.0) >= 0.99 * best) {
      knee = threads[i];
      break;
    }
  }

  e::ExperimentOptions gov_opts = opts;
  gov_opts.governor.enabled = true;
  const e::Experiment governed(cfg, gov_opts);
  const e::RunResult r = governed.run(candidates.front(), users);
  const e::PoolStat* pool = r.find_pool("tomcat0.threads");
  ASSERT_NE(pool, nullptr);

  // "One resize step" from the larger of the two capacities, per the
  // governor's bounded-step rule: max(min_step, ceil(max_step_fraction*cap)).
  const GovernorConfig gc;  // default knobs, as the governed run used
  const std::size_t at = std::max(pool->capacity, knee);
  const std::size_t step = std::max(
      gc.min_step, static_cast<std::size_t>(std::ceil(
                       gc.max_step_fraction * static_cast<double>(at))));
  const std::size_t gap = pool->capacity > knee ? pool->capacity - knee
                                                : knee - pool->capacity;
  EXPECT_LE(gap, step) << "governed settled at " << pool->capacity
                       << ", static optimum (knee) " << knee;
  EXPECT_FALSE(r.governor_actions.empty());
}

// Acceptance: on the flash-crowd scenario, the governed trial's goodput is
// strictly higher than the best static allocation found by sweep_grid.
TEST(GovernorScenarioTest, FlashCrowdBeatsBestStatic) {
  e::TestbedConfig cfg = e::TestbedConfig::defaults();
  cfg.hw = e::HardwareConfig{1, 4, 1, 4};
  e::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 150.0;
  opts.client.ramp_down_s = 2.0;
  opts.sla_threshold_s = 1.0;
  opts.client.load_schedule =
      workload::flash_crowd_schedule(2500, 7000, 60.0, 50.0);
  const e::Experiment exp(cfg, opts);

  const std::vector<e::SoftConfig> candidates = {
      e::SoftConfig{400, 200, 200},  // liberal: pays §III-B GC at baseline
      e::SoftConfig{200, 100, 100},
      e::SoftConfig{150, 60, 60},
      e::SoftConfig{100, 30, 30},    // lean: starves during the crowd
  };
  const e::GovernedComparison cmp = e::governed_sweep(
      exp, candidates, /*users=*/7000, /*start=*/candidates.front(),
      GovernorConfig{});
  EXPECT_GT(cmp.governed_goodput, cmp.best_static_goodput)
      << "governed " << cmp.governed_goodput << " vs best static "
      << cmp.best_static_goodput << " (soft "
      << cmp.best_static_soft.to_string() << ")";
  EXPECT_FALSE(cmp.governed.governor_actions.empty());
}

// The JVM cost model must feel governor over-growth: thread counts track
// live pool capacities through the ResizablePoolSet hooks.
TEST(GovernorScenarioTest, KeepsJvmThreadCountsInSync) {
  e::TestbedConfig cfg = cheap_config();
  cfg.soft = e::SoftConfig{50, 4, 4};  // starved start: the governor acts
  workload::ClientConfig client = cheap_options().client;
  client.users = 400;
  GovernorConfig gc;
  gc.enabled = true;
  e::RunContext ctx(client.seed, cfg, client.users, gc);
  client.seed = ctx.trial_seed();
  e::Testbed bed(ctx, cfg, client);
  bed.run();

  ASSERT_NE(bed.governor(), nullptr);
  EXPECT_FALSE(bed.governor()->actions().empty());
  for (const auto& t : bed.tomcats()) {
    EXPECT_EQ(t->jvm().live_threads(),
              t->thread_pool().capacity() + t->connection_pool().capacity());
  }
  std::size_t conns = 0;
  for (const auto& t : bed.tomcats()) conns += t->connection_pool().capacity();
  EXPECT_EQ(bed.cjdbcs()[0]->jvm().live_threads(), conns);
  // The capacity gauge reached the timeline: resizes are visible to the
  // diagnoser and the flight recorder (satellite: pool_capacity lane).
  EXPECT_NE(bed.diagnoser().capacity_window("tomcat0.threads"), nullptr);
}

// Acceptance: governed trials are part of the determinism contract —
// jobs=1 and jobs=4 sweeps must match bit for bit, resize log included.
TEST(GovernorScenarioTest, GovernedSweepBitIdenticalAcrossJobs) {
  const e::TestbedConfig cfg = cheap_config();
  e::ExperimentOptions opts = cheap_options(45.0);
  opts.client.load_schedule =
      workload::flash_crowd_schedule(200, 450, 15.0, 15.0);
  opts.governor.enabled = true;
  const e::Experiment exp(cfg, opts);
  const e::SoftConfig soft{50, 10, 10};
  const std::vector<std::size_t> workloads = {500, 600, 700};

  const auto serial = e::sweep_workload(exp, soft, workloads, /*jobs=*/1);
  const auto parallel = e::sweep_workload(exp, soft, workloads, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  bool any_resize = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload " + std::to_string(workloads[i]));
    const e::RunResult& a = serial[i];
    const e::RunResult& b = parallel[i];
    EXPECT_EQ(a.trial_seed, b.trial_seed);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.goodput(2.0), b.goodput(2.0));
    ASSERT_EQ(a.response_times.count(), b.response_times.count());
    EXPECT_EQ(a.response_times.mean(), b.response_times.mean());
    for (double q : {0.5, 0.9, 0.99}) {
      EXPECT_EQ(a.response_times.quantile(q), b.response_times.quantile(q));
    }
    ASSERT_EQ(a.pools.size(), b.pools.size());
    for (std::size_t p = 0; p < a.pools.size(); ++p) {
      EXPECT_EQ(a.pools[p].capacity, b.pools[p].capacity);
      EXPECT_EQ(a.pools[p].util_pct, b.pools[p].util_pct);
    }
    // The resize log is bit-identical: same times, pools and sizes.
    ASSERT_EQ(a.governor_actions.size(), b.governor_actions.size());
    for (std::size_t j = 0; j < a.governor_actions.size(); ++j) {
      EXPECT_EQ(a.governor_actions[j].at, b.governor_actions[j].at);
      EXPECT_EQ(a.governor_actions[j].pool, b.governor_actions[j].pool);
      EXPECT_EQ(a.governor_actions[j].from, b.governor_actions[j].from);
      EXPECT_EQ(a.governor_actions[j].to, b.governor_actions[j].to);
    }
    any_resize = any_resize || !a.governor_actions.empty();
    EXPECT_EQ(a.diagnosis.summary(), b.diagnosis.summary());
  }
  EXPECT_TRUE(any_resize);  // the contract was exercised, not vacuous
}

}  // namespace
}  // namespace softres
