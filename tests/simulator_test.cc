#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace softres::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  bool fired = false;
  sim.schedule(-1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 2.5);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, CancelIsIdempotentAndStaleSafe) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));       // already cancelled
  EXPECT_FALSE(sim.cancel(EventHandle{}));  // inert handle
  sim.run();
}

TEST(SimulatorTest, StaleHandleAfterExecutionIsRejected) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, HandleReuseDoesNotCancelNewEvent) {
  Simulator sim;
  EventHandle h1 = sim.schedule(1.0, [] {});
  sim.run();  // h1's record may be recycled
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(h1));  // stale seq must not match recycled record
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelledRecordRecycledAcrossFreelistIsAbaSafe) {
  // Eager cancellation recycles the record *immediately*, so the very next
  // schedule reuses the same slot. The old handle pins the old generation
  // and must neither cancel nor reschedule the stranger now in the slot —
  // the classic ABA hazard of freelist-backed handles.
  Simulator sim;
  bool old_fired = false;
  EventHandle h1 = sim.schedule(1.0, [&] { old_fired = true; });
  EXPECT_TRUE(sim.cancel(h1));
  bool new_fired = false;
  EventHandle h2 = sim.schedule(2.0, [&] { new_fired = true; });
  EXPECT_FALSE(sim.cancel(h1));            // stale gen: refuses
  EXPECT_FALSE(sim.reschedule(h1, 0.5));   // stale gen: refuses
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
  EXPECT_EQ(sim.now(), 2.0);  // h2 kept its original time
  EXPECT_TRUE(sim.cancel(h2) == false);  // already fired
}

TEST(SimulatorTest, RescheduleMovesEventInPlace) {
  Simulator sim;
  std::vector<int> order;
  EventHandle h = sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  // Move the first event past the second; it must fire after, and at the
  // new instant, under the same still-valid handle.
  EXPECT_TRUE(sim.reschedule(h, 3.0));
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run_until(2.5);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(sim.reschedule(h, 1.0));  // handle survives a reschedule
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(sim.now(), 3.5);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run_until(10.0);
  EXPECT_EQ(times.size(), 4u);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, RunWithLimitExecutesExactly) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 + i, [&] { ++fired; });
  sim.run(4);
  EXPECT_EQ(fired, 4);
}

TEST(SimulatorTest, EventCountersTrackExecution) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1.0, [] {});
  EXPECT_EQ(sim.events_pending(), 7u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, ManyEventsStressFreelist) {
  Simulator sim;
  int fired = 0;
  std::function<void()> recur = [&] {
    ++fired;
    if (fired < 100000) sim.schedule(0.001, recur);
  };
  sim.schedule(0.0, recur);
  sim.run();
  EXPECT_EQ(fired, 100000);
}

TEST(SimulatorTest, CancelInterleavedWithExecution) {
  Simulator sim;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule(1.0 + i, [&] { ++fired; }));
  }
  // Cancel every other event.
  for (size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
  sim.run();
  EXPECT_EQ(fired, 50);
}

}  // namespace
}  // namespace softres::sim
