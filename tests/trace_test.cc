#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/testbed.h"

namespace softres::exp {
namespace {

workload::ClientConfig traced_client() {
  workload::ClientConfig c;
  c.users = 300;
  c.ramp_up_s = 5.0;
  c.runtime_s = 30.0;
  c.ramp_down_s = 2.0;
  c.trace_sample_rate = 0.05;
  return c;
}

TEST(TraceTest, DisabledByDefault) {
  TestbedConfig cfg = TestbedConfig::defaults();
  workload::ClientConfig c = traced_client();
  c.trace_sample_rate = 0.0;
  Testbed bed(cfg, c);
  bed.run();
  EXPECT_TRUE(bed.farm().traced_requests().empty());
}

TEST(TraceTest, SampledRequestsCarrySpans) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, traced_client());
  bed.run();
  const auto& traced = bed.farm().traced_requests();
  ASSERT_FALSE(traced.empty());
  EXPECT_LE(traced.size(), workload::ClientFarm::kMaxTracedRequests);

  std::size_t complete = 0;
  for (const auto& req : traced) {
    if (req->spans().empty()) continue;  // in flight at trial end
    ++complete;
    int tomcat = 0, cjdbc = 0, mysql = 0, apache = 0;
    for (const auto& span : req->spans()) {
      EXPECT_GE(span.leave, span.enter);
      if (span.server.rfind("tomcat", 0) == 0) ++tomcat;
      if (span.server.rfind("cjdbc", 0) == 0) ++cjdbc;
      if (span.server.rfind("mysql", 0) == 0) ++mysql;
      if (span.server.rfind("apache", 0) == 0) ++apache;
    }
    if (apache == 0) continue;  // completed mid-teardown
    // One Apache + one Tomcat visit; one C-JDBC and one MySQL visit per
    // query.
    EXPECT_EQ(tomcat, 1);
    EXPECT_EQ(apache, 1);
    EXPECT_EQ(cjdbc, req->num_queries);
    EXPECT_EQ(mysql, req->num_queries);
  }
  EXPECT_GT(complete, 0u);
}

TEST(TraceTest, NestingInvariants) {
  // MySQL spans nest inside their C-JDBC span; C-JDBC spans inside the
  // Tomcat span; the Tomcat span inside the Apache span.
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, traced_client());
  bed.run();
  for (const auto& req : bed.farm().traced_requests()) {
    double tomcat_enter = -1, tomcat_leave = -1;
    double apache_enter = -1, apache_leave = -1;
    for (const auto& span : req->spans()) {
      if (span.server.rfind("tomcat", 0) == 0) {
        tomcat_enter = span.enter;
        tomcat_leave = span.leave;
      }
      if (span.server.rfind("apache", 0) == 0) {
        apache_enter = span.enter;
        apache_leave = span.leave;
      }
    }
    if (tomcat_enter < 0 || apache_enter < 0) continue;
    EXPECT_LE(apache_enter, tomcat_enter + 1e-9);
    EXPECT_GE(apache_leave, tomcat_leave - 1e-9);
    for (const auto& span : req->spans()) {
      if (span.server.rfind("cjdbc", 0) == 0 ||
          span.server.rfind("mysql", 0) == 0) {
        EXPECT_GE(span.enter, tomcat_enter - 1e-9);
        EXPECT_LE(span.leave, tomcat_leave + 1e-9);
      }
    }
  }
}

TEST(TraceTest, TomcatResidenceExceedsQuerySum) {
  // The Fig 9 premise: T > sum(t_i), which is why DB connections must be
  // provisioned above the C-JDBC concurrency.
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, traced_client());
  bed.run();
  int checked = 0;
  for (const auto& req : bed.farm().traced_requests()) {
    double tomcat_T = 0.0, cjdbc_sum = 0.0;
    for (const auto& span : req->spans()) {
      if (span.server.rfind("tomcat", 0) == 0) tomcat_T = span.duration();
      if (span.server.rfind("cjdbc", 0) == 0) cjdbc_sum += span.duration();
    }
    if (tomcat_T <= 0.0 || cjdbc_sum <= 0.0) continue;
    EXPECT_GT(tomcat_T, cjdbc_sum);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(TraceTest, SubPhasesStayWithinResidence) {
  // queue_s is pre-entry wait (not bounded by the span), but the in-residence
  // components — conn wait + GC — can never exceed the residence itself, and
  // every sub-phase is non-negative.
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, traced_client());
  bed.run();
  int with_conn_wait = 0;
  for (const auto& req : bed.farm().traced_requests()) {
    for (const auto& span : req->spans()) {
      EXPECT_GE(span.queue_s, 0.0);
      EXPECT_GE(span.conn_queue_s, 0.0);
      EXPECT_GE(span.gc_s, 0.0);
      EXPECT_GE(span.fin_wait_s, 0.0);
      EXPECT_LE(span.conn_queue_s + span.gc_s, span.duration() + 1e-9);
      if (span.conn_queue_s > 0.0) ++with_conn_wait;
      // Only the web tier lingers in FIN wait.
      if (span.server.rfind("apache", 0) != 0) {
        EXPECT_EQ(span.fin_wait_s, 0.0);
      }
    }
  }
  (void)with_conn_wait;  // may be zero under a lightly loaded default config
}

TEST(TraceTest, TracingIsZeroOverheadAndZeroPerturbation) {
  // Sampling is a hash of (seed, request id) — no RNG draws — and untraced
  // requests only pay a null-pointer check. A traced trial must therefore
  // replay the *identical* event sequence: same event count, same response
  // times, same completion timestamps.
  TestbedConfig cfg = TestbedConfig::defaults();
  workload::ClientConfig off = traced_client();
  off.trace_sample_rate = 0.0;
  Testbed plain(cfg, off);
  plain.run();

  workload::ClientConfig on = traced_client();  // rate 0.05, same seed
  Testbed traced(cfg, on);
  traced.run();

  ASSERT_FALSE(traced.farm().traced_requests().empty());
  EXPECT_EQ(plain.simulator().events_executed(),
            traced.simulator().events_executed());
  EXPECT_EQ(plain.farm().response_times().count(),
            traced.farm().response_times().count());
  EXPECT_DOUBLE_EQ(plain.farm().response_times().mean(),
                   traced.farm().response_times().mean());
  ASSERT_EQ(plain.farm().completion_times().size(),
            traced.farm().completion_times().size());
  for (std::size_t i = 0; i < plain.farm().completion_times().size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.farm().completion_times()[i],
                     traced.farm().completion_times()[i]);
  }
}

TEST(TraceTest, SamplingIsDeterministicAcrossRuns) {
  // The traced subset is a pure function of (seed, request id): two identical
  // trials trace exactly the same requests.
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed a(cfg, traced_client());
  a.run();
  Testbed b(cfg, traced_client());
  b.run();
  const auto& ta = a.farm().traced_requests();
  const auto& tb = b.farm().traced_requests();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i]->id, tb[i]->id);
  }
}

}  // namespace
}  // namespace softres::exp
