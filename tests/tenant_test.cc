// Multi-tenant soft-pool sharing: arbiter strategy unit tests, testbed
// integration (per-tenant series, governor attribution, noisy-neighbour
// diagnosis) and the tenant_sweep fairness acceptance — the ISSUE-9 claim
// that demand misreporting pays under work-conserving shares (>5% goodput
// for the liar) and does not pay under Karma credits (<=1%).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/sweep.h"
#include "metrics/sla.h"
#include "sim/simulator.h"
#include "soft/partition.h"
#include "soft/pool.h"

namespace softres {
namespace {

using exp::ExperimentOptions;
using exp::RunResult;
using exp::SoftConfig;
using exp::TestbedConfig;
using soft::Pool;
using soft::SharePolicy;
using soft::ShareStrategy;
using soft::TenantArbiter;
using soft::TenantShare;

SharePolicy policy_of(ShareStrategy s) {
  SharePolicy p;
  p.strategy = s;
  return p;
}

std::vector<TenantShare> two_equal_tenants() {
  return {TenantShare{"gold", 1.0, 1.0}, TenantShare{"silver", 1.0, 1.0}};
}

// ---------------------------------------------------------------------------
// Strategy unit tests, straight against Pool + TenantArbiter.

TEST(TenantArbiterTest, StaticSplitCapsEachTenantAtItsQuota) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  TenantArbiter arb(policy_of(ShareStrategy::kStaticSplit),
                    two_equal_tenants());
  pool.set_arbiter(&arb);

  int t0 = 0, t1 = 0;
  pool.acquire([&] { ++t0; }, 0);
  pool.acquire([&] { ++t0; }, 0);
  pool.acquire([&] { ++t0; }, 0);  // over quota: queues despite free units
  EXPECT_EQ(t0, 2);
  EXPECT_EQ(pool.waiting(), 1u);
  EXPECT_EQ(pool.in_use(), 2u);

  pool.acquire([&] { ++t1; }, 1);
  pool.acquire([&] { ++t1; }, 1);
  EXPECT_EQ(t1, 2);
  EXPECT_EQ(pool.in_use(), 4u);

  // A silver release cannot admit the queued gold waiter (still at quota):
  // the freed unit idles — that is the isolation static split buys.
  pool.release(1);
  EXPECT_EQ(t0, 2);
  EXPECT_EQ(pool.waiting(), 1u);
  EXPECT_EQ(pool.in_use(), 3u);

  // A gold release does admit it.
  pool.release(0);
  EXPECT_EQ(t0, 3);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(TenantArbiterTest, WorkConservingLendsIdleCapacity) {
  sim::Simulator sim;
  Pool pool(sim, "p", 4);
  TenantArbiter arb(policy_of(ShareStrategy::kWorkConserving),
                    two_equal_tenants());
  pool.set_arbiter(&arb);

  int granted = 0;
  for (int i = 0; i < 4; ++i) pool.acquire([&] { ++granted; }, 0);
  EXPECT_EQ(granted, 4);  // one tenant may take the whole idle pool
  EXPECT_EQ(pool.tenant_in_use(0), 4u);
}

TEST(TenantArbiterTest, WorkConservingSelectFavorsHigherReportedDemand) {
  sim::Simulator sim;
  Pool pool(sim, "p", 3);
  // silver misreports 4x demand: weight = entitlement * reported_demand.
  std::vector<TenantShare> shares = {TenantShare{"gold", 1.0, 1.0},
                                     TenantShare{"silver", 1.0, 4.0}};
  TenantArbiter arb(policy_of(ShareStrategy::kWorkConserving), shares);
  pool.set_arbiter(&arb);

  int g = 0, s = 0;
  pool.acquire([&] { ++g; }, 0);
  pool.acquire([&] { ++g; }, 0);
  pool.acquire([&] { ++s; }, 1);
  ASSERT_EQ(g, 2);
  ASSERT_EQ(s, 1);
  // Both queue one waiter; gold queued first.
  pool.acquire([&] { ++g; }, 0);
  pool.acquire([&] { ++s; }, 1);
  EXPECT_EQ(pool.waiting(), 2u);

  // A gold release leaves gold holding 1 and silver holding 1: load ratios
  // 1/1 vs 1/4 — the misreporter wins even though gold's waiter is older.
  // This gameability is exactly what the tenant_sweep acceptance quantifies.
  pool.release(0);
  EXPECT_EQ(s, 2);
  EXPECT_EQ(g, 2);
  EXPECT_EQ(pool.waiting(), 1u);
}

TEST(TenantArbiterTest, KarmaAccruesCreditsToTheUnderUser) {
  sim::Simulator sim;
  Pool pool(sim, "p", 2);
  SharePolicy policy = policy_of(ShareStrategy::kKarmaCredits);
  policy.karma_epoch_s = 1.0;
  TenantArbiter arb(policy, two_equal_tenants());
  pool.set_arbiter(&arb);

  // gold runs at its fair share (1 of 2 units); silver idles.
  int g = 0;
  pool.acquire([&] { ++g; }, 0);
  ASSERT_EQ(g, 1);
  arb.tick(0.0, pool);  // seeds the usage meter
  sim.schedule(1.0, [] {});
  sim.run_until(1.0);
  arb.tick(1.0, pool);

  // gold used exactly fair -> no credit; silver banked ~1 fair-unit-second.
  EXPECT_NEAR(arb.credits(0), 0.0, 1e-9);
  EXPECT_NEAR(arb.credits(1), 1.0, 1e-9);

  // Credits let silver burst past its quota...
  int s = 0;
  pool.acquire([&] { ++s; }, 1);
  EXPECT_EQ(s, 1);
  EXPECT_TRUE(arb.may_take(pool, 1));  // 2nd unit: over quota, on credit
  // ...while gold, flat on credits, is capped at its quota.
  EXPECT_FALSE(arb.may_take(pool, 0));
}

TEST(TenantArbiterTest, KarmaDecisionsIgnoreReportedDemand) {
  // Two arbiters differing ONLY in reported demand drive identical pools
  // through an identical pattern: every grant decision and credit balance
  // must match. This is the mechanism behind the <=1% greedy-gain bound.
  sim::Simulator sim;
  Pool honest_pool(sim, "h", 2);
  Pool greedy_pool(sim, "g", 2);
  SharePolicy policy = policy_of(ShareStrategy::kKarmaCredits);
  policy.karma_epoch_s = 1.0;
  std::vector<TenantShare> honest = two_equal_tenants();
  std::vector<TenantShare> greedy = two_equal_tenants();
  greedy[0].reported_demand = 64.0;
  TenantArbiter honest_arb(policy, honest);
  TenantArbiter greedy_arb(policy, greedy);
  honest_pool.set_arbiter(&honest_arb);
  greedy_pool.set_arbiter(&greedy_arb);

  std::vector<int> honest_grants, greedy_grants;
  auto drive = [](Pool& pool, TenantArbiter& arb, std::vector<int>& grants) {
    pool.acquire([&grants] { grants.push_back(0); }, 0);
    pool.acquire([&grants] { grants.push_back(0); }, 0);
    pool.acquire([&grants] { grants.push_back(1); }, 1);
    arb.tick(0.0, pool);
    pool.release(0);
    pool.acquire([&grants] { grants.push_back(1); }, 1);
  };
  drive(honest_pool, honest_arb, honest_grants);
  drive(greedy_pool, greedy_arb, greedy_grants);
  EXPECT_EQ(honest_grants, greedy_grants);
  EXPECT_EQ(honest_arb.credits(0), greedy_arb.credits(0));
  EXPECT_EQ(honest_arb.credits(1), greedy_arb.credits(1));
}

TEST(JainFairnessTest, KnownValues) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(metrics::jain_fairness({1.0, 0.0}), 0.5, 1e-12);  // 1/N
  EXPECT_NEAR(metrics::jain_fairness({4.0, 1.0, 1.0}), 2.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Testbed integration.

TestbedConfig contended_config() {
  TestbedConfig cfg = TestbedConfig::defaults();
  // 10x demands: trials are cheap AND a small thread pool saturates.
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  return cfg;
}

ExperimentOptions tenant_options(double gold_reported_demand) {
  ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 40.0;
  opts.client.ramp_down_s = 2.0;
  // 1s think keeps the tiny tomcat pools saturated with waiters from both
  // tenants — the regime where waiter selection (and thus misreporting)
  // actually decides who runs.
  opts.client.think_time_mean_s = 1.0;
  workload::TenantSpec gold;
  gold.name = "gold";
  gold.users = 120;
  gold.reported_demand = gold_reported_demand;
  gold.sla_threshold_s = 2.0;
  workload::TenantSpec silver;
  silver.name = "silver";
  silver.users = 120;
  silver.sla_threshold_s = 2.0;
  opts.client.tenants = {gold, silver};
  return opts;
}

std::size_t total_users(const ExperimentOptions& opts) {
  std::size_t n = 0;
  for (const auto& t : opts.client.tenants) n += t.users;
  return n;
}

TEST(MultiTenantTestbedTest, TrialProducesPerTenantStats) {
  ExperimentOptions opts = tenant_options(1.0);
  opts.partition = policy_of(ShareStrategy::kWorkConserving);
  exp::Experiment e(contended_config(), opts);
  const RunResult r = e.run(SoftConfig{60, 6, 12}, total_users(opts));

  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].name, "gold");
  EXPECT_EQ(r.tenants[1].name, "silver");
  for (const exp::TenantStat& t : r.tenants) {
    EXPECT_GT(t.throughput, 0.0) << t.name;
    EXPECT_NEAR(t.throughput, t.goodput + t.badput, 1e-9) << t.name;
    EXPECT_GT(t.mean_rt_s, 0.0) << t.name;
  }
  // The farm's per-tenant lanes and the pool share gauges made it into the
  // registry snapshot.
  bool saw_goodput = false, saw_share = false;
  for (const auto& m : r.metrics.metrics) {
    if (m.name == "tenant_goodput") saw_goodput = true;
    if (m.name == "pool_tenant_share_pct") saw_share = true;
  }
  EXPECT_TRUE(saw_goodput);
  EXPECT_TRUE(saw_share);
}

TEST(MultiTenantTestbedTest, NoisyNeighborDiagnosisNamesTheGreedyTenant) {
  // gold misreports 8x under work-conserving shares and crowds silver out of
  // the saturated app-tier pools; the diagnoser must call the trial
  // kNoisyNeighbor and implicate tenant:gold first.
  ExperimentOptions opts = tenant_options(8.0);
  opts.partition = policy_of(ShareStrategy::kWorkConserving);
  exp::Experiment e(contended_config(), opts);
  const RunResult r = e.run(SoftConfig{200, 4, 8}, total_users(opts));

  EXPECT_EQ(r.diagnosis.pathology, obs::Pathology::kNoisyNeighbor)
      << r.diagnosis.summary();
  ASSERT_FALSE(r.diagnosis.implicated_resources.empty());
  EXPECT_EQ(r.diagnosis.implicated_resources.front(), "tenant:gold");
  // The tenant attribution is advisory: the hint core consumes must not
  // carry it as a resizable resource.
  const core::DiagnosisHint hint = r.diagnosis.to_hint();
  for (const std::string& s : hint.soft) {
    EXPECT_NE(s.rfind("tenant:", 0), 0u) << s;
  }
}

// ---------------------------------------------------------------------------
// The fairness acceptance: misreporting pays under work-conserving shares,
// not under Karma credits.

TEST(TenantSweepTest, MisreportingPaysUnderWorkConservingNotUnderKarma) {
  ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 40.0;
  opts.client.ramp_down_s = 2.0;
  opts.client.think_time_mean_s = 1.0;
  exp::Experiment e(contended_config(), opts);

  exp::TenantScenario scenario;
  workload::TenantSpec gold;
  gold.name = "gold";
  gold.users = 120;
  workload::TenantSpec silver;
  silver.name = "silver";
  silver.users = 120;
  scenario.tenants = {gold, silver};
  scenario.greedy_tenant = 0;
  scenario.misreport_factor = 8.0;

  const exp::TenantSweepReport report = exp::tenant_sweep(
      e, SoftConfig{200, 4, 8}, scenario,
      {ShareStrategy::kWorkConserving, ShareStrategy::kKarmaCredits},
      /*jobs=*/0);

  const exp::TenantStrategyOutcome* wc =
      report.find(ShareStrategy::kWorkConserving);
  const exp::TenantStrategyOutcome* karma =
      report.find(ShareStrategy::kKarmaCredits);
  ASSERT_NE(wc, nullptr);
  ASSERT_NE(karma, nullptr);

  // Every outcome carries a meaningful fairness index.
  for (const exp::TenantStrategyOutcome& o : report.outcomes) {
    EXPECT_GT(o.honest_jain, 0.0);
    EXPECT_LE(o.honest_jain, 1.0 + 1e-12);
    EXPECT_GT(o.greedy_jain, 0.0);
    EXPECT_LE(o.greedy_jain, 1.0 + 1e-12);
    EXPECT_GT(o.honest_goodput, 0.0);
  }

  // Work-conserving shares weight waiter selection by reported demand: the
  // 8x misreporter must extract a real goodput gain.
  EXPECT_GT(wc->greedy_gain_pct(), 5.0)
      << "honest " << wc->honest_goodput << " greedy " << wc->greedy_goodput;
  // ...and that gain comes out of the honest tenant: fairness degrades.
  EXPECT_LT(wc->greedy_jain, wc->honest_jain + 1e-12);

  // Karma never reads reported demand, so the greedy replay is the same
  // simulation: the liar gains nothing (exactly 0, asserted loosely at the
  // ISSUE's <=1% bound and tightly at bit-identity).
  EXPECT_LE(karma->greedy_gain_pct(), 1.0);
  EXPECT_EQ(karma->honest_goodput, karma->greedy_goodput);
  EXPECT_EQ(karma->honest.throughput, karma->greedy.throughput);
}

}  // namespace
}  // namespace softres
