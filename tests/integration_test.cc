// Cross-module integration: the core algorithm driving the simulated testbed
// through the RunnerAdapter, on a 10x-scaled-down deployment so the whole
// loop stays fast.

#include <gtest/gtest.h>

#include "core/allocation.h"
#include "exp/config.h"
#include "exp/runner_adapter.h"

namespace softres {
namespace {

// Scale demands up 10x so the testbed saturates around ~80 req/s / ~650
// users, making each RunExperiment trial cheap.
exp::TestbedConfig small_testbed(const char* hw) {
  exp::TestbedConfig cfg = exp::TestbedConfig::defaults();
  cfg.hw = exp::HardwareConfig::parse(hw);
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  cfg.demands.apache_dynamic_s *= 10.0;
  cfg.demands.apache_static_s *= 10.0;
  return cfg;
}

exp::ExperimentOptions quick_opts() {
  exp::ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 25.0;
  opts.client.ramp_down_s = 2.0;
  opts.client.users_capacity = 1e9;  // keep FIN effects out of this test
  return opts;
}

core::AlgorithmConfig quick_alg() {
  core::AlgorithmConfig cfg;
  cfg.initial = {40, 4, 4};
  cfg.start_workload = 100;
  cfg.workload_step = 150;
  cfg.small_step = 75;
  cfg.max_runs = 60;
  return cfg;
}

TEST(IntegrationTest, AdapterTranslatesConfigs) {
  const core::Allocation alloc{80, 12, 9};
  const exp::SoftConfig soft = exp::RunnerAdapter::to_soft_config(alloc);
  EXPECT_EQ(soft.apache_threads, 80u);
  EXPECT_EQ(soft.tomcat_threads, 12u);
  EXPECT_EQ(soft.db_connections, 9u);
}

TEST(IntegrationTest, AdapterProducesCompleteObservation) {
  exp::Experiment e(small_testbed("1/2/1/2"), quick_opts());
  exp::RunnerAdapter adapter(e, 1.0);
  const core::Observation obs = adapter.run({50, 10, 10}, 200);
  EXPECT_EQ(obs.workload, 200u);
  EXPECT_GT(obs.throughput, 5.0);
  EXPECT_GE(obs.slo_satisfaction, 0.0);
  EXPECT_LE(obs.slo_satisfaction, 1.0);
  EXPECT_EQ(obs.hardware.size(), 6u);
  EXPECT_EQ(obs.servers.size(), 6u);
  EXPECT_FALSE(obs.soft.empty());
  // Tier labels assigned by name.
  EXPECT_EQ(obs.find_server("apache0")->tier, core::Tier::kWeb);
  EXPECT_EQ(obs.find_server("tomcat1")->tier, core::Tier::kApp);
  EXPECT_EQ(obs.find_server("cjdbc0")->tier, core::Tier::kMiddleware);
  EXPECT_EQ(obs.find_server("mysql0")->tier, core::Tier::kDb);
  EXPECT_EQ(adapter.runs(), 1u);
}

TEST(IntegrationTest, AlgorithmFindsAppCpuOn1212) {
  exp::Experiment e(small_testbed("1/2/1/2"), quick_opts());
  exp::RunnerAdapter adapter(e, 1.0);
  core::AllocationAlgorithm alg(adapter, quick_alg());
  const core::AllocationReport report = alg.run();
  ASSERT_EQ(report.status, core::AlgorithmStatus::kOk)
      << core::to_string(report.status);
  EXPECT_EQ(report.critical.critical_tier, core::Tier::kApp);
  EXPECT_GT(report.min_jobs.min_jobs, 1u);
  EXPECT_LT(report.min_jobs.min_jobs, 100u);
  EXPECT_GT(report.recommended.app_threads, 0u);
  EXPECT_GT(report.recommended.web_threads, 0u);
  EXPECT_EQ(report.rows.size(), 4u);
}

TEST(IntegrationTest, AlgorithmFindsMiddlewareCpuOn1414) {
  exp::Experiment e(small_testbed("1/4/1/4"), quick_opts());
  exp::RunnerAdapter adapter(e, 1.0);
  core::AllocationAlgorithm alg(adapter, quick_alg());
  const core::AllocationReport report = alg.run();
  ASSERT_EQ(report.status, core::AlgorithmStatus::kOk)
      << core::to_string(report.status);
  EXPECT_EQ(report.critical.critical_tier, core::Tier::kMiddleware);
  // Middleware critical: connection pools jointly provide its concurrency.
  EXPECT_GT(report.recommended.app_connections, 0u);
}

TEST(IntegrationTest, RecommendationOutperformsUnderAllocation) {
  // The tuned allocation must beat a blatantly under-allocated one at the
  // saturation workload.
  exp::TestbedConfig cfg = small_testbed("1/2/1/2");
  exp::Experiment e(cfg, quick_opts());
  exp::RunnerAdapter adapter(e, 1.0);
  core::AllocationAlgorithm alg(adapter, quick_alg());
  const core::AllocationReport report = alg.run();
  ASSERT_EQ(report.status, core::AlgorithmStatus::kOk);

  const std::size_t wl = report.min_jobs.saturation_workload + 100;
  const exp::RunResult tuned = e.run(
      exp::RunnerAdapter::to_soft_config(report.recommended), wl);
  exp::SoftConfig starved = exp::RunnerAdapter::to_soft_config(
      report.recommended);
  starved.tomcat_threads = 1;
  const exp::RunResult bad = e.run(starved, wl);
  EXPECT_GT(tuned.goodput(1.0), bad.goodput(1.0) * 1.1);
}

}  // namespace
}  // namespace softres
