// Property tests for the four-ary event queue and the simulator's
// cancel/reschedule semantics on top of it: thousands of random
// push/update/erase/pop interleavings are cross-checked against a naive
// sorted-vector oracle. These pin the two contracts the whole engine
// rests on — pops come out in nondecreasing (time, key) order with FIFO
// same-instant tie-break, and the eager in-place re-key/erase paths
// (EventQueue::update / EventQueue::erase plus the index->position map
// behind them) are observationally identical to remove-and-reinsert.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace softres::sim {
namespace {

struct OracleEntry {
  double time;
  std::uint64_t key;
  bool operator<(const OracleEntry& o) const {
    return time != o.time ? time < o.time : key < o.key;
  }
};

// Reference model: a flat vector kept unordered; min extraction scans.
class Oracle {
 public:
  void push(double time, std::uint64_t key) { entries_.push_back({time, key}); }
  void erase(std::uint32_t idx) {
    auto it = find(idx);
    ASSERT_NE(it, entries_.end());
    entries_.erase(it);
  }
  void update(std::uint32_t idx, double time, std::uint64_t key) {
    auto it = find(idx);
    ASSERT_NE(it, entries_.end());
    *it = {time, key};
  }
  OracleEntry pop_min() {
    auto it = std::min_element(entries_.begin(), entries_.end());
    OracleEntry e = *it;
    entries_.erase(it);
    return e;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<OracleEntry>::iterator find(std::uint32_t idx) {
    return std::find_if(entries_.begin(), entries_.end(), [idx](auto& e) {
      return (e.key & EventQueue::kIndexMask) == idx;
    });
  }
  std::vector<OracleEntry> entries_;
};

class EventQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EventQueuePropertyTest, RandomOpsMatchSortedOracle) {
  EventQueue q;
  Oracle oracle;
  Rng rng(GetParam());

  constexpr std::uint32_t kIndices = 64;
  std::vector<bool> in_queue(kIndices, false);
  std::vector<std::uint32_t> free_idx, used_idx;
  for (std::uint32_t i = 0; i < kIndices; ++i) free_idx.push_back(i);
  std::uint64_t seq = 1;

  double last_time = 0.0;
  std::uint64_t last_key = 0;
  // Coarse time grid at or after the last pop (a simulator never schedules
  // into the past): with ~16 distinct instants and dozens of pending
  // entries, most pushes collide on time and the tie-break carries the
  // ordering — the case a plain (time < time) heap would get wrong.
  const auto random_time = [&rng, &last_time] {
    return last_time + static_cast<double>(rng.uniform_int(0, 15));
  };
  const int kOps = 10000;
  for (int op = 0; op < kOps; ++op) {
    const auto what = rng.uniform_int(0, 9);
    if (what < 4 && !free_idx.empty()) {  // push
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(free_idx.size()) - 1));
      const std::uint32_t idx = free_idx[pick];
      free_idx[pick] = free_idx.back();
      free_idx.pop_back();
      used_idx.push_back(idx);
      in_queue[idx] = true;
      const double t = random_time();
      const std::uint64_t key = (seq++ << EventQueue::kIndexBits) | idx;
      q.push({t, key});
      oracle.push(t, key);
    } else if (what < 6 && !used_idx.empty()) {  // update (re-key in place)
      const std::uint32_t idx = used_idx[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(used_idx.size()) - 1))];
      const double t = random_time();
      const std::uint64_t key = (seq++ << EventQueue::kIndexBits) | idx;
      q.update(idx, {t, key});
      oracle.update(idx, t, key);
    } else if (what < 7 && !used_idx.empty()) {  // erase
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(used_idx.size()) - 1));
      const std::uint32_t idx = used_idx[pick];
      used_idx[pick] = used_idx.back();
      used_idx.pop_back();
      free_idx.push_back(idx);
      in_queue[idx] = false;
      q.erase(idx);
      oracle.erase(idx);
    } else if (!q.empty()) {  // pop
      const EventQueue::Entry got = q.pop();
      const OracleEntry want = oracle.pop_min();
      ASSERT_EQ(got.time, want.time) << "op " << op;
      ASSERT_EQ(got.key, want.key) << "op " << op;
      // Nondecreasing (time, key) across consecutive pops.
      ASSERT_TRUE(got.time > last_time ||
                  (got.time == last_time && got.key > last_key))
          << "op " << op;
      last_time = got.time;
      last_key = got.key;
      const auto idx = static_cast<std::uint32_t>(got.key &
                                                  EventQueue::kIndexMask);
      ASSERT_TRUE(in_queue[idx]);
      in_queue[idx] = false;
      used_idx.erase(std::find(used_idx.begin(), used_idx.end(), idx));
      free_idx.push_back(idx);
    }
    ASSERT_EQ(q.size(), oracle.size());
  }

  // Drain: the remaining entries must come out in exact oracle order.
  while (!q.empty()) {
    const EventQueue::Entry got = q.pop();
    const OracleEntry want = oracle.pop_min();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.key, want.key);
  }
  EXPECT_EQ(oracle.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueuePropertyTest,
                         ::testing::Values(0x5eed1ull, 0x5eed2ull, 0x5eed3ull,
                                           0x5eed4ull));

// Simulator-level version of the same property: random
// schedule/cancel/reschedule interleavings must fire callbacks in exactly
// the order a naive model predicts — by (time, seq of the last
// (re)schedule), ties FIFO. This exercises the handle/generation layer and
// the record freelist on top of the raw queue ops.
TEST(SimulatorSchedulingPropertyTest, RandomCancelRescheduleMatchesModel) {
  Simulator sim;
  Rng rng(0xabcdefull);

  struct Pending {
    EventHandle handle;
    int id;
  };
  std::vector<Pending> pending;
  std::vector<int> fired;          // ids in firing order
  std::vector<std::pair<double, std::uint64_t>> model_keys(4096);
  std::vector<std::pair<std::pair<double, std::uint64_t>, int>> model;
  std::uint64_t model_seq = 1;
  int next_id = 0;

  const auto random_delay = [&rng] {
    return static_cast<double>(rng.uniform_int(0, 7));  // coarse: forces ties
  };

  for (int op = 0; op < 10000; ++op) {
    const auto what = rng.uniform_int(0, 7);
    if (what < 4) {  // schedule
      const int id = next_id++;
      const double at = sim.now() + random_delay();
      model_keys[id] = {at, model_seq++};
      pending.push_back(
          {sim.schedule(at - sim.now(), [id, &fired] { fired.push_back(id); }),
           id});
    } else if (what < 5 && !pending.empty()) {  // cancel
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      if (sim.cancel(pending[pick].handle)) {
        model_keys[pending[pick].id].first = -1.0;  // never fires
      }
      pending[pick] = pending.back();
      pending.pop_back();
    } else if (what < 6 && !pending.empty()) {  // reschedule
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      const double at = sim.now() + random_delay();
      if (sim.reschedule(pending[pick].handle, at - sim.now())) {
        model_keys[pending[pick].id] = {at, model_seq++};
      }
    } else {  // let some time pass; fired events leave stale handles behind,
      // and later cancel/reschedule on them must refuse (generation guard)
      sim.run_until(sim.now() + 1.0);
    }
    if (next_id >= 4000) break;  // stay inside model_keys
  }
  sim.run();

  for (int id = 0; id < next_id; ++id) {
    if (model_keys[id].first >= 0.0) {
      model.push_back({model_keys[id], id});
    }
  }
  std::sort(model.begin(), model.end());
  ASSERT_EQ(fired.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(fired[i], model[i].second) << "position " << i;
  }
}

}  // namespace
}  // namespace softres::sim
