#include "sim/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

namespace softres::sim {
namespace {

// Property: every distribution's sample mean converges to its analytical
// mean() and samples stay non-negative.
class DistributionMeanTest
    : public ::testing::TestWithParam<std::tuple<const char*, DistributionPtr,
                                                 double>> {};

TEST_P(DistributionMeanTest, SampleMeanMatchesAnalyticalMean) {
  const auto& [name, dist, tolerance] = GetParam();
  Rng rng(4242);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = dist->sample(rng);
    ASSERT_GE(v, 0.0) << name;
    sum += v;
  }
  const double sample_mean = sum / n;
  EXPECT_NEAR(sample_mean, dist->mean(),
              tolerance * dist->mean() + 1e-9) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMeanTest,
    ::testing::Values(
        std::make_tuple("constant", constant(0.42), 1e-12),
        std::make_tuple("exponential", exponential(3.0), 0.02),
        std::make_tuple("uniform", uniform(1.0, 5.0), 0.02),
        std::make_tuple("lognormal", lognormal(0.1, 0.5), 0.03),
        std::make_tuple("shifted_exp", shifted_exp(1.0, 2.0), 0.02),
        std::make_tuple("bounded_pareto", bounded_pareto(0.01, 10.0, 1.5),
                        0.05)),
    [](const auto& param_info) { return std::get<0>(param_info.param); });

TEST(DeterministicTest, AlwaysReturnsValue) {
  Deterministic d(1.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 1.5);
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  BoundedPareto p(0.5, 4.0, 1.2);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const double v = p.sample(rng);
    ASSERT_GE(v, 0.5);
    ASSERT_LE(v, 4.0 + 1e-9);
  }
}

TEST(LogNormalTest, MeanFormula) {
  // mean = median * exp(sigma^2/2)
  LogNormal d(2.0, 0.8);
  EXPECT_NEAR(d.mean(), 2.0 * std::exp(0.32), 1e-12);
}

TEST(EmpiricalTest, SamplesComeFromGivenValues) {
  Empirical e({1.0, 2.0, 4.0});
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = e.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 4.0);
  }
  EXPECT_NEAR(e.mean(), 7.0 / 3.0, 1e-12);
}

TEST(DiscreteChoiceTest, ProbabilitiesNormalised) {
  DiscreteChoice c({2.0, 6.0, 2.0});
  EXPECT_NEAR(c.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(c.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(c.probability(2), 0.2, 1e-12);
}

TEST(DiscreteChoiceTest, EmpiricalFrequenciesMatchWeights) {
  DiscreteChoice c({1.0, 3.0});
  Rng rng(77);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (c.sample(rng) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(DiscreteChoiceTest, ZeroWeightNeverChosen) {
  DiscreteChoice c({1.0, 0.0, 1.0});
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(c.sample(rng), 1u);
  }
}

TEST(DiscreteChoiceTest, SingleEntry) {
  DiscreteChoice c({5.0});
  Rng rng(3);
  EXPECT_EQ(c.sample(rng), 0u);
  EXPECT_NEAR(c.probability(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace softres::sim
