#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace softres::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // hi < lo clamps to lo
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ExponentialNonPositiveMeanIsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(29);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LognormalMedianApproximatelyCorrect) {
  Rng rng(31);
  std::vector<double> v;
  const int n = 100001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(rng.lognormal_median(0.2, 0.7));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 0.2, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent2(41);
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child.next_u64(), child2.next_u64());  // deterministic
  }
  int equal = 0;
  Rng p(41);
  Rng c = p.split();
  for (int i = 0; i < 100; ++i) {
    if (p.next_u64() == c.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace softres::sim
