#include "core/allocation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

namespace softres::core {
namespace {

// Analytic stand-in for a testbed: a closed interactive system whose app tier
// saturates at `hw_cap` req/s, with soft limits from the allocation. Lets the
// algorithm be tested exactly and instantly.
class ModelRunner final : public ExperimentRunner {
 public:
  double think_s = 7.0;
  double hw_cap = 800.0;        // app-tier hardware ceiling (2 servers)
  double base_rt = 0.030;       // app residence at low load
  double cjdbc_rt = 0.004;
  double req_ratio = 2.7;
  int app_servers = 2;

  Observation run(const Allocation& alloc, std::size_t workload) override {
    Observation obs;
    obs.workload = workload;
    obs.req_ratio = req_ratio;
    // Soft ceiling: per-server threads bound concurrency; the tier can push
    // at most total_threads / base_rt through.
    const double soft_cap =
        static_cast<double>(alloc.app_threads * app_servers) / base_rt;
    const double demand = static_cast<double>(workload) / (think_s + base_rt);
    const double tp = std::min({demand, hw_cap, soft_cap});
    obs.throughput = tp;
    // Satisfaction degrades once demand exceeds capacity.
    const double overload = demand / std::max(1.0, std::min(hw_cap, soft_cap));
    obs.slo_satisfaction = overload <= 1.0 ? 1.0 : std::max(0.0, 2.0 - overload);
    obs.goodput = tp * obs.slo_satisfaction;

    const bool hw_saturated = demand >= hw_cap && soft_cap >= hw_cap;
    const bool soft_saturated = demand >= soft_cap && soft_cap < hw_cap;
    // Residence inflates once saturated (queueing).
    const double rt = base_rt * (overload > 1.0 ? overload : 1.0);

    obs.hardware = {
        {"apache0.cpu", 30.0, false},
        {"tomcat0.cpu", 100.0 * tp / hw_cap, hw_saturated},
        {"tomcat1.cpu", 100.0 * tp / hw_cap, hw_saturated},
        {"cjdbc0.cpu", 50.0, false},
        {"mysql0.cpu", 40.0, false},
    };
    obs.soft = {
        {"tomcat0.threads", alloc.app_threads, soft_saturated ? 100.0 : 50.0,
         soft_saturated},
        {"apache0.workers", alloc.web_threads, 40.0, false},
    };
    const double app_tp = tp / app_servers;
    obs.servers = {
        {Tier::kWeb, "apache0", tp * 3.0, 0.012, tp * 3.0 * 0.012},
        {Tier::kApp, "tomcat0", app_tp, rt, app_tp * rt},
        {Tier::kApp, "tomcat1", app_tp, rt, app_tp * rt},
        {Tier::kMiddleware, "cjdbc0", tp * req_ratio, cjdbc_rt,
         tp * req_ratio * cjdbc_rt},
        {Tier::kDb, "mysql0", tp * req_ratio, 0.002, tp * req_ratio * 0.002},
    };
    return obs;
  }
};

AlgorithmConfig quick_config() {
  AlgorithmConfig cfg;
  cfg.initial = {100, 25, 25};
  cfg.start_workload = 1000;
  cfg.workload_step = 1000;
  cfg.small_step = 500;
  cfg.max_runs = 50;
  return cfg;
}

TEST(FindCriticalResourceTest, ExposesHardwareBottleneck) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  const CriticalResourceResult crit = alg.find_critical_resource();
  EXPECT_EQ(crit.status, AlgorithmStatus::kOk);
  EXPECT_EQ(crit.critical_resource, "tomcat0.cpu");
  EXPECT_EQ(crit.critical_server, "tomcat0");
  EXPECT_EQ(crit.critical_tier, Tier::kApp);
  EXPECT_FALSE(crit.trace.empty());
}

TEST(FindCriticalResourceTest, DoublesAllocationOnSoftSaturation) {
  ModelRunner runner;
  AlgorithmConfig cfg = quick_config();
  // Start with a pool so small it soft-saturates well before hardware:
  // 2 threads x 2 servers / 0.030 s = 133 req/s << 800 req/s.
  cfg.initial = {100, 2, 2};
  AllocationAlgorithm alg(runner, cfg);
  const CriticalResourceResult crit = alg.find_critical_resource();
  EXPECT_EQ(crit.status, AlgorithmStatus::kOk);
  // Doubling 2 -> 4 -> 8 -> 16: 16*2/0.03 = 1066 > 800 exposes hardware.
  EXPECT_GE(crit.reserve.app_threads, 16u);
  EXPECT_EQ(crit.critical_resource, "tomcat0.cpu");
}

TEST(FindCriticalResourceTest, ReportsNoBottleneckWhenUndetectable) {
  ModelRunner runner;
  // Make the model saturate without ever flagging a resource.
  class Hidden final : public ExperimentRunner {
   public:
    ModelRunner inner;
    Observation run(const Allocation& a, std::size_t w) override {
      Observation obs = inner.run(a, w);
      for (auto& h : obs.hardware) h.saturated = false;
      for (auto& s : obs.soft) s.saturated = false;
      return obs;
    }
  } hidden;
  AllocationAlgorithm alg(hidden, quick_config());
  const CriticalResourceResult crit = alg.find_critical_resource();
  EXPECT_EQ(crit.status, AlgorithmStatus::kNoBottleneckFound);
}

TEST(FindCriticalResourceTest, BudgetBound) {
  ModelRunner runner;
  AlgorithmConfig cfg = quick_config();
  cfg.max_runs = 2;  // not enough to reach saturation
  cfg.workload_step = 100;
  AllocationAlgorithm alg(runner, cfg);
  const CriticalResourceResult crit = alg.find_critical_resource();
  EXPECT_EQ(crit.status, AlgorithmStatus::kBudgetExhausted);
}

TEST(InferMinJobsTest, LittleLawAtSaturation) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  const CriticalResourceResult crit = alg.find_critical_resource();
  const MinJobsResult jobs = alg.infer_min_concurrent_jobs(crit);
  ASSERT_EQ(jobs.status, AlgorithmStatus::kOk);
  // Expected minjobs ~ per-server TP (400) x base RT (0.030) = 12.
  EXPECT_NEAR(static_cast<double>(jobs.min_jobs), 12.0, 3.0);
  // Saturation close to N* = hw_cap * (Z + R) ~ 800 * 7.03 = 5624.
  EXPECT_NEAR(static_cast<double>(jobs.saturation_workload), 5624.0, 1000.0);
  EXPECT_GT(jobs.saturation_throughput, 0.0);
}

TEST(InferMinJobsTest, PropagatesFailure) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  CriticalResourceResult crit;
  crit.status = AlgorithmStatus::kNoBottleneckFound;
  const MinJobsResult jobs = alg.infer_min_concurrent_jobs(crit);
  EXPECT_EQ(jobs.status, AlgorithmStatus::kNoBottleneckFound);
}

TEST(CalculateMinAllocationTest, AppCriticalSetsBothPools) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  const AllocationReport report = alg.run();
  ASSERT_EQ(report.status, AlgorithmStatus::kOk);
  EXPECT_EQ(report.recommended.app_threads, report.min_jobs.min_jobs);
  EXPECT_EQ(report.recommended.app_connections, report.min_jobs.min_jobs);
  EXPECT_GT(report.recommended.web_threads, 0u);
  EXPECT_EQ(report.rows.size(), 4u);  // one per tier
  // Rows carry the operational data of Table I.
  for (const auto& row : report.rows) {
    EXPECT_GT(row.throughput, 0.0);
    EXPECT_GT(row.rtt_s, 0.0);
    EXPECT_GT(row.pool_per_server, 0u);
  }
}

TEST(CalculateMinAllocationTest, FrontTierUsesFormula3) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  const AllocationReport report = alg.run();
  ASSERT_EQ(report.status, AlgorithmStatus::kOk);
  const TierRow* web = nullptr;
  const TierRow* app = nullptr;
  for (const auto& row : report.rows) {
    if (row.tier == Tier::kWeb) web = &row;
    if (row.tier == Tier::kApp) app = &row;
  }
  ASSERT_NE(web, nullptr);
  ASSERT_NE(app, nullptr);
  // web pool >= its own measured L (Little's law at saturation).
  EXPECT_GE(static_cast<double>(web->pool_total) + 1.0, web->avg_jobs * 0.8);
}

TEST(CalculateMinAllocationTest, MiddlewareCriticalSizesConnections) {
  // Flip the model so the middleware saturates first.
  class CmCritical final : public ExperimentRunner {
   public:
    ModelRunner inner;
    Observation run(const Allocation& a, std::size_t w) override {
      Observation obs = inner.run(a, w);
      // Rebadge the saturating resource as the middleware CPU.
      const double app_util = obs.hardware[1].util_pct;
      const bool app_saturated = obs.hardware[1].saturated;
      for (auto& h : obs.hardware) {
        if (h.name == "cjdbc0.cpu") {
          h.util_pct = app_util;
          h.saturated = app_saturated;
        }
        if (h.name.rfind("tomcat", 0) == 0) h.saturated = false;
      }
      return obs;
    }
  } runner;
  AllocationAlgorithm alg(runner, quick_config());
  const AllocationReport report = alg.run();
  ASSERT_EQ(report.status, AlgorithmStatus::kOk);
  EXPECT_EQ(report.critical.critical_tier, Tier::kMiddleware);
  // Connections jointly provide the middleware concurrency: total conns =
  // minjobs (1 middleware server) spread over 2 app servers.
  const std::size_t expect_per_app = static_cast<std::size_t>(std::ceil(
      static_cast<double>(report.min_jobs.min_jobs) / 2.0));
  EXPECT_EQ(report.recommended.app_connections, expect_per_app);
}

TEST(AllocationAlgorithmTest, CountsExperiments) {
  ModelRunner runner;
  AllocationAlgorithm alg(runner, quick_config());
  const AllocationReport report = alg.run();
  EXPECT_GT(report.experiments_run, 5u);
  EXPECT_LE(report.experiments_run, 50u);
  EXPECT_EQ(report.experiments_run, alg.experiments_run());
}

TEST(AllocationAlgorithmTest, StatusStrings) {
  EXPECT_STREQ(to_string(AlgorithmStatus::kOk), "ok");
  EXPECT_STREQ(to_string(AlgorithmStatus::kNoBottleneckFound),
               "no-bottleneck-found");
  EXPECT_STREQ(to_string(AlgorithmStatus::kMultiBottleneck),
               "multi-bottleneck");
  EXPECT_STREQ(to_string(AlgorithmStatus::kBudgetExhausted),
               "budget-exhausted");
}

}  // namespace
}  // namespace softres::core
