#include "core/intervention.h"

#include <gtest/gtest.h>

#include <vector>

namespace softres::core {
namespace {

TEST(InterventionTest, FlatSeriesNoChange) {
  const std::vector<double> s(10, 0.99);
  const InterventionResult r = intervention_analysis(s);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.last_stable_index, 9u);
}

TEST(InterventionTest, SharpDropDetected) {
  // Stable at 1.0 through index 5, collapse after.
  std::vector<double> s = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.6, 0.3, 0.1};
  const InterventionResult r = intervention_analysis(s);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.change_index, 6u);
  EXPECT_EQ(r.last_stable_index, 5u);
}

TEST(InterventionTest, SingleOutlierIgnoredWithConfirmations) {
  std::vector<double> s = {1.0, 1.0, 1.0, 0.5, 1.0, 1.0, 1.0, 1.0};
  InterventionConfig cfg;
  cfg.confirmations = 2;
  const InterventionResult r = intervention_analysis(s, cfg);
  EXPECT_FALSE(r.found);
}

TEST(InterventionTest, TrailingSinglePointCounts) {
  // Series ends mid-deterioration: the tail still flags.
  std::vector<double> s = {1.0, 1.0, 1.0, 1.0, 0.4};
  const InterventionResult r = intervention_analysis(s);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.change_index, 4u);
  EXPECT_EQ(r.last_stable_index, 3u);
}

TEST(InterventionTest, GradualDriftWithinBandNotFlagged) {
  // Small noise around the baseline stays stable.
  std::vector<double> s = {1.0, 0.999, 1.0, 0.998, 0.999, 0.997, 0.999};
  const InterventionResult r = intervention_analysis(s);
  EXPECT_FALSE(r.found);
}

TEST(InterventionTest, MinDropGuardsAgainstTinySigma) {
  // Baseline is perfectly constant (sigma = 0); only drops beyond min_drop
  // count.
  std::vector<double> s = {1.0, 1.0, 1.0, 0.995, 0.994, 0.95, 0.90};
  InterventionConfig cfg;
  cfg.min_drop = 0.02;
  const InterventionResult r = intervention_analysis(s, cfg);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.change_index, 5u);
}

TEST(InterventionTest, NoisyBaselineWidensBand) {
  // Baseline noise sigma ~0.1: a drop to 0.75 is within 3 sigma.
  std::vector<double> s = {1.0, 0.8, 1.0, 0.8, 1.0, 0.8, 0.75, 0.76};
  InterventionConfig cfg;
  cfg.baseline_points = 6;
  const InterventionResult r = intervention_analysis(s, cfg);
  EXPECT_FALSE(r.found);
}

TEST(InterventionTest, ShortSeriesSafe) {
  EXPECT_FALSE(intervention_analysis({}).found);
  EXPECT_FALSE(intervention_analysis({1.0}).found);
  EXPECT_EQ(intervention_analysis({1.0}).last_stable_index, 0u);
}

TEST(InterventionTest, RecoveryResetsRun) {
  // Dip of length 1 then recovery then real change.
  std::vector<double> s = {1.0, 1.0, 1.0, 0.5, 1.0, 1.0, 0.4, 0.3};
  InterventionConfig cfg;
  cfg.confirmations = 2;
  const InterventionResult r = intervention_analysis(s, cfg);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.change_index, 6u);
  EXPECT_EQ(r.last_stable_index, 5u);
}

TEST(InterventionTest, BaselineClampedToHalfSeries) {
  // baseline_points larger than half the series must not swallow the change.
  std::vector<double> s = {1.0, 1.0, 0.2, 0.1};
  InterventionConfig cfg;
  cfg.baseline_points = 100;
  const InterventionResult r = intervention_analysis(s, cfg);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.change_index, 2u);
}

}  // namespace
}  // namespace softres::core
