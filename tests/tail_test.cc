// Tests for the tail-attribution subsystem (obs/tail.h + the per-request
// blame walker in obs/trace.h): the per-request blame identity (components
// sum to response_time() for EVERY traced request, the acceptance criterion
// of DESIGN.md §15), cohort partition coverage, deterministic exemplar
// selection, per-cohort SLO-miss attribution, and the Diagnosis
// corroboration channel.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/testbed.h"
#include "metrics/sla.h"
#include "obs/tail.h"
#include "obs/trace.h"

namespace softres::exp {
namespace {

workload::ClientConfig traced_client() {
  workload::ClientConfig c;
  c.users = 300;
  c.ramp_up_s = 5.0;
  c.runtime_s = 30.0;
  c.ramp_down_s = 2.0;
  c.trace_sample_rate = 0.05;
  return c;
}

obs::TraceCollector collect_traces() {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, traced_client());
  bed.run();
  obs::TraceCollector traces;
  traces.collect(bed.farm().traced_requests());
  return traces;
}

TEST(BlameTest, ComponentsSumToResponseTimeForEveryRequest) {
  // The acceptance identity: the blame vector is an *exact* decomposition of
  // each request's end-to-end response time, within 1e-9 — the per-request
  // refinement of LatencyBreakdown::accounted_ms().
  const obs::TraceCollector traces = collect_traces();
  ASSERT_FALSE(traces.traces().empty());
  for (const obs::AssembledTrace& t : traces.traces()) {
    const obs::BlameVector bv = obs::blame(t);
    EXPECT_EQ(bv.request_id, t.request_id);
    EXPECT_DOUBLE_EQ(bv.response_time_s, t.response_time());
    EXPECT_NEAR(bv.total_s(), t.response_time(), 1e-9) << "request " << t.request_id;
  }
}

TEST(BlameTest, ComponentsAreNonNegativeAndLabelled) {
  const obs::TraceCollector traces = collect_traces();
  ASSERT_FALSE(traces.traces().empty());
  for (const obs::AssembledTrace& t : traces.traces()) {
    const obs::BlameVector bv = obs::blame(t);
    ASSERT_FALSE(bv.components.empty());
    EXPECT_EQ(bv.components.back().label(), "network");
    for (const obs::BlameVector::Component& c : bv.components) {
      // Exclusive service may round a hair below zero; everything measured
      // directly is non-negative by construction.
      if (c.kind != "service" && c.kind != "network") {
        EXPECT_GE(c.seconds, 0.0) << c.label();
      }
      if (c.kind != "network") {
        EXPECT_EQ(c.label(), c.tier + "." + c.kind);
      }
    }
  }
}

TEST(BlameTest, SyntheticTraceDecomposesExactly) {
  // Hand-built nested trace: apache [0.1, 1.1] (queued from 0.0) containing
  // tomcat [0.3, 0.9] (queued from 0.25, conn wait 0.1, gc 0.02), request
  // sent at 0.0 and completed at 1.2.
  obs::AssembledTrace t;
  t.request_id = 42;
  t.sent_at = 0.0;
  t.completed_at = 1.2;
  tier::Request::TraceSpan apache;
  apache.server = "apache0";
  apache.enter = 0.1;
  apache.leave = 1.1;
  apache.queue_s = 0.1;
  tier::Request::TraceSpan tomcat;
  tomcat.server = "tomcat0";
  tomcat.enter = 0.3;
  tomcat.leave = 0.9;
  tomcat.queue_s = 0.05;
  tomcat.conn_queue_s = 0.1;
  tomcat.gc_s = 0.02;
  t.spans = {apache, tomcat};
  t.roots = obs::build_span_tree(t.spans);

  const obs::BlameVector bv = obs::blame(t);
  ASSERT_NE(bv.component("apache.queue"), nullptr);
  EXPECT_NEAR(bv.component("apache.queue")->seconds, 0.1, 1e-12);
  // Apache exclusive service: 1.0 residence minus the nested tomcat
  // queue + residence (0.05 + 0.6).
  EXPECT_NEAR(bv.component("apache.service")->seconds, 0.35, 1e-12);
  EXPECT_NEAR(bv.component("tomcat.queue")->seconds, 0.05, 1e-12);
  EXPECT_NEAR(bv.component("tomcat.service")->seconds, 0.48, 1e-12);
  EXPECT_NEAR(bv.component("tomcat.conn_wait")->seconds, 0.1, 1e-12);
  EXPECT_NEAR(bv.component("tomcat.gc")->seconds, 0.02, 1e-12);
  EXPECT_NEAR(bv.component("network")->seconds, 0.1, 1e-12);
  EXPECT_NEAR(bv.total_s(), 1.2, 1e-12);
}

TEST(TailTest, CohortPartitionCoversEveryTracedRequest) {
  const obs::TraceCollector traces = collect_traces();
  const obs::TailAttribution tail =
      obs::TailAttributor().attribute(traces.traces());
  ASSERT_FALSE(tail.empty());
  ASSERT_EQ(tail.cohorts.size(), 4u);
  EXPECT_EQ(tail.cohorts[0].name, "p0-50");
  EXPECT_EQ(tail.cohorts[1].name, "p50-95");
  EXPECT_EQ(tail.cohorts[2].name, "p95-99");
  EXPECT_EQ(tail.cohorts[3].name, "p99+");
  std::size_t covered = 0;
  for (const auto& c : tail.cohorts) {
    covered += c.requests;
    EXPECT_EQ(c.blame_s.size(), tail.axis.size()) << c.name;
  }
  EXPECT_EQ(covered, traces.size());
  EXPECT_EQ(tail.requests, traces.size());
  // Nearest-rank boundaries are ordered, and the base cohort is never empty.
  EXPECT_LE(tail.p50_s, tail.p95_s);
  EXPECT_LE(tail.p95_s, tail.p99_s);
  EXPECT_GT(tail.cohorts[0].requests, 0u);
  EXPECT_EQ(tail.axis.back().label(), "network");
}

TEST(TailTest, CohortBlameMeansSumToCohortMeanResponseTime) {
  // The per-request identity survives aggregation: each cohort's mean blame
  // vector sums to its mean response time.
  const obs::TraceCollector traces = collect_traces();
  const obs::TailAttribution tail =
      obs::TailAttributor().attribute(traces.traces());
  ASSERT_FALSE(tail.empty());
  for (const auto& c : tail.cohorts) {
    if (c.requests == 0) continue;
    double sum = 0.0;
    for (double b : c.blame_s) sum += b;
    EXPECT_NEAR(sum, c.mean_rt_s, 1e-9) << c.name;
  }
}

TEST(TailTest, ExemplarsAreSlowestFirstAndDeterministic) {
  const obs::TraceCollector traces = collect_traces();
  const obs::TailAttributor attributor;
  const obs::TailAttribution a = attributor.attribute(traces.traces());
  const obs::TailAttribution b = attributor.attribute(traces.traces());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.cohorts.size(); ++i) {
    EXPECT_EQ(a.cohorts[i].exemplars, b.cohorts[i].exemplars) << i;
    EXPECT_LE(a.cohorts[i].exemplars.size(), obs::TailConfig{}.top_k);
    // Every exemplar id names a collected trace, and the first one is the
    // cohort's slowest request.
    double slowest = 0.0;
    for (std::uint64_t id : a.cohorts[i].exemplars) {
      bool found = false;
      for (const obs::AssembledTrace& t : traces.traces()) {
        if (t.request_id == id) {
          found = true;
          slowest = std::max(slowest, t.response_time());
        }
      }
      EXPECT_TRUE(found) << "exemplar " << id;
    }
    if (!a.cohorts[i].exemplars.empty()) {
      for (const obs::AssembledTrace& t : traces.traces()) {
        if (t.request_id == a.cohorts[i].exemplars.front()) {
          EXPECT_DOUBLE_EQ(t.response_time(), slowest);
        }
      }
    }
  }
}

TEST(TailTest, SloMissAttributionPerCohort) {
  const obs::TraceCollector traces = collect_traces();
  // A threshold below every response time: all requests miss, and the
  // shares across cohorts sum to 1.
  obs::TailConfig strict;
  strict.slo_threshold_s = 0.0;
  const obs::TailAttribution all_miss =
      obs::TailAttributor(strict).attribute(traces.traces());
  std::size_t misses = 0;
  double share = 0.0;
  for (const auto& c : all_miss.cohorts) {
    misses += c.slo_misses;
    share += c.slo_miss_share;
    EXPECT_EQ(c.slo_misses, c.requests) << c.name;
  }
  EXPECT_EQ(misses, all_miss.requests);
  EXPECT_NEAR(share, 1.0, 1e-12);
  // A threshold above every response time: nobody misses.
  obs::TailConfig lax;
  lax.slo_threshold_s = 1e9;
  const obs::TailAttribution no_miss =
      obs::TailAttributor(lax).attribute(traces.traces());
  for (const auto& c : no_miss.cohorts) {
    EXPECT_EQ(c.slo_misses, 0u) << c.name;
    EXPECT_EQ(c.slo_miss_share, 0.0) << c.name;
  }
}

TEST(TailTest, DeltaVsBaseIsOneAgainstItself) {
  const obs::TraceCollector traces = collect_traces();
  const obs::TailAttribution tail =
      obs::TailAttributor().attribute(traces.traces());
  ASSERT_FALSE(tail.empty());
  const auto* base = tail.find_cohort("p0-50");
  ASSERT_NE(base, nullptr);
  for (std::size_t i = 0; i < tail.axis.size(); ++i) {
    if (base->blame_s[i] > 0.0) {
      EXPECT_DOUBLE_EQ(tail.delta_vs_base(i, *base), 1.0);
    } else {
      EXPECT_EQ(tail.delta_vs_base(i, *base), 0.0);
    }
  }
  const std::size_t dom = tail.dominant_component(*base);
  ASSERT_NE(dom, obs::TailAttribution::npos);
  for (double b : base->blame_s) EXPECT_LE(b, base->blame_s[dom]);
}

TEST(TailTest, EmptyTracesYieldEmptyAttribution) {
  const obs::TailAttribution tail = obs::TailAttributor().attribute({});
  EXPECT_TRUE(tail.empty());
  EXPECT_TRUE(tail.cohorts.empty());
  EXPECT_TRUE(tail.axis.empty());
}

TEST(CorroborateTest, MapsDominantComponentOntoImplicatedResource) {
  // Synthetic attribution whose p99+ cohort is dominated by tomcat.queue.
  obs::TailAttribution tail;
  tail.requests = 10;
  tail.axis = {{"tomcat", "queue"}, {"tomcat", "service"}, {"", "network"}};
  tail.cohorts.resize(4);
  tail.cohorts[0] = {"p0-50", 5, 0.1, {0.01, 0.08, 0.01}, {1}, 0, 0.0};
  tail.cohorts[1] = {"p50-95", 3, 0.2, {0.1, 0.09, 0.01}, {2}, 0, 0.0};
  tail.cohorts[2] = {"p95-99", 1, 0.5, {0.4, 0.09, 0.01}, {3}, 0, 0.0};
  tail.cohorts[3] = {"p99+", 1, 1.2, {1.1, 0.09, 0.01}, {4}, 1, 1.0};

  obs::Diagnosis d;
  d.pathology = obs::Pathology::kSoftUnderAlloc;
  d.implicated_resources = {"tomcat0.threads"};
  obs::corroborate(d, tail);
  EXPECT_TRUE(d.tail.present);
  EXPECT_EQ(d.tail.cohort, "p99+");
  EXPECT_EQ(d.tail.component, "tomcat.queue");
  EXPECT_TRUE(d.tail.corroborates);
  EXPECT_NEAR(d.tail.cohort_mean_ms, 1100.0, 1e-9);
  EXPECT_NEAR(d.tail.base_mean_ms, 10.0, 1e-9);
  EXPECT_NEAR(d.tail.delta, 110.0, 1e-9);
  // SOFTRES_LINT_ALLOW(SR013: blame label in a citation string, not a series)
  EXPECT_NE(d.tail.text.find("tomcat.queue"), std::string::npos);
  EXPECT_NE(d.tail.text.find("corroborates tomcat0.threads"),
            std::string::npos);

  // A verdict implicating an unrelated resource is not corroborated.
  obs::Diagnosis other;
  other.pathology = obs::Pathology::kSoftUnderAlloc;
  other.implicated_resources = {"apache0.workers"};
  obs::corroborate(other, tail);
  EXPECT_TRUE(other.tail.present);
  EXPECT_FALSE(other.tail.corroborates);
  EXPECT_NE(other.tail.text.find("does not map"), std::string::npos);

  // conn_wait maps onto the connection pool; gc onto the node's CPU.
  tail.axis[0] = {"tomcat", "conn_wait"};
  obs::Diagnosis conn;
  conn.pathology = obs::Pathology::kSoftUnderAlloc;
  conn.implicated_resources = {"tomcat0.dbconns"};
  obs::corroborate(conn, tail);
  EXPECT_TRUE(conn.tail.corroborates);
  tail.axis[0] = {"tomcat", "gc"};
  obs::Diagnosis gc;
  gc.pathology = obs::Pathology::kGcOverAlloc;
  gc.implicated_resources = {"tomcat0.cpu"};
  obs::corroborate(gc, tail);
  EXPECT_TRUE(gc.tail.corroborates);
}

TEST(CorroborateTest, UntracedTrialReportsAbsentTailEvidence) {
  obs::Diagnosis d;
  d.pathology = obs::Pathology::kSoftUnderAlloc;
  d.tail.present = true;  // stale value must be reset
  obs::corroborate(d, obs::TailAttribution{});
  EXPECT_FALSE(d.tail.present);
  EXPECT_FALSE(d.tail.corroborates);
  EXPECT_TRUE(d.tail.text.empty());
}

TEST(CohortMissTest, LabelGenericAttributionSharesSumToOne) {
  sim::SampleSet fast, slow;
  for (int i = 0; i < 8; ++i) fast.add(0.1);
  slow.add(3.0);
  slow.add(5.0);
  slow.add(0.5);
  const auto misses = metrics::slo_miss_by_cohort(
      {{"fast", fast}, {"slow", slow}}, 2.0);
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0].label, "fast");
  EXPECT_EQ(misses[0].requests, 8u);
  EXPECT_EQ(misses[0].misses, 0u);
  EXPECT_EQ(misses[0].miss_share, 0.0);
  EXPECT_EQ(misses[1].misses, 2u);
  EXPECT_DOUBLE_EQ(misses[1].miss_share, 1.0);
  // No traffic, no misses — and no division by zero.
  const auto empty = metrics::slo_miss_by_cohort({{"none", {}}}, 2.0);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].miss_share, 0.0);
}

}  // namespace
}  // namespace softres::exp
