#include "exp/adaptive.h"

#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/testbed.h"
#include "metrics/sla.h"

namespace softres::exp {
namespace {

workload::ClientConfig quick_client(std::size_t users, double runtime = 60.0) {
  workload::ClientConfig c;
  c.users = users;
  c.ramp_up_s = 5.0;
  c.runtime_s = runtime;
  c.ramp_down_s = 2.0;
  return c;
}

TEST(ElasticLoadTest, ActiveUsersFollowSchedule) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(1000, 60.0));
  bed.farm().set_load_schedule({{0.0, 200}, {20.0, 800}, {40.0, 300}});
  bed.farm().start();
  bed.simulator().run_until(10.0);
  EXPECT_EQ(bed.farm().active_users(), 200u);
  bed.simulator().run_until(25.0);
  EXPECT_EQ(bed.farm().active_users(), 800u);
  bed.simulator().run_until(65.0);
  // Shrink is lazy (cycle boundaries) but must settle within think time.
  EXPECT_LE(bed.farm().active_users(), 320u);
  EXPECT_GE(bed.farm().active_users(), 250u);
}

TEST(ElasticLoadTest, ScheduleStartsWithRun) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(600, 40.0));
  bed.farm().set_load_schedule({{0.0, 300}, {20.0, 600}});
  bed.run();
  EXPECT_GT(bed.farm().response_times().count(), 100u);
  EXPECT_EQ(bed.farm().active_users(), 600u);
}

TEST(ElasticLoadTest, EmptyScheduleKeepsLegacyBehaviour) {
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(400, 30.0));
  bed.run();
  EXPECT_EQ(bed.farm().active_users(), 400u);
}

TEST(ElasticLoadTest, ThroughputTracksPopulation) {
  // Double the active population below saturation -> ~double throughput.
  TestbedConfig cfg = TestbedConfig::defaults();
  Testbed bed(cfg, quick_client(1200, 120.0));
  bed.farm().set_load_schedule({{0.0, 500}, {65.0, 1000}});
  bed.run();
  const auto& times = bed.farm().completion_times();
  std::size_t first_half = 0, second_half = 0;
  for (double t : times) {
    // Measurement window is [5, 125); phase flips at 65.
    if (t < 60.0) {
      ++first_half;
    } else if (t >= 70.0) {
      ++second_half;
    }
  }
  const double rate1 = static_cast<double>(first_half) / 55.0;
  const double rate2 = static_cast<double>(second_half) / 55.0;
  EXPECT_NEAR(rate2 / rate1, 2.0, 0.3);
}

TEST(AdaptiveTunerTest, GrowsStarvedPool) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{200, 4, 20};  // starved Tomcat threads
  // 5000 users demand ~660 req/s; Little gives L ~ 7+ per Tomcat, well above
  // the 4 configured threads, so the controller must grow the pool.
  Testbed bed(cfg, quick_client(5000, 90.0));
  AdaptiveTuner tuner(bed);
  tuner.start();
  bed.run();
  EXPECT_GT(bed.tomcats()[0]->thread_pool().capacity(), 4u);
  EXPECT_FALSE(tuner.actions().empty());
}

TEST(AdaptiveTunerTest, ShrinksIdlePool) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{400, 200, 200};  // wildly over-allocated
  Testbed bed(cfg, quick_client(1500, 90.0));
  AdaptiveTuner tuner(bed);
  tuner.start();
  bed.run();
  EXPECT_LT(bed.tomcats()[0]->thread_pool().capacity(), 200u);
  EXPECT_LT(bed.tomcats()[0]->connection_pool().capacity(), 200u);
}

TEST(AdaptiveTunerTest, RespectsBounds) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{400, 200, 200};
  Testbed bed(cfg, quick_client(300, 90.0));  // nearly idle system
  AdaptiveConfig acfg;
  acfg.min_pool = 8;
  acfg.max_pool = 64;
  AdaptiveTuner tuner(bed, acfg);
  tuner.start();
  bed.run();
  for (const auto& t : bed.tomcats()) {
    EXPECT_GE(t->thread_pool().capacity(), 8u);
    EXPECT_LE(t->thread_pool().capacity(), 64u);
  }
  for (const auto& a : tuner.actions()) {
    EXPECT_GE(a.to, 8u);
    EXPECT_LE(a.to, 64u);
  }
}

TEST(AdaptiveTunerTest, SyncsJvmLiveThreads) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{400, 200, 200};
  Testbed bed(cfg, quick_client(1500, 90.0));
  AdaptiveTuner tuner(bed);
  tuner.start();
  bed.run();
  for (const auto& t : bed.tomcats()) {
    EXPECT_EQ(t->jvm().live_threads(),
              t->thread_pool().capacity() + t->connection_pool().capacity());
  }
  std::size_t conns = 0;
  for (const auto& t : bed.tomcats()) conns += t->connection_pool().capacity();
  EXPECT_EQ(bed.cjdbcs()[0]->jvm().live_threads(), conns);
}

TEST(AdaptiveTunerTest, DeadbandSuppressesChurn) {
  TestbedConfig cfg = TestbedConfig::defaults();
  cfg.soft = SoftConfig{100, 20, 20};
  Testbed bed(cfg, quick_client(1500, 120.0));
  AdaptiveConfig acfg;
  acfg.deadband = 10.0;  // effectively freeze
  AdaptiveTuner tuner(bed, acfg);
  tuner.start();
  bed.run();
  EXPECT_TRUE(tuner.actions().empty());
  EXPECT_EQ(bed.tomcats()[0]->thread_pool().capacity(), 20u);
}

TEST(AdaptiveTunerTest, ImprovesOverAllocatedElasticRun) {
  // On a bursty profile, adapting from a liberal start must not lose to
  // staying liberal.
  auto run_once = [](bool adaptive) {
    TestbedConfig cfg = TestbedConfig::defaults();
    cfg.hw = HardwareConfig{1, 4, 1, 4};
    cfg.soft = SoftConfig{400, 200, 200};
    workload::ClientConfig client = quick_client(7000, 150.0);
    Testbed bed(cfg, client);
    bed.farm().set_load_schedule({{0.0, 2500}, {60.0, 7000}, {110.0, 4000}});
    AdaptiveTuner tuner(bed);
    if (adaptive) tuner.start();
    bed.run();
    return metrics::SlaModel(1.0)
        .split(bed.farm().response_times(), client.runtime_s)
        .goodput;
  };
  const double static_goodput = run_once(false);
  const double adaptive_goodput = run_once(true);
  EXPECT_GT(adaptive_goodput, static_goodput * 1.02);
}

}  // namespace
}  // namespace softres::exp
