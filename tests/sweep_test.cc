#include "exp/sweep.h"

#include <gtest/gtest.h>

namespace softres::exp {
namespace {

TEST(WorkloadRangeTest, InclusiveArithmetic) {
  EXPECT_EQ(workload_range(1000, 3000, 1000),
            (std::vector<std::size_t>{1000, 2000, 3000}));
  EXPECT_EQ(workload_range(5, 5, 1), (std::vector<std::size_t>{5}));
  // Step overshooting the bound stops before it.
  EXPECT_EQ(workload_range(10, 25, 10), (std::vector<std::size_t>{10, 20}));
}

TEST(SweepTest, RunsEveryWorkloadPoint) {
  TestbedConfig cfg = TestbedConfig::defaults();
  // 10x demands so trials are cheap.
  cfg.demands.tomcat_base_s *= 10.0;
  cfg.demands.cjdbc_per_query_s *= 10.0;
  cfg.demands.mysql_per_query_s *= 10.0;
  ExperimentOptions opts;
  opts.client.ramp_up_s = 5.0;
  opts.client.runtime_s = 15.0;
  opts.client.ramp_down_s = 2.0;
  Experiment e(cfg, opts);

  const auto workloads = workload_range(100, 300, 100);
  const auto results = sweep_workload(e, SoftConfig{50, 10, 10}, workloads);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].users, workloads[i]);
    EXPECT_GT(results[i].throughput, 0.0);
  }
  // Below saturation throughput grows with population.
  EXPECT_GT(results[2].throughput, results[0].throughput);

  EXPECT_NEAR(max_throughput(results), results[2].throughput, 1e-9);
  EXPECT_GE(max_goodput(results, 2.0), max_goodput(results, 0.2));
}

TEST(SweepTest, EmptyInputs) {
  EXPECT_EQ(max_throughput({}), 0.0);
  EXPECT_EQ(max_goodput({}, 1.0), 0.0);
}

}  // namespace
}  // namespace softres::exp
