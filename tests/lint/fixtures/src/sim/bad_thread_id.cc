// Fixture: SR006 — scheduler- and address-space-dependent values.
// Expected: SR006 at the two marked lines; the <thread> include and the
// thread-id line also trip SR005 (concurrency tokens banned in src/sim).
#include <cstdint>
#include <thread>

namespace softres_fixture {

unsigned long key_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) * 31u;  // SR006 expected here
}

unsigned long run_key() {
  return std::this_thread::get_id() == std::thread::id()  // SR006 + SR005
             ? 0u
             : 1u;
}

}  // namespace softres_fixture
