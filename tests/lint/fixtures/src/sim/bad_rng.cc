// Fixture: SR001 — std:: random machinery in the sim domain.
// Expected findings: SR001 at the three marked lines.
#include <random>  // SR001 expected here

namespace softres_fixture {

double draw() {
  std::random_device rd;              // SR001 expected here
  std::mt19937 gen(rd());             // SR001 expected here (both tokens)
  return static_cast<double>(gen());
}

}  // namespace softres_fixture
