// Fixture: SR005 — concurrency primitives in a single-threaded-per-trial
// domain (src/core). Expected findings: SR005 on both includes, the member
// declaration, and the lock_guard line (four findings).
#include <mutex>   // SR005 expected here
#include <atomic>  // SR005 expected here

namespace softres_fixture {

struct Shared {
  std::mutex mu;                             // (same token as the include)
  int counter = 0;
};

void bump(Shared& s) {
  std::lock_guard<std::mutex> lock(s.mu);    // SR005 expected here
  ++s.counter;
}

}  // namespace softres_fixture
