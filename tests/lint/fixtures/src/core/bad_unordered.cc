// Fixture: SR003 — hash-order-dependent iteration feeding a result.
// Expected findings: SR003 at the two marked lines. The declarations and the
// find() lookup are NOT violations (lookups are order-independent).
#include <string>
#include <unordered_map>
#include <vector>

namespace softres_fixture {

std::vector<std::string> report() {
  std::unordered_map<std::string, double> totals;
  totals["a"] = 1.0;
  std::vector<std::string> out;
  for (const auto& kv : totals) {            // SR003 expected here
    out.push_back(kv.first);
  }
  auto it = totals.begin();                  // SR003 expected here
  (void)it;
  auto hit = totals.find("a");               // ok: point lookup
  (void)hit;
  return out;
}

}  // namespace softres_fixture
