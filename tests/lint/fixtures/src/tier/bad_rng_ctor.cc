// Fixture: SR004 — sim::Rng constructed outside src/sim with an ad-hoc
// seed instead of one derived via RunContext::derive_seed.
// Expected findings: SR004 at the two marked lines. The reference binding
// and the by-value parameter are NOT constructions.
namespace sim {
class Rng;
}

namespace softres_fixture {

void consume(sim::Rng& rng);
void take_by_value_ok(int x);

void build() {
  sim::Rng local(123);                       // SR004 expected here
  consume(local);
}

int temporary() { return sizeof(sim::Rng(42)); }  // SR004 expected here

}  // namespace softres_fixture
