// Fixture: SR007 — std::function in a per-event hot path (src/tier).
// Expected findings: SR007 at the three marked lines. The InlineCallback
// member, the comment mention, and the SOFTRES_LINT_ALLOW'd cold path must
// NOT fire.
#include <functional>

namespace sim {
class InlineCallback;
}

namespace softres_fixture {

// std::function<void()> in a comment must not fire.
struct Server {
  std::function<void()> on_complete;          // SR007 expected here
  sim::InlineCallback* ok_member;
};

void dispatch(const std::function<int(int)>& fn);  // SR007 expected here

void hot() {
  auto cb = std::function<void()>([] {});     // SR007 expected here
  (void)cb;
}

void cold_report() {
  // SOFTRES_LINT_ALLOW(SR007: once-per-trial report sink, not per-event)
  std::function<void()> sink;
  (void)sink;
}

}  // namespace softres_fixture
