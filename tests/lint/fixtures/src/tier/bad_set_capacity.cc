// Fixture: SR010 — direct Pool::set_capacity outside the sanctioned resize
// paths (src/soft, src/exp/adaptive*, src/core/governor*). Live resizes must
// flow through a registered soft::ResizablePoolSet controller so drain
// accounting, capacity epochs and the JVM-sync hooks stay coherent.
// Expected findings: SR010 at the two marked lines. The comment mention, the
// near-miss identifier, and the allowed line produce nothing.
struct Pool;

namespace softres_fixture {

void resize_directly(Pool* pool) {
  pool->set_capacity(64);  // SR010 expected here (line 12)
}

void resize_inline(Pool& pool) { pool.set_capacity(8); }  // SR010 expected

// set_capacity mentioned in a comment does not fire, and identifiers that
// merely contain the substring (set_capacity_marker) are not the bare token.
int set_capacity_marker = 0;

// SOFTRES_LINT_ALLOW(SR010: fixture demonstrates the escape hatch)
void allowed(Pool* pool) { pool->set_capacity(2); }

}  // namespace softres_fixture
