// Fixture: SR009 — cycle-counter intrinsics in sim-reachable code. The
// profiler TU (src/support/prof.h) and src/obs are the only homes for
// machine timing; a tier model must never read the TSC directly, because an
// un-calibrated stamp bypasses obs::Profiler's attribution entirely.
// Expected findings: SR009 at the three marked lines. The comment mention,
// the near-miss identifier, and the allowed line produce nothing.
namespace softres_fixture {

unsigned long long stamp() {
  return __builtin_ia32_rdtsc();  // SR009 expected here (line 10)
}

unsigned long long stamp2() { return __rdtsc(); }  // SR009 expected here

// rdtsc mentioned in a comment does not fire, and identifiers that merely
// contain the substring (rdtsc_calibration_note) are not the bare token.
int rdtsc_calibration_note = 0;

unsigned long long portable() {
  return __builtin_readcyclecounter();  // SR009 expected here (line 20)
}

// SOFTRES_LINT_ALLOW(SR009: fixture demonstrates the escape hatch)
unsigned long long allowed() { return __rdtscp(); }

}  // namespace softres_fixture
