// Fixture: SR008 — stream machinery in a src/obs diagnoser file. Detectors
// return structured Diagnosis data; obs/report.h does the rendering.
#include <iostream>
#include <sstream>
#include <cstdio>

namespace softres_fixture {

void dump_verdict() {
  std::cout << "kSoftUnderAlloc";
}

void render(std::ostream& os) { os << 1; }

// SOFTRES_LINT_ALLOW(SR008: demonstrating the escape hatch)
std::ostringstream allowed_buffer;

void log_line() { printf("diagnosis\n"); }

}  // namespace softres_fixture
