// Fixture: clean — wall clocks are permitted in src/obs (exporters may
// timestamp the files they write). Expected findings: none.
#include <chrono>

namespace softres_fixture {

long export_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace softres_fixture
