// Fixture: clean — stream writes are fine in src/obs files *outside* the
// diagnoser/timeline scope: report rendering and the exporters live here.
#include <ostream>

namespace softres_fixture {

void write_report(std::ostream& os) { os << "<html></html>"; }

}  // namespace softres_fixture
