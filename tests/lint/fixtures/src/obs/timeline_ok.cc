// Fixture: clean — a timeline file labelling evidence with snprintf into a
// buffer, which SR008 permits (no stream machinery involved).
#include <cstdio>
#include <string>

namespace softres_fixture {

std::string label(double from, double to) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.0f s, %.0f s]", from, to);
  return std::string(buf);
}

}  // namespace softres_fixture
