// Fixture: SR002 — wall-clock reads in src/ outside src/obs.
// Expected findings: SR002 at the three marked lines.
#include <chrono>
#include <ctime>

namespace softres_fixture {

long stamp() {
  auto now = std::chrono::system_clock::now();        // SR002 expected here
  auto tick = std::chrono::steady_clock::now();       // SR002 expected here
  std::time_t t = std::time(nullptr);                 // SR002 expected here
  (void)now;
  (void)tick;
  return static_cast<long>(t);
}

}  // namespace softres_fixture
