// Fixture: clean — identifiers that merely contain banned tokens, banned
// tokens inside comments or string literals, and Rng usage patterns that are
// not constructions. Pins the zero-false-positive requirement.
// Expected findings: none.
#include <string>

namespace sim {
class Rng;
}

namespace softres_fixture {

// std::random_device and system_clock in a comment are fine.
struct Pools {
  int threads_active = 0;     // 'thread' inside a longer identifier
  double thread_exponent = 0; // ditto
  double mean_wait_time() const { return 0.0; }  // ...time( is a member call
};

void consume(sim::Rng& rng);          // reference parameter, no construction
void pass_through(sim::Rng rng);      // by-value parameter, no construction

std::string describe() {
  return "uses std::rand and steady_clock";  // inside a string literal
}

double operand(double x) { return x; }  // 'rand' inside a longer identifier

}  // namespace softres_fixture
