// Fixture: SR015 — ad-hoc quantile selection outside the stats homes
// (sim::SampleSet via src/sim, src/metrics and src/obs).
#include <algorithm>
#include <vector>

namespace softres_fixture {

double p99(std::vector<double> xs) {
  auto nth = xs.begin() + static_cast<long>(0.99 * xs.size());
  std::nth_element(xs.begin(), nth, xs.end());  // SR015 expected here
  return *nth;
}

std::vector<double> top_k(std::vector<double> xs, std::size_t k) {
  std::partial_sort(xs.begin(), xs.begin() + k, xs.end());  // SR015 here
  std::vector<double> out(k);
  std::partial_sort_copy(xs.begin(), xs.end(),  // SR015 expected here
                         out.begin(), out.end());
  return out;
}

}  // namespace softres_fixture
