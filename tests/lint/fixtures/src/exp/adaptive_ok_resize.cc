// Fixture: clean — src/exp/adaptive* is a sanctioned resize path (the
// AdaptiveTuner), so SR010 does not fire on its set_capacity calls.
// Expected findings: none.
struct Pool;

namespace softres_fixture {

void tune(Pool* pool) { pool->set_capacity(16); }

}  // namespace softres_fixture
