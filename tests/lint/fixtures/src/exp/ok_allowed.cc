// Fixture: clean — SOFTRES_LINT_ALLOW suppresses on the same line and from
// the line directly above. Expected findings: none.
namespace sim {
class Rng;
}

namespace softres_fixture {

void build() {
  sim::Rng local(7);  // SOFTRES_LINT_ALLOW(SR004: fixture, seed is derived)
  (void)&local;
}

void build_above() {
  // SOFTRES_LINT_ALLOW(SR004: fixture, annotation on the preceding line)
  sim::Rng local(9);
  (void)&local;
}

}  // namespace softres_fixture
