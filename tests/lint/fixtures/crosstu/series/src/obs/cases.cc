// SR013 fixture: one typo'd lookup, one orphan registration; the exact and
// fragment-compatible lookups must stay silent.

namespace fix {

struct Str {
  Str(const char* s);
};
Str operator+(const Str& a, const char* b);

struct Sampler {
  void add_probe(const Str& name, int fn);
};
struct Registry {
  void counter(const Str& name);
};
struct Timeline {
  void reader(const Str& name);
  void track(const Str& name);
};

void wire(Sampler& sampler, Registry& reg, Timeline& tl, const Str& prefix) {
  sampler.add_probe("cpu_util_pct", 0);
  sampler.add_probe(prefix + ".processed", 1);
  reg.counter("orphan.series");
  tl.reader("cpu_util_pct");
  tl.track("node0.processed");
  tl.track("cpu_util_pc");
}

}  // namespace fix
