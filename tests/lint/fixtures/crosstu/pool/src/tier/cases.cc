// SR012 fixture: one leaked grant, one early return while holding, one raw
// release with no acquire in scope; the ok cases must stay silent.

namespace fix {

struct Pool {
  void acquire(int cb);
  void release();
};

struct Guard {
  void adopt(Pool& p);
};

struct Req {
  bool bad = false;
  Guard guard;
};

void use(Req* r);
int make_cb();

void leak_case(Pool& workers, Req* r) {
  workers.acquire([r] {
    use(r);
  });
}

void early_return_case(Pool& threads, Req* r) {
  threads.acquire([r, &threads] {
    if (r->bad) {
      return;
    }
    threads.release();
  });
}

void raw_release_case(Pool& conns) {
  conns.release();
}

void ok_adopt_case(Pool& workers, Req* r) {
  workers.acquire([r, &workers] {
    r->guard.adopt(workers);
    use(r);
  });
}

void ok_release_case(Pool& workers, Req* r) {
  workers.acquire([r, &workers] {
    use(r);
    workers.release();
  });
}

void ok_non_lambda_case(Pool& workers) {
  workers.acquire(make_cb());
}

}  // namespace fix
