#pragma once

namespace fix {
inline int side_value() { return 2; }
}  // namespace fix
