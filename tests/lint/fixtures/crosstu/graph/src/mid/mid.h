#pragma once

#include "base/base.h"

namespace fix {
inline int mid_value() { return base_value() + 1; }
}  // namespace fix
