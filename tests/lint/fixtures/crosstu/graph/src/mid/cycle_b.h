#pragma once

#include "mid/cycle_a.h"

namespace fix {
inline int cycle_b_value() { return 2; }
}  // namespace fix
