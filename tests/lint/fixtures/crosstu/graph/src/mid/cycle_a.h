#pragma once

#include "mid/cycle_b.h"

namespace fix {
inline int cycle_a_value() { return 1; }
}  // namespace fix
