#pragma once

#include "side/side.h"

namespace fix {
inline int bad_side_value() { return side_value() + 1; }
}  // namespace fix
