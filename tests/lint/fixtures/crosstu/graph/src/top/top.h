#pragma once

#include "mid/mid.h"

namespace fix {
inline int top_value() { return mid_value() + 1; }
}  // namespace fix
