#pragma once

#include "top/top.h"

namespace fix {
inline int bad_up_value() { return top_value() + 1; }
}  // namespace fix
