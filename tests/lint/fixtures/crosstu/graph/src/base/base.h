#pragma once

namespace fix {
inline int base_value() { return 1; }
}  // namespace fix
