// Parameterized property sweeps on the processor-sharing CPU model: the
// invariants must hold for any (cores, jobs, demand-pattern) combination.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "hw/cpu.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace softres::hw {
namespace {

using Param = std::tuple<unsigned /*cores*/, int /*jobs*/, double /*mean*/>;

class CpuPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(CpuPropertyTest, WorkConservationAndMakespan) {
  const auto& [cores, jobs, mean_demand] = GetParam();
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", cores);
  sim::Rng rng(static_cast<std::uint64_t>(jobs) * 7919u + cores);

  double total = 0.0;
  double max_demand = 0.0;
  int completed = 0;
  for (int i = 0; i < jobs; ++i) {
    const double d = rng.exponential(mean_demand) + 1e-6;
    total += d;
    max_demand = std::max(max_demand, d);
    cpu.submit(d, [&] { ++completed; });
  }
  sim.run();

  EXPECT_EQ(completed, jobs);
  // Work conservation: exactly the submitted demand was executed.
  EXPECT_NEAR(cpu.work_done(), total, 1e-6 * total + 1e-9);
  // Makespan bounds: no faster than total/cores or the longest job; no
  // slower than serial execution.
  const double lower = std::max(total / cores, max_demand);
  EXPECT_GE(sim.now() + 1e-9, lower);
  EXPECT_LE(sim.now(), total + 1e-9);
  EXPECT_EQ(cpu.jobs_completed(), static_cast<std::uint64_t>(jobs));
}

TEST_P(CpuPropertyTest, BusyTimeNeverExceedsCapacity) {
  const auto& [cores, jobs, mean_demand] = GetParam();
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", cores);
  sim::Rng rng(1234u + cores);
  for (int i = 0; i < jobs; ++i) {
    // Staggered arrivals.
    const double at = rng.uniform(0.0, 1.0);
    const double d = rng.exponential(mean_demand) + 1e-6;
    sim.schedule(at, [&cpu, d] { cpu.submit(d, [] {}); });
  }
  sim.run();
  EXPECT_LE(cpu.busy_core_seconds(),
            static_cast<double>(cores) * sim.now() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1, 7, 64),
                       ::testing::Values(0.001, 0.1)),
    [](const auto& param_info) {
      return "cores" + std::to_string(std::get<0>(param_info.param)) + "_jobs" +
             std::to_string(std::get<1>(param_info.param)) + "_mean" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 1000));
    });

// PS fairness: under continuous overload, two streams of equal-demand jobs
// complete at equal rates regardless of submission interleaving.
TEST(CpuFairnessTest, EqualStreamsProgressEqually) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  int done_a = 0, done_b = 0;
  std::function<void()> feed_a = [&] {
    cpu.submit(0.01, [&] {
      ++done_a;
      feed_a();
    });
  };
  std::function<void()> feed_b = [&] {
    cpu.submit(0.01, [&] {
      ++done_b;
      feed_b();
    });
  };
  feed_a();
  feed_b();
  sim.run_until(10.0);
  EXPECT_GT(done_a, 100);
  EXPECT_NEAR(static_cast<double>(done_a), static_cast<double>(done_b),
              2.0);
}

// Freeze interleaving: total freeze time equals the sum of disjoint freezes
// and work resumes exactly where it stopped.
TEST(CpuFreezeProperty, RepeatedFreezesAccumulate) {
  sim::Simulator sim;
  Cpu cpu(sim, "cpu", 1);
  double done_at = -1.0;
  cpu.submit(1.0, [&] { done_at = sim.now(); });
  for (int i = 0; i < 5; ++i) {
    sim.schedule(0.1 + 0.3 * i, [&] { cpu.freeze(0.1); });
  }
  sim.run();
  EXPECT_NEAR(cpu.freeze_core_seconds(), 0.5, 1e-9);
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

}  // namespace
}  // namespace softres::hw
