#include "metrics/csv.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace softres::metrics {
namespace {

TEST(CsvTest, SeriesColumnsAligned) {
  sim::TimeSeries a{"cpu", {1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}};
  sim::TimeSeries b{"gc", {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}};
  std::ostringstream os;
  write_series_csv(os, {&a, &b});
  EXPECT_EQ(os.str(),
            "time,cpu,gc\n1,10,1\n2,20,2\n3,30,3\n");
}

TEST(CsvTest, ShorterSeriesPadded) {
  sim::TimeSeries a{"x", {1.0, 2.0}, {5.0, 6.0}};
  sim::TimeSeries b{"y", {1.0}, {7.0}};
  std::ostringstream os;
  write_series_csv(os, {&a, &b});
  EXPECT_EQ(os.str(), "time,x,y\n1,5,7\n2,6,\n");
}

TEST(CsvTest, XyColumns) {
  std::ostringstream os;
  write_xy_csv(os, "workload", {5000.0, 6000.0},
               {{"a", {1.0, 2.0}}, {"b", {3.0, 4.0}}});
  EXPECT_EQ(os.str(), "workload,a,b\n5000,1,3\n6000,2,4\n");
}

TEST(CsvTest, EnvDirDisabledByDefault) {
  ::unsetenv("SOFTRES_CSV_DIR");
  EXPECT_TRUE(csv_dir_from_env().empty());
  EXPECT_FALSE(export_csv("", "x.csv", [](std::ostream&) {}));
}

TEST(CsvTest, ExportWritesFile) {
  ::setenv("SOFTRES_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(csv_dir_from_env(), "/tmp");
  ::unsetenv("SOFTRES_CSV_DIR");
  const std::string name = "softres_csv_test.csv";
  ASSERT_TRUE(export_csv("/tmp", name,
                         [](std::ostream& os) { os << "hello\n"; }));
  std::ifstream in("/tmp/" + name);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello");
  std::remove(("/tmp/" + name).c_str());
}

TEST(CsvTest, ExportFailsOnBadDirectory) {
  EXPECT_FALSE(export_csv("/nonexistent_dir_softres", "x.csv",
                          [](std::ostream&) {}));
}

}  // namespace
}  // namespace softres::metrics
