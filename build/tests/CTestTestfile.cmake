# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/distributions_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/disk_link_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tier_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/ops_laws_test[1]_include.cmake")
include("/root/repo/build/tests/intervention_test[1]_include.cmake")
include("/root/repo/build/tests/bottleneck_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_property_test[1]_include.cmake")
include("/root/repo/build/tests/pool_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
