file(REMOVE_RECURSE
  "CMakeFiles/intervention_test.dir/intervention_test.cc.o"
  "CMakeFiles/intervention_test.dir/intervention_test.cc.o.d"
  "intervention_test"
  "intervention_test.pdb"
  "intervention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intervention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
