file(REMOVE_RECURSE
  "CMakeFiles/pool_property_test.dir/pool_property_test.cc.o"
  "CMakeFiles/pool_property_test.dir/pool_property_test.cc.o.d"
  "pool_property_test"
  "pool_property_test.pdb"
  "pool_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
