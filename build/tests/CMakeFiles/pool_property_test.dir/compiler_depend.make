# Empty compiler generated dependencies file for pool_property_test.
# This may be replaced when dependencies are built.
