file(REMOVE_RECURSE
  "CMakeFiles/ops_laws_test.dir/ops_laws_test.cc.o"
  "CMakeFiles/ops_laws_test.dir/ops_laws_test.cc.o.d"
  "ops_laws_test"
  "ops_laws_test.pdb"
  "ops_laws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_laws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
