# Empty dependencies file for ops_laws_test.
# This may be replaced when dependencies are built.
