# Empty dependencies file for disk_link_test.
# This may be replaced when dependencies are built.
