file(REMOVE_RECURSE
  "CMakeFiles/disk_link_test.dir/disk_link_test.cc.o"
  "CMakeFiles/disk_link_test.dir/disk_link_test.cc.o.d"
  "disk_link_test"
  "disk_link_test.pdb"
  "disk_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
