file(REMOVE_RECURSE
  "libsoftres_jvm.a"
)
