# Empty dependencies file for softres_jvm.
# This may be replaced when dependencies are built.
