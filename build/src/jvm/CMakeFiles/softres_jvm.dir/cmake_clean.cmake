file(REMOVE_RECURSE
  "CMakeFiles/softres_jvm.dir/jvm.cc.o"
  "CMakeFiles/softres_jvm.dir/jvm.cc.o.d"
  "libsoftres_jvm.a"
  "libsoftres_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
