file(REMOVE_RECURSE
  "libsoftres_core.a"
)
