# Empty dependencies file for softres_core.
# This may be replaced when dependencies are built.
