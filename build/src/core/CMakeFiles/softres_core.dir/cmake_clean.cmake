file(REMOVE_RECURSE
  "CMakeFiles/softres_core.dir/allocation.cc.o"
  "CMakeFiles/softres_core.dir/allocation.cc.o.d"
  "CMakeFiles/softres_core.dir/bottleneck.cc.o"
  "CMakeFiles/softres_core.dir/bottleneck.cc.o.d"
  "CMakeFiles/softres_core.dir/intervention.cc.o"
  "CMakeFiles/softres_core.dir/intervention.cc.o.d"
  "CMakeFiles/softres_core.dir/runner.cc.o"
  "CMakeFiles/softres_core.dir/runner.cc.o.d"
  "libsoftres_core.a"
  "libsoftres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
