
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/softres_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/softres_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/bottleneck.cc" "src/core/CMakeFiles/softres_core.dir/bottleneck.cc.o" "gcc" "src/core/CMakeFiles/softres_core.dir/bottleneck.cc.o.d"
  "/root/repo/src/core/intervention.cc" "src/core/CMakeFiles/softres_core.dir/intervention.cc.o" "gcc" "src/core/CMakeFiles/softres_core.dir/intervention.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/softres_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/softres_core.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softres_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
