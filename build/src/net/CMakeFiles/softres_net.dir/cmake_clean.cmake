file(REMOVE_RECURSE
  "CMakeFiles/softres_net.dir/tcp.cc.o"
  "CMakeFiles/softres_net.dir/tcp.cc.o.d"
  "libsoftres_net.a"
  "libsoftres_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
