# Empty dependencies file for softres_net.
# This may be replaced when dependencies are built.
