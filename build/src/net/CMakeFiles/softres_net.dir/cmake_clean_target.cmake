file(REMOVE_RECURSE
  "libsoftres_net.a"
)
