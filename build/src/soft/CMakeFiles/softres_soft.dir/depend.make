# Empty dependencies file for softres_soft.
# This may be replaced when dependencies are built.
