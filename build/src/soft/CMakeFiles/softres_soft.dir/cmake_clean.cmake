file(REMOVE_RECURSE
  "CMakeFiles/softres_soft.dir/pool.cc.o"
  "CMakeFiles/softres_soft.dir/pool.cc.o.d"
  "CMakeFiles/softres_soft.dir/pool_monitor.cc.o"
  "CMakeFiles/softres_soft.dir/pool_monitor.cc.o.d"
  "libsoftres_soft.a"
  "libsoftres_soft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_soft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
