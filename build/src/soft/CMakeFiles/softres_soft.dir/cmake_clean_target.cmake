file(REMOVE_RECURSE
  "libsoftres_soft.a"
)
