
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soft/pool.cc" "src/soft/CMakeFiles/softres_soft.dir/pool.cc.o" "gcc" "src/soft/CMakeFiles/softres_soft.dir/pool.cc.o.d"
  "/root/repo/src/soft/pool_monitor.cc" "src/soft/CMakeFiles/softres_soft.dir/pool_monitor.cc.o" "gcc" "src/soft/CMakeFiles/softres_soft.dir/pool_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softres_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
