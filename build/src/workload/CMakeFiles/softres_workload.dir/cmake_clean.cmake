file(REMOVE_RECURSE
  "CMakeFiles/softres_workload.dir/client_farm.cc.o"
  "CMakeFiles/softres_workload.dir/client_farm.cc.o.d"
  "CMakeFiles/softres_workload.dir/rubbos.cc.o"
  "CMakeFiles/softres_workload.dir/rubbos.cc.o.d"
  "libsoftres_workload.a"
  "libsoftres_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
