file(REMOVE_RECURSE
  "libsoftres_workload.a"
)
