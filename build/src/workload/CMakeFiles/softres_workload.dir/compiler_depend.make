# Empty compiler generated dependencies file for softres_workload.
# This may be replaced when dependencies are built.
