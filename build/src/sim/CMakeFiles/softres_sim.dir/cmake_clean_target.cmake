file(REMOVE_RECURSE
  "libsoftres_sim.a"
)
