# Empty compiler generated dependencies file for softres_sim.
# This may be replaced when dependencies are built.
