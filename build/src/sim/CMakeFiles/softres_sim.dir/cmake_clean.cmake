file(REMOVE_RECURSE
  "CMakeFiles/softres_sim.dir/distributions.cc.o"
  "CMakeFiles/softres_sim.dir/distributions.cc.o.d"
  "CMakeFiles/softres_sim.dir/rng.cc.o"
  "CMakeFiles/softres_sim.dir/rng.cc.o.d"
  "CMakeFiles/softres_sim.dir/sampler.cc.o"
  "CMakeFiles/softres_sim.dir/sampler.cc.o.d"
  "CMakeFiles/softres_sim.dir/simulator.cc.o"
  "CMakeFiles/softres_sim.dir/simulator.cc.o.d"
  "CMakeFiles/softres_sim.dir/stats.cc.o"
  "CMakeFiles/softres_sim.dir/stats.cc.o.d"
  "libsoftres_sim.a"
  "libsoftres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
