file(REMOVE_RECURSE
  "CMakeFiles/softres_exp.dir/adaptive.cc.o"
  "CMakeFiles/softres_exp.dir/adaptive.cc.o.d"
  "CMakeFiles/softres_exp.dir/config.cc.o"
  "CMakeFiles/softres_exp.dir/config.cc.o.d"
  "CMakeFiles/softres_exp.dir/experiment.cc.o"
  "CMakeFiles/softres_exp.dir/experiment.cc.o.d"
  "CMakeFiles/softres_exp.dir/runner_adapter.cc.o"
  "CMakeFiles/softres_exp.dir/runner_adapter.cc.o.d"
  "CMakeFiles/softres_exp.dir/sweep.cc.o"
  "CMakeFiles/softres_exp.dir/sweep.cc.o.d"
  "CMakeFiles/softres_exp.dir/testbed.cc.o"
  "CMakeFiles/softres_exp.dir/testbed.cc.o.d"
  "libsoftres_exp.a"
  "libsoftres_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
