file(REMOVE_RECURSE
  "libsoftres_exp.a"
)
