# Empty dependencies file for softres_exp.
# This may be replaced when dependencies are built.
