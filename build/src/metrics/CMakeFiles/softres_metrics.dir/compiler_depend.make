# Empty compiler generated dependencies file for softres_metrics.
# This may be replaced when dependencies are built.
