file(REMOVE_RECURSE
  "CMakeFiles/softres_metrics.dir/csv.cc.o"
  "CMakeFiles/softres_metrics.dir/csv.cc.o.d"
  "CMakeFiles/softres_metrics.dir/sla.cc.o"
  "CMakeFiles/softres_metrics.dir/sla.cc.o.d"
  "CMakeFiles/softres_metrics.dir/table.cc.o"
  "CMakeFiles/softres_metrics.dir/table.cc.o.d"
  "libsoftres_metrics.a"
  "libsoftres_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
