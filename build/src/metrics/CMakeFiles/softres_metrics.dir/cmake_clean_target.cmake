file(REMOVE_RECURSE
  "libsoftres_metrics.a"
)
