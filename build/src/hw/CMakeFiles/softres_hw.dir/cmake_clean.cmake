file(REMOVE_RECURSE
  "CMakeFiles/softres_hw.dir/cpu.cc.o"
  "CMakeFiles/softres_hw.dir/cpu.cc.o.d"
  "CMakeFiles/softres_hw.dir/disk.cc.o"
  "CMakeFiles/softres_hw.dir/disk.cc.o.d"
  "CMakeFiles/softres_hw.dir/link.cc.o"
  "CMakeFiles/softres_hw.dir/link.cc.o.d"
  "CMakeFiles/softres_hw.dir/monitor.cc.o"
  "CMakeFiles/softres_hw.dir/monitor.cc.o.d"
  "CMakeFiles/softres_hw.dir/node.cc.o"
  "CMakeFiles/softres_hw.dir/node.cc.o.d"
  "libsoftres_hw.a"
  "libsoftres_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
