# Empty dependencies file for softres_hw.
# This may be replaced when dependencies are built.
