file(REMOVE_RECURSE
  "libsoftres_hw.a"
)
