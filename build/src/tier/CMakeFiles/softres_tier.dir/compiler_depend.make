# Empty compiler generated dependencies file for softres_tier.
# This may be replaced when dependencies are built.
