file(REMOVE_RECURSE
  "libsoftres_tier.a"
)
