file(REMOVE_RECURSE
  "CMakeFiles/softres_tier.dir/apache.cc.o"
  "CMakeFiles/softres_tier.dir/apache.cc.o.d"
  "CMakeFiles/softres_tier.dir/cjdbc.cc.o"
  "CMakeFiles/softres_tier.dir/cjdbc.cc.o.d"
  "CMakeFiles/softres_tier.dir/mysql.cc.o"
  "CMakeFiles/softres_tier.dir/mysql.cc.o.d"
  "CMakeFiles/softres_tier.dir/server.cc.o"
  "CMakeFiles/softres_tier.dir/server.cc.o.d"
  "CMakeFiles/softres_tier.dir/tomcat.cc.o"
  "CMakeFiles/softres_tier.dir/tomcat.cc.o.d"
  "libsoftres_tier.a"
  "libsoftres_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softres_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
