
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tier/apache.cc" "src/tier/CMakeFiles/softres_tier.dir/apache.cc.o" "gcc" "src/tier/CMakeFiles/softres_tier.dir/apache.cc.o.d"
  "/root/repo/src/tier/cjdbc.cc" "src/tier/CMakeFiles/softres_tier.dir/cjdbc.cc.o" "gcc" "src/tier/CMakeFiles/softres_tier.dir/cjdbc.cc.o.d"
  "/root/repo/src/tier/mysql.cc" "src/tier/CMakeFiles/softres_tier.dir/mysql.cc.o" "gcc" "src/tier/CMakeFiles/softres_tier.dir/mysql.cc.o.d"
  "/root/repo/src/tier/server.cc" "src/tier/CMakeFiles/softres_tier.dir/server.cc.o" "gcc" "src/tier/CMakeFiles/softres_tier.dir/server.cc.o.d"
  "/root/repo/src/tier/tomcat.cc" "src/tier/CMakeFiles/softres_tier.dir/tomcat.cc.o" "gcc" "src/tier/CMakeFiles/softres_tier.dir/tomcat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/softres_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/soft/CMakeFiles/softres_soft.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/softres_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/softres_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
