file(REMOVE_RECURSE
  "../bench/bench_mix"
  "../bench/bench_mix.pdb"
  "CMakeFiles/bench_mix.dir/bench_mix.cpp.o"
  "CMakeFiles/bench_mix.dir/bench_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
