file(REMOVE_RECURSE
  "../bench/bench_ablation_finwait"
  "../bench/bench_ablation_finwait.pdb"
  "CMakeFiles/bench_ablation_finwait.dir/bench_ablation_finwait.cpp.o"
  "CMakeFiles/bench_ablation_finwait.dir/bench_ablation_finwait.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_finwait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
