# Empty compiler generated dependencies file for bench_ablation_finwait.
# This may be replaced when dependencies are built.
