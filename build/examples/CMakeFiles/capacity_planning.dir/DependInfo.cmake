
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planning.cpp" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o" "gcc" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/softres_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/softres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/softres_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/softres_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/soft/CMakeFiles/softres_soft.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/softres_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/softres_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/softres_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/softres_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softres_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
