file(REMOVE_RECURSE
  "CMakeFiles/elastic_workload.dir/elastic_workload.cpp.o"
  "CMakeFiles/elastic_workload.dir/elastic_workload.cpp.o.d"
  "elastic_workload"
  "elastic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
