# Empty dependencies file for elastic_workload.
# This may be replaced when dependencies are built.
