file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_hunt.dir/bottleneck_hunt.cpp.o"
  "CMakeFiles/bottleneck_hunt.dir/bottleneck_hunt.cpp.o.d"
  "bottleneck_hunt"
  "bottleneck_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
