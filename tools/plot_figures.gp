# Plot the paper-figure CSVs produced by the benches.
#
#   SOFTRES_CSV_DIR=out ./build/bench/bench_fig2   (and fig5, fig6, ...)
#   gnuplot -e "dir='out'" tools/plot_figures.gp
#
# Produces PNGs next to the CSVs. Column layout: workload,<series...>
#
# The benches also drop end-of-run registry snapshots next to these sweeps
# (*.prom Prometheus text, *.metrics.csv flat metric,labels,kind,value
# rows — see bench_fig7_8). Those are per-instant tables, not series; plot
# them ad hoc, e.g.:
#   plot "< grep '^pool_util' out/fig8_wl7400_pool400.metrics.csv" \
#        using 0:4:xtic(2) with boxes.

if (!exists("dir")) dir = "."

set datafile separator ","
set terminal pngcairo size 900,540
set key autotitle columnhead
set key left bottom
set xlabel "Workload [# users]"
set grid

do_plot(name, ylab) = sprintf(\
  "set output '%s/%s.png'; set ylabel '%s'; \
   stats '%s/%s.csv' skip 1 nooutput; \
   plot for [i=2:STATS_columns] '%s/%s.csv' using 1:i with linespoints", \
  dir, name, ylab, dir, name, dir, name)

# Figure 2: goodput under three SLA thresholds.
if (system(sprintf("[ -f %s/fig2_goodput_0.5s.csv ] && echo 1 || echo 0", dir)) eq "1\n") {
  eval do_plot("fig2_goodput_0.5s", "Goodput [req/s] (0.5 s SLA)")
  eval do_plot("fig2_goodput_1.0s", "Goodput [req/s] (1 s SLA)")
  eval do_plot("fig2_goodput_2.0s", "Goodput [req/s] (2 s SLA)")
}

# Figure 5: conn-pool over-allocation.
if (system(sprintf("[ -f %s/fig5a_goodput.csv ] && echo 1 || echo 0", dir)) eq "1\n") {
  eval do_plot("fig5a_goodput", "Goodput [req/s] (2 s SLA)")
  eval do_plot("fig5b_cjdbc_cpu", "C-JDBC CPU [%]")
  eval do_plot("fig5c_gc_seconds", "JVM GC time [s]")
}

# Figure 6: Apache buffering.
if (system(sprintf("[ -f %s/fig6a_goodput.csv ] && echo 1 || echo 0", dir)) eq "1\n") {
  eval do_plot("fig6a_goodput", "Goodput [req/s] (2 s SLA)")
  eval do_plot("fig6b_cjdbc_cpu", "C-JDBC CPU [%]")
}
