# Validate an emitted Chrome trace_event file: it must parse as JSON, carry a
# non-empty traceEvents array, and its events must look like complete ("X")
# spans with the standard fields. Runs as the quickstart_trace_json_valid
# CTest (FIXTURES_REQUIRED on the quickstart smoke run).
#
# Usage: cmake -DTRACE_JSON=<file> -P tools/validate_trace_json.cmake
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED TRACE_JSON)
  message(FATAL_ERROR "pass -DTRACE_JSON=<file>")
endif()
if(NOT EXISTS "${TRACE_JSON}")
  message(FATAL_ERROR "trace file not found: ${TRACE_JSON}")
endif()

file(READ "${TRACE_JSON}" content)

string(JSON n ERROR_VARIABLE err LENGTH "${content}" traceEvents)
if(NOT err STREQUAL "NOTFOUND")
  message(FATAL_ERROR "not a valid trace JSON: ${err}")
endif()
if(n EQUAL 0)
  message(FATAL_ERROR "traceEvents is empty — tracing produced no spans")
endif()

string(JSON unit ERROR_VARIABLE err GET "${content}" displayTimeUnit)
if(NOT err STREQUAL "NOTFOUND" OR NOT unit STREQUAL "ms")
  message(FATAL_ERROR "displayTimeUnit missing or not 'ms'")
endif()

# The first event is a span: complete phase, named, with timestamps.
string(JSON ph GET "${content}" traceEvents 0 ph)
if(NOT ph STREQUAL "X")
  message(FATAL_ERROR "first traceEvent is not a complete ('X') event")
endif()
foreach(field name ts dur pid tid)
  string(JSON value ERROR_VARIABLE err GET "${content}" traceEvents 0 ${field})
  if(NOT err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "first traceEvent lacks '${field}': ${err}")
  endif()
endforeach()

# The tier "process" naming metadata must be present for Perfetto grouping.
math(EXPR last "${n} - 1")
string(JSON meta_name GET "${content}" traceEvents ${last} name)
string(JSON meta_ph GET "${content}" traceEvents ${last} ph)
if(NOT meta_name STREQUAL "process_name" OR NOT meta_ph STREQUAL "M")
  message(FATAL_ERROR "trailing process_name ('M') metadata missing")
endif()

message(STATUS "ok: ${n} trace events in ${TRACE_JSON}")
