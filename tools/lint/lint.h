#pragma once

// softres-lint: static checker for the determinism & soft-resource contract.
//
// The simulator's headline guarantee is that a sweep with SOFTRES_JOBS=N is
// bit-identical to the serial run. That holds only while simulation-reachable
// code draws entropy exclusively from sim::Rng streams derived via
// exp::RunContext::derive_seed, never reads wall clocks, and never lets
// address- or hash-order-dependent iteration feed a report. This checker
// enforces those rules textually (line-level token scan with comment/string
// stripping) so a violation fails the build long before it produces a subtly
// wrong Fig-4/Fig-5 curve. Compile-time poisoning in src/support/contract.h
// backstops the same rules for the worst offenders.
//
// Rules (see rule_table()):
//   SR001 banned-rng         std::rand/random_device/mt19937/... anywhere in
//                            sim-reachable code (src/, bench/, examples/)
//   SR002 wall-clock         system_clock/steady_clock/gettimeofday/... in
//                            src/ outside src/obs (obs may timestamp exports)
//   SR003 unordered-iter     iteration over std::unordered_{map,set} —
//                            hash-order-dependent, must not feed results
//   SR004 rng-construction   sim::Rng constructed outside src/sim and
//                            RunContext::derive_seed call sites
//   SR005 threading-in-sim   mutex/atomic/thread in src/sim + src/core,
//                            which are single-threaded per trial by contract
//   SR006 address-dependent  thread-id / pointer-to-integer hashing whose
//                            value differs across runs
//   SR007 std-function-hot-path  std::function in src/sim + src/tier per-
//                            event paths; use sim::InlineCallback
//   SR008 stream-writes-in-detector  stream tokens in the src/obs
//                            diagnoser/timeline files; detectors produce
//                            structured Diagnosis data and obs/report.h
//                            renders it
//   SR009 cycle-counter      rdtsc-family intrinsics or std::chrono timing
//                            outside the profiler TU (src/support/prof.h)
//                            and src/obs; obs::Profiler owns machine timing
//   SR010 direct-pool-resize Pool::set_capacity outside src/soft, the
//                            AdaptiveTuner (src/exp/adaptive*) and the
//                            Governor (src/core/governor*); live resizes
//                            flow through soft::ResizablePoolSet controllers
//
// Escape hatch: a line (or the line immediately above it) containing
// `SOFTRES_LINT_ALLOW(SRnnn: reason)` suppresses rule SRnnn there. Legitimate
// uses are rare and must say why — e.g. the ClientFarm master RNG, whose seed
// *is* the derived trial seed.

#include <string>
#include <vector>

namespace softres::lint {

/// Where a file sits in the determinism contract. Derived from its path
/// relative to the scan root, mirroring the repository layout.
enum class Domain {
  kSim,     // src/** except src/obs — fully simulation-reachable
  kObs,     // src/obs — sim-reachable but may export wall-clock timestamps
  kDriver,  // bench/, examples/ — entry points; seed contract still applies
  kExempt,  // tests/, tools/, third-party — not scanned by default
};

struct Finding {
  std::string file;  // path as given to the scanner
  int line = 0;      // 1-based
  std::string rule;  // "SR001" ... "SR006"
  std::string message;
  std::string excerpt;  // offending source line, trimmed
};

struct RuleInfo {
  std::string id;
  std::string name;
  std::string summary;
};

/// Static description of every rule, for --list-rules and docs.
const std::vector<RuleInfo>& rule_table();

/// Classify a repository-relative path ("src/sim/rng.cc"). Paths outside the
/// known layout are exempt.
Domain classify_path(const std::string& rel_path);

/// Scan one file's contents. `rel_path` decides the applicable rules; the
/// file is not read from disk (pass the contents), which keeps the core
/// testable on fixtures and independent of the filesystem.
std::vector<Finding> scan_file(const std::string& rel_path,
                               const std::string& contents);

/// Recursively scan `paths` (files or directories, relative to `root`) for
/// .h/.cc/.cpp files and collect findings. Exempt domains are skipped.
/// Returns findings sorted by (file, line, rule).
std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& paths,
                               std::vector<std::string>* errors = nullptr);

/// "file:line: [SRnnn] message" rendering used by the CLI and tests.
std::string format_finding(const Finding& f);

}  // namespace softres::lint
