#pragma once

// softres-lint: static checker for the determinism & soft-resource contract.
//
// The simulator's headline guarantee is that a sweep with SOFTRES_JOBS=N is
// bit-identical to the serial run. That holds only while simulation-reachable
// code draws entropy exclusively from sim::Rng streams derived via
// exp::RunContext::derive_seed, never reads wall clocks, and never lets
// address- or hash-order-dependent iteration feed a report. This checker
// enforces those rules so a violation fails the build long before it produces
// a subtly wrong Fig-4/Fig-5 curve. Compile-time poisoning in
// src/support/contract.h backstops the same rules for the worst offenders.
//
// Three passes, all built on the shared lexer (lexer.h — comments, strings,
// raw strings, preprocessor lines; no std::regex anywhere):
//   1. per-file token rules (SR001–SR010, SR015) on the stripped code lines;
//   2. an include-graph pass (SR011) checking every #include in src/ against
//      the declared layer DAG in tools/lint/layers.txt, plus cycle detection;
//   3. cross-TU semantic passes: SR012, a flow-sensitive (brace/return/throw
//      aware) Pool::acquire/release balance checker, and SR013, a registry /
//      timeline series-name cross-reference.
//
// Rules (see rule_table()):
//   SR001 banned-rng         std::rand/random_device/mt19937/... anywhere in
//                            scanned code (tests and tools included)
//   SR002 wall-clock         system_clock/steady_clock/gettimeofday/... in
//                            src/ outside src/obs (obs may timestamp exports)
//   SR003 unordered-iter     iteration over std::unordered_{map,set} —
//                            hash-order-dependent, must not feed results
//   SR004 rng-construction   sim::Rng constructed outside src/sim and
//                            RunContext::derive_seed call sites
//   SR005 threading-in-sim   mutex/atomic/thread in src/sim + src/core,
//                            which are single-threaded per trial by contract
//   SR006 address-dependent  thread-id / pointer-to-integer hashing whose
//                            value differs across runs
//   SR007 std-function-hot-path  std::function in src/sim + src/tier per-
//                            event paths; use sim::InlineCallback
//   SR008 stream-writes-in-detector  stream tokens in the src/obs
//                            diagnoser/timeline files; detectors produce
//                            structured Diagnosis data and obs/report.h
//                            renders it
//   SR009 cycle-counter      rdtsc-family intrinsics or std::chrono timing
//                            outside the profiler TU (src/support/prof.h)
//                            and src/obs; obs::Profiler owns machine timing
//   SR010 direct-pool-resize Pool::set_capacity outside src/soft, the
//                            AdaptiveTuner (src/exp/adaptive*) and the
//                            Governor (src/core/governor*); live resizes
//                            flow through soft::ResizablePoolSet controllers
//   SR011 layer-violation    #include edge that points up or sideways in the
//                            layer DAG (tools/lint/layers.txt), or an include
//                            cycle between files
//   SR012 pool-unit-leak     Pool::acquire grant that escapes its callback
//                            without being adopted into a soft::PoolGuard or
//                            released; early return/throw while holding; raw
//                            release with no acquire in scope
//   SR013 unknown-series     registry/timeline lookup of a series name no
//                            registration site produces (the silent-dead-
//                            detector class); never-read registrations are
//                            reported as notes
//   SR014 sarif-output       meta: SARIF 2.1.0 export of findings
//   SR015 adhoc-quantile     nth_element/partial_sort selection outside
//                            src/sim, src/metrics and src/obs; every
//                            reported percentile comes from sim::SampleSet's
//                            nearest-rank definition
//                            (--sarif out.sarif), consumed by CI to annotate
//                            PR diffs; not a scanning rule
//
// Escape hatch: a line (or the line immediately above it) containing
// `SOFTRES_LINT_ALLOW(SRnnn: reason)` suppresses rule SRnnn there. Legitimate
// uses are rare and must say why — e.g. the ClientFarm master RNG, whose seed
// *is* the derived trial seed.

#include <cstddef>
#include <string>
#include <vector>

namespace softres::lint {

/// Where a file sits in the determinism contract. Derived from its path
/// relative to the scan root, mirroring the repository layout.
enum class Domain {
  kSim,     // src/** except src/obs — fully simulation-reachable
  kObs,     // src/obs — sim-reachable but may export wall-clock timestamps
  kDriver,  // bench/, examples/ — entry points; seed contract still applies
  kTool,    // tools/ — the checker and CI utilities; determinism rules only
  kTest,    // tests/ — harness code; determinism rules only
  kExempt,  // src/support, third-party — not scanned
};

enum class Severity {
  kWarning,  // fails the build (exit 1)
  kNote,     // informational (SR013 never-read registrations)
};

struct Finding {
  std::string file;  // path as given to the scanner
  int line = 0;      // 1-based
  std::string rule;  // "SR001" ... "SR013"
  std::string message;
  std::string excerpt;  // offending source line, trimmed
  Severity severity = Severity::kWarning;
};

struct RuleInfo {
  std::string id;
  std::string name;
  std::string summary;
};

/// Static description of every rule, for --list-rules and docs.
const std::vector<RuleInfo>& rule_table();

/// Classify a repository-relative path ("src/sim/rng.cc"). Paths outside the
/// known layout are exempt.
Domain classify_path(const std::string& rel_path);

/// Scan one file's contents with the per-file rules (SR001–SR010).
/// `rel_path` decides the applicable rules; the file is not read from disk
/// (pass the contents), which keeps the core testable on fixtures and
/// independent of the filesystem.
std::vector<Finding> scan_file(const std::string& rel_path,
                               const std::string& contents);

/// Recursively scan `paths` (files or directories, relative to `root`) for
/// .h/.cc/.cpp files and collect per-file findings (SR001–SR010). Exempt
/// domains are skipped. Returns findings sorted by (file, line, rule).
std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& paths,
                               std::vector<std::string>* errors = nullptr);

/// Cross-TU analysis options.
struct Options {
  /// Layer DAG file for SR011. Empty = "<root>/tools/lint/layers.txt" when
  /// that exists, else the include-graph pass is skipped.
  std::string layers_file;
  /// Repository-relative path prefixes to skip entirely (fixtures, vendored
  /// code). Matched with generic '/' separators.
  std::vector<std::string> exclude_prefixes;
  /// Run the cross-TU passes (SR011–SR013) in addition to SR001–SR010.
  bool cross_tu = true;
};

/// Full analysis result. `findings` gate the build; `notes` are
/// informational and never affect the exit status.
struct Analysis {
  std::vector<Finding> findings;
  std::vector<Finding> notes;
  std::vector<std::string> errors;
  std::size_t files_scanned = 0;
};

/// The whole analyzer: per-file rules plus the include-graph and cross-TU
/// semantic passes over every file under `paths`. Findings and notes are
/// sorted by (file, line, rule).
Analysis analyze_tree(const std::string& root,
                      const std::vector<std::string>& paths,
                      const Options& options = {});

/// "file:line: [SRnnn] message" rendering used by the CLI and tests.
std::string format_finding(const Finding& f);

/// SR014: render an analysis as a SARIF 2.1.0 log (one run, the rule table
/// as reportingDescriptors, findings as warning results and notes as note
/// results with SRCROOT-relative locations).
std::string to_sarif(const Analysis& a);

/// GitHub-flavored markdown summary of an analysis, appended to
/// $GITHUB_STEP_SUMMARY by CI.
std::string to_markdown(const Analysis& a);

/// The default scan set (`src bench examples tools tests`) and the default
/// exclude list (lint test fixtures), shared by the CLI, the ctest gate and
/// the pre-commit hook.
const std::vector<std::string>& default_paths();
const std::vector<std::string>& default_excludes();

}  // namespace softres::lint
