# Doc-sync check: the README's lint rule listing must be exactly the output
# of `softres-lint --list-rules`, fenced between the lint-rules markers.
# Regenerate with:
#   ./build/tools/lint/softres-lint --list-rules   (paste between markers)
#
# Invoked by the softres_lint_docs ctest with -DLINT_BIN=... -DREADME=...

execute_process(
  COMMAND ${LINT_BIN} --list-rules
  OUTPUT_VARIABLE live
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "softres-lint --list-rules failed (rc=${rc})")
endif()

file(READ ${README} readme)
string(FIND "${readme}" "<!-- lint-rules:begin -->" begin_pos)
string(FIND "${readme}" "<!-- lint-rules:end -->" end_pos)
if(begin_pos EQUAL -1 OR end_pos EQUAL -1)
  message(FATAL_ERROR
    "README.md is missing the <!-- lint-rules:begin/end --> markers")
endif()

math(EXPR block_len "${end_pos} - ${begin_pos}")
string(SUBSTRING "${readme}" ${begin_pos} ${block_len} block)
# The block holds the marker line, a ``` fence, the listing, and a closing
# fence. Extract what sits between the fences.
string(FIND "${block}" "```\n" fence_open)
if(fence_open EQUAL -1)
  message(FATAL_ERROR "lint-rules block has no opening ``` fence")
endif()
math(EXPR content_start "${fence_open} + 4")
string(SUBSTRING "${block}" ${content_start} -1 rest)
string(FIND "${rest}" "```" fence_close)
if(fence_close EQUAL -1)
  message(FATAL_ERROR "lint-rules block has no closing ``` fence")
endif()
string(SUBSTRING "${rest}" 0 ${fence_close} documented)

if(NOT documented STREQUAL live)
  message(FATAL_ERROR
    "README lint rule table is out of date.\n"
    "Regenerate with `softres-lint --list-rules` and paste between the\n"
    "<!-- lint-rules:begin/end --> markers.\n"
    "---- documented ----\n${documented}\n"
    "---- live ----\n${live}")
endif()
