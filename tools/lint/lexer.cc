#include "lexer.h"

#include <cctype>

namespace softres::lint {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Raw-string literal prefixes: the '"' that follows one of these with no
/// gap opens R"delim(...)delim".
bool is_raw_prefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// Harvest SOFTRES_LINT_ALLOW(SRnnn[, SRnnn...]: reason) rule ids from a raw
/// source line (the annotation usually sits in a comment, so this runs on
/// the un-stripped text).
std::set<std::string> parse_allow(const std::string& raw_line) {
  std::set<std::string> out;
  static const std::string kMarker = "SOFTRES_LINT_ALLOW";
  std::size_t pos = 0;
  while ((pos = raw_line.find(kMarker, pos)) != std::string::npos) {
    std::size_t i = pos + kMarker.size();
    pos = i;
    while (i < raw_line.size() && (raw_line[i] == ' ' || raw_line[i] == '\t'))
      ++i;
    if (i >= raw_line.size() || raw_line[i] != '(') continue;
    const std::size_t close = raw_line.find(')', i);
    const std::string body =
        raw_line.substr(i + 1, close == std::string::npos ? std::string::npos
                                                          : close - i - 1);
    for (std::size_t j = 0; j + 4 < body.size(); ++j) {
      if (body[j] == 'S' && body[j + 1] == 'R' && is_digit(body[j + 2]) &&
          is_digit(body[j + 3]) && is_digit(body[j + 4])) {
        out.insert(body.substr(j, 5));
        j += 4;
      }
    }
  }
  return out;
}

/// Parse `#include <target>` / `#include "target"` from a raw line.
bool parse_include(const std::string& raw, IncludeDirective* out) {
  std::size_t i = 0;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (i >= raw.size() || raw[i] != '#') return false;
  ++i;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (raw.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (i >= raw.size()) return false;
  char close;
  if (raw[i] == '<') {
    close = '>';
    out->angled = true;
  } else if (raw[i] == '"') {
    close = '"';
    out->angled = false;
  } else {
    return false;
  }
  const std::size_t end = raw.find(close, i + 1);
  if (end == std::string::npos) return false;
  out->target = raw.substr(i + 1, end - i - 1);
  return true;
}

/// The whole lexer as a per-line state machine: block comments and raw
/// strings carry state across lines; everything else is line-local (ordinary
/// string/char literals do not span lines in practice, and an unterminated
/// one consumes the rest of its line — same degradation the previous
/// regex-based scanner had).
class Lexer {
 public:
  explicit Lexer(FileLex* out) : out_(out) {}

  void feed_line(const std::string& raw, int line_no) {
    line_ = &raw;
    line_no_ = line_no;
    code_.clear();
    token_end_in_code_ = std::string::npos;
    i_ = 0;
    if (in_raw_) continue_raw_string();
    while (i_ < raw.size()) {
      if (in_block_) {
        skip_block_comment();
        continue;
      }
      const char c = raw[i_];
      if (c == '/' && i_ + 1 < raw.size() && raw[i_ + 1] == '/') break;
      if (c == '/' && i_ + 1 < raw.size() && raw[i_ + 1] == '*') {
        in_block_ = true;
        i_ += 2;
        continue;
      }
      if (c == '"') {
        begin_string();
        continue;
      }
      if (c == '\'') {
        scan_char_literal();
        continue;
      }
      if (is_ident_start(c)) {
        scan_ident();
        continue;
      }
      if (is_digit(c)) {
        scan_number();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        code_.push_back(c);
        ++i_;
        continue;
      }
      scan_punct();
    }
    out_->code_lines.push_back(code_);
  }

 private:
  void emit(Token::Kind kind, std::string text) {
    out_->tokens.push_back(Token{kind, std::move(text), line_no_});
    token_end_in_code_ = code_.size();
  }

  void skip_block_comment() {
    const std::string& raw = *line_;
    while (i_ < raw.size()) {
      if (raw[i_] == '*' && i_ + 1 < raw.size() && raw[i_ + 1] == '/') {
        in_block_ = false;
        i_ += 2;
        return;
      }
      ++i_;
    }
  }

  void scan_ident() {
    const std::string& raw = *line_;
    const std::size_t start = i_;
    while (i_ < raw.size() && is_word_char(raw[i_])) ++i_;
    const std::string ident = raw.substr(start, i_ - start);
    code_.append(ident);
    emit(Token::Kind::kIdent, ident);
  }

  // pp-number-ish: digits, word chars (0x1f, 1e9f), '.', and digit
  // separators. An exponent sign after e/E/p/P stays in the token.
  void scan_number() {
    const std::string& raw = *line_;
    const std::size_t start = i_;
    while (i_ < raw.size()) {
      const char c = raw[i_];
      if (is_word_char(c) || c == '.') {
        ++i_;
        continue;
      }
      if (c == '\'' && i_ + 1 < raw.size() && is_word_char(raw[i_ + 1])) {
        i_ += 2;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && i_ > start &&
          (raw[i_ - 1] == 'e' || raw[i_ - 1] == 'E' || raw[i_ - 1] == 'p' ||
           raw[i_ - 1] == 'P')) {
        ++i_;
        continue;
      }
      break;
    }
    const std::string num = raw.substr(start, i_ - start);
    code_.append(num);
    emit(Token::Kind::kNumber, num);
  }

  void scan_punct() {
    const std::string& raw = *line_;
    const char c = raw[i_];
    if (c == ':' && i_ + 1 < raw.size() && raw[i_ + 1] == ':') {
      code_.append("::");
      emit(Token::Kind::kPunct, "::");
      i_ += 2;
      return;
    }
    if (c == '-' && i_ + 1 < raw.size() && raw[i_ + 1] == '>') {
      code_.append("->");
      emit(Token::Kind::kPunct, "->");
      i_ += 2;
      return;
    }
    code_.push_back(c);
    emit(Token::Kind::kPunct, std::string(1, c));
    ++i_;
  }

  // A '"' opens either an ordinary string or — when glued to a raw-string
  // prefix identifier we just emitted — a raw string. In the raw case the
  // prefix is part of the literal: un-emit it from both streams.
  void begin_string() {
    if (!out_->tokens.empty() && token_end_in_code_ == code_.size()) {
      const Token& prev = out_->tokens.back();
      if (prev.kind == Token::Kind::kIdent && prev.text.size() <= 2 + 1 &&
          is_raw_prefix(prev.text) && prev.line == line_no_ &&
          prev.text.size() <= code_.size()) {
        code_.erase(code_.size() - prev.text.size());
        out_->tokens.pop_back();
        begin_raw_string();
        return;
      }
    }
    const std::string& raw = *line_;
    ++i_;  // opening quote
    std::string content;
    while (i_ < raw.size()) {
      if (raw[i_] == '\\' && i_ + 1 < raw.size()) {
        content.append(raw, i_, 2);
        i_ += 2;
        continue;
      }
      if (raw[i_] == '"') break;
      content.push_back(raw[i_]);
      ++i_;
    }
    ++i_;  // closing quote (or one past end when unterminated)
    code_.append("\"\"");
    emit(Token::Kind::kString, std::move(content));
  }

  void begin_raw_string() {
    const std::string& raw = *line_;
    ++i_;  // the '"' after the prefix
    raw_delim_.clear();
    while (i_ < raw.size() && raw[i_] != '(') raw_delim_.push_back(raw[i_++]);
    if (i_ < raw.size()) ++i_;  // '('
    in_raw_ = true;
    raw_content_.clear();
    raw_open_line_ = line_no_;
    continue_raw_string();
  }

  void continue_raw_string() {
    const std::string& raw = *line_;
    const std::string close = ")" + raw_delim_ + "\"";
    const std::size_t end = raw.find(close, i_);
    if (end == std::string::npos) {
      raw_content_.append(raw, i_, std::string::npos);
      raw_content_.push_back('\n');
      i_ = raw.size();
      return;
    }
    raw_content_.append(raw, i_, end - i_);
    i_ = end + close.size();
    in_raw_ = false;
    code_.append("\"\"");
    out_->tokens.push_back(
        Token{Token::Kind::kString, std::move(raw_content_), raw_open_line_});
    token_end_in_code_ = code_.size();
    raw_content_.clear();
  }

  void scan_char_literal() {
    const std::string& raw = *line_;
    ++i_;  // opening quote
    std::string content;
    while (i_ < raw.size()) {
      if (raw[i_] == '\\' && i_ + 1 < raw.size()) {
        content.append(raw, i_, 2);
        i_ += 2;
        continue;
      }
      if (raw[i_] == '\'') break;
      content.push_back(raw[i_]);
      ++i_;
    }
    ++i_;
    code_.append("''");
    emit(Token::Kind::kChar, std::move(content));
  }

  FileLex* out_;
  const std::string* line_ = nullptr;
  int line_no_ = 0;
  std::size_t i_ = 0;
  std::string code_;
  // Position in code_ right after the last emitted token; used to detect a
  // raw-string prefix glued to the '"' that follows it.
  std::size_t token_end_in_code_ = std::string::npos;
  bool in_block_ = false;
  bool in_raw_ = false;
  std::string raw_delim_;
  std::string raw_content_;
  int raw_open_line_ = 0;
};

}  // namespace

FileLex lex_file(const std::string& contents) {
  FileLex fl;
  {
    std::size_t start = 0;
    while (start <= contents.size()) {
      std::size_t end = contents.find('\n', start);
      if (end == std::string::npos) {
        if (start < contents.size())
          fl.raw_lines.push_back(contents.substr(start));
        break;
      }
      fl.raw_lines.push_back(contents.substr(start, end - start));
      start = end + 1;
    }
  }
  Lexer lx(&fl);
  for (std::size_t i = 0; i < fl.raw_lines.size(); ++i) {
    const int n = static_cast<int>(i) + 1;
    lx.feed_line(fl.raw_lines[i], n);
    IncludeDirective inc;
    if (parse_include(fl.raw_lines[i], &inc)) {
      inc.line = n;
      fl.includes.push_back(inc);
    }
    const std::set<std::string> rules = parse_allow(fl.raw_lines[i]);
    if (!rules.empty()) {
      fl.allowed[n].insert(rules.begin(), rules.end());
      fl.allowed[n + 1].insert(rules.begin(), rules.end());
    }
  }
  return fl;
}

}  // namespace softres::lint
