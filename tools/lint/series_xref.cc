// SR013 — registry/timeline series-name cross-reference. PR 5's dt=0 bug
// was a detector silently reading a series nobody produced; this pass makes
// that class of bug a lint failure. It collects, across every scanned file:
//
//   registrations  string literals passed to registration sites
//                  (Registry::counter/gauge/histogram/gauge_fn/counter_fn,
//                  Timeline::add_probe, the monitor add_*_probe helpers);
//   lookups        string literals passed to lookup sites
//                  (Registry::reader/family, Timeline::track/track_family,
//                  and `find(` when the literal looks like a series name).
//
// Because most series are built as `prefix + ".suffix"` at runtime, every
// literal is classified exact (the argument is the lone literal) or
// fragment (the argument mixes identifiers/'+' with the literal). A lookup
// is satisfied when some registration literal is compatible with it:
// equal, or one is a prefix/suffix of the other when either side is a
// fragment. Lookups with no compatible registration are SR013 findings;
// exact registrations that no lookup ever touches are reported as notes
// (never-read series are usually dead probes, occasionally intentional
// exports — notes never gate the build).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"
#include "passes.h"

namespace softres::lint {

namespace {

bool punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

const std::set<std::string>& registration_calls() {
  static const std::set<std::string> kCalls = {
      "counter",        "gauge",
      "histogram",      "gauge_fn",
      "counter_fn",     "add_probe",
      "add_pool_util_probe",  "add_pool_waiters_probe",
      "add_cpu_util_probe",   "add_gc_util_probe",
      "add_cpu_load_probe",
  };
  return kCalls;
}

const std::set<std::string>& lookup_calls() {
  static const std::set<std::string> kCalls = {
      "reader",
      "family",
      "track",
      "track_family",
  };
  return kCalls;
}

/// A plausible series name: non-empty, only [A-Za-z0-9_.], at least one
/// letter. Help strings and label values have spaces or punctuation and
/// fall out here.
bool series_charset(const std::string& s) {
  if (s.empty()) return false;
  bool has_alpha = false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) has_alpha = true;
  }
  return has_alpha;
}

struct SeriesRef {
  std::string text;
  std::string file;
  int line = 0;
  bool fragment = false;  // argument concatenated the literal with idents
};

/// Scan one call's argument list starting at the '(' token (index `open`).
/// For each argument (split on top-level commas) report its string literals
/// and whether the argument mixes them with identifiers or '+'.
struct Arg {
  std::vector<const Token*> strings;
  bool mixed = false;
};
std::vector<Arg> split_args(const std::vector<Token>& toks, std::size_t open,
                            std::size_t* out_end) {
  std::vector<Arg> args;
  Arg cur;
  int depth = 1;
  std::size_t i = open + 1;
  // 600 tokens bounds pathological calls; real registration calls are
  // far smaller.
  const std::size_t limit = std::min(toks.size(), open + 600);
  for (; i < limit && depth > 0; ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0) break;
      } else if (t.text == "," && depth == 1) {
        args.push_back(std::move(cur));
        cur = Arg{};
      } else if (t.text == "+") {
        cur.mixed = true;
      }
      continue;
    }
    if (t.kind == Token::Kind::kString) {
      cur.strings.push_back(&t);
    } else if (t.kind == Token::Kind::kIdent) {
      cur.mixed = true;
    }
  }
  args.push_back(std::move(cur));
  if (out_end != nullptr) *out_end = i;
  return args;
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}
bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() &&
         s.compare(s.size() - p.size(), p.size(), p) == 0;
}

/// Can registration R produce a name that lookup L resolves? Exact-exact
/// demands equality; once either side is a runtime concatenation, prefix/
/// suffix compatibility is the strongest claim a lexical checker can make.
bool compatible(const SeriesRef& lookup, const SeriesRef& reg) {
  if (lookup.text == reg.text) return true;
  if (!lookup.fragment && !reg.fragment) return false;
  return starts_with(lookup.text, reg.text) ||
         ends_with(lookup.text, reg.text) ||
         starts_with(reg.text, lookup.text) ||
         ends_with(reg.text, lookup.text);
}

}  // namespace

void check_series_xref(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings,
                       std::vector<Finding>* notes) {
  std::vector<SeriesRef> registrations;
  std::vector<SeriesRef> lookups;

  for (const SourceFile& sf : files) {
    const std::vector<Token>& toks = sf.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || !punct(toks[i + 1], "(")) continue;
      const bool is_member =
          i >= 1 && (punct(toks[i - 1], ".") || punct(toks[i - 1], "->"));

      if (registration_calls().count(t.text) > 0) {
        const std::vector<Arg> args = split_args(toks, i + 1, nullptr);
        // The first string-bearing argument names the series; literals in
        // later arguments that look like series names are aliases (help
        // text and label keys fail the charset test).
        bool name_seen = false;
        for (const Arg& arg : args) {
          if (arg.strings.empty()) continue;
          for (const Token* s : arg.strings) {
            if (!name_seen) {
              if (!series_charset(s->text)) break;
              registrations.push_back(
                  {s->text, sf.rel_path, s->line, arg.mixed});
            } else if (series_charset(s->text) &&
                       s->text.find('.') != std::string::npos) {
              registrations.push_back(
                  {s->text, sf.rel_path, s->line, arg.mixed});
            }
          }
          if (!name_seen && !arg.strings.empty() &&
              series_charset(arg.strings.front()->text))
            name_seen = true;
        }
        continue;
      }

      const bool dedicated_lookup =
          is_member && lookup_calls().count(t.text) > 0;
      const bool find_lookup = is_member && t.text == "find";
      if (dedicated_lookup || find_lookup) {
        const std::vector<Arg> args = split_args(toks, i + 1, nullptr);
        if (args.empty() || args.front().strings.empty()) continue;
        const Arg& first = args.front();
        const Token* s = first.strings.front();
        if (!series_charset(s->text)) continue;
        // Bare `x.find("...")` is usually std::string/std::map; only treat
        // it as a series lookup when the literal is unmistakably a series
        // name (dotted path).
        if (find_lookup && s->text.find('.') == std::string::npos) continue;
        lookups.push_back({s->text, sf.rel_path, s->line, first.mixed});
      }
    }
  }

  // Lookups nobody can satisfy -> findings.
  for (const SeriesRef& lk : lookups) {
    bool ok = false;
    for (const SeriesRef& reg : registrations) {
      if (compatible(lk, reg)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      Finding f;
      f.file = lk.file;
      f.line = lk.line;
      f.rule = "SR013";
      f.message =
          "lookup of series '" + lk.text +
          "' which no registration site can produce — a dead detector "
          "subscription; register the series or fix the name";
      findings->push_back(std::move(f));
    }
  }

  // Exact registrations nobody reads -> notes. Fragment registrations are
  // skipped: a runtime-prefixed family is usually consumed wholesale by
  // the exporters.
  std::set<std::string> noted;
  for (const SeriesRef& reg : registrations) {
    if (reg.fragment) continue;
    bool read = false;
    for (const SeriesRef& lk : lookups) {
      if (compatible(lk, reg)) {
        read = true;
        break;
      }
    }
    if (!read && noted.insert(reg.file + ":" + reg.text).second) {
      Finding f;
      f.file = reg.file;
      f.line = reg.line;
      f.rule = "SR013";
      f.message = "series '" + reg.text +
                  "' is registered but never looked up by name (exporters "
                  "that walk all families still see it)";
      f.severity = Severity::kNote;
      notes->push_back(std::move(f));
    }
  }
}

}  // namespace softres::lint
