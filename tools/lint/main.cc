// softres-lint CLI: scan the tree for determinism- and soft-resource-
// contract violations.
//
//   softres-lint [--root DIR] [--list-rules] [--sarif FILE]
//                [--markdown FILE] [--notes] [--no-cross-tu]
//                [--layers FILE] [--exclude PREFIX]... [paths...]
//
// Paths are relative to --root (default: current directory) and default to
// `src bench examples tools tests` (lint fixtures excluded). Exit status:
// 0 clean, 1 when findings exist, 2 on usage or I/O errors. CI and the
// `lint` CMake target run exactly this invocation; see DESIGN.md sections
// "Determinism contract" and 13.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: softres-lint [options] [paths...]\n"
     << "  --root DIR       scan relative to DIR (default: .)\n"
     << "  --list-rules     print the rule table and exit\n"
     << "  --sarif FILE     also write findings as SARIF 2.1.0\n"
     << "  --markdown FILE  append a GitHub-markdown summary to FILE\n"
     << "  --notes          print informational notes (SR013 never-read\n"
     << "                   registrations); notes never affect the exit code\n"
     << "  --no-cross-tu    per-file rules only (SR001-SR010); use for\n"
     << "                   partial scans where cross-TU passes would see an\n"
     << "                   incomplete picture (e.g. pre-commit subsets)\n"
     << "  --layers FILE    layer DAG for SR011 (default:\n"
     << "                   <root>/tools/lint/layers.txt)\n"
     << "  --exclude PREFIX skip files under this root-relative prefix\n"
     << "                   (repeatable; default: tests/lint/fixtures)\n"
     << "  Paths default to: src bench examples tools tests. Suppress a\n"
     << "  finding with SOFTRES_LINT_ALLOW(SRnnn: reason) on or above the\n"
     << "  line.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  std::string markdown_path;
  bool print_notes = false;
  softres::lint::Options options;
  options.exclude_prefixes = softres::lint::default_excludes();
  std::vector<std::string> paths;

  auto need_value = [&](int& i, const std::string& arg) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "softres-lint: " << arg << " needs a value\n";
      print_usage(std::cerr);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      const char* v = need_value(i, arg);
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--sarif") {
      const char* v = need_value(i, arg);
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--markdown") {
      const char* v = need_value(i, arg);
      if (v == nullptr) return 2;
      markdown_path = v;
    } else if (arg == "--layers") {
      const char* v = need_value(i, arg);
      if (v == nullptr) return 2;
      options.layers_file = v;
    } else if (arg == "--exclude") {
      const char* v = need_value(i, arg);
      if (v == nullptr) return 2;
      options.exclude_prefixes.push_back(v);
    } else if (arg == "--notes") {
      print_notes = true;
    } else if (arg == "--no-cross-tu") {
      options.cross_tu = false;
    } else if (arg == "--list-rules") {
      for (const auto& r : softres::lint::rule_table()) {
        std::cout << r.id << "  " << r.name << "\n      " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "softres-lint: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = softres::lint::default_paths();

  const softres::lint::Analysis analysis =
      softres::lint::analyze_tree(root, paths, options);
  for (const auto& e : analysis.errors) std::cerr << "softres-lint: " << e
                                                  << "\n";
  for (const auto& f : analysis.findings) {
    std::cout << softres::lint::format_finding(f) << "\n";
  }
  if (print_notes) {
    for (const auto& f : analysis.notes) {
      std::cout << softres::lint::format_finding(f) << "\n";
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "softres-lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << softres::lint::to_sarif(analysis);
  }
  if (!markdown_path.empty()) {
    std::ofstream out(markdown_path, std::ios::binary | std::ios::app);
    if (!out) {
      std::cerr << "softres-lint: cannot write " << markdown_path << "\n";
      return 2;
    }
    out << softres::lint::to_markdown(analysis);
  }

  if (!analysis.errors.empty()) return 2;
  if (!analysis.findings.empty()) {
    std::cout << analysis.findings.size()
              << " contract violation(s); see "
                 "`softres-lint --list-rules` and DESIGN.md\n";
    return 1;
  }
  return 0;
}
