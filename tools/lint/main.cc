// softres-lint CLI: scan the tree for determinism-contract violations.
//
//   softres-lint [--root DIR] [--list-rules] [paths...]
//
// Paths are relative to --root (default: current directory) and default to
// the sim-reachable set `src bench examples`. Exit status: 0 clean, 1 when
// findings exist, 2 on usage or I/O errors. CI and the `lint` CMake target
// run exactly this invocation; see DESIGN.md "Determinism contract".

#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: softres-lint [--root DIR] [--list-rules] [paths...]\n"
     << "  Scans .h/.cc/.cpp files under the given paths (default: src bench\n"
     << "  examples, relative to --root) for determinism-contract\n"
     << "  violations. Suppress a finding with\n"
     << "  SOFTRES_LINT_ALLOW(SRnnn: reason) on or above the line.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "softres-lint: --root needs a directory\n";
        print_usage(std::cerr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& r : softres::lint::rule_table()) {
        std::cout << r.id << "  " << r.name << "\n      " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "softres-lint: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "examples"};

  std::vector<std::string> errors;
  const std::vector<softres::lint::Finding> findings =
      softres::lint::scan_tree(root, paths, &errors);
  for (const auto& e : errors) std::cerr << "softres-lint: " << e << "\n";
  for (const auto& f : findings) {
    std::cout << softres::lint::format_finding(f) << "\n";
  }
  if (!errors.empty()) return 2;
  if (!findings.empty()) {
    std::cout << findings.size()
              << " determinism-contract violation(s); see "
                 "`softres-lint --list-rules` and DESIGN.md\n";
    return 1;
  }
  return 0;
}
