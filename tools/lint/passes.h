#pragma once

// Internal interface between the analyzer driver (analyze_tree) and the
// cross-TU passes. Each pass consumes the same lexed view of the tree —
// files are lexed exactly once — and appends findings that the driver
// filters through the per-file SOFTRES_LINT_ALLOW maps and sorts.

#include <map>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace softres::lint {

/// One scanned file: repository-relative path, contract domain and the
/// shared lex. The cross-TU passes never re-read or re-lex.
struct SourceFile {
  std::string rel_path;
  Domain domain = Domain::kExempt;
  FileLex lex;
};

/// Parsed tools/lint/layers.txt: one rank per line (low to high), several
/// space-separated layer names on a line share a rank but still may not
/// include each other sideways.
struct LayerSpec {
  std::map<std::string, int> rank;            // layer name -> rank
  std::vector<std::vector<std::string>> rows; // for diagnostics / docs
  bool empty() const { return rank.empty(); }
};

/// Parse a layers file's contents ('#' comments, blank lines skipped).
LayerSpec parse_layers(const std::string& contents);

/// SR011: every quoted #include inside src/ must point at the same layer or
/// a strictly lower rank, and the file-level include graph must be acyclic.
void check_include_graph(const std::vector<SourceFile>& files,
                         const LayerSpec& layers,
                         std::vector<Finding>* findings);

/// SR012: flow-sensitive Pool::acquire/release balance. Pool-typed variable
/// names are collected across every scanned file; grant callbacks outside
/// src/soft must adopt the unit into a soft::PoolGuard or release it before
/// the callback ends (brace/return/throw aware), and a raw release needs an
/// acquire in lexical scope.
void check_pool_contract(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings);

/// SR013: registry/timeline series cross-reference. Collects every series
/// name (or name fragment, when the argument concatenates a runtime prefix)
/// passed to a registration site, and flags lookups of names no registration
/// can produce. Never-read registrations are appended to `notes`.
void check_series_xref(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings,
                       std::vector<Finding>* notes);

/// Shared by the driver and scan_file: per-file token rules SR001-SR010 on
/// an existing lex.
std::vector<Finding> scan_lexed_file(const std::string& rel_path,
                                     const FileLex& lex);

/// True when `rel_path` starts with `prefix` at a '/' boundary.
bool path_under(const std::string& rel_path, const std::string& prefix);

/// Drop findings suppressed by a SOFTRES_LINT_ALLOW annotation on the same
/// or preceding line of their file.
void apply_allow(const std::map<std::string, const FileLex*>& lex_by_file,
                 std::vector<Finding>* findings);

}  // namespace softres::lint
