#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"
#include "passes.h"

namespace softres::lint {

namespace fs = std::filesystem;

namespace {

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

bool excluded(const std::string& rel,
              const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (path_under(rel, p)) return true;
  }
  return false;
}

/// Read + lex every source file under `paths`. The lex is shared by the
/// per-file rules and all cross-TU passes — each file is read exactly once.
std::vector<SourceFile> collect_files(const std::string& root,
                                      const std::vector<std::string>& paths,
                                      const Options& options,
                                      std::vector<std::string>* errors) {
  std::vector<SourceFile> files;
  auto note_error = [errors](const std::string& msg) {
    if (errors != nullptr) errors->push_back(msg);
  };
  auto load_one = [&](const fs::path& abs, const std::string& rel) {
    if (excluded(rel, options.exclude_prefixes)) return;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      note_error("cannot read " + abs.string());
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile sf;
    sf.rel_path = rel;
    sf.domain = classify_path(rel);
    sf.lex = lex_file(buf.str());
    files.push_back(std::move(sf));
  };

  const fs::path root_path(root);
  for (const auto& p : paths) {
    const fs::path abs = root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file() || !is_source(it->path())) continue;
        const std::string rel =
            fs::relative(it->path(), root_path, ec).generic_string();
        load_one(it->path(), rel);
      }
      if (ec) note_error("walking " + abs.string() + ": " + ec.message());
    } else if (fs::is_regular_file(abs, ec)) {
      load_one(abs, fs::path(p).generic_string());
    } else {
      note_error("no such file or directory: " + abs.string());
    }
  }
  // Directory iteration order is filesystem-dependent; the analysis must
  // not be (the checker holds itself to its own contract).
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  return files;
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

void apply_allow(const std::map<std::string, const FileLex*>& lex_by_file,
                 std::vector<Finding>* findings) {
  auto suppressed = [&lex_by_file](const Finding& f) {
    auto it = lex_by_file.find(f.file);
    if (it == lex_by_file.end()) return false;
    auto line = it->second->allowed.find(f.line);
    return line != it->second->allowed.end() &&
           line->second.count(f.rule) > 0;
  };
  findings->erase(
      std::remove_if(findings->begin(), findings->end(), suppressed),
      findings->end());
}

Analysis analyze_tree(const std::string& root,
                      const std::vector<std::string>& paths,
                      const Options& options) {
  Analysis a;
  const std::vector<SourceFile> files =
      collect_files(root, paths, options, &a.errors);
  a.files_scanned = files.size();

  for (const SourceFile& sf : files) {
    std::vector<Finding> file_findings = scan_lexed_file(sf.rel_path, sf.lex);
    a.findings.insert(a.findings.end(),
                      std::make_move_iterator(file_findings.begin()),
                      std::make_move_iterator(file_findings.end()));
  }

  if (options.cross_tu) {
    std::vector<Finding> cross;

    // SR011 — layer DAG + include cycles. The layers file is part of the
    // analysis input; a missing file skips the pass (fixture trees opt in
    // by shipping their own layers.txt).
    std::string layers_path = options.layers_file;
    if (layers_path.empty()) {
      const fs::path def = fs::path(root) / "tools" / "lint" / "layers.txt";
      std::error_code ec;
      if (fs::is_regular_file(def, ec)) layers_path = def.string();
    }
    if (!layers_path.empty()) {
      std::ifstream in(layers_path, std::ios::binary);
      if (!in) {
        a.errors.push_back("cannot read layers file " + layers_path);
      } else {
        std::ostringstream buf;
        buf << in.rdbuf();
        const LayerSpec layers = parse_layers(buf.str());
        if (!layers.empty()) check_include_graph(files, layers, &cross);
      }
    }

    check_pool_contract(files, &cross);
    check_series_xref(files, &cross, &a.notes);

    // Cross-TU passes run before suppression so one ALLOW map covers every
    // rule the same way.
    std::map<std::string, const FileLex*> lex_by_file;
    for (const SourceFile& sf : files) lex_by_file[sf.rel_path] = &sf.lex;
    apply_allow(lex_by_file, &cross);
    apply_allow(lex_by_file, &a.notes);

    a.findings.insert(a.findings.end(),
                      std::make_move_iterator(cross.begin()),
                      std::make_move_iterator(cross.end()));
  }

  sort_findings(&a.findings);
  sort_findings(&a.notes);
  return a;
}

std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& paths,
                               std::vector<std::string>* errors) {
  Options opt;
  opt.cross_tu = false;
  Analysis a = analyze_tree(root, paths, opt);
  if (errors != nullptr) {
    errors->insert(errors->end(), a.errors.begin(), a.errors.end());
  }
  return std::move(a.findings);
}

}  // namespace softres::lint
