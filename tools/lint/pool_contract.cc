// SR012 — flow-sensitive Pool::acquire/release balance. The acquire/release
// bracket documented in src/soft/pool.h is the invariant behind every
// pathology signal (queue depths, occupancy integrals, drain accounting):
// one leaked grant skews utilization for the rest of the trial and one
// double release corrupts the waiter queue.
//
// The check is lexical and cross-TU:
//   pass A  collects the names of every variable declared with a Pool type
//           across ALL scanned files (members like `soft::Pool workers_;`
//           included) — names, not types, because the checker does not
//           resolve symbols;
//   pass B  walks each file in src/ outside src/soft with a brace-depth
//           cursor. `pool.acquire([..]{ ... })` pushes a context for the
//           grant callback; inside its lexical extent the unit must be
//           adopted into a soft::PoolGuard (`.adopt(`), released on the
//           same pool, or explicitly handed to a guard constructor, before
//           the callback's closing brace. A `return`/`throw` while still
//           holding is flagged where it happens; falling off the end is
//           flagged at the acquire. A raw `pool.release()` with no acquire
//           context for that pool in scope is flagged as unpaired — the
//           RAII form (soft::PoolGuard) carries the unit across event
//           boundaries instead.
//
// Scope: src/** except src/soft (the pool implementation releases into its
// own free list) and src/support. Drivers, benches and tests may exercise
// the raw API; the contract binds the model code.

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"
#include "passes.h"

namespace softres::lint {

namespace {

bool is_kind(const Token& t, Token::Kind k, const char* text) {
  return t.kind == k && t.text == text;
}
bool punct(const Token& t, const char* text) {
  return is_kind(t, Token::Kind::kPunct, text);
}
bool ident(const Token& t, const char* text) {
  return is_kind(t, Token::Kind::kIdent, text);
}

/// Pass A: `Pool name`, `Pool& name`, `Pool* name` followed by a
/// declarator-ending punctuator. "Pool" is matched as the last component of
/// a possibly qualified type (soft::Pool), which the token stream gives us
/// for free — the qualifier sits before the ident we key on.
void collect_pool_vars(const std::vector<Token>& toks,
                       std::set<std::string>* names) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!ident(toks[i], "Pool")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (punct(toks[j], "&") || punct(toks[j], "*"))) ++j;
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
    if (j + 1 >= toks.size()) continue;
    const Token& after = toks[j + 1];
    if (punct(after, ";") || punct(after, ",") || punct(after, ")") ||
        punct(after, "{") || punct(after, "=") || punct(after, "(")) {
      names->insert(toks[j].text);
    }
  }
}

struct AcquireContext {
  std::string pool;     // receiver variable name
  int acquire_line = 0;
  int body_depth = 0;   // brace depth just inside the lambda body
  bool satisfied = false;
  // An early return/throw was already reported; a later release on the
  // same pool still satisfies the context (no bogus "raw release"), and
  // the body close does not double-report the leak.
  bool reported = false;
};

void check_file(const SourceFile& sf, const std::set<std::string>& pools,
                std::vector<Finding>* findings) {
  const std::vector<Token>& toks = sf.lex.tokens;
  std::vector<AcquireContext> stack;
  // Pending acquire whose lambda body brace has not opened yet. -1 = none.
  // The lambda literal must appear inside the acquire call's own
  // parentheses (pending_paren); a ')' that closes the call first means the
  // argument was not a lambda and the grant body is out of lexical reach.
  int pending_line = -1;
  int pending_paren = 0;
  std::string pending_pool;
  bool pending_saw_capture = false;

  auto add = [&](int line, std::string message) {
    Finding f;
    f.file = sf.rel_path;
    f.line = line;
    f.rule = "SR012";
    f.message = std::move(message);
    if (line >= 1 &&
        static_cast<std::size_t>(line) <= sf.lex.raw_lines.size())
      f.excerpt = trim(sf.lex.raw_lines[static_cast<std::size_t>(line) - 1]);
    findings->push_back(std::move(f));
  };

  int depth = 0;
  int paren = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "(") {
        ++paren;
        continue;
      }
      if (t.text == ")") {
        --paren;
        if (pending_line >= 0 && paren < pending_paren) {
          // `pool.acquire(make_cb())` — the call closed without a lambda
          // literal, so the grant body is out of lexical reach.
          pending_line = -1;
        }
        continue;
      }
      if (t.text == "{") {
        ++depth;
        if (pending_line >= 0 && pending_saw_capture &&
            paren >= pending_paren) {
          stack.push_back(
              {pending_pool, pending_line, depth, /*satisfied=*/false});
          pending_line = -1;
        }
        continue;
      }
      if (t.text == "}") {
        while (!stack.empty() && stack.back().body_depth == depth) {
          const AcquireContext ctx = stack.back();
          stack.pop_back();
          if (!ctx.satisfied && !ctx.reported) {
            add(ctx.acquire_line,
                "acquired unit on pool '" + ctx.pool +
                    "' leaks from the grant callback: adopt it into a "
                    "soft::PoolGuard or release it before the callback "
                    "returns");
          }
        }
        --depth;
        continue;
      }
      if (t.text == "[" && pending_line >= 0 && paren >= pending_paren) {
        pending_saw_capture = true;
        continue;
      }
      continue;
    }

    if (t.kind != Token::Kind::kIdent) continue;

    // Satisfiers: `.adopt(` and `PoolGuard` anywhere inside the innermost
    // open context hand the unit to RAII; `pool.release()` closes the
    // bracket on its own pool.
    if ((t.text == "adopt" || t.text == "PoolGuard") && !stack.empty()) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (!it->satisfied) {
          it->satisfied = true;
          break;
        }
      }
      continue;
    }

    if ((t.text == "return" || t.text == "throw")) {
      // Only the innermost open context: a return escapes one callback, and
      // a lexical checker cannot attribute it to enclosing grants.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (!it->satisfied && !it->reported) {
          it->reported = true;  // report once, at the escape site
          add(t.line, (t.text == "return" ? std::string("early return")
                                          : std::string("throw")) +
                          " while holding an acquired unit on pool '" +
                          it->pool +
                          "': adopt the grant into a soft::PoolGuard so "
                          "every exit path releases it");
          break;
        }
      }
      continue;
    }

    const bool call_like = i + 1 < toks.size() && punct(toks[i + 1], "(");
    const bool member_call =
        call_like && i >= 2 &&
        (punct(toks[i - 1], ".") || punct(toks[i - 1], "->")) &&
        toks[i - 2].kind == Token::Kind::kIdent;

    if (t.text == "acquire" && member_call &&
        pools.count(toks[i - 2].text) > 0) {
      pending_line = t.line;
      pending_paren = paren + 1;  // depth once the call's '(' is consumed
      pending_pool = toks[i - 2].text;
      pending_saw_capture = false;
      continue;
    }

    if (t.text == "release" && call_like && member_call &&
        pools.count(toks[i - 2].text) > 0) {
      const std::string& pool = toks[i - 2].text;
      bool matched = false;
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->pool == pool && !it->satisfied) {
          it->satisfied = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        add(t.line,
            "raw Pool::release on '" + pool +
                "' with no acquire in lexical scope: hold the unit in a "
                "soft::PoolGuard (adopt in the grant callback, release or "
                "detach where the work completes)");
      }
      continue;
    }
  }

  // Unbalanced braces (should not happen on real code) — flush leaks.
  for (const AcquireContext& ctx : stack) {
    if (!ctx.satisfied && !ctx.reported) {
      add(ctx.acquire_line,
          "acquired unit on pool '" + ctx.pool +
              "' leaks from the grant callback: adopt it into a "
              "soft::PoolGuard or release it before the callback returns");
    }
  }
}

}  // namespace

void check_pool_contract(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings) {
  std::set<std::string> pools;
  for (const SourceFile& sf : files) collect_pool_vars(sf.lex.tokens, &pools);
  if (pools.empty()) return;

  for (const SourceFile& sf : files) {
    if (!path_under(sf.rel_path, "src")) continue;
    if (path_under(sf.rel_path, "src/soft") ||
        path_under(sf.rel_path, "src/support"))
      continue;
    check_file(sf, pools, findings);
  }
}

}  // namespace softres::lint
