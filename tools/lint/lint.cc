#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace softres::lint {

namespace fs = std::filesystem;

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"SR001", "banned-rng",
       "std:: random machinery (rand, random_device, mt19937, ...) in "
       "sim-reachable code; draw from sim::Rng streams instead"},
      {"SR002", "wall-clock",
       "wall-clock APIs (system_clock, steady_clock, gettimeofday, ...) in "
       "src/ outside src/obs; simulation time is sim::SimTime"},
      {"SR003", "unordered-iteration",
       "iteration over std::unordered_{map,set}: hash-order-dependent and "
       "must never feed a result or report"},
      {"SR004", "rng-construction",
       "sim::Rng constructed outside src/sim; seed every stream through "
       "RunContext::derive_seed (or annotate why the seed is already "
       "derived)"},
      {"SR005", "threading-in-sim",
       "mutex/atomic/thread primitives in src/sim or src/core, which are "
       "single-threaded per trial by contract"},
      {"SR006", "address-dependent",
       "thread-id or pointer-to-integer hashing: differs across runs and "
       "address-space layouts"},
      {"SR007", "std-function-hot-path",
       "std::function in src/sim or src/tier: per-event callbacks heap-"
       "allocate their captures; use sim::InlineCallback (or annotate a "
       "cold path with SOFTRES_LINT_ALLOW)"},
      {"SR008", "stream-writes-in-detector",
       "stream writes in src/obs diagnoser/timeline code: detectors produce "
       "data (Diagnosis, EvidenceWindow); every human-facing rendering goes "
       "through obs/report.h"},
      {"SR009", "cycle-counter",
       "cycle-counter intrinsics (rdtsc and friends) or std::chrono timing "
       "outside the profiler TU (src/support/prof.h) and src/obs; measure "
       "through obs::Profiler so the timing axis stays in one place"},
      {"SR010", "direct-pool-resize",
       "Pool::set_capacity called outside src/soft, the AdaptiveTuner "
       "(src/exp/adaptive*) and the Governor (src/core/governor*); live "
       "resizes flow through a registered soft::ResizablePoolSet controller "
       "so drain accounting, capacity epochs and resize hooks stay coherent"},
  };
  return kRules;
}

Domain classify_path(const std::string& rel_path) {
  auto has_prefix = [&rel_path](const char* p) {
    return rel_path.rfind(p, 0) == 0;
  };
  if (has_prefix("src/obs/")) return Domain::kObs;
  // src/support holds the contract enforcement itself (poison pragmas and
  // [[deprecated]] shims name the banned identifiers on purpose).
  if (has_prefix("src/support/")) return Domain::kExempt;
  if (has_prefix("src/")) return Domain::kSim;
  if (has_prefix("bench/") || has_prefix("examples/")) return Domain::kDriver;
  return Domain::kExempt;
}

namespace {

/// Strips // and /* */ comments and the contents of string/char literals
/// (keeping quotes) from source lines, preserving line structure so finding
/// line numbers stay exact. `in_block` carries block-comment state between
/// lines of one file.
std::string strip_code_line(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest of line is a comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Word-boundary token search ("thread" matches `std::thread` and
/// `<thread>`, not `threads_` or `thread_exponent`).
bool contains_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Rules suppressed by SOFTRES_LINT_ALLOW(SRnnn[,SRnnn...]: reason) on this
/// line. The annotation also covers the next line so it can sit on its own
/// comment line above the allowed use.
std::set<std::string> parse_allow(const std::string& raw_line) {
  std::set<std::string> out;
  static const std::regex kAllow(R"(SOFTRES_LINT_ALLOW\s*\(\s*([^)]*)\))");
  auto begin =
      std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string body = (*it)[1].str();
    static const std::regex kId(R"(SR\d{3})");
    auto ids = std::sregex_iterator(body.begin(), body.end(), kId);
    for (auto id = ids; id != std::sregex_iterator(); ++id) {
      out.insert(id->str());
    }
  }
  return out;
}

struct TokenRule {
  const char* rule;
  const char* token;
  const char* what;
};

// SR001 — entropy sources other than sim::Rng. Fires in every scanned
// domain: a bench that seeds mt19937 breaks reproducibility exactly like a
// tier model would.
constexpr TokenRule kBannedRng[] = {
    {"SR001", "rand", "std::rand"},
    {"SR001", "srand", "srand"},
    {"SR001", "random_device", "std::random_device"},
    {"SR001", "mt19937", "std::mt19937"},
    {"SR001", "mt19937_64", "std::mt19937_64"},
    {"SR001", "minstd_rand", "std::minstd_rand"},
    {"SR001", "minstd_rand0", "std::minstd_rand0"},
    {"SR001", "default_random_engine", "std::default_random_engine"},
    {"SR001", "ranlux24", "std::ranlux24"},
    {"SR001", "ranlux48", "std::ranlux48"},
    {"SR001", "knuth_b", "std::knuth_b"},
};

// SR002 — wall clocks in src/ outside src/obs. Simulation time is
// sim::SimTime; real time in a trial makes jobs=N diverge from jobs=1.
constexpr TokenRule kWallClock[] = {
    {"SR002", "system_clock", "std::chrono::system_clock"},
    {"SR002", "steady_clock", "std::chrono::steady_clock"},
    {"SR002", "high_resolution_clock", "std::chrono::high_resolution_clock"},
    {"SR002", "gettimeofday", "gettimeofday"},
    {"SR002", "clock_gettime", "clock_gettime"},
    {"SR002", "timespec_get", "timespec_get"},
    {"SR002", "localtime", "localtime"},
    {"SR002", "gmtime", "gmtime"},
    {"SR002", "strftime", "strftime"},
};

// SR005 — concurrency primitives in the single-threaded-per-trial domains.
// Parallelism lives in exp::ParallelExecutor, above the trial boundary.
constexpr TokenRule kThreading[] = {
    {"SR005", "mutex", "std::mutex"},
    {"SR005", "shared_mutex", "std::shared_mutex"},
    {"SR005", "atomic", "std::atomic"},
    {"SR005", "thread", "std::thread"},
    {"SR005", "jthread", "std::jthread"},
    {"SR005", "condition_variable", "std::condition_variable"},
    {"SR005", "lock_guard", "std::lock_guard"},
    {"SR005", "unique_lock", "std::unique_lock"},
    {"SR005", "scoped_lock", "std::scoped_lock"},
    {"SR005", "future", "std::future"},
    {"SR005", "promise", "std::promise"},
    {"SR005", "async", "std::async"},
    {"SR005", "counting_semaphore", "std::counting_semaphore"},
    {"SR005", "binary_semaphore", "std::binary_semaphore"},
    {"SR005", "latch", "std::latch"},
    {"SR005", "barrier", "std::barrier"},
};

// SR006 — values that depend on the address space or the scheduler.
constexpr TokenRule kAddressDependent[] = {
    {"SR006", "this_thread", "std::this_thread"},
    {"SR006", "get_id", "thread-id query"},
};

// SR008 — stream machinery in the diagnoser/timeline files of src/obs.
// Detectors emit structured Diagnosis/EvidenceWindow data; rendering is
// obs/report.h's job. Banning the tokens (not just the writes) keeps even a
// "temporary" debug print out of the rule engine.
constexpr TokenRule kStreamWrites[] = {
    {"SR008", "ostream", "std::ostream"},
    {"SR008", "ofstream", "std::ofstream"},
    {"SR008", "fstream", "std::fstream"},
    {"SR008", "ostringstream", "std::ostringstream"},
    {"SR008", "stringstream", "std::stringstream"},
    {"SR008", "cout", "std::cout"},
    {"SR008", "cerr", "std::cerr"},
    {"SR008", "clog", "std::clog"},
    {"SR008", "printf", "printf"},
    {"SR008", "fprintf", "fprintf"},
    {"SR008", "puts", "puts"},
};

// SR009 — cycle counters and chrono timing outside the profiler TU. The
// self-profiler (src/support/prof.h, rendered by src/obs/profiler.cc) is
// the one sanctioned home for machine timing; a stray rdtsc in a tier model
// or a bench is an un-calibrated, un-attributed measurement that the
// regression pipeline can't see. src/support and src/obs are exempt by
// domain, exactly like the SR002 clock carve-out. The cycle-counter tokens
// fire in kSim and kDriver; the chrono token fires in kDriver only, because
// SR002 already owns wall-clock timing inside src/ and double-reporting the
// same line under two rules would just be noise.
constexpr TokenRule kCycleCounter[] = {
    {"SR009", "rdtsc", "rdtsc"},
    {"SR009", "__rdtsc", "__rdtsc"},
    {"SR009", "__rdtscp", "__rdtscp"},
    {"SR009", "__builtin_ia32_rdtsc", "__builtin_ia32_rdtsc"},
    {"SR009", "__builtin_ia32_rdtscp", "__builtin_ia32_rdtscp"},
    {"SR009", "__builtin_readcyclecounter", "__builtin_readcyclecounter"},
    {"SR009", "cntvct_el0", "cntvct_el0 (aarch64 counter)"},
};
constexpr TokenRule kDriverTiming[] = {
    {"SR009", "chrono", "std::chrono timing"},
};

bool under(const std::string& rel_path, const char* prefix) {
  return rel_path.rfind(prefix, 0) == 0;
}

/// SR008 scope: the streaming-analysis files of src/obs (basename starting
/// "diagnoser" or "timeline"). Other obs code — report.h, the exporters —
/// is *supposed* to write streams.
bool is_detector_file(const std::string& rel_path) {
  if (!under(rel_path, "src/obs/")) return false;
  const std::size_t slash = rel_path.rfind('/');
  const std::string base = rel_path.substr(slash + 1);
  return base.rfind("diagnoser", 0) == 0 || base.rfind("timeline", 0) == 0;
}

}  // namespace

std::vector<Finding> scan_file(const std::string& rel_path,
                               const std::string& contents) {
  const Domain domain = classify_path(rel_path);
  std::vector<Finding> findings;
  if (domain == Domain::kExempt) return findings;

  const bool in_sim_core =
      under(rel_path, "src/sim/") || under(rel_path, "src/core/");
  const bool in_detector = is_detector_file(rel_path);
  const bool in_hot_path =
      under(rel_path, "src/sim/") || under(rel_path, "src/tier/");
  const bool rng_ctor_exempt = under(rel_path, "src/sim/") ||
                               rel_path == "src/exp/run_context.cc" ||
                               rel_path == "src/exp/run_context.h";
  const bool resize_sanctioned = under(rel_path, "src/soft/") ||
                                 under(rel_path, "src/exp/adaptive") ||
                                 under(rel_path, "src/core/governor");

  // Pass 1: split lines, strip comments/strings, harvest allow annotations
  // and names of unordered-container variables declared in this file.
  std::vector<std::string> raw_lines;
  {
    std::istringstream is(contents);
    std::string line;
    while (std::getline(is, line)) raw_lines.push_back(line);
  }
  std::vector<std::string> code_lines;
  code_lines.reserve(raw_lines.size());
  std::map<int, std::set<std::string>> allowed;  // line (1-based) -> rules
  bool in_block = false;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    code_lines.push_back(strip_code_line(raw_lines[i], in_block));
    const std::set<std::string> rules = parse_allow(raw_lines[i]);
    if (!rules.empty()) {
      const int n = static_cast<int>(i) + 1;
      allowed[n].insert(rules.begin(), rules.end());
      allowed[n + 1].insert(rules.begin(), rules.end());
    }
  }

  static const std::regex kUnorderedDecl(
      R"(\bunordered_(?:multi)?(?:map|set)\s*<[^;{]*>\s+(\w+)\s*[;={(])");
  std::set<std::string> unordered_vars;
  for (const auto& code : code_lines) {
    auto begin = std::sregex_iterator(code.begin(), code.end(), kUnorderedDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_vars.insert((*it)[1].str());
    }
  }

  auto is_allowed = [&allowed](int line, const char* rule) {
    auto it = allowed.find(line);
    return it != allowed.end() && it->second.count(rule) > 0;
  };
  auto add = [&](int line, const char* rule, std::string message) {
    if (is_allowed(line, rule)) return;
    Finding f;
    f.file = rel_path;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    f.excerpt = trim(raw_lines[static_cast<std::size_t>(line) - 1]);
    findings.push_back(std::move(f));
  };

  static const std::regex kRngCtor(R"(\bRng\s*\(|\bRng\s+\w+\s*[({])");
  static const std::regex kTimeCall(R"((?:^|[^\w.:>])(?:std::)?time\s*\()");
  static const std::regex kClockCall(R"((?:^|[^\w.:>])(?:std::)?clock\s*\()");
  static const std::regex kPtrHash(
      R"(reinterpret_cast\s*<\s*(?:std::)?u?intptr_t|std::hash\s*<[^>]*\*)");
  static const std::regex kRandomInclude(R"(#\s*include\s*<random>)");
  static const std::regex kStdFunction(R"(\bstd\s*::\s*function\s*<)");
  static const std::regex kStreamInclude(
      R"(#\s*include\s*<(?:iostream|ostream|sstream|fstream|iomanip|print)>)");

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    if (code.empty()) continue;
    const int n = static_cast<int>(i) + 1;

    // SR001 — all scanned domains.
    for (const auto& r : kBannedRng) {
      if (contains_token(code, r.token)) {
        add(n, r.rule, std::string(r.what) +
                           " is banned: draw from a sim::Rng stream derived "
                           "via RunContext::derive_seed");
        break;
      }
    }
    if (std::regex_search(code, kRandomInclude)) {
      add(n, "SR001",
          "<random> must not be included in sim-reachable code; sim::Rng "
          "provides every needed distribution");
    }

    // SR002 — src/ outside src/obs.
    if (domain == Domain::kSim) {
      for (const auto& r : kWallClock) {
        if (contains_token(code, r.token)) {
          add(n, r.rule,
              std::string(r.what) +
                  " reads the wall clock: use sim::SimTime (simulated "
                  "seconds) or move the export to src/obs");
          break;
        }
      }
      if (std::regex_search(code, kTimeCall)) {
        add(n, "SR002",
            "time() reads the wall clock: use sim::SimTime or move the "
            "export to src/obs");
      } else if (std::regex_search(code, kClockCall)) {
        add(n, "SR002",
            "clock() reads the process clock: use sim::SimTime or move the "
            "export to src/obs");
      }
    }

    // SR003 — iteration over unordered containers declared in this file.
    for (const auto& var : unordered_vars) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + var + R"(\b)");
      const std::regex begin_call("\\b" + var + R"(\s*\.\s*c?begin\s*\()");
      if (std::regex_search(code, range_for) ||
          std::regex_search(code, begin_call)) {
        add(n, "SR003",
            "iteration over unordered container '" + var +
                "' is hash-order-dependent: sort keys first or use an "
                "ordered/indexed container");
        break;
      }
    }

    // SR004 — sim::Rng construction outside the sanctioned sites.
    if (!rng_ctor_exempt && std::regex_search(code, kRngCtor)) {
      add(n, "SR004",
          "sim::Rng constructed here: every stream must be seeded through "
          "RunContext::derive_seed (annotate with SOFTRES_LINT_ALLOW(SR004: "
          "...) if this seed is already derived)");
    }

    // SR005 — src/sim and src/core only.
    if (in_sim_core) {
      for (const auto& r : kThreading) {
        if (contains_token(code, r.token)) {
          add(n, r.rule,
              std::string(r.what) +
                  " in a single-threaded-per-trial domain: concurrency "
                  "belongs in exp::ParallelExecutor, above the trial");
          break;
        }
      }
    }

    // SR007 — src/sim and src/tier, the per-event hot paths. A
    // std::function here heap-allocates every capture over ~16 bytes and
    // costs an indirect call per dispatch; sim::InlineCallback holds 24
    // bytes inline. Cold paths (setup, teardown, reporting) may opt out
    // with SOFTRES_LINT_ALLOW(SR007: ...).
    if (in_hot_path && std::regex_search(code, kStdFunction)) {
      add(n, "SR007",
          "std::function in a per-event hot path: use sim::InlineCallback "
          "(sim/inline_callback.h), or annotate a cold path with "
          "SOFTRES_LINT_ALLOW(SR007: why)");
    }

    // SR008 — the src/obs diagnoser/timeline files. Detector output is
    // structured data; rendering goes through obs/report.h.
    if (in_detector) {
      bool flagged = false;
      for (const auto& r : kStreamWrites) {
        if (contains_token(code, r.token)) {
          add(n, r.rule,
              std::string(r.what) +
                  " in detector code: return structured Diagnosis data and "
                  "render it through obs/report.h");
          flagged = true;
          break;
        }
      }
      if (!flagged && std::regex_search(code, kStreamInclude)) {
        add(n, "SR008",
            "stream header included in detector code: rendering belongs in "
            "obs/report.h (snprintf into buffers is fine for labels)");
      }
    }

    // SR009 — cycle counters / chrono timing in sim code and drivers; the
    // profiler TU (src/support, exempt by domain) and src/obs own timing.
    if (domain == Domain::kSim || domain == Domain::kDriver) {
      bool hit = false;
      for (const auto& r : kCycleCounter) {
        if (contains_token(code, r.token)) {
          add(n, r.rule,
              std::string(r.what) +
                  " outside the profiler TU: machine timing belongs to "
                  "src/support/prof.h + obs::Profiler (or src/obs exports)");
          hit = true;
          break;
        }
      }
      if (!hit && domain == Domain::kDriver) {
        for (const auto& r : kDriverTiming) {
          if (contains_token(code, r.token)) {
            add(n, r.rule,
                std::string(r.what) +
                    " in a driver: time the sim through google-benchmark or "
                    "obs::Profiler, not ad-hoc std::chrono stopwatches");
            break;
          }
        }
      }
    }

    // SR010 — direct pool resizes outside the sanctioned controllers. A
    // live resize must flow through soft::ResizablePoolSet (the Governor or
    // the AdaptiveTuner) so drain accounting, capacity epochs and the
    // JVM-sync hooks stay coherent; src/soft owns the mechanism itself.
    if (!resize_sanctioned && contains_token(code, "set_capacity")) {
      add(n, "SR010",
          "direct Pool::set_capacity outside src/soft, src/exp/adaptive* and "
          "src/core/governor*: route resizes through a registered "
          "soft::ResizablePoolSet controller so drain accounting and resize "
          "hooks stay coherent");
    }

    // SR006 — sim-reachable src/ domains.
    if (domain == Domain::kSim || domain == Domain::kObs) {
      for (const auto& r : kAddressDependent) {
        if (contains_token(code, r.token)) {
          add(n, r.rule,
              std::string(r.what) +
                  " is scheduler-dependent and must not reach a result");
          break;
        }
      }
      if (std::regex_search(code, kPtrHash)) {
        add(n, "SR006",
            "pointer-to-integer hashing is address-space-dependent: key on "
            "a stable name or index instead");
      }
    }
  }
  return findings;
}

std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& paths,
                               std::vector<std::string>* errors) {
  std::vector<Finding> findings;
  auto note_error = [errors](const std::string& msg) {
    if (errors != nullptr) errors->push_back(msg);
  };
  auto scan_one = [&](const fs::path& abs, const std::string& rel) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      note_error("cannot read " + abs.string());
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings = scan_file(rel, buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  };
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
           ext == ".cxx";
  };

  const fs::path root_path(root);
  for (const auto& p : paths) {
    const fs::path abs = root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file() || !is_source(it->path())) continue;
        const std::string rel =
            fs::relative(it->path(), root_path, ec).generic_string();
        scan_one(it->path(), rel);
      }
      if (ec) note_error("walking " + abs.string() + ": " + ec.message());
    } else if (fs::is_regular_file(abs, ec)) {
      scan_one(abs, fs::path(p).generic_string());
    } else {
      note_error("no such file or directory: " + abs.string());
    }
  }
  // Directory iteration order is filesystem-dependent; the report must not
  // be (the checker holds itself to its own contract).
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  if (!f.excerpt.empty()) os << "\n    > " << f.excerpt;
  return os.str();
}

}  // namespace softres::lint
